//! The qualitative comparison matrices (paper Tables IV and V).

use std::fmt::Write as _;

/// What a patching system targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// On-disk executable binaries.
    BinaryFile,
    /// A userspace process.
    UserProcess,
    /// The OS kernel.
    Kernel,
    /// Whole-system dynamic update (process- or OS-level with
    /// annotations).
    DynamicUpdate,
}

impl std::fmt::Display for Target {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Target::BinaryFile => "binary file",
            Target::UserProcess => "user process",
            Target::Kernel => "kernel",
            Target::DynamicUpdate => "dynamic update",
        };
        f.write_str(s)
    }
}

/// One row of the paper's Table IV general comparison.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SystemProfile {
    /// System name.
    pub name: &'static str,
    /// Patch target.
    pub target: Target,
    /// Can it patch *runtime memory* (vs. only files on disk)?
    pub handles_runtime_memory: bool,
    /// Does correct patching require trusting the target OS?
    pub requires_os_trust: bool,
    /// Does it need developer annotations / safe update points?
    pub requires_annotations: bool,
    /// How application/OS state is kept consistent.
    pub state_handling: &'static str,
}

/// The Table IV matrix (paper §VI-D1).
pub fn general_matrix() -> Vec<SystemProfile> {
    vec![
        SystemProfile {
            name: "Dyninst",
            target: Target::BinaryFile,
            handles_runtime_memory: false,
            requires_os_trust: true,
            requires_annotations: false,
            state_handling: "none (static rewriting)",
        },
        SystemProfile {
            name: "EEL",
            target: Target::BinaryFile,
            handles_runtime_memory: false,
            requires_os_trust: true,
            requires_annotations: false,
            state_handling: "none (static rewriting)",
        },
        SystemProfile {
            name: "Libcare",
            target: Target::UserProcess,
            handles_runtime_memory: true,
            requires_os_trust: true,
            requires_annotations: false,
            state_handling: "per-process hooks via ptrace",
        },
        SystemProfile {
            name: "Kitsune",
            target: Target::DynamicUpdate,
            handles_runtime_memory: true,
            requires_os_trust: true,
            requires_annotations: true,
            state_handling: "developer-marked update points",
        },
        SystemProfile {
            name: "PROTEOS",
            target: Target::DynamicUpdate,
            handles_runtime_memory: true,
            requires_os_trust: true,
            requires_annotations: true,
            state_handling: "annotated state transfer",
        },
        SystemProfile {
            name: "kpatch",
            target: Target::Kernel,
            handles_runtime_memory: true,
            requires_os_trust: true,
            requires_annotations: false,
            state_handling: "stop_machine + stack check",
        },
        SystemProfile {
            name: "Ksplice",
            target: Target::Kernel,
            handles_runtime_memory: true,
            requires_os_trust: true,
            requires_annotations: false,
            state_handling: "stop_machine + stack check",
        },
        SystemProfile {
            name: "KUP",
            target: Target::Kernel,
            handles_runtime_memory: true,
            requires_os_trust: true,
            requires_annotations: false,
            state_handling: "checkpoint/restore (CRIU)",
        },
        SystemProfile {
            name: "KShot",
            target: Target::Kernel,
            handles_runtime_memory: true,
            requires_os_trust: false,
            requires_annotations: false,
            state_handling: "hardware save/restore via SMM",
        },
    ]
}

/// Render Table IV as aligned text.
pub fn render_general_matrix() -> String {
    let rows = general_matrix();
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<10} {:<15} {:<8} {:<10} {:<12} State handling",
        "System", "Target", "RtMem", "OS-trust", "Annotations"
    );
    for r in rows {
        let _ = writeln!(
            s,
            "{:<10} {:<15} {:<8} {:<10} {:<12} {}",
            r.name,
            r.target.to_string(),
            if r.handles_runtime_memory {
                "yes"
            } else {
                "no"
            },
            if r.requires_os_trust { "yes" } else { "no" },
            if r.requires_annotations { "yes" } else { "no" },
            r.state_handling,
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn only_kshot_avoids_os_trust() {
        let rows = general_matrix();
        let untrusting: Vec<&str> = rows
            .iter()
            .filter(|r| !r.requires_os_trust)
            .map(|r| r.name)
            .collect();
        assert_eq!(untrusting, vec!["KShot"], "the paper's headline claim");
    }

    #[test]
    fn annotation_systems_are_the_dsu_ones() {
        for r in general_matrix() {
            if r.requires_annotations {
                assert_eq!(r.target, Target::DynamicUpdate, "{}", r.name);
            }
        }
    }

    #[test]
    fn render_contains_all_rows() {
        let text = render_general_matrix();
        for name in [
            "Dyninst", "EEL", "Libcare", "Kitsune", "PROTEOS", "kpatch", "Ksplice", "KUP", "KShot",
        ] {
            assert!(text.contains(name), "{name} missing");
        }
    }
}
