//! kGraft-style live patching: trampolines installed *without* stopping
//! the machine. Tasks migrate to the new code lazily, so a window exists
//! where old and new versions run concurrently — the consistency trade
//! the paper describes ("kGraft … does not need to stop the running
//! processes … potentially inducing incorrect behavior").

use kshot_machine::SimTime;
use kshot_patchserver::{PatchServer, SourcePatch};

use crate::kpatch::{apply_function_patches, apply_global_ops};
use crate::{
    build_bundle, BaselineError, BaselineReport, Granularity, LivePatcher, OsPatchApi, TrustedBase,
};

/// Fixed per-site cost of a lockless trampoline install.
pub const SITE_COST: SimTime = SimTime::from_ns(1_000);

/// The kGraft mechanism. Remembers the patched functions' old bodies so
/// the per-task migration state can be queried (real kGraft flags each
/// task and completes the transition once every task has passed a safe
/// point; until then old and new code run side by side).
#[derive(Debug, Default)]
pub struct Kgraft {
    patched_ranges: Vec<(String, u64, u64)>,
}

impl Kgraft {
    /// Tasks that are still executing inside an *old* function body —
    /// the unmigrated set. The mixed-version window is open while this
    /// is non-empty.
    pub fn unmigrated_tasks(&self, kernel: &kshot_kernel::Kernel) -> Vec<kshot_kernel::TaskId> {
        kernel
            .task_ids()
            .into_iter()
            .filter(|id| {
                let task = kernel.task(*id).expect("listed id");
                if !matches!(task.state, kshot_kernel::TaskState::Ready) {
                    return false;
                }
                let pc = task.cpu.pc;
                self.patched_ranges
                    .iter()
                    .any(|(_, lo, hi)| pc >= *lo && pc < *hi)
            })
            .collect()
    }

    /// Whether the universe transition has completed (no task still runs
    /// old code).
    pub fn migration_complete(&self, kernel: &kshot_kernel::Kernel) -> bool {
        self.unmigrated_tasks(kernel).is_empty()
    }
}

impl LivePatcher for Kgraft {
    fn name(&self) -> &'static str {
        "kGraft"
    }

    fn granularity(&self) -> Granularity {
        Granularity::Function
    }

    fn trusted_base(&self) -> TrustedBase {
        TrustedBase::Kernel
    }

    fn apply(
        &mut self,
        api: &mut OsPatchApi,
        kernel: &mut kshot_kernel::Kernel,
        server: &PatchServer,
        patch: &SourcePatch,
    ) -> Result<BaselineReport, BaselineError> {
        let build = build_bundle(kernel, server, patch)?;
        for e in &build.bundle.entries {
            self.patched_ranges
                .push((e.name.clone(), e.taddr, e.taddr + e.tsize));
        }
        let t0 = kernel.machine().now();
        // No stop_machine, no quiescence check: install immediately.
        let (written, sites) = apply_function_patches(
            api,
            kernel,
            &build.bundle.entries,
            &build.bundle.new_functions,
        )?;
        let written = written + apply_global_ops(kernel, &build.bundle.global_ops)?;
        for _ in 0..sites {
            kernel.machine_mut().charge(SITE_COST);
        }
        let patch_time = kernel.machine().now() - t0;
        Ok(BaselineReport {
            patch_time,
            // Nothing pauses: downtime is zero (the price is the mixed-
            // version window, exercised in the integration tests).
            downtime: SimTime::ZERO,
            memory_used: written,
            sites,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{CondExpr, Expr, Function, Global, InlineHint, Program, Stmt};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_kernel::Kernel;
    use kshot_machine::MemLayout;

    fn setup() -> (Kernel, PatchServer, SourcePatch) {
        let mut p = Program::new();
        p.add_global(Global::word("mode", 0));
        // A function that loops calling a helper; patch changes helper's
        // contribution — tasks mid-loop keep OLD behaviour until return
        // (kGraft's mixed window).
        p.add_function(
            Function::new("step", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(1)),
        );
        p.add_function(
            Function::new("run_loop", 1, 2)
                .with_inline(InlineHint::Never)
                .with_body(vec![
                    Stmt::Assign(0, Expr::c(0)),
                    Stmt::Assign(1, Expr::c(0)),
                    Stmt::While {
                        cond: CondExpr::new(Expr::local(1), kshot_isa::Cond::B, Expr::param(0)),
                        body: vec![
                            Stmt::Assign(0, Expr::local(0).add(Expr::call("step", vec![]))),
                            Stmt::Assign(1, Expr::local(1).add(Expr::c(1))),
                        ],
                    },
                    Stmt::Return(Expr::local(0)),
                ]),
        );
        let layout = MemLayout::standard();
        let img = link(
            &p,
            &CodegenOptions::no_inline(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let kernel = Kernel::boot(img, "kv-4.4", layout).unwrap();
        let mut server = PatchServer::new();
        server.register_tree("kv-4.4", p);
        let patch = SourcePatch::new("CVE-G").replacing(
            Function::new("step", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(100)),
        );
        (kernel, server, patch)
    }

    #[test]
    fn kgraft_patches_without_downtime() {
        let (mut kernel, server, patch) = setup();
        let mut api = OsPatchApi::new();
        let report = Kgraft::default()
            .apply(&mut api, &mut kernel, &server, &patch)
            .unwrap();
        assert_eq!(report.downtime, SimTime::ZERO);
        assert_eq!(report.sites, 1);
        assert_eq!(kernel.call_function("step", &[]).unwrap(), 100);
    }

    #[test]
    fn kgraft_patches_even_with_busy_tasks_creating_mixed_window() {
        let (mut kernel, server, patch) = setup();
        // A task mid-loop (its next `call step` will hit the trampoline —
        // new code takes effect mid-computation, the consistency hazard).
        let id = kernel.spawn("t", "run_loop", &[10]).unwrap();
        kernel.run_task_slice(id, 40).unwrap();
        let mut api = OsPatchApi::new();
        let mut kgraft = Kgraft::default();
        kgraft
            .apply(&mut api, &mut kernel, &server, &patch)
            .unwrap();
        while kernel.run_task_slice(id, 10_000).unwrap() == kshot_kernel::SliceOutcome::Preempted {}
        match kernel.task(id).unwrap().state {
            kshot_kernel::TaskState::Exited(v) => {
                // Mixed result: some iterations contributed 1 (old), the
                // rest 100 (new) — not 10 and not 1000.
                assert!(v > 10 && v < 1000, "mixed-version sum was {v}");
            }
            ref other => panic!("{other:?}"),
        }
        // Once the task drained, the universe transition completed.
        assert!(kgraft.migration_complete(&kernel));
    }

    #[test]
    fn migration_tracking_reports_tasks_in_old_code() {
        let (mut kernel, server, patch) = setup();
        // Park a task inside run_loop — but run_loop is not a patch
        // target, so migration is already complete. Park one inside
        // `step` by single-stepping just past its entry via a dedicated
        // task on `step` itself.
        let id = kernel.spawn("in-step", "step", &[]).unwrap();
        kernel.run_task_slice(id, 2).unwrap(); // parked mid-`step`
        let mut kgraft = Kgraft::default();
        let mut api = OsPatchApi::new();
        kgraft
            .apply(&mut api, &mut kernel, &server, &patch)
            .unwrap();
        assert_eq!(kgraft.unmigrated_tasks(&kernel), vec![id]);
        assert!(!kgraft.migration_complete(&kernel));
        // Drain the task: transition completes.
        while kernel.run_task_slice(id, 10_000).unwrap() == kshot_kernel::SliceOutcome::Preempted {}
        assert!(kgraft.migration_complete(&kernel));
    }
}
