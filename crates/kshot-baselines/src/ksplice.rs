//! Ksplice-style live patching: individual instructions replaced in
//! place ("Ksplice patches individual instructions instead of
//! functions"). Only patches whose pre/post bodies have identical
//! instruction layout are expressible; anything else is refused — the
//! real system's run-pre/run-post matching has the same character.

use kshot_isa::disasm::disassemble;
use kshot_machine::SimTime;
use kshot_patchserver::{PatchServer, SourcePatch};

use crate::{
    build_bundle, BaselineError, BaselineReport, Granularity, LivePatcher, OsPatchApi, TrustedBase,
};

/// Fixed setup cost (safety checks, stacks walked).
pub const SETUP_COST: SimTime = SimTime::from_ns(3_000);

/// Per-replaced-instruction cost.
pub const PER_INST_COST: SimTime = SimTime::from_ns(100);

/// The Ksplice mechanism.
#[derive(Debug, Default)]
pub struct Ksplice;

/// Compute the in-place instruction replacements between two bodies laid
/// out at the same address. Returns `(offset, new_bytes)` per differing
/// instruction, or `None` if the layouts diverge.
pub(crate) fn instruction_diff(pre: &[u8], post: &[u8]) -> Option<Vec<(u64, Vec<u8>)>> {
    let a = disassemble(pre, 0).ok()?;
    let b = disassemble(post, 0).ok()?;
    if a.len() != b.len() {
        return None;
    }
    let mut edits = Vec::new();
    for ((off_a, inst_a), (off_b, inst_b)) in a.iter().zip(b.iter()) {
        if off_a != off_b {
            return None; // layout shifted
        }
        if inst_a != inst_b {
            if inst_a.encoded_len() != inst_b.encoded_len() {
                return None;
            }
            edits.push((*off_a, inst_b.encode()));
        }
    }
    Some(edits)
}

impl LivePatcher for Ksplice {
    fn name(&self) -> &'static str {
        "Ksplice"
    }

    fn granularity(&self) -> Granularity {
        Granularity::Instruction
    }

    fn trusted_base(&self) -> TrustedBase {
        TrustedBase::Kernel
    }

    fn apply(
        &mut self,
        api: &mut OsPatchApi,
        kernel: &mut kshot_kernel::Kernel,
        server: &PatchServer,
        patch: &SourcePatch,
    ) -> Result<BaselineReport, BaselineError> {
        let build = build_bundle(kernel, server, patch)?;
        if !build.bundle.new_functions.is_empty() || !build.bundle.global_ops.is_empty() {
            return Err(BaselineError::Unsupported(
                "Ksplice cannot add functions or change data".into(),
            ));
        }
        // Compute in-place edits per function against live memory.
        let mut all_edits = Vec::new();
        let mut ranges = Vec::new();
        for e in &build.bundle.entries {
            let pre = build
                .pre_image
                .function_bytes(&e.name)
                .ok_or_else(|| BaselineError::Unsupported(format!("missing `{}`", e.name)))?;
            let post = build
                .post_image
                .function_bytes(&e.name)
                .ok_or_else(|| BaselineError::Unsupported(format!("missing `{}`", e.name)))?;
            let edits = instruction_diff(pre, post).ok_or_else(|| {
                BaselineError::Unsupported(format!(
                    "`{}`: instruction layout changed; not expressible in-place",
                    e.name
                ))
            })?;
            ranges.push((e.name.clone(), e.taddr, e.taddr + e.tsize));
            for (off, bytes) in edits {
                all_edits.push((e.taddr + off, bytes));
            }
        }
        // Safety: nothing executing inside the targets.
        let t0 = kernel.machine().now();
        kernel.machine_mut().charge(SETUP_COST);
        api.quiescent_check(kernel, &ranges)?;
        for (addr, bytes) in &all_edits {
            api.text_poke(kernel, *addr, bytes)?;
            kernel.machine_mut().charge(PER_INST_COST);
        }
        let downtime = kernel.machine().now() - t0;
        Ok(BaselineReport {
            patch_time: downtime,
            downtime,
            memory_used: 0, // in-place: no extra memory
            sites: all_edits.len(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{Expr, Function, InlineHint, Program};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_kernel::Kernel;
    use kshot_machine::MemLayout;

    fn setup(pre_imm: u64) -> (Kernel, PatchServer) {
        let mut p = Program::new();
        p.add_function(
            Function::new("limit_check", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::param(0).add(Expr::c(pre_imm))),
        );
        let layout = MemLayout::standard();
        let img = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let kernel = Kernel::boot(img, "kv-4.4", layout).unwrap();
        let mut server = PatchServer::new();
        server.register_tree("kv-4.4", p);
        (kernel, server)
    }

    #[test]
    fn immediate_only_patch_applies_in_place() {
        let (mut kernel, server) = setup(1);
        let patch = SourcePatch::new("CVE-S").replacing(
            Function::new("limit_check", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::param(0).add(Expr::c(1000))),
        );
        let mut api = OsPatchApi::new();
        let report = Ksplice
            .apply(&mut api, &mut kernel, &server, &patch)
            .unwrap();
        assert!(report.sites >= 1);
        assert_eq!(report.memory_used, 0);
        assert_eq!(kernel.call_function("limit_check", &[5]).unwrap(), 1005);
        // Ksplice is fast on tiny patches: well under kpatch's
        // stop_machine cost.
        assert!(report.downtime < crate::kpatch::STOP_MACHINE_COST);
    }

    #[test]
    fn layout_changing_patch_is_refused() {
        let (mut kernel, server) = setup(1);
        // Adding a statement changes the instruction layout.
        let patch = SourcePatch::new("CVE-S2").replacing(
            Function::new("limit_check", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::param(0).add(Expr::c(1)).mul(Expr::c(2))),
        );
        let mut api = OsPatchApi::new();
        assert!(matches!(
            Ksplice.apply(&mut api, &mut kernel, &server, &patch),
            Err(BaselineError::Unsupported(_))
        ));
    }

    #[test]
    fn instruction_diff_identifies_minimal_edits() {
        let pre = [
            kshot_isa::Inst::MovImm {
                dst: kshot_isa::Reg::R0,
                imm: 1,
            },
            kshot_isa::Inst::Ret,
        ]
        .iter()
        .flat_map(|i| i.encode())
        .collect::<Vec<_>>();
        let post = [
            kshot_isa::Inst::MovImm {
                dst: kshot_isa::Reg::R0,
                imm: 2,
            },
            kshot_isa::Inst::Ret,
        ]
        .iter()
        .flat_map(|i| i.encode())
        .collect::<Vec<_>>();
        let edits = instruction_diff(&pre, &post).unwrap();
        assert_eq!(edits.len(), 1);
        assert_eq!(edits[0].0, 0);
        // Identical bodies → no edits.
        assert!(instruction_diff(&pre, &pre).unwrap().is_empty());
        // Different lengths → inexpressible.
        assert!(instruction_diff(&pre, &post[..post.len() - 1]).is_none());
    }
}
