//! KARMA-style live patching: a kernel module applies instruction-level
//! edits when possible and falls back to function redirection otherwise
//! ("KARMA uses a kernel module to replace vulnerable instructions that
//! it identifies from a given patch diff"). No stop_machine; tuned for
//! very small patches (the paper credits it with <5 µs).

use kshot_machine::SimTime;
use kshot_patchserver::{PatchServer, SourcePatch};

use crate::kpatch::{apply_function_patches, apply_global_ops};
use crate::ksplice::instruction_diff;
use crate::{
    build_bundle, BaselineError, BaselineReport, Granularity, LivePatcher, OsPatchApi, TrustedBase,
};

/// Fixed module-entry cost.
pub const SETUP_COST: SimTime = SimTime::from_ns(2_000);

/// Per-edit cost.
pub const PER_EDIT_COST: SimTime = SimTime::from_ns(150);

/// The KARMA mechanism.
#[derive(Debug, Default)]
pub struct Karma;

impl LivePatcher for Karma {
    fn name(&self) -> &'static str {
        "KARMA"
    }

    fn granularity(&self) -> Granularity {
        Granularity::Instruction
    }

    fn trusted_base(&self) -> TrustedBase {
        TrustedBase::Kernel
    }

    fn apply(
        &mut self,
        api: &mut OsPatchApi,
        kernel: &mut kshot_kernel::Kernel,
        server: &PatchServer,
        patch: &SourcePatch,
    ) -> Result<BaselineReport, BaselineError> {
        let build = build_bundle(kernel, server, patch)?;
        let t0 = kernel.machine().now();
        kernel.machine_mut().charge(SETUP_COST);
        let mut in_place_edits = 0usize;
        let mut fallback_entries = Vec::new();
        for e in &build.bundle.entries {
            let pre = build.pre_image.function_bytes(&e.name);
            let post = build.post_image.function_bytes(&e.name);
            match (pre, post) {
                (Some(pre), Some(post)) => match instruction_diff(pre, post) {
                    Some(edits) => {
                        for (off, bytes) in edits {
                            api.text_poke(kernel, e.taddr + off, &bytes)?;
                            kernel.machine_mut().charge(PER_EDIT_COST);
                            in_place_edits += 1;
                        }
                    }
                    None => fallback_entries.push(e.clone()),
                },
                _ => fallback_entries.push(e.clone()),
            }
        }
        // Fall back to module-based redirection for layout-changing
        // functions (KARMA's "complex patch" adapter).
        let mut memory_used = 0u64;
        let mut sites = in_place_edits;
        if !fallback_entries.is_empty() {
            let (written, s) = apply_function_patches(
                api,
                kernel,
                &fallback_entries,
                &build.bundle.new_functions,
            )?;
            memory_used += written;
            sites += s;
        }
        memory_used += apply_global_ops(kernel, &build.bundle.global_ops)?;
        let patch_time = kernel.machine().now() - t0;
        Ok(BaselineReport {
            patch_time,
            downtime: SimTime::ZERO, // no stop_machine
            memory_used,
            sites,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{Expr, Function, InlineHint, Program};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_kernel::Kernel;
    use kshot_machine::MemLayout;

    fn setup() -> (Kernel, PatchServer) {
        let mut p = Program::new();
        p.add_function(
            Function::new("f_imm", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(1)),
        );
        p.add_function(
            Function::new("f_layout", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::param(0)),
        );
        let layout = MemLayout::standard();
        let img = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let kernel = Kernel::boot(img, "kv-4.4", layout).unwrap();
        let mut server = PatchServer::new();
        server.register_tree("kv-4.4", p);
        (kernel, server)
    }

    #[test]
    fn small_patch_is_in_place_and_fast() {
        let (mut kernel, server) = setup();
        let patch = SourcePatch::new("CVE-K").replacing(
            Function::new("f_imm", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(9)),
        );
        let mut api = OsPatchApi::new();
        let report = Karma.apply(&mut api, &mut kernel, &server, &patch).unwrap();
        assert_eq!(report.memory_used, 0, "in-place edit");
        assert!(report.patch_time < SimTime::from_us(5), "KARMA is <5µs");
        assert_eq!(kernel.call_function("f_imm", &[]).unwrap(), 9);
    }

    #[test]
    fn layout_change_falls_back_to_redirect() {
        let (mut kernel, server) = setup();
        let patch = SourcePatch::new("CVE-K2").replacing(
            Function::new("f_layout", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::param(0).mul(Expr::c(3)).add(Expr::c(1))),
        );
        let mut api = OsPatchApi::new();
        let report = Karma.apply(&mut api, &mut kernel, &server, &patch).unwrap();
        assert!(report.memory_used > 0, "module fallback used");
        assert_eq!(kernel.call_function("f_layout", &[5]).unwrap(), 16);
    }
}
