//! kpatch-style live patching: function-granularity ftrace trampolines
//! installed under `stop_machine`, patched bodies in module memory.

use kshot_kernel::Kernel;
use kshot_machine::SimTime;
use kshot_patchserver::bundle::{PatchEntry, RelocTarget};
use kshot_patchserver::{PatchServer, SourcePatch};

use crate::{
    build_bundle, BaselineError, BaselineReport, Granularity, LivePatcher, OsPatchApi, TrustedBase,
};

/// Cost of a `stop_machine` round-trip (all CPUs parked), calibrated to
/// the millisecond-class latencies reported for kpatch.
pub const STOP_MACHINE_COST: SimTime = SimTime::from_ns(1_500_000);

/// Per-byte cost of kernel-side patch writes.
pub const WRITE_NS_PER_BYTE: u64 = 1;

/// The kpatch mechanism.
#[derive(Debug, Default)]
pub struct Kpatch;

/// Shared function-granularity application: place bodies in module
/// memory, resolve relocations, install entry trampolines through the
/// (hookable) text-poke path. Returns (bytes written, sites).
pub(crate) fn apply_function_patches(
    api: &mut OsPatchApi,
    kernel: &mut Kernel,
    entries: &[PatchEntry],
    new_functions: &[PatchEntry],
) -> Result<(u64, usize), BaselineError> {
    // Place new functions first so relocations can resolve to them.
    let mut new_addrs = std::collections::BTreeMap::new();
    let mut written = 0u64;
    for nf in new_functions {
        let addr = api.module_alloc(kernel, &nf.body)?;
        written += nf.body.len() as u64;
        new_addrs.insert(nf.name.clone(), addr);
    }
    let mut sites = 0usize;
    for e in entries {
        // Reserve the slot, then resolve calls against the final address.
        let addr = api.module_alloc(kernel, &vec![0u8; e.body.len()])?;
        let body = resolve_body(e, addr, &new_addrs)?;
        // Module memory is kernel-writable; rewrite with resolved bytes.
        kernel
            .machine_mut()
            .write_bytes(kshot_machine::AccessCtx::Kernel, addr, &body)?;
        written += body.len() as u64;
        let skip = if e.ftrace_offset.is_some() {
            kshot_isa::JMP_LEN as u64
        } else {
            0
        };
        let site = e.taddr + skip;
        let mut jmp = [0u8; 5];
        kshot_isa::write_jmp_rel32(&mut jmp, site, addr)
            .map_err(|_| BaselineError::Unsupported("trampoline out of range".into()))?;
        api.text_poke(kernel, site, &jmp)?;
        written += 5;
        sites += 1;
    }
    Ok((written, sites))
}

pub(crate) fn resolve_body(
    e: &PatchEntry,
    addr: u64,
    new_addrs: &std::collections::BTreeMap<String, u64>,
) -> Result<Vec<u8>, BaselineError> {
    let mut body = e.body.clone();
    for r in &e.relocs {
        let target = match &r.target {
            RelocTarget::Absolute(a) => *a,
            RelocTarget::NewFunction(n) => *new_addrs
                .get(n)
                .ok_or_else(|| BaselineError::Unsupported(format!("dangling reloc to `{n}`")))?,
        };
        let at = addr + r.offset as u64;
        let rel = kshot_isa::rel32_for(at, target)
            .map_err(|_| BaselineError::Unsupported("call out of range".into()))?;
        let o = r.offset as usize;
        body[o + 1..o + 5].copy_from_slice(&rel.to_le_bytes());
    }
    Ok(body)
}

/// Apply the bundle's global ops with kernel privilege (baselines write
/// the data segment directly).
pub(crate) fn apply_global_ops(
    kernel: &mut Kernel,
    ops: &[kshot_patchserver::bundle::GlobalOp],
) -> Result<u64, BaselineError> {
    let mut written = 0u64;
    for op in ops {
        kernel.machine_mut().write_bytes(
            kshot_machine::AccessCtx::Kernel,
            op.addr(),
            op.bytes(),
        )?;
        written += op.bytes().len() as u64;
    }
    Ok(written)
}

impl LivePatcher for Kpatch {
    fn name(&self) -> &'static str {
        "kpatch"
    }

    fn granularity(&self) -> Granularity {
        Granularity::Function
    }

    fn trusted_base(&self) -> TrustedBase {
        TrustedBase::Kernel
    }

    fn apply(
        &mut self,
        api: &mut OsPatchApi,
        kernel: &mut Kernel,
        server: &PatchServer,
        patch: &SourcePatch,
    ) -> Result<BaselineReport, BaselineError> {
        let build = build_bundle(kernel, server, patch)?;
        let ranges: Vec<(String, u64, u64)> = build
            .bundle
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.taddr, e.taddr + e.tsize))
            .collect();
        // stop_machine: park everything, verify quiescence.
        let t0 = kernel.machine().now();
        kernel.machine_mut().charge(STOP_MACHINE_COST);
        api.quiescent_check(kernel, &ranges)?;
        let (written, sites) = apply_function_patches(
            api,
            kernel,
            &build.bundle.entries,
            &build.bundle.new_functions,
        )?;
        let written = written + apply_global_ops(kernel, &build.bundle.global_ops)?;
        kernel
            .machine_mut()
            .charge(SimTime::from_ns(written * WRITE_NS_PER_BYTE));
        let downtime = kernel.machine().now() - t0;
        Ok(BaselineReport {
            patch_time: downtime,
            downtime,
            memory_used: written,
            sites,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{CondExpr, Expr, Function, Global, InlineHint, Program, Stmt};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_machine::MemLayout;

    fn setup() -> (Kernel, PatchServer, SourcePatch) {
        let mut p = Program::new();
        p.add_global(Global::buffer("buf", 2));
        p.add_global(Global::word("sent", 0xA5A5));
        p.add_function(
            Function::new("vuln", 2, 0)
                .with_inline(InlineHint::Never)
                .with_body(vec![
                    Stmt::Store {
                        addr: Expr::global_addr("buf").add(Expr::param(0).mul(Expr::c(8))),
                        value: Expr::param(1),
                    },
                    Stmt::Return(Expr::c(0)),
                ]),
        );
        let layout = MemLayout::standard();
        let img = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let kernel = Kernel::boot(img, "kv-4.4", layout).unwrap();
        let mut server = PatchServer::new();
        server.register_tree("kv-4.4", p);
        let patch = SourcePatch::new("CVE-X").replacing(
            Function::new("vuln", 2, 0)
                .with_inline(InlineHint::Never)
                .with_body(vec![
                    Stmt::if_then(
                        CondExpr::new(Expr::param(0), kshot_isa::Cond::Ae, Expr::c(2)),
                        vec![Stmt::Return(Expr::c(u64::MAX))],
                    ),
                    Stmt::Store {
                        addr: Expr::global_addr("buf").add(Expr::param(0).mul(Expr::c(8))),
                        value: Expr::param(1),
                    },
                    Stmt::Return(Expr::c(0)),
                ]),
        );
        (kernel, server, patch)
    }

    #[test]
    fn kpatch_fixes_the_bug_when_kernel_is_honest() {
        let (mut kernel, server, patch) = setup();
        kernel.call_function("vuln", &[2, 0xBAD]).unwrap();
        assert_eq!(kernel.read_global("sent").unwrap(), 0xBAD);
        kernel.write_global("sent", 0xA5A5).unwrap();
        let mut api = OsPatchApi::new();
        let report = Kpatch
            .apply(&mut api, &mut kernel, &server, &patch)
            .unwrap();
        assert_eq!(report.sites, 1);
        assert!(report.downtime >= STOP_MACHINE_COST);
        assert_eq!(kernel.call_function("vuln", &[2, 0xBAD]).unwrap(), u64::MAX);
        assert_eq!(kernel.read_global("sent").unwrap(), 0xA5A5);
    }

    #[test]
    fn kpatch_is_defeated_by_a_rootkit() {
        let (mut kernel, server, patch) = setup();
        let mut api = OsPatchApi::new();
        api.install_rootkit();
        // kpatch reports success — it trusts the kernel.
        let report = Kpatch
            .apply(&mut api, &mut kernel, &server, &patch)
            .unwrap();
        assert_eq!(report.sites, 1);
        // But the vulnerability is still live.
        kernel.call_function("vuln", &[2, 0xBAD]).unwrap();
        assert_eq!(kernel.read_global("sent").unwrap(), 0xBAD);
    }

    #[test]
    fn kpatch_blocks_on_busy_function() {
        let (mut kernel, server, patch) = setup();
        // Park a task inside `vuln` — give it a big loop via fuel trick:
        // spawn and run only a couple of instructions so its PC is inside.
        let id = kernel.spawn("t", "vuln", &[0, 1]).unwrap();
        kernel.run_task_slice(id, 2).unwrap();
        let mut api = OsPatchApi::new();
        let err = Kpatch
            .apply(&mut api, &mut kernel, &server, &patch)
            .unwrap_err();
        assert!(matches!(err, BaselineError::Busy { .. }));
    }
}
