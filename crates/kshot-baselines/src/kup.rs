//! KUP-style live patching: replace the *entire kernel* and preserve
//! application state with checkpoint/restore ("KUP replaces the whole
//! kernel at runtime while retaining state from running applications.
//! However, KUP incurs significant runtime and resource overhead").
//!
//! Capabilities and costs both follow the paper's characterisation:
//! KUP handles layout-changing patches no trampoline system can express,
//! but pays seconds of downtime and checkpoint storage proportional to
//! application state.

use kshot_machine::{AccessCtx, SimTime};
use kshot_patchserver::{PatchServer, SourcePatch};

use crate::{BaselineError, BaselineReport, Granularity, LivePatcher, OsPatchApi, TrustedBase};

/// Fixed kexec + kernel-boot cost (paper Table V: ~3 s).
pub const KEXEC_COST: SimTime = SimTime::from_ns(3_000_000_000);

/// Per-byte cost of checkpointing and image writing.
pub const PER_BYTE_NS: u64 = 1;

/// Bytes checkpointed per task: CPU save image + its whole stack
/// (the analogue of CRIU dumping process state; the paper reports >30 GB
/// for real workloads — ours scales with the simulated tasks).
pub const TASK_STACK_BYTES: u64 = 64 * 1024;

/// The KUP mechanism.
#[derive(Debug, Default)]
pub struct Kup;

impl LivePatcher for Kup {
    fn name(&self) -> &'static str {
        "KUP"
    }

    fn granularity(&self) -> Granularity {
        Granularity::WholeKernel
    }

    fn trusted_base(&self) -> TrustedBase {
        TrustedBase::Kernel
    }

    fn apply(
        &mut self,
        api: &mut OsPatchApi,
        kernel: &mut kshot_kernel::Kernel,
        server: &PatchServer,
        patch: &SourcePatch,
    ) -> Result<BaselineReport, BaselineError> {
        // KUP builds whole images — no hazard gate, no analysis.
        let (_pre, post) = server
            .build_images(&kernel.info(), patch)
            .map_err(BaselineError::Server)?;
        // Everything must be out of the kernel: the whole text is about
        // to be replaced and function addresses may shift.
        let text_range = vec![(
            "kernel text".to_string(),
            post.text_base,
            post.text_base + kernel.machine().layout().kernel_text_size,
        )];
        api.quiescent_check(kernel, &text_range)?;
        let t0 = kernel.machine().now();
        // 1. Checkpoint application state (CPU images + stacks).
        let tasks = kernel.task_ids().len() as u64;
        let checkpoint_bytes =
            tasks * (kshot_machine::cpu::SAVE_AREA_LEN as u64 + TASK_STACK_BYTES);
        // 2. "kexec": swap the whole kernel image. Text goes through the
        // (hookable) text-poke path; data is re-initialized exactly as a
        // kernel reboot would re-initialize kernel globals.
        api.text_poke(kernel, post.text_base, &post.text)?;
        if !api.is_hooked() {
            kernel
                .machine_mut()
                .write_bytes(AccessCtx::Kernel, post.data_base, &post.data)?;
        }
        // 3. Restore application state: tasks keep their stacks and CPU
        // contexts (they were quiescent, so no saved PC points into the
        // replaced text).
        let written = post.text.len() as u64 + post.data.len() as u64 + checkpoint_bytes;
        kernel.machine_mut().charge(KEXEC_COST);
        kernel
            .machine_mut()
            .charge(SimTime::from_ns(written * PER_BYTE_NS));
        let downtime = kernel.machine().now() - t0;
        Ok(BaselineReport {
            patch_time: downtime,
            downtime,
            memory_used: checkpoint_bytes + post.text.len() as u64,
            sites: 1,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{Expr, Function, Global, InlineHint, Program};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_kernel::Kernel;
    use kshot_machine::MemLayout;

    fn setup() -> (Kernel, PatchServer) {
        let mut p = Program::new();
        p.add_global(Global::buffer("shared", 2));
        p.add_function(
            Function::new("probe", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(1)),
        );
        let layout = MemLayout::standard();
        let img = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let kernel = Kernel::boot(img, "kv-4.4", layout).unwrap();
        let mut server = PatchServer::new();
        server.register_tree("kv-4.4", p);
        (kernel, server)
    }

    #[test]
    fn kup_replaces_the_whole_kernel() {
        let (mut kernel, server) = setup();
        let patch = SourcePatch::new("CVE-U").replacing(
            Function::new("probe", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(2)),
        );
        let mut api = OsPatchApi::new();
        let report = Kup.apply(&mut api, &mut kernel, &server, &patch).unwrap();
        assert!(report.downtime >= KEXEC_COST, "seconds of downtime");
        assert_eq!(kernel.call_function("probe", &[]).unwrap(), 2);
    }

    #[test]
    fn kup_handles_layout_hazards_other_systems_refuse() {
        let (mut kernel, server) = setup();
        // Resize a shared global — rejected by the trampoline pipeline…
        let hazard = SourcePatch::new("CVE-HAZ")
            .resizing_global("shared", 8)
            .replacing(
                Function::new("probe", 0, 0)
                    .with_inline(InlineHint::Never)
                    .returning(Expr::c(3)),
            );
        assert!(matches!(
            server.build_patch(&kernel.info(), &hazard),
            Err(kshot_patchserver::ServerError::LayoutHazard(_))
        ));
        // …but KUP swaps the whole kernel.
        let mut api = OsPatchApi::new();
        Kup.apply(&mut api, &mut kernel, &server, &hazard).unwrap();
        assert_eq!(kernel.call_function("probe", &[]).unwrap(), 3);
    }

    #[test]
    fn kup_checkpoint_cost_scales_with_tasks() {
        let (mut kernel, server) = setup();
        // Spawn and finish a few tasks (they must be quiescent).
        for i in 0..3 {
            let id = kernel.spawn(format!("t{i}"), "probe", &[]).unwrap();
            while kernel.run_task_slice(id, 10_000).unwrap()
                == kshot_kernel::SliceOutcome::Preempted
            {}
        }
        let patch = SourcePatch::new("CVE-U2").replacing(
            Function::new("probe", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(5)),
        );
        let mut api = OsPatchApi::new();
        let report = Kup.apply(&mut api, &mut kernel, &server, &patch).unwrap();
        assert!(
            report.memory_used > 3 * TASK_STACK_BYTES,
            "checkpoints dominate memory: {}",
            report.memory_used
        );
    }

    #[test]
    fn kup_refuses_while_tasks_are_in_kernel() {
        let (mut kernel, server) = setup();
        let id = kernel.spawn("t", "probe", &[]).unwrap();
        kernel.run_task_slice(id, 1).unwrap(); // parked mid-text
        let patch = SourcePatch::new("CVE-U3").replacing(
            Function::new("probe", 0, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::c(9)),
        );
        let mut api = OsPatchApi::new();
        assert!(matches!(
            Kup.apply(&mut api, &mut kernel, &server, &patch),
            Err(BaselineError::Busy { .. })
        ));
    }
}
