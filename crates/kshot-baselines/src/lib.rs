#![warn(missing_docs)]

//! # kshot-baselines — the live-patching systems KShot is compared to
//!
//! Tables IV and V of the paper compare KShot against existing live
//! patching systems. To make those comparisons *measured* rather than
//! merely quoted, this crate implements the mechanism of each kernel
//! live patcher against the same miniature kernel:
//!
//! * [`kpatch`] — function-granularity ftrace trampolines under
//!   `stop_machine`, patched bodies in kernel module memory.
//! * [`ksplice`] — instruction-granularity in-place replacement with the
//!   "no task inside the target" safety check.
//! * [`kgraft`] — per-task migration: trampolines installed without
//!   stopping the machine, at the cost of a mixed-version window.
//! * [`kup`] — whole-kernel replacement with application
//!   checkpoint/restore (heavyweight, but layout-change capable).
//! * [`karma`] — KARMA-style instruction-level patching via a kernel
//!   module, optimized for tiny patches.
//!
//! All of them share one decisive property KShot does not have: they run
//! **inside the kernel's trust domain** ([`OsPatchApi`]). A rootkit that
//! hooks the kernel's text-poke path ([`OsPatchApi::install_rootkit`])
//! silently defeats every baseline while KShot's SMM path is unaffected —
//! the experiment behind the paper's Table V "Trusted Base" column.
//!
//! [`comparison`] carries the qualitative Table IV matrix.

pub mod comparison;
pub mod karma;
pub mod kgraft;
pub mod kpatch;
pub mod ksplice;
pub mod kup;

use std::fmt;

use kshot_kernel::Kernel;
use kshot_machine::{AccessCtx, MachineError, PageAttrs, SimTime};
use kshot_patchserver::{PatchServer, ServerError, SourcePatch};

/// Patch granularity (Table V column).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Granularity {
    /// Individual instructions replaced in place.
    Instruction,
    /// Whole functions redirected.
    Function,
    /// The entire kernel image swapped.
    WholeKernel,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Granularity::Instruction => "instruction",
            Granularity::Function => "function",
            Granularity::WholeKernel => "whole kernel",
        };
        f.write_str(s)
    }
}

/// What must be trusted for the patch to be trustworthy (Table V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TrustedBase {
    /// The whole OS kernel (every baseline).
    Kernel,
    /// Only the TEEs: SMM handler + SGX enclave (KShot).
    TeeOnly,
}

impl fmt::Display for TrustedBase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TrustedBase::Kernel => "whole kernel",
            TrustedBase::TeeOnly => "SMM + SGX enclave",
        };
        f.write_str(s)
    }
}

/// What one baseline patch application measured.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BaselineReport {
    /// Total patching time.
    pub patch_time: SimTime,
    /// Time the OS (or affected tasks) were stopped.
    pub downtime: SimTime,
    /// Extra memory consumed (module area, checkpoints…).
    pub memory_used: u64,
    /// Functions/instructions touched.
    pub sites: usize,
}

/// Baseline failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The patch server refused/failed.
    Server(ServerError),
    /// A task is executing inside the target function (Ksplice-style
    /// safety check failed).
    Busy {
        /// The blocked function.
        function: String,
    },
    /// Machine fault.
    Machine(MachineError),
    /// The mechanism cannot express the patch.
    Unsupported(String),
}

impl fmt::Display for BaselineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BaselineError::Server(e) => write!(f, "patch server: {e}"),
            BaselineError::Busy { function } => {
                write!(f, "task active inside `{function}`; cannot patch safely")
            }
            BaselineError::Machine(e) => write!(f, "machine fault: {e}"),
            BaselineError::Unsupported(s) => write!(f, "unsupported by this mechanism: {s}"),
        }
    }
}

impl std::error::Error for BaselineError {}

impl From<ServerError> for BaselineError {
    fn from(e: ServerError) -> Self {
        BaselineError::Server(e)
    }
}

impl From<MachineError> for BaselineError {
    fn from(e: MachineError) -> Self {
        BaselineError::Machine(e)
    }
}

/// A kernel live-patching system under comparison.
pub trait LivePatcher {
    /// System name for reports.
    fn name(&self) -> &'static str;

    /// Patch granularity (Table V).
    fn granularity(&self) -> Granularity;

    /// Trust requirements (Table V).
    fn trusted_base(&self) -> TrustedBase;

    /// Apply `patch` to the running kernel via this mechanism.
    ///
    /// # Errors
    ///
    /// [`BaselineError`] on mechanism-specific failures.
    fn apply(
        &mut self,
        api: &mut OsPatchApi,
        kernel: &mut Kernel,
        server: &PatchServer,
        patch: &SourcePatch,
    ) -> Result<BaselineReport, BaselineError>;
}

/// The kernel-internal patching services every baseline depends on
/// (ftrace/text_poke/stop_machine/kexec analogues) — and the attack
/// surface a kernel rootkit hooks.
#[derive(Debug, Default)]
pub struct OsPatchApi {
    rootkit_hooked: bool,
    /// Next free offset in the module area.
    module_cursor: u64,
}

/// Size of the kernel "module area" baselines load patched bodies into
/// (carved from the top half of the kernel data region).
pub const MODULE_AREA_SIZE: u64 = 2 * 1024 * 1024;

impl OsPatchApi {
    /// Fresh, unhooked API.
    pub fn new() -> Self {
        Self::default()
    }

    /// Install a rootkit hook on the kernel's text-modification path.
    /// From now on, trampoline/text writes requested through the OS are
    /// silently discarded — the attack of paper §II-A/§VI-D2.
    pub fn install_rootkit(&mut self) {
        self.rootkit_hooked = true;
    }

    /// Whether the rootkit is active.
    pub fn is_hooked(&self) -> bool {
        self.rootkit_hooked
    }

    /// Base of the module area in this kernel's layout.
    pub fn module_base(&self, kernel: &Kernel) -> u64 {
        let l = kernel.machine().layout();
        l.kernel_data_base + l.kernel_data_size - MODULE_AREA_SIZE
    }

    /// Allocate `size` bytes of executable module memory and copy `code`
    /// there (the kernel marks its own module pages `rwx`).
    ///
    /// # Errors
    ///
    /// Machine faults / exhaustion.
    pub fn module_alloc(&mut self, kernel: &mut Kernel, code: &[u8]) -> Result<u64, BaselineError> {
        let base = self.module_base(kernel);
        let addr = (base + self.module_cursor + 15) & !15;
        let end = addr + code.len() as u64;
        if end > base + MODULE_AREA_SIZE {
            return Err(BaselineError::Unsupported(
                "module area exhausted".to_string(),
            ));
        }
        self.module_cursor = end - base;
        let m = kernel.machine_mut();
        m.set_page_attrs(
            addr & !0xFFF,
            (end | 0xFFF) + 1 - (addr & !0xFFF),
            PageAttrs::RWX,
        )?;
        m.write_bytes(AccessCtx::Kernel, addr, code)?;
        Ok(addr)
    }

    /// The kernel's text-poke: temporarily remap the page writable and
    /// write. **This is the hookable path** — with a rootkit installed
    /// the write is silently dropped and the caller cannot tell.
    ///
    /// # Errors
    ///
    /// Machine faults.
    pub fn text_poke(
        &mut self,
        kernel: &mut Kernel,
        addr: u64,
        bytes: &[u8],
    ) -> Result<(), BaselineError> {
        if self.rootkit_hooked {
            // The rootkit filters text modifications; the API reports
            // success exactly like the real attack would.
            return Ok(());
        }
        let m = kernel.machine_mut();
        let page = addr & !0xFFF;
        let span = ((addr + bytes.len() as u64) | 0xFFF) + 1 - page;
        m.set_page_attrs(page, span, PageAttrs::RWX)?;
        m.write_bytes(AccessCtx::Kernel, addr, bytes)?;
        m.set_page_attrs(page, span, PageAttrs::RX)?;
        Ok(())
    }

    /// stop_machine: verify no ready task's saved PC lies inside any of
    /// the given ranges. Returns the offending function name on failure.
    pub fn quiescent_check(
        &self,
        kernel: &Kernel,
        ranges: &[(String, u64, u64)],
    ) -> Result<(), BaselineError> {
        for id in kernel.task_ids() {
            let task = kernel.task(id).expect("listed id");
            if !matches!(task.state, kshot_kernel::TaskState::Ready) {
                continue;
            }
            let pc = task.cpu.pc;
            for (name, lo, hi) in ranges {
                if pc >= *lo && pc < *hi {
                    return Err(BaselineError::Busy {
                        function: name.clone(),
                    });
                }
            }
        }
        Ok(())
    }
}

/// Convenience: build a server bundle for a patch (all baselines reuse
/// KShot's patch server as their build infrastructure; the *application*
/// mechanism is what differs).
pub(crate) fn build_bundle(
    kernel: &Kernel,
    server: &PatchServer,
    patch: &SourcePatch,
) -> Result<kshot_patchserver::server::BuildOutput, BaselineError> {
    Ok(server.build_patch(&kernel.info(), patch)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{Expr, Function, Program};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_machine::MemLayout;

    fn kernel() -> Kernel {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(1)));
        let layout = MemLayout::standard();
        let img = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        Kernel::boot(img, "kv", layout).unwrap()
    }

    #[test]
    fn module_alloc_produces_executable_memory() {
        let mut k = kernel();
        let mut api = OsPatchApi::new();
        let addr = api
            .module_alloc(&mut k, &[kshot_isa::opcodes::RET])
            .unwrap();
        let (inst, _) = k
            .machine_mut()
            .fetch(AccessCtx::Kernel, addr)
            .expect("module memory is executable");
        assert_eq!(inst, kshot_isa::Inst::Ret);
        // Sequential allocations don't overlap.
        let addr2 = api.module_alloc(&mut k, &[0x90; 64]).unwrap();
        assert!(addr2 > addr);
    }

    #[test]
    fn module_area_exhaustion() {
        let mut k = kernel();
        let mut api = OsPatchApi::new();
        let big = vec![0x90u8; MODULE_AREA_SIZE as usize - 64];
        api.module_alloc(&mut k, &big).unwrap();
        assert!(matches!(
            api.module_alloc(&mut k, &[0u8; 128]),
            Err(BaselineError::Unsupported(_))
        ));
    }

    #[test]
    fn text_poke_writes_and_restores_protection() {
        let mut k = kernel();
        let mut api = OsPatchApi::new();
        let addr = k.function_addr("f").unwrap();
        api.text_poke(&mut k, addr, &[kshot_isa::opcodes::NOP])
            .unwrap();
        let mut b = [0u8; 1];
        k.machine_mut()
            .read_bytes(AccessCtx::Kernel, addr, &mut b)
            .unwrap();
        assert_eq!(b[0], kshot_isa::opcodes::NOP);
        // Text is protected again.
        assert!(k
            .machine_mut()
            .write_bytes(AccessCtx::Kernel, addr, &[0])
            .is_err());
    }

    #[test]
    fn rootkit_hook_silently_drops_writes() {
        let mut k = kernel();
        let mut api = OsPatchApi::new();
        api.install_rootkit();
        let addr = k.function_addr("f").unwrap();
        // The call "succeeds"…
        api.text_poke(&mut k, addr, &[kshot_isa::opcodes::NOP])
            .unwrap();
        // …but memory is unchanged.
        let mut b = [0u8; 1];
        k.machine_mut()
            .read_bytes(AccessCtx::Kernel, addr, &mut b)
            .unwrap();
        assert_ne!(b[0], kshot_isa::opcodes::NOP);
    }

    #[test]
    fn quiescent_check_spots_active_tasks() {
        let mut p = Program::new();
        p.add_function(Function::new("spin", 1, 1).with_body(vec![
            kshot_kcc::ir::Stmt::Assign(0, Expr::c(0)),
            kshot_kcc::ir::Stmt::While {
                cond: kshot_kcc::ir::CondExpr::new(
                    Expr::local(0),
                    kshot_isa::Cond::B,
                    Expr::param(0),
                ),
                body: vec![kshot_kcc::ir::Stmt::Assign(
                    0,
                    Expr::local(0).add(Expr::c(1)),
                )],
            },
            kshot_kcc::ir::Stmt::Return(Expr::local(0)),
        ]));
        let layout = MemLayout::standard();
        let img = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let mut k = Kernel::boot(img, "kv", layout).unwrap();
        let sym = k.image().symbols.lookup("spin").unwrap().clone();
        let id = k.spawn("t", "spin", &[100000]).unwrap();
        k.run_task_slice(id, 50).unwrap(); // park it mid-function
        let api = OsPatchApi::new();
        let ranges = vec![("spin".to_string(), sym.addr, sym.addr + sym.size)];
        assert!(matches!(
            api.quiescent_check(&k, &ranges),
            Err(BaselineError::Busy { .. })
        ));
        // Run it to completion → quiescent.
        while k.run_task_slice(id, 100_000).unwrap() == kshot_kernel::SliceOutcome::Preempted {}
        api.quiescent_check(&k, &ranges).unwrap();
    }
}
