//! Per-page access attributes.
//!
//! KShot's reserved memory is split into three windows with distinct
//! attributes (paper §V-B): `mem_RW` (read/write, key exchange), `mem_W`
//! (write-only, encrypted patch staging) and `mem_X` (execute-only,
//! decrypted patch text). This module provides the attribute lattice those
//! windows are built from.

use std::fmt;
use std::ops::{BitOr, BitOrAssign};

/// A small set of page permissions: read, write, execute.
///
/// Implemented as a transparent bit set rather than pulling in the
/// `bitflags` crate; the set is tiny and the operations are trivial.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct PageAttrs(u8);

impl PageAttrs {
    /// No access at all.
    pub const NONE: PageAttrs = PageAttrs(0);
    /// Read permission.
    pub const R: PageAttrs = PageAttrs(1);
    /// Write permission.
    pub const W: PageAttrs = PageAttrs(2);
    /// Execute permission.
    pub const X: PageAttrs = PageAttrs(4);
    /// Read + write.
    pub const RW: PageAttrs = PageAttrs(1 | 2);
    /// Read + execute (normal kernel text).
    pub const RX: PageAttrs = PageAttrs(1 | 4);
    /// Read + write + execute.
    pub const RWX: PageAttrs = PageAttrs(1 | 2 | 4);

    /// Whether every permission in `other` is present in `self`.
    #[inline]
    pub fn allows(self, other: PageAttrs) -> bool {
        self.0 & other.0 == other.0
    }

    /// Whether this set contains the read permission.
    #[inline]
    pub fn readable(self) -> bool {
        self.allows(PageAttrs::R)
    }

    /// Whether this set contains the write permission.
    #[inline]
    pub fn writable(self) -> bool {
        self.allows(PageAttrs::W)
    }

    /// Whether this set contains the execute permission.
    #[inline]
    pub fn executable(self) -> bool {
        self.allows(PageAttrs::X)
    }
}

impl BitOr for PageAttrs {
    type Output = PageAttrs;

    fn bitor(self, rhs: PageAttrs) -> PageAttrs {
        PageAttrs(self.0 | rhs.0)
    }
}

impl BitOrAssign for PageAttrs {
    fn bitor_assign(&mut self, rhs: PageAttrs) {
        self.0 |= rhs.0;
    }
}

impl fmt::Debug for PageAttrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}{}{}",
            if self.readable() { 'r' } else { '-' },
            if self.writable() { 'w' } else { '-' },
            if self.executable() { 'x' } else { '-' },
        )
    }
}

impl fmt::Display for PageAttrs {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self, f)
    }
}

/// The kind of access being attempted, used for permission checks and
/// fault reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Access {
    /// Data read.
    Read,
    /// Data write.
    Write,
    /// Instruction fetch.
    Execute,
}

impl Access {
    /// The permission bit this access requires.
    pub fn required(self) -> PageAttrs {
        match self {
            Access::Read => PageAttrs::R,
            Access::Write => PageAttrs::W,
            Access::Execute => PageAttrs::X,
        }
    }
}

impl fmt::Display for Access {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Access::Read => "read",
            Access::Write => "write",
            Access::Execute => "execute",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lattice() {
        assert!(PageAttrs::RWX.allows(PageAttrs::R));
        assert!(PageAttrs::RWX.allows(PageAttrs::RW));
        assert!(PageAttrs::RX.allows(PageAttrs::X));
        assert!(!PageAttrs::R.allows(PageAttrs::W));
        assert!(!PageAttrs::W.allows(PageAttrs::R));
        assert!(PageAttrs::NONE.allows(PageAttrs::NONE));
        assert!(!PageAttrs::NONE.allows(PageAttrs::R));
    }

    #[test]
    fn write_only_window_semantics() {
        // mem_W: writable but neither readable nor executable.
        let w = PageAttrs::W;
        assert!(w.writable());
        assert!(!w.readable());
        assert!(!w.executable());
    }

    #[test]
    fn execute_only_window_semantics() {
        // mem_X: executable but neither readable nor writable.
        let x = PageAttrs::X;
        assert!(x.executable());
        assert!(!x.readable());
        assert!(!x.writable());
    }

    #[test]
    fn or_composition() {
        assert_eq!(PageAttrs::R | PageAttrs::W, PageAttrs::RW);
        let mut a = PageAttrs::R;
        a |= PageAttrs::X;
        assert_eq!(a, PageAttrs::RX);
    }

    #[test]
    fn access_requirements() {
        assert_eq!(Access::Read.required(), PageAttrs::R);
        assert_eq!(Access::Write.required(), PageAttrs::W);
        assert_eq!(Access::Execute.required(), PageAttrs::X);
    }

    #[test]
    fn debug_format() {
        assert_eq!(format!("{:?}", PageAttrs::RX), "r-x");
        assert_eq!(format!("{:?}", PageAttrs::NONE), "---");
        assert_eq!(format!("{}", Access::Write), "write");
    }
}
