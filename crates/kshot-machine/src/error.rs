//! Machine fault types.

use std::error::Error;
use std::fmt;

use crate::attrs::Access;

/// A hardware-level fault raised by the simulated machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MachineError {
    /// The access violated page attributes or SMRAM protection.
    AccessViolation {
        /// Physical address of the faulting access.
        addr: u64,
        /// What kind of access was attempted.
        access: Access,
        /// Human-readable privilege domain that attempted it.
        ctx: &'static str,
        /// Why the hardware rejected it.
        reason: &'static str,
    },
    /// The physical address is outside installed memory.
    OutOfRange {
        /// Faulting address.
        addr: u64,
        /// Length of the access.
        len: usize,
        /// Installed memory size.
        mem_size: u64,
    },
    /// Attempt to reconfigure SMRAM after the firmware locked it.
    SmramLocked,
    /// `RSM` executed while not in System Management Mode.
    NotInSmm,
    /// An SMI was raised while already in SMM (nested SMIs are dropped by
    /// hardware; we surface the program error instead).
    AlreadyInSmm,
    /// SMRAM has not been configured yet.
    SmramUnconfigured,
    /// A deterministic fault-injection plan fired on this write (see
    /// `kshot_machine::inject`). The write did not happen.
    InjectedFault {
        /// Address of the write that was failed.
        addr: u64,
        /// Index of this write among SMM-context writes since arming.
        write_index: u64,
        /// Whether the plan simulated a power loss (a resumable
        /// snapshot was captured before the write).
        power_loss: bool,
    },
}

impl fmt::Display for MachineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MachineError::AccessViolation {
                addr,
                access,
                ctx,
                reason,
            } => write!(
                f,
                "access violation: {ctx} {access} at {addr:#x} denied ({reason})"
            ),
            MachineError::OutOfRange {
                addr,
                len,
                mem_size,
            } => write!(
                f,
                "physical address {addr:#x}+{len} outside installed memory ({mem_size:#x} bytes)"
            ),
            MachineError::SmramLocked => write!(f, "SMRAM configuration is locked"),
            MachineError::NotInSmm => write!(f, "RSM outside of System Management Mode"),
            MachineError::AlreadyInSmm => write!(f, "SMI raised while already in SMM"),
            MachineError::SmramUnconfigured => write!(f, "SMRAM has not been configured"),
            MachineError::InjectedFault {
                addr,
                write_index,
                power_loss,
            } => write!(
                f,
                "injected {} at {addr:#x} (smm write #{write_index})",
                if *power_loss { "power loss" } else { "fault" }
            ),
        }
    }
}

impl Error for MachineError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_nonempty() {
        let errs = [
            MachineError::AccessViolation {
                addr: 0x1000,
                access: Access::Write,
                ctx: "kernel",
                reason: "SMRAM",
            },
            MachineError::OutOfRange {
                addr: 1,
                len: 8,
                mem_size: 0,
            },
            MachineError::SmramLocked,
            MachineError::NotInSmm,
            MachineError::AlreadyInSmm,
            MachineError::SmramUnconfigured,
            MachineError::InjectedFault {
                addr: 0x2000,
                write_index: 3,
                power_loss: true,
            },
        ];
        for e in errs {
            assert!(!e.to_string().is_empty());
        }
    }
}
