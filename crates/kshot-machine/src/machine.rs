//! The machine: privilege-checked memory access and SMM transitions.

use kshot_isa::Inst;

use std::collections::VecDeque;

use crate::attrs::{Access, PageAttrs};
use crate::cpu::{CpuMode, CpuState, SAVE_AREA_LEN};
use crate::error::MachineError;
use crate::flight::{fnv1a, JournalOp, SmiCause, SmiExit, SmiFlightRecord, FLIGHT_RING_CAP};
use crate::inject::{
    AttackKind, InjectionAction, InjectionPlan, InjectionState, InjectionStats, MachineSnapshot,
};
use crate::layout::MemLayout;
use crate::phys::PhysMemory;
use crate::timing::{Clock, CostModel, SimTime};

/// The privilege domain performing a memory access.
///
/// This is the pivot of the whole security simulation: the same physical
/// address behaves differently depending on who touches it, exactly as on
/// real hardware.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AccessCtx {
    /// The OS kernel (or anything running under it, including rootkits).
    /// Subject to page attributes; denied SMRAM.
    Kernel,
    /// The SMM handler. Only valid while the CPU is in SMM; bypasses page
    /// attributes and may touch SMRAM.
    Smm,
    /// Trusted boot firmware / loader, used while constructing the
    /// machine image before the OS runs. Bypasses checks; the threat
    /// model trusts the boot process (paper §III).
    Firmware,
}

impl AccessCtx {
    fn name(self) -> &'static str {
        match self {
            AccessCtx::Kernel => "kernel",
            AccessCtx::Smm => "smm",
            AccessCtx::Firmware => "firmware",
        }
    }
}

/// An observable machine event, kept in a bounded in-machine log so tests
/// and examples can assert on hardware-level behaviour.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// SMI received; CPU entered SMM at the given simulated time.
    SmiEnter(SimTime),
    /// `RSM` executed; CPU resumed Protected Mode.
    Rsm(SimTime),
    /// A faulting access was rejected.
    Fault(MachineError),
}

const MAX_EVENTS: usize = 4096;

/// The simulated target machine.
///
/// # Examples
///
/// ```
/// use kshot_machine::{Machine, MemLayout, AccessCtx};
///
/// let mut m = Machine::new(MemLayout::standard()).unwrap();
/// // The kernel cannot write SMRAM...
/// let smram = m.layout().smram_base;
/// assert!(m.write_bytes(AccessCtx::Kernel, smram, &[0]).is_err());
/// // ...but the SMM handler can, once an SMI is raised.
/// m.raise_smi().unwrap();
/// m.write_bytes(AccessCtx::Smm, smram + 0x1000, &[0xAA]).unwrap();
/// m.rsm().unwrap();
/// ```
#[derive(Debug, Clone)]
pub struct Machine {
    mem: PhysMemory,
    cpu: CpuState,
    mode: CpuMode,
    layout: MemLayout,
    clock: Clock,
    cost: CostModel,
    events: Vec<Event>,
    smi_count: u64,
    inject: Option<InjectionState>,
    /// Dwell-time watchdog: SMM residency budget per SMI, if armed.
    smm_dwell_budget: Option<SimTime>,
    /// Multiplier on the armed budget: a batched SMI applying `k` CVEs
    /// legitimately dwells ~`k`× longer than a single-patch SMI.
    smm_dwell_budget_scale: u64,
    /// Simulated instant the current SMI was delivered (before the
    /// entry cost was charged), while in SMM.
    smm_entered_at: Option<SimTime>,
    /// SMIs whose dwell exceeded the armed budget.
    smm_overbudget: u64,
    /// Longest SMM dwell observed on this machine.
    max_smm_dwell: SimTime,
    /// SMI index + cause of the longest dwell, so anomaly reports can
    /// name the offending SMI rather than just the machine.
    max_smm_dwell_smi: Option<(u64, SmiCause)>,
    /// SMIs torn out of SMM by a warm reset before `RSM`.
    smm_dwell_interrupted: u64,
    /// Completed per-SMI flight records (bounded ring).
    flight: VecDeque<SmiFlightRecord>,
    /// The record of the in-progress SMI, while in SMM.
    flight_open: Option<SmiFlightRecord>,
    /// Completed records dropped once the ring filled.
    flight_dropped: u64,
    /// Cause declared for the *next* SMI (consumed by `raise_smi`).
    pending_smi_cause: Option<SmiCause>,
    /// Sealed handler-image region `(base, len)`, measured at each SMI
    /// entry once set.
    sealed_image: Option<(u64, u64)>,
    /// Armed attack-scenario behaviour, if any (test/CI harnesses only).
    attack: Option<AttackKind>,
}

impl Machine {
    /// Build a machine with the given memory layout; configures and locks
    /// SMRAM as the firmware would during trusted boot.
    ///
    /// # Errors
    ///
    /// Returns a [`MachineError`] if the layout is internally inconsistent.
    pub fn new(layout: MemLayout) -> Result<Self, MachineError> {
        layout.validate().map_err(|_| MachineError::OutOfRange {
            addr: layout.total,
            len: 0,
            mem_size: layout.total,
        })?;
        let mut mem = PhysMemory::new(layout.total);
        mem.configure_smram(layout.smram_base, layout.smram_size)?;
        mem.lock_smram()?;
        // Kernel text defaults to RX; everything else stays RW until the
        // loader/kshot-core sets specific windows.
        mem.set_attrs(
            layout.kernel_text_base,
            layout.kernel_text_size,
            PageAttrs::RX,
        )?;
        Ok(Self {
            mem,
            cpu: CpuState::new(),
            mode: CpuMode::Protected,
            layout,
            clock: Clock::new(),
            cost: CostModel::paper_calibrated(),
            events: Vec::new(),
            smi_count: 0,
            inject: None,
            smm_dwell_budget: None,
            smm_dwell_budget_scale: 1,
            smm_entered_at: None,
            smm_overbudget: 0,
            max_smm_dwell: SimTime::ZERO,
            max_smm_dwell_smi: None,
            smm_dwell_interrupted: 0,
            flight: VecDeque::new(),
            flight_open: None,
            flight_dropped: 0,
            pending_smi_cause: None,
            sealed_image: None,
            attack: None,
        })
    }

    /// The memory layout this machine was built with.
    pub fn layout(&self) -> &MemLayout {
        &self.layout
    }

    /// Current CPU mode.
    pub fn mode(&self) -> CpuMode {
        self.mode
    }

    /// Borrow the CPU state.
    pub fn cpu(&self) -> &CpuState {
        &self.cpu
    }

    /// Mutably borrow the CPU state (the interpreter drives this).
    pub fn cpu_mut(&mut self) -> &mut CpuState {
        &mut self.cpu
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.clock.now()
    }

    /// Advance the simulated clock.
    pub fn charge(&mut self, span: SimTime) {
        self.clock.charge(span);
    }

    /// The calibrated cost model.
    pub fn cost(&self) -> &CostModel {
        &self.cost
    }

    /// Replace the cost model (ablation benchmarks use this).
    pub fn set_cost(&mut self, cost: CostModel) {
        self.cost = cost;
    }

    /// Number of SMIs serviced so far.
    pub fn smi_count(&self) -> u64 {
        self.smi_count
    }

    // ---- SMM dwell-time watchdog ----------------------------------------

    /// Arm (or disarm, with `None`) the SMM dwell-time watchdog. Dwell
    /// is measured on the simulated clock from SMI delivery — *before*
    /// the entry cost is charged — to the completion of `RSM`, so it
    /// covers the mode switches as well as the handler body: the full
    /// interval the OS is paused, which is the quantity the paper's
    /// SMM-cost argument bounds. An SMI whose dwell exceeds the budget
    /// bumps [`Machine::smm_overbudget_count`] and emits a
    /// `machine.smm_overbudget` event.
    pub fn set_smm_dwell_budget(&mut self, budget: Option<SimTime>) {
        self.smm_dwell_budget = budget;
    }

    /// The armed dwell budget, if any.
    pub fn smm_dwell_budget(&self) -> Option<SimTime> {
        self.smm_dwell_budget
    }

    /// Scale the armed dwell budget by `scale` (clamped to at least 1).
    /// A batched SMI applying `k` CVEs does ~`k`× the work of a
    /// single-patch SMI inside one OS pause, so callers arm the
    /// per-patch budget once and scale it by the batch size.
    pub fn set_smm_dwell_budget_scale(&mut self, scale: u64) {
        self.smm_dwell_budget_scale = scale.max(1);
    }

    /// The current dwell-budget multiplier (1 unless batching).
    pub fn smm_dwell_budget_scale(&self) -> u64 {
        self.smm_dwell_budget_scale
    }

    /// How many SMIs exceeded the armed dwell budget.
    pub fn smm_overbudget_count(&self) -> u64 {
        self.smm_overbudget
    }

    /// The longest SMM dwell observed so far ([`SimTime::ZERO`] before
    /// the first completed SMI).
    pub fn max_smm_dwell(&self) -> SimTime {
        self.max_smm_dwell
    }

    /// SMI index and cause of the longest dwell, if any SMI completed.
    pub fn max_smm_dwell_smi(&self) -> Option<(u64, SmiCause)> {
        self.max_smm_dwell_smi
    }

    /// SMIs torn out of SMM by a warm reset before `RSM` completed.
    pub fn smm_dwell_interrupted_count(&self) -> u64 {
        self.smm_dwell_interrupted
    }

    // ---- SMI flight recorder ---------------------------------------------

    /// Declare the cause of the *next* SMI. Consumed by the next
    /// [`Machine::raise_smi`]; undeclared SMIs record
    /// [`SmiCause::Unattributed`].
    pub fn declare_smi_cause(&mut self, cause: SmiCause) {
        self.pending_smi_cause = Some(cause);
    }

    /// Seal the handler image at `[base, base + len)`: every subsequent
    /// SMI entry measures this region (FNV-1a) into its flight record,
    /// so tampering between SMIs is detectable by a detached monitor.
    pub fn seal_handler_image(&mut self, base: u64, len: u64) {
        self.sealed_image = Some((base, len));
    }

    /// The sealed handler-image region, if any.
    pub fn sealed_handler_image(&self) -> Option<(u64, u64)> {
        self.sealed_image
    }

    /// Measure the sealed handler image right now (0 when unsealed or
    /// when the region is out of range).
    pub fn measure_handler_image(&self) -> u64 {
        let Some((base, len)) = self.sealed_image else {
            return 0;
        };
        let mut buf = vec![0u8; len as usize];
        if self.mem.read_raw(base, &mut buf).is_err() {
            return 0;
        }
        fnv1a(&buf)
    }

    /// Completed flight records, oldest first (bounded ring; see
    /// [`Machine::flight_dropped_count`] for overflow).
    pub fn flight_records(&self) -> impl Iterator<Item = &SmiFlightRecord> {
        self.flight.iter()
    }

    /// Clone the completed flight records out of the ring, oldest first.
    pub fn flight_snapshot(&self) -> Vec<SmiFlightRecord> {
        self.flight.iter().cloned().collect()
    }

    /// Completed records dropped because the ring was full.
    pub fn flight_dropped_count(&self) -> u64 {
        self.flight_dropped
    }

    /// Note a journal operation into the in-progress SMI's flight
    /// record (no-op outside an SMI). Called by the SMM handler's
    /// journal primitives in `kshot-core`.
    pub fn flight_note_journal(&mut self, op: JournalOp) {
        if let Some(rec) = self.flight_open.as_mut() {
            rec.note_journal(op);
        }
    }

    /// Arm an attack-scenario behaviour (replacing any armed one). Each
    /// kind fires once, at the point described on [`AttackKind`], and
    /// disarms itself; the flight recorder observes the effects like any
    /// other SMM behaviour, which is how the integrity monitor catches
    /// it.
    pub fn arm_attack(&mut self, attack: AttackKind) {
        self.attack = Some(attack);
    }

    /// The armed attack, if it has not fired yet.
    pub fn armed_attack(&self) -> Option<AttackKind> {
        self.attack
    }

    fn push_flight(&mut self, rec: SmiFlightRecord) {
        if self.flight.len() == FLIGHT_RING_CAP {
            self.flight.pop_front();
            self.flight_dropped += 1;
        }
        self.flight.push_back(rec);
    }

    /// The event log (bounded; oldest entries are dropped).
    pub fn events(&self) -> &[Event] {
        &self.events
    }

    fn log(&mut self, ev: Event) {
        self.emit_telemetry(&ev);
        if self.events.len() == MAX_EVENTS {
            self.events.remove(0);
        }
        self.events.push(ev);
    }

    /// Mirror a machine event into the global telemetry recorder as a
    /// structured event (no-op when telemetry is disabled).
    fn emit_telemetry(&self, ev: &Event) {
        if !kshot_telemetry::is_enabled() {
            return;
        }
        match ev {
            Event::SmiEnter(t) => {
                kshot_telemetry::counter("machine.smi", 1);
                kshot_telemetry::event_at("machine.smi_enter", t.as_ns());
            }
            Event::Rsm(t) => kshot_telemetry::event_at("machine.rsm", t.as_ns()),
            Event::Fault(err) => {
                let sim = self.now().as_ns();
                match err {
                    MachineError::AccessViolation {
                        addr,
                        access,
                        ctx,
                        reason,
                    } => {
                        // The SMRAM lock is the security boundary the
                        // paper's threat model leans on; break it out
                        // from garden-variety attribute violations.
                        let name = if *reason == "SMRAM is inaccessible outside SMM" {
                            "machine.smram_lock_fault"
                        } else {
                            "machine.attr_violation"
                        };
                        kshot_telemetry::counter(name, 1);
                        kshot_telemetry::event_with(name, Some(sim), |f| {
                            f.push(("addr", (*addr).into()));
                            f.push(("access", format!("{access:?}").into()));
                            f.push(("ctx", (*ctx).into()));
                            f.push(("reason", (*reason).into()));
                        });
                    }
                    other => {
                        kshot_telemetry::counter("machine.fault", 1);
                        kshot_telemetry::event_with("machine.fault", Some(sim), |f| {
                            f.push(("error", format!("{other}").into()));
                        });
                    }
                }
            }
        }
    }

    fn check(
        &mut self,
        ctx: AccessCtx,
        addr: u64,
        len: usize,
        access: Access,
    ) -> Result<(), MachineError> {
        let result = self.check_inner(ctx, addr, len, access);
        if let Err(e) = &result {
            self.log(Event::Fault(e.clone()));
        }
        result
    }

    fn check_inner(
        &self,
        ctx: AccessCtx,
        addr: u64,
        len: usize,
        access: Access,
    ) -> Result<(), MachineError> {
        match ctx {
            AccessCtx::Firmware => Ok(()),
            AccessCtx::Smm => {
                // SMM context is only meaningful while the CPU is in SMM.
                if self.mode != CpuMode::Smm {
                    return Err(MachineError::AccessViolation {
                        addr,
                        access,
                        ctx: ctx.name(),
                        reason: "SMM access outside System Management Mode",
                    });
                }
                Ok(())
            }
            AccessCtx::Kernel => {
                if let Some(w) = self.mem.smram() {
                    if w.overlaps(addr, len) {
                        return Err(MachineError::AccessViolation {
                            addr,
                            access,
                            ctx: ctx.name(),
                            reason: "SMRAM is inaccessible outside SMM",
                        });
                    }
                }
                self.mem.check_attrs(addr, len, access)
            }
        }
    }

    /// Read `out.len()` bytes at `addr` under privilege `ctx`.
    ///
    /// # Errors
    ///
    /// Faults on permission violations or out-of-range addresses.
    pub fn read_bytes(
        &mut self,
        ctx: AccessCtx,
        addr: u64,
        out: &mut [u8],
    ) -> Result<(), MachineError> {
        self.check(ctx, addr, out.len(), Access::Read)?;
        self.mem.read_raw(addr, out)
    }

    /// Write `data` at `addr` under privilege `ctx`.
    ///
    /// # Errors
    ///
    /// Faults on permission violations or out-of-range addresses.
    pub fn write_bytes(
        &mut self,
        ctx: AccessCtx,
        addr: u64,
        data: &[u8],
    ) -> Result<(), MachineError> {
        self.check(ctx, addr, data.len(), Access::Write)?;
        self.consult_injector(ctx, addr, data.len())?;
        self.mem.write_raw(addr, data)?;
        // Flight recorder: landed SMM-context writes join the current
        // SMI's write-set (faulted writes above never reach here).
        if ctx == AccessCtx::Smm {
            if let Some(rec) = self.flight_open.as_mut() {
                rec.note_write(addr, data.len() as u64);
            }
        }
        Ok(())
    }

    /// Ask the armed injection plan (if any) whether this write faults.
    fn consult_injector(
        &mut self,
        ctx: AccessCtx,
        addr: u64,
        len: usize,
    ) -> Result<(), MachineError> {
        let Some(state) = self.inject.as_mut() else {
            return Ok(());
        };
        let is_smm = ctx == AccessCtx::Smm;
        let write_index = state.stats().smm_writes_seen;
        let Some(action) = state.on_write(is_smm, addr, len) else {
            return Ok(());
        };
        let power_loss = action == InjectionAction::PowerLoss;
        if power_loss {
            // Snapshot the machine *before* the write lands — the state
            // a warm reboot would find.
            let snap = self.snapshot();
            // `snapshot` only borrows immutably, so the plan is still
            // armed here.
            self.inject
                .as_mut()
                .expect("armed above")
                .store_snapshot(snap);
            kshot_telemetry::counter("machine.power_loss", 1);
        }
        kshot_telemetry::counter("machine.injected_fault", 1);
        let err = MachineError::InjectedFault {
            addr,
            write_index,
            power_loss,
        };
        self.log(Event::Fault(err.clone()));
        Err(err)
    }

    // ---- fault injection --------------------------------------------------

    /// Arm a deterministic fault-injection plan, replacing any armed one
    /// (its counters restart from zero).
    pub fn arm_injection(&mut self, plan: InjectionPlan) {
        self.inject = Some(InjectionState::new(plan));
    }

    /// Disarm the current plan, returning its observation counters.
    pub fn disarm_injection(&mut self) -> Option<InjectionStats> {
        self.inject.take().map(|s| s.stats())
    }

    /// Counters of the armed plan, if any.
    pub fn injection_stats(&self) -> Option<InjectionStats> {
        self.inject.as_ref().map(|s| s.stats())
    }

    /// The snapshot captured by a fired power-loss injection, if any
    /// (taking it leaves the plan armed but snapshot-less).
    pub fn take_power_loss_snapshot(&mut self) -> Option<MachineSnapshot> {
        self.inject.as_mut().and_then(|s| s.take_snapshot())
    }

    /// Capture a resumable copy of the full machine state. The copy
    /// carries no armed injection plan.
    pub fn snapshot(&self) -> MachineSnapshot {
        let mut copy = self.clone();
        copy.inject = None;
        MachineSnapshot {
            inner: Box::new(copy),
        }
    }

    /// Resume from a snapshot as after a warm reset: RAM (including
    /// SMRAM and its lock) is the snapshot's, the CPU restarts in
    /// Protected Mode with a cleared register file, and any armed
    /// injection plan is forgotten. The simulated clock continues from
    /// the snapshot instant.
    pub fn restore_from_snapshot(&mut self, snap: MachineSnapshot) {
        // A warm reset never completes the interrupted SMI: close its
        // flight record with `Interrupted` (dwell measured on the *live*
        // clock up to the reset instant) so the monitor can tell "never
        // exited SMM" from "fast SMI", and count it.
        let reset_at = self.now();
        let interrupted = self.flight_open.take().map(|mut rec| {
            rec.dwell = self
                .smm_entered_at
                .map_or(SimTime::ZERO, |entered| reset_at.saturating_sub(entered));
            rec.exit = SmiExit::Interrupted;
            rec
        });
        *self = *snap.inner;
        self.mode = CpuMode::Protected;
        self.cpu = CpuState::new();
        self.inject = None;
        // The half-open dwell interval is discarded rather than
        // attributed to the next RSM (the snapshot may also have been
        // taken mid-SMI, so clear its copies too).
        self.smm_entered_at = None;
        self.flight_open = None;
        if let Some(rec) = interrupted {
            self.smm_dwell_interrupted += 1;
            kshot_telemetry::counter("machine.smm_dwell_interrupted", 1);
            self.push_flight(rec);
        }
        kshot_telemetry::counter("machine.snapshot_resume", 1);
    }

    /// Read a little-endian `u64` under privilege `ctx`.
    pub fn read_u64(&mut self, ctx: AccessCtx, addr: u64) -> Result<u64, MachineError> {
        let mut b = [0u8; 8];
        self.read_bytes(ctx, addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }

    /// Write a little-endian `u64` under privilege `ctx`.
    pub fn write_u64(&mut self, ctx: AccessCtx, addr: u64, v: u64) -> Result<(), MachineError> {
        self.write_bytes(ctx, addr, &v.to_le_bytes())
    }

    /// Fetch and decode the instruction at `addr` under privilege `ctx`,
    /// enforcing execute permission.
    ///
    /// # Errors
    ///
    /// Faults on permission violations; propagates decode errors as an
    /// access violation (executing non-code is a fault on this machine).
    pub fn fetch(&mut self, ctx: AccessCtx, addr: u64) -> Result<(Inst, usize), MachineError> {
        // Fetch up to MAX_INST_LEN bytes but tolerate a shorter tail.
        let avail = (self.mem.size().saturating_sub(addr)) as usize;
        let len = avail.min(kshot_isa::MAX_INST_LEN);
        if len == 0 {
            return Err(MachineError::OutOfRange {
                addr,
                len: 1,
                mem_size: self.mem.size(),
            });
        }
        let mut buf = [0u8; kshot_isa::MAX_INST_LEN];
        self.check(ctx, addr, 1, Access::Execute)?;
        self.mem.read_raw(addr, &mut buf[..len])?;
        let (inst, inst_len) =
            Inst::decode(&buf[..len], 0).map_err(|_| MachineError::AccessViolation {
                addr,
                access: Access::Execute,
                ctx: ctx.name(),
                reason: "undecodable instruction",
            })?;
        // The whole encoding must be executable (a jmp spanning into a
        // non-X page faults on real hardware too).
        self.check(ctx, addr, inst_len, Access::Execute)?;
        Ok((inst, inst_len))
    }

    /// Raw, check-free view of memory. Only the trusted introspection and
    /// loader paths use this; guest-reachable code must go through the
    /// checked accessors.
    pub fn phys(&self) -> &PhysMemory {
        &self.mem
    }

    /// Raw, check-free mutable view of memory (loader/firmware only).
    pub fn phys_mut(&mut self) -> &mut PhysMemory {
        &mut self.mem
    }

    /// Set page attributes on a range (performed by the kernel's
    /// `paging_init` analogue or by firmware).
    ///
    /// # Errors
    ///
    /// Propagates range errors from the attribute table.
    pub fn set_page_attrs(
        &mut self,
        base: u64,
        size: u64,
        attrs: PageAttrs,
    ) -> Result<(), MachineError> {
        self.mem.set_attrs(base, size, attrs)
    }

    // ---- SMM transitions -------------------------------------------------

    /// Deliver a System Management Interrupt: the hardware saves the CPU
    /// state into the SMRAM save area and switches to SMM.
    ///
    /// # Errors
    ///
    /// [`MachineError::AlreadyInSmm`] if nested.
    pub fn raise_smi(&mut self) -> Result<(), MachineError> {
        if self.mode == CpuMode::Smm {
            return Err(MachineError::AlreadyInSmm);
        }
        let save = self.cpu.to_save_area();
        // The save area lives at the base of SMRAM.
        let base = self.layout.smram_base;
        self.mem.write_raw(base, &save)?;
        self.mode = CpuMode::Smm;
        self.smi_count += 1;
        // Dwell measurement starts at delivery, before the entry cost,
        // so the switch-in/switch-out overheads count against the
        // budget too.
        self.smm_entered_at = Some(self.now());
        let entry_cost = self.cost.smm_entry;
        self.charge(entry_cost);
        let now = self.now();
        self.log(Event::SmiEnter(now));
        let cause = self
            .pending_smi_cause
            .take()
            .unwrap_or(SmiCause::Unattributed);
        // A tamper attack models a pre-SMI scribble over the sealed
        // handler image (e.g. a bootkit): it must land *before* the
        // entry measurement so the measurement is what catches it.
        if self.attack == Some(AttackKind::TamperHandlerImage) {
            if let Some((base, _)) = self.sealed_image {
                let mut b = [0u8; 1];
                if self.mem.read_raw(base, &mut b).is_ok() {
                    let _ = self.mem.write_raw(base, &[b[0] ^ 0xFF]);
                }
                self.attack = None;
            }
        }
        let measurement = self.measure_handler_image();
        self.flight_open = Some(SmiFlightRecord::open(self.smi_count, cause, measurement));
        // Rogue-write and dwell-exhaustion attacks fire inside the SMI,
        // after the record opened, so the recorder observes them.
        match self.attack {
            Some(AttackKind::RogueWrite { addr, len }) => {
                self.attack = None;
                let data = vec![0xEE; (len as usize).clamp(1, 64)];
                let _ = self.write_bytes(AccessCtx::Smm, addr, &data);
            }
            Some(AttackKind::DwellExhaustion { extra }) => {
                self.attack = None;
                self.charge(extra);
            }
            _ => {}
        }
        Ok(())
    }

    /// Execute `RSM`: restore the saved CPU state from SMRAM and resume
    /// Protected Mode.
    ///
    /// # Errors
    ///
    /// [`MachineError::NotInSmm`] if the CPU is not in SMM.
    pub fn rsm(&mut self) -> Result<(), MachineError> {
        if self.mode != CpuMode::Smm {
            return Err(MachineError::NotInSmm);
        }
        let mut save = [0u8; SAVE_AREA_LEN];
        self.mem.read_raw(self.layout.smram_base, &mut save)?;
        self.cpu = CpuState::from_save_area(&save);
        self.mode = CpuMode::Protected;
        let exit_cost = self.cost.smm_exit;
        self.charge(exit_cost);
        let now = self.now();
        // A journal-abuse attack appends bogus entry acknowledgements
        // after the handler closed its window; it waits for an SMI that
        // actually journaled so the abuse lands behind a real Commit.
        if let Some(AttackKind::JournalAbuse { extra_entries }) = self.attack {
            if let Some(rec) = self.flight_open.as_mut() {
                if rec
                    .journal
                    .iter()
                    .any(|op| matches!(op, JournalOp::Begin { .. }))
                {
                    rec.note_journal(JournalOp::Entries {
                        count: extra_entries,
                    });
                    self.attack = None;
                }
            }
        }
        if let Some(entered) = self.smm_entered_at.take() {
            let dwell = now.saturating_sub(entered);
            if dwell > self.max_smm_dwell {
                self.max_smm_dwell = dwell;
                self.max_smm_dwell_smi = self
                    .flight_open
                    .as_ref()
                    .map(|rec| (rec.index, rec.cause))
                    .or(Some((self.smi_count, SmiCause::Unattributed)));
            }
            if let Some(rec) = self.flight_open.take() {
                let mut rec = rec;
                rec.dwell = dwell;
                rec.exit = SmiExit::Ok;
                self.push_flight(rec);
            }
            kshot_telemetry::sketch_observe("machine.smm_dwell_ns", dwell.as_ns());
            if let Some(budget) = self.smm_dwell_budget {
                let effective_ns = budget.as_ns().saturating_mul(self.smm_dwell_budget_scale);
                if dwell.as_ns() > effective_ns {
                    self.smm_overbudget += 1;
                    kshot_telemetry::counter("machine.smm_overbudget", 1);
                    kshot_telemetry::event_with("machine.smm_overbudget", Some(now.as_ns()), |f| {
                        f.push(("dwell_ns", dwell.as_ns().into()));
                        f.push(("budget_ns", effective_ns.into()));
                    });
                }
            }
        }
        self.log(Event::Rsm(now));
        Ok(())
    }

    /// Address of the SMM handler's private scratch area inside SMRAM
    /// (immediately after the CPU save area).
    pub fn smram_scratch_base(&self) -> u64 {
        self.layout.smram_base + SAVE_AREA_LEN as u64
    }

    /// Size of the SMM handler's private scratch area.
    pub fn smram_scratch_size(&self) -> u64 {
        self.layout.smram_size - SAVE_AREA_LEN as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_isa::Reg;

    fn machine() -> Machine {
        Machine::new(MemLayout::standard()).unwrap()
    }

    #[test]
    fn kernel_cannot_touch_smram() {
        let mut m = machine();
        let base = m.layout().smram_base;
        let mut buf = [0u8; 1];
        assert!(matches!(
            m.read_bytes(AccessCtx::Kernel, base, &mut buf),
            Err(MachineError::AccessViolation { .. })
        ));
        assert!(m.write_bytes(AccessCtx::Kernel, base + 5, &[1]).is_err());
        // Straddling writes that end inside SMRAM also fault.
        assert!(m
            .write_bytes(AccessCtx::Kernel, base - 4, &[0u8; 8])
            .is_err());
        // Faults are logged.
        assert!(m.events().iter().any(|e| matches!(e, Event::Fault(_))));
    }

    #[test]
    fn smm_ctx_requires_smm_mode() {
        let mut m = machine();
        let base = m.layout().smram_base;
        assert!(m.write_bytes(AccessCtx::Smm, base, &[1]).is_err());
        m.raise_smi().unwrap();
        m.write_bytes(AccessCtx::Smm, base + 0x800, &[1]).unwrap();
        let mut buf = [0u8; 1];
        m.read_bytes(AccessCtx::Smm, base + 0x800, &mut buf)
            .unwrap();
        assert_eq!(buf, [1]);
    }

    #[test]
    fn smm_bypasses_page_attrs() {
        let mut m = machine();
        let text = m.layout().kernel_text_base;
        // Kernel cannot write its own (RX) text…
        assert!(m.write_bytes(AccessCtx::Kernel, text, &[0x90]).is_err());
        // …but SMM can (this is how patching works).
        m.raise_smi().unwrap();
        m.write_bytes(AccessCtx::Smm, text, &[0x90]).unwrap();
    }

    #[test]
    fn smi_saves_and_rsm_restores_cpu_state() {
        let mut m = machine();
        m.cpu_mut().set(Reg::R7, 0x1234);
        m.cpu_mut().pc = 0xABCD;
        m.cpu_mut().flags = Some((5, 9));
        m.raise_smi().unwrap();
        // The SMM handler may clobber registers freely…
        m.cpu_mut().set(Reg::R7, 0);
        m.cpu_mut().pc = 0;
        m.cpu_mut().flags = None;
        m.rsm().unwrap();
        // …hardware restore brings back the pre-SMI state.
        assert_eq!(m.cpu().get(Reg::R7), 0x1234);
        assert_eq!(m.cpu().pc, 0xABCD);
        assert_eq!(m.cpu().flags, Some((5, 9)));
        assert_eq!(m.mode(), CpuMode::Protected);
        assert_eq!(m.smi_count(), 1);
    }

    #[test]
    fn nested_smi_and_spurious_rsm_fault() {
        let mut m = machine();
        m.raise_smi().unwrap();
        assert_eq!(m.raise_smi(), Err(MachineError::AlreadyInSmm));
        m.rsm().unwrap();
        assert_eq!(m.rsm(), Err(MachineError::NotInSmm));
    }

    #[test]
    fn smm_transitions_charge_calibrated_time() {
        let mut m = machine();
        let before = m.now();
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        let elapsed = m.now() - before;
        // Paper: 12.9µs entry + 21.7µs exit = 34.6µs.
        assert_eq!(elapsed.as_ns(), 12_900 + 21_700);
    }

    #[test]
    fn fetch_requires_execute_permission() {
        let mut m = machine();
        let text = m.layout().kernel_text_base;
        // Load a ret via firmware, fetch as kernel: OK.
        m.write_bytes(AccessCtx::Firmware, text, &[0xC3]).unwrap();
        let (inst, len) = m.fetch(AccessCtx::Kernel, text).unwrap();
        assert_eq!(len, 1);
        assert_eq!(inst, kshot_isa::Inst::Ret);
        // Data pages are not executable.
        let data = m.layout().kernel_data_base;
        m.write_bytes(AccessCtx::Firmware, data, &[0xC3]).unwrap();
        assert!(m.fetch(AccessCtx::Kernel, data).is_err());
    }

    #[test]
    fn fetch_rejects_garbage() {
        let mut m = machine();
        let text = m.layout().kernel_text_base;
        m.write_bytes(AccessCtx::Firmware, text, &[0xAB]).unwrap();
        let err = m.fetch(AccessCtx::Kernel, text).unwrap_err();
        assert!(matches!(err, MachineError::AccessViolation { reason, .. }
            if reason == "undecodable instruction"));
    }

    #[test]
    fn u64_roundtrip() {
        let mut m = machine();
        let data = m.layout().kernel_data_base;
        m.write_u64(AccessCtx::Kernel, data, 0xfeed_f00d).unwrap();
        assert_eq!(m.read_u64(AccessCtx::Kernel, data).unwrap(), 0xfeed_f00d);
    }

    #[test]
    fn event_log_is_bounded() {
        let mut m = machine();
        let smram = m.layout().smram_base;
        for _ in 0..(super::MAX_EVENTS + 10) {
            let _ = m.write_bytes(AccessCtx::Kernel, smram, &[0]);
        }
        assert_eq!(m.events().len(), super::MAX_EVENTS);
    }

    #[test]
    fn dwell_watchdog_measures_entry_to_rsm() {
        let mut m = machine();
        // A bare SMI → RSM dwell is exactly the two mode-switch costs.
        let expected = m.cost().smm_entry + m.cost().smm_exit;
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        assert_eq!(m.max_smm_dwell(), expected);
        // No budget armed: nothing flagged.
        assert_eq!(m.smm_overbudget_count(), 0);
    }

    #[test]
    fn dwell_watchdog_flags_only_overbudget_smis() {
        let mut m = machine();
        let switch = m.cost().smm_entry + m.cost().smm_exit;
        // Budget admits the bare switches plus 1µs of handler work.
        m.set_smm_dwell_budget(Some(switch + SimTime::from_us(1)));
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        assert_eq!(m.smm_overbudget_count(), 0);
        // A slow handler blows the budget.
        m.raise_smi().unwrap();
        m.charge(SimTime::from_us(2));
        m.rsm().unwrap();
        assert_eq!(m.smm_overbudget_count(), 1);
        assert_eq!(m.max_smm_dwell(), switch + SimTime::from_us(2));
        // Disarming stops flagging but keeps measuring.
        m.set_smm_dwell_budget(None);
        m.raise_smi().unwrap();
        m.charge(SimTime::from_ms(1));
        m.rsm().unwrap();
        assert_eq!(m.smm_overbudget_count(), 1);
        assert!(m.max_smm_dwell() > SimTime::from_ms(1));
    }

    #[test]
    fn dwell_budget_scale_admits_batched_smis() {
        let mut m = machine();
        let switch = m.cost().smm_entry + m.cost().smm_exit;
        // Per-patch budget admits the switches plus 1µs of handler work.
        m.set_smm_dwell_budget(Some(switch + SimTime::from_us(1)));
        // 3µs of work blows the per-patch budget...
        m.raise_smi().unwrap();
        m.charge(SimTime::from_us(3));
        m.rsm().unwrap();
        assert_eq!(m.smm_overbudget_count(), 1);
        // ...but is within budget for a 4-CVE batched SMI.
        m.set_smm_dwell_budget_scale(4);
        assert_eq!(m.smm_dwell_budget_scale(), 4);
        m.raise_smi().unwrap();
        m.charge(SimTime::from_us(3));
        m.rsm().unwrap();
        assert_eq!(m.smm_overbudget_count(), 1);
        // Scale clamps to at least 1.
        m.set_smm_dwell_budget_scale(0);
        assert_eq!(m.smm_dwell_budget_scale(), 1);
    }

    #[test]
    fn dwell_watchdog_discards_interval_across_warm_reset() {
        let mut m = machine();
        m.set_smm_dwell_budget(Some(SimTime::from_ns(1)));
        m.raise_smi().unwrap();
        m.charge(SimTime::from_us(5));
        let snap = m.snapshot();
        // The snapshot was taken mid-SMI; restoring must not attribute
        // the half-open interval to a later RSM.
        m.restore_from_snapshot(snap);
        assert_eq!(m.mode(), CpuMode::Protected);
        // The torn SMI is counted and closed with an Interrupted flight
        // record whose dwell covers delivery up to the reset instant.
        assert_eq!(m.smm_dwell_interrupted_count(), 1);
        let torn = m.flight_records().last().unwrap();
        assert_eq!(torn.exit, crate::flight::SmiExit::Interrupted);
        assert_eq!(torn.dwell, m.cost().smm_entry + SimTime::from_us(5));
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        // Only the post-restore SMI is measured (and flagged, with the
        // 1ns budget).
        assert_eq!(m.smm_overbudget_count(), 1);
    }

    #[test]
    fn flight_records_capture_cause_writes_and_dwell() {
        use crate::flight::{JournalOp, SmiCause, SmiExit, WriteRange};
        let mut m = machine();
        let scratch = m.smram_scratch_base();
        m.declare_smi_cause(SmiCause::Patch);
        m.raise_smi().unwrap();
        m.write_bytes(AccessCtx::Smm, scratch, &[1, 2, 3, 4])
            .unwrap();
        m.write_bytes(AccessCtx::Smm, scratch + 4, &[5, 6]).unwrap(); // coalesces
        m.flight_note_journal(JournalOp::Commit);
        m.charge(SimTime::from_us(1));
        m.rsm().unwrap();
        assert_eq!(m.flight_records().count(), 1);
        let rec = m.flight_records().next().unwrap();
        assert_eq!(rec.index, 1);
        assert_eq!(rec.cause, SmiCause::Patch);
        assert_eq!(rec.exit, SmiExit::Ok);
        assert_eq!(rec.measurement, 0, "no image sealed yet");
        assert_eq!(
            rec.writes,
            vec![WriteRange {
                base: scratch,
                len: 6
            }]
        );
        assert_eq!(rec.journal, vec![JournalOp::Commit]);
        let switch = m.cost().smm_entry + m.cost().smm_exit;
        assert_eq!(rec.dwell, switch + SimTime::from_us(1));
        assert_eq!(rec.dwell, m.max_smm_dwell());
        assert_eq!(m.max_smm_dwell_smi(), Some((1, SmiCause::Patch)));
        // The cause declaration is one-shot: the next SMI is
        // unattributed, and the hardware save-area write never pollutes
        // the write-set.
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        let rec = m.flight_records().last().unwrap();
        assert_eq!(rec.cause, SmiCause::Unattributed);
        assert!(rec.writes.is_empty());
    }

    #[test]
    fn sealed_image_is_measured_and_tamper_changes_it() {
        use crate::flight::fnv1a;
        let mut m = machine();
        let base = m.smram_scratch_base() + 0x2000;
        let image = [0xAB; 64];
        m.raise_smi().unwrap();
        m.write_bytes(AccessCtx::Smm, base, &image).unwrap();
        m.seal_handler_image(base, image.len() as u64);
        m.rsm().unwrap();
        let expected = fnv1a(&image);
        assert_eq!(m.measure_handler_image(), expected);
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        assert_eq!(m.flight_records().last().unwrap().measurement, expected);
        // Tamper fires before the next entry measurement, then disarms.
        m.arm_attack(AttackKind::TamperHandlerImage);
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        let tampered = m.flight_records().last().unwrap().measurement;
        assert_ne!(tampered, expected);
        assert_eq!(m.armed_attack(), None);
        // Subsequent SMIs keep measuring the tampered image.
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        assert_eq!(m.flight_records().last().unwrap().measurement, tampered);
    }

    #[test]
    fn rogue_write_and_dwell_attacks_are_observable() {
        use crate::flight::WriteRange;
        let mut m = machine();
        m.arm_attack(AttackKind::RogueWrite { addr: 0x40, len: 8 });
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        let rec = m.flight_records().last().unwrap();
        assert!(rec.writes.contains(&WriteRange { base: 0x40, len: 8 }));
        let baseline = rec.dwell;
        m.arm_attack(AttackKind::DwellExhaustion {
            extra: SimTime::from_ms(10),
        });
        m.raise_smi().unwrap();
        m.rsm().unwrap();
        let rec = m.flight_records().last().unwrap();
        assert_eq!(rec.dwell, baseline + SimTime::from_ms(10));
    }
}
