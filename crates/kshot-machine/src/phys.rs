//! Flat physical memory with a per-page attribute table.

use crate::attrs::{Access, PageAttrs};
use crate::error::MachineError;

/// Page size in bytes (matches x86 4 KiB pages).
pub const PAGE_SIZE: u64 = 4096;

/// Installed physical memory plus its page attribute table and the SMRAM
/// window descriptor.
///
/// `PhysMemory` itself performs *raw* bounds-checked access; permission
/// checks live in [`crate::Machine`], which knows the privilege context.
#[derive(Debug, Clone)]
pub struct PhysMemory {
    bytes: Vec<u8>,
    attrs: Vec<PageAttrs>,
    smram: Option<SmramWindow>,
}

/// The SMRAM range and its lock bit (D_LCK analogue).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmramWindow {
    /// Base physical address (page-aligned).
    pub base: u64,
    /// Size in bytes (page-aligned).
    pub size: u64,
    /// Whether the firmware has locked the configuration.
    pub locked: bool,
}

impl SmramWindow {
    /// Whether `addr..addr+len` overlaps this window.
    pub fn overlaps(&self, addr: u64, len: usize) -> bool {
        let end = addr.saturating_add(len as u64);
        addr < self.base + self.size && end > self.base
    }
}

impl PhysMemory {
    /// Install `size` bytes of zeroed RAM with default kernel-owned
    /// `RW` attributes on every page.
    ///
    /// # Panics
    ///
    /// Panics if `size` is not page-aligned (a configuration error).
    pub fn new(size: u64) -> Self {
        assert_eq!(size % PAGE_SIZE, 0, "memory size must be page aligned");
        let pages = (size / PAGE_SIZE) as usize;
        Self {
            bytes: vec![0; size as usize],
            attrs: vec![PageAttrs::RW; pages],
            smram: None,
        }
    }

    /// Installed memory size in bytes.
    pub fn size(&self) -> u64 {
        self.bytes.len() as u64
    }

    /// The SMRAM window, if configured.
    pub fn smram(&self) -> Option<SmramWindow> {
        self.smram
    }

    /// Configure the SMRAM window. May only happen while unlocked.
    ///
    /// # Errors
    ///
    /// [`MachineError::SmramLocked`] if already locked;
    /// [`MachineError::OutOfRange`] if the window exceeds installed memory.
    pub fn configure_smram(&mut self, base: u64, size: u64) -> Result<(), MachineError> {
        if let Some(w) = self.smram {
            if w.locked {
                return Err(MachineError::SmramLocked);
            }
        }
        self.check_range(base, size as usize)?;
        self.smram = Some(SmramWindow {
            base: base - base % PAGE_SIZE,
            size: size.div_ceil(PAGE_SIZE) * PAGE_SIZE,
            locked: false,
        });
        Ok(())
    }

    /// Lock the SMRAM configuration (firmware D_LCK). Idempotent.
    ///
    /// # Errors
    ///
    /// [`MachineError::SmramUnconfigured`] if SMRAM was never configured.
    pub fn lock_smram(&mut self) -> Result<(), MachineError> {
        match &mut self.smram {
            Some(w) => {
                w.locked = true;
                Ok(())
            }
            None => Err(MachineError::SmramUnconfigured),
        }
    }

    /// Set page attributes for the page-aligned range `base..base+size`.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfRange`] for ranges beyond installed memory.
    pub fn set_attrs(
        &mut self,
        base: u64,
        size: u64,
        attrs: PageAttrs,
    ) -> Result<(), MachineError> {
        self.check_range(base, size as usize)?;
        let first = (base / PAGE_SIZE) as usize;
        let last = (base + size).div_ceil(PAGE_SIZE) as usize;
        for page in &mut self.attrs[first..last] {
            *page = attrs;
        }
        Ok(())
    }

    /// Attributes of the page containing `addr`.
    ///
    /// # Errors
    ///
    /// [`MachineError::OutOfRange`] if `addr` is beyond installed memory.
    pub fn attrs_at(&self, addr: u64) -> Result<PageAttrs, MachineError> {
        self.check_range(addr, 1)?;
        Ok(self.attrs[(addr / PAGE_SIZE) as usize])
    }

    /// Verify that every page overlapped by `addr..addr+len` permits
    /// `access`.
    ///
    /// # Errors
    ///
    /// [`MachineError::AccessViolation`] naming the first offending page.
    pub fn check_attrs(&self, addr: u64, len: usize, access: Access) -> Result<(), MachineError> {
        self.check_range(addr, len)?;
        if len == 0 {
            return Ok(());
        }
        let first = addr / PAGE_SIZE;
        let last = (addr + len as u64 - 1) / PAGE_SIZE;
        for page in first..=last {
            if !self.attrs[page as usize].allows(access.required()) {
                return Err(MachineError::AccessViolation {
                    addr: page * PAGE_SIZE,
                    access,
                    ctx: "kernel",
                    reason: "page attributes",
                });
            }
        }
        Ok(())
    }

    fn check_range(&self, addr: u64, len: usize) -> Result<(), MachineError> {
        let end = addr.checked_add(len as u64);
        match end {
            Some(end) if end <= self.size() => Ok(()),
            _ => Err(MachineError::OutOfRange {
                addr,
                len,
                mem_size: self.size(),
            }),
        }
    }

    /// Raw read with bounds check only (no permission check).
    pub fn read_raw(&self, addr: u64, out: &mut [u8]) -> Result<(), MachineError> {
        self.check_range(addr, out.len())?;
        out.copy_from_slice(&self.bytes[addr as usize..addr as usize + out.len()]);
        Ok(())
    }

    /// Raw write with bounds check only (no permission check).
    pub fn write_raw(&mut self, addr: u64, data: &[u8]) -> Result<(), MachineError> {
        self.check_range(addr, data.len())?;
        self.bytes[addr as usize..addr as usize + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Raw borrow of a memory slice (used by the disassembler-based
    /// introspection paths; bounds-checked).
    pub fn slice(&self, addr: u64, len: usize) -> Result<&[u8], MachineError> {
        self.check_range(addr, len)?;
        Ok(&self.bytes[addr as usize..addr as usize + len])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn raw_read_write_roundtrip() {
        let mut m = PhysMemory::new(2 * PAGE_SIZE);
        m.write_raw(100, &[1, 2, 3]).unwrap();
        let mut buf = [0u8; 3];
        m.read_raw(100, &mut buf).unwrap();
        assert_eq!(buf, [1, 2, 3]);
    }

    #[test]
    fn out_of_range_faults() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        assert!(matches!(
            m.write_raw(PAGE_SIZE - 1, &[0, 0]),
            Err(MachineError::OutOfRange { .. })
        ));
        let mut buf = [0u8; 1];
        assert!(m.read_raw(PAGE_SIZE, &mut buf).is_err());
        // Address wrap-around must not panic or pass.
        assert!(m.read_raw(u64::MAX, &mut buf).is_err());
    }

    #[test]
    fn attrs_apply_per_page() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        m.set_attrs(PAGE_SIZE, PAGE_SIZE, PageAttrs::X).unwrap();
        assert_eq!(m.attrs_at(0).unwrap(), PageAttrs::RW);
        assert_eq!(m.attrs_at(PAGE_SIZE).unwrap(), PageAttrs::X);
        assert_eq!(m.attrs_at(2 * PAGE_SIZE).unwrap(), PageAttrs::RW);
    }

    #[test]
    fn check_attrs_spanning_pages() {
        let mut m = PhysMemory::new(4 * PAGE_SIZE);
        m.set_attrs(PAGE_SIZE, PAGE_SIZE, PageAttrs::R).unwrap();
        // A write crossing from RW page 0 into R page 1 faults.
        let err = m.check_attrs(PAGE_SIZE - 8, 16, Access::Write).unwrap_err();
        assert!(matches!(err, MachineError::AccessViolation { addr, .. } if addr == PAGE_SIZE));
        // A read over the same range is fine.
        m.check_attrs(PAGE_SIZE - 8, 16, Access::Read).unwrap();
        // Zero-length access never faults on attributes.
        m.check_attrs(PAGE_SIZE, 0, Access::Write).unwrap();
    }

    #[test]
    fn smram_configure_and_lock() {
        let mut m = PhysMemory::new(16 * PAGE_SIZE);
        m.configure_smram(8 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        assert!(!m.smram().unwrap().locked);
        // Reconfiguration allowed before lock.
        m.configure_smram(4 * PAGE_SIZE, 4 * PAGE_SIZE).unwrap();
        m.lock_smram().unwrap();
        assert!(m.smram().unwrap().locked);
        assert_eq!(
            m.configure_smram(0, PAGE_SIZE),
            Err(MachineError::SmramLocked)
        );
    }

    #[test]
    fn lock_unconfigured_smram_fails() {
        let mut m = PhysMemory::new(PAGE_SIZE);
        assert_eq!(m.lock_smram(), Err(MachineError::SmramUnconfigured));
    }

    #[test]
    fn smram_overlap_detection() {
        let w = SmramWindow {
            base: 0x1000,
            size: 0x1000,
            locked: true,
        };
        assert!(w.overlaps(0x1000, 1));
        assert!(w.overlaps(0x1fff, 1));
        assert!(w.overlaps(0x0fff, 2));
        assert!(!w.overlaps(0x0fff, 1));
        assert!(!w.overlaps(0x2000, 16));
    }

    #[test]
    #[should_panic(expected = "page aligned")]
    fn unaligned_size_panics() {
        let _ = PhysMemory::new(100);
    }
}
