//! CPU register file, execution mode, and the SMRAM save area.

use kshot_isa::Reg;

/// The CPU's current execution mode.
///
/// The simulation models the two modes KShot cares about: normal
/// protected-mode kernel execution, and System Management Mode entered via
/// SMI (paper §II-B).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CpuMode {
    /// Normal operation (the OS runs here).
    Protected,
    /// System Management Mode (the SMM handler runs here; OS is paused).
    Smm,
}

/// Architectural CPU state: sixteen GPRs, a program counter, and the
/// comparison flags set by `Cmp`/`CmpImm`.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct CpuState {
    /// General-purpose registers `r0`–`r15`.
    pub regs: [u64; Reg::COUNT],
    /// Program counter (physical address of next instruction).
    pub pc: u64,
    /// Last comparison operands `(a, b)`; conditions evaluate against
    /// these. `None` before any comparison.
    pub flags: Option<(u64, u64)>,
}

impl CpuState {
    /// Fresh zeroed state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Read a register.
    #[inline]
    pub fn get(&self, r: Reg) -> u64 {
        self.regs[r.index()]
    }

    /// Write a register.
    #[inline]
    pub fn set(&mut self, r: Reg, v: u64) {
        self.regs[r.index()] = v;
    }

    /// Serialize into the fixed-size SMRAM save-area image.
    ///
    /// Layout: 16×8 bytes of registers, 8 bytes PC, 1 flag-valid byte,
    /// 16 bytes of flags.
    pub fn to_save_area(&self) -> [u8; SAVE_AREA_LEN] {
        let mut out = [0u8; SAVE_AREA_LEN];
        for (i, r) in self.regs.iter().enumerate() {
            out[i * 8..i * 8 + 8].copy_from_slice(&r.to_le_bytes());
        }
        out[128..136].copy_from_slice(&self.pc.to_le_bytes());
        match self.flags {
            Some((a, b)) => {
                out[136] = 1;
                out[137..145].copy_from_slice(&a.to_le_bytes());
                out[145..153].copy_from_slice(&b.to_le_bytes());
            }
            None => out[136] = 0,
        }
        out
    }

    /// Deserialize from the SMRAM save-area image.
    pub fn from_save_area(data: &[u8; SAVE_AREA_LEN]) -> Self {
        let mut regs = [0u64; Reg::COUNT];
        for (i, r) in regs.iter_mut().enumerate() {
            let mut b = [0u8; 8];
            b.copy_from_slice(&data[i * 8..i * 8 + 8]);
            *r = u64::from_le_bytes(b);
        }
        let mut pcb = [0u8; 8];
        pcb.copy_from_slice(&data[128..136]);
        let flags = if data[136] == 1 {
            let mut a = [0u8; 8];
            let mut b = [0u8; 8];
            a.copy_from_slice(&data[137..145]);
            b.copy_from_slice(&data[145..153]);
            Some((u64::from_le_bytes(a), u64::from_le_bytes(b)))
        } else {
            None
        };
        Self {
            regs,
            pc: u64::from_le_bytes(pcb),
            flags,
        }
    }
}

/// Size in bytes of the serialized CPU save area stored at the base of
/// SMRAM on SMM entry.
pub const SAVE_AREA_LEN: usize = 16 * 8 + 8 + 1 + 16;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_set() {
        let mut c = CpuState::new();
        c.set(Reg::R3, 99);
        assert_eq!(c.get(Reg::R3), 99);
        assert_eq!(c.get(Reg::R4), 0);
    }

    #[test]
    fn save_area_roundtrip() {
        let mut c = CpuState::new();
        for (i, r) in Reg::ALL.iter().enumerate() {
            c.set(*r, (i as u64) * 0x1111_1111);
        }
        c.pc = 0xdead_beef;
        c.flags = Some((42, u64::MAX));
        let img = c.to_save_area();
        assert_eq!(CpuState::from_save_area(&img), c);
    }

    #[test]
    fn save_area_roundtrip_without_flags() {
        let mut c = CpuState::new();
        c.pc = 7;
        c.flags = None;
        let img = c.to_save_area();
        assert_eq!(CpuState::from_save_area(&img), c);
    }
}
