//! Deterministic fault injection.
//!
//! The crash-consistency tests need to interrupt an SMM window at
//! *every* step and prove the journal recovery restores the
//! all-or-nothing property. Faults here are injected at the machine
//! layer — the same place a real platform would surface a machine check,
//! an NMI-in-SMM, or a power loss — so the SMM handler above cannot
//! cheat: it sees an ordinary [`MachineError`] exactly where the write
//! would have landed.
//!
//! Three trigger/effect combinations cover the sweep in
//! `tests/fault_sweep.rs`:
//!
//! * fail the *n*-th SMM-context write after arming (step-indexed sweep),
//! * fail any write touching a chosen physical range (targeted faults,
//!   e.g. "the second trampoline site"),
//! * simulate power loss: the machine state is snapshotted immediately
//!   *before* the triggering write, the write faults, and the test later
//!   resumes from the snapshot as if the platform rebooted with RAM
//!   preserved (the warm-reset model the journal is designed for).
//!
//! All injected faults bump the `machine.injected_fault` telemetry
//! counter (`machine.power_loss` additionally for snapshots), so sweeps
//! can assert the fault actually fired.

use crate::machine::Machine;
use crate::timing::SimTime;

/// An attack-scenario behaviour, armed with [`Machine::arm_attack`].
///
/// Where the fault-injection plans above model *accidents* (bit flips,
/// power loss), these model an *adversary* abusing the SMM window — the
/// four behaviours the detached integrity monitor must catch. Each kind
/// fires once at the point described and then disarms:
///
/// * [`AttackKind::TamperHandlerImage`] scribbles over the sealed
///   handler image just before the next SMI entry measurement (a
///   bootkit rewriting the handler between SMIs),
/// * [`AttackKind::RogueWrite`] performs an SMM-context write outside
///   any declared patch extent at the next SMI entry (a compromised
///   handler touching memory it has no business in),
/// * [`AttackKind::JournalAbuse`] appends bogus journal-entry
///   acknowledgements after the handler committed its window (forging
///   undo state for a later malicious recovery),
/// * [`AttackKind::DwellExhaustion`] burns extra simulated time inside
///   the next SMI (an SMM-level denial of service: the OS is paused the
///   whole time).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AttackKind {
    /// Flip a byte of the sealed handler image before the next SMI's
    /// entry measurement. No-op (stays armed) until an image is sealed.
    TamperHandlerImage,
    /// Write `len` bytes at physical `addr` under SMM context at the
    /// next SMI entry.
    RogueWrite {
        /// Target physical address.
        addr: u64,
        /// Bytes written (clamped to 1..=64).
        len: u64,
    },
    /// Append `extra_entries` bogus journal-entry acknowledgements at
    /// the end of the next SMI that actually opened a journal window.
    JournalAbuse {
        /// Forged entry count appended after the commit.
        extra_entries: u64,
    },
    /// Charge `extra` simulated time inside the next SMI.
    DwellExhaustion {
        /// Extra dwell burned inside the SMI.
        extra: SimTime,
    },
}

/// What condition fires the injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InjectionTrigger {
    /// The `n`-th (0-based) SMM-context write performed after arming.
    NthSmmWrite(u64),
    /// Any write (any privilege context) touching `[base, base + len)`.
    WriteTouching {
        /// Base physical address of the watched range.
        base: u64,
        /// Length of the watched range in bytes.
        len: u64,
    },
}

impl InjectionTrigger {
    fn matches(&self, smm_write_index: u64, is_smm: bool, addr: u64, len: usize) -> bool {
        match *self {
            InjectionTrigger::NthSmmWrite(n) => is_smm && smm_write_index == n,
            InjectionTrigger::WriteTouching { base, len: rlen } => {
                let end = addr.saturating_add(len as u64);
                addr < base.saturating_add(rlen) && end > base
            }
        }
    }
}

/// What happens when the trigger fires.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InjectionAction {
    /// The write faults with [`crate::MachineError::InjectedFault`];
    /// memory is left untouched.
    #[default]
    FailWrite,
    /// As [`InjectionAction::FailWrite`], but the machine state is first
    /// snapshotted so the test can resume from the instant of the loss
    /// via [`Machine::take_power_loss_snapshot`] +
    /// [`Machine::restore_from_snapshot`].
    PowerLoss,
}

/// A deterministic fault-injection plan, armed on a [`Machine`] with
/// [`Machine::arm_injection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InjectionPlan {
    /// When to fire.
    pub trigger: InjectionTrigger,
    /// What to do when firing.
    pub action: InjectionAction,
    /// Fire at most once (the default). A persistent plan re-faults
    /// every matching write until disarmed — this models a *stuck*
    /// fault (e.g. failed DRAM row) rather than a transient one.
    pub one_shot: bool,
}

impl InjectionPlan {
    /// Fail the `n`-th SMM-context write after arming (one-shot).
    pub fn fail_nth_smm_write(n: u64) -> Self {
        Self {
            trigger: InjectionTrigger::NthSmmWrite(n),
            action: InjectionAction::FailWrite,
            one_shot: true,
        }
    }

    /// Fail any write touching `[base, base + len)` until disarmed.
    pub fn fault_range(base: u64, len: u64) -> Self {
        Self {
            trigger: InjectionTrigger::WriteTouching { base, len },
            action: InjectionAction::FailWrite,
            one_shot: false,
        }
    }

    /// Power loss at the `n`-th SMM-context write after arming.
    pub fn power_loss_at_smm_write(n: u64) -> Self {
        Self {
            trigger: InjectionTrigger::NthSmmWrite(n),
            action: InjectionAction::PowerLoss,
            one_shot: true,
        }
    }

    /// Make the plan fire on every matching write instead of once.
    pub fn persistent(mut self) -> Self {
        self.one_shot = false;
        self
    }
}

/// Counters describing what an armed plan observed; returned by
/// [`Machine::disarm_injection`] and [`Machine::injection_stats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InjectionStats {
    /// SMM-context writes seen since arming (including faulted ones).
    pub smm_writes_seen: u64,
    /// Faults injected since arming.
    pub faults_injected: u64,
}

/// Live state of an armed plan (owned by the [`Machine`]).
#[derive(Debug, Clone)]
pub(crate) struct InjectionState {
    plan: InjectionPlan,
    stats: InjectionStats,
    snapshot: Option<MachineSnapshot>,
}

impl InjectionState {
    pub(crate) fn new(plan: InjectionPlan) -> Self {
        Self {
            plan,
            stats: InjectionStats::default(),
            snapshot: None,
        }
    }

    pub(crate) fn stats(&self) -> InjectionStats {
        self.stats
    }

    pub(crate) fn take_snapshot(&mut self) -> Option<MachineSnapshot> {
        self.snapshot.take()
    }

    /// Decide whether the write at `addr..addr+len` under (non-)SMM
    /// context `is_smm` faults. Returns the action to perform, if any;
    /// the caller captures the snapshot (it owns the machine).
    pub(crate) fn on_write(
        &mut self,
        is_smm: bool,
        addr: u64,
        len: usize,
    ) -> Option<InjectionAction> {
        let idx = self.stats.smm_writes_seen;
        if is_smm {
            self.stats.smm_writes_seen += 1;
        }
        let spent = self.plan.one_shot && self.stats.faults_injected > 0;
        if spent || !self.plan.trigger.matches(idx, is_smm, addr, len) {
            return None;
        }
        self.stats.faults_injected += 1;
        Some(self.plan.action)
    }

    pub(crate) fn store_snapshot(&mut self, snap: MachineSnapshot) {
        // Keep the *first* loss: a persistent power-loss plan models one
        // reboot, not several.
        self.snapshot.get_or_insert(snap);
    }
}

/// A resumable copy of the complete machine state (memory, CPU, mode,
/// clock), taken at the instant of an injected power loss or manually
/// via [`Machine::snapshot`].
///
/// The model is a warm reset: RAM contents (including SMRAM and its
/// lock) survive, the CPU restarts in Protected Mode with a cleared
/// register file. This is deliberately the *most adversarial* model for
/// crash consistency — everything the interrupted SMM handler half-wrote
/// is still there when recovery runs.
#[derive(Debug, Clone)]
pub struct MachineSnapshot {
    pub(crate) inner: Box<Machine>,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::error::MachineError;
    use crate::layout::MemLayout;
    use crate::machine::AccessCtx;

    fn machine() -> Machine {
        Machine::new(MemLayout::standard()).unwrap()
    }

    #[test]
    fn nth_smm_write_faults_exactly_once() {
        let mut m = machine();
        m.raise_smi().unwrap();
        let base = m.smram_scratch_base();
        m.arm_injection(InjectionPlan::fail_nth_smm_write(2));
        m.write_bytes(AccessCtx::Smm, base, &[1]).unwrap();
        m.write_bytes(AccessCtx::Smm, base + 1, &[2]).unwrap();
        let err = m.write_bytes(AccessCtx::Smm, base + 2, &[3]).unwrap_err();
        assert!(
            matches!(err, MachineError::InjectedFault { write_index: 2, .. }),
            "{err:?}"
        );
        // One-shot: the next write succeeds.
        m.write_bytes(AccessCtx::Smm, base + 3, &[4]).unwrap();
        let stats = m.disarm_injection().unwrap();
        assert_eq!(stats.faults_injected, 1);
        assert_eq!(stats.smm_writes_seen, 4);
        // Memory untouched at the faulted address.
        let mut b = [0u8; 1];
        m.read_bytes(AccessCtx::Smm, base + 2, &mut b).unwrap();
        assert_eq!(b, [0]);
    }

    #[test]
    fn kernel_writes_do_not_advance_the_smm_counter() {
        let mut m = machine();
        let data = m.layout().kernel_data_base;
        m.arm_injection(InjectionPlan::fail_nth_smm_write(0));
        // Kernel writes sail through and do not consume the trigger.
        m.write_bytes(AccessCtx::Kernel, data, &[1, 2, 3]).unwrap();
        m.raise_smi().unwrap();
        let base = m.smram_scratch_base();
        assert!(m.write_bytes(AccessCtx::Smm, base, &[1]).is_err());
    }

    #[test]
    fn range_fault_is_persistent_and_context_blind() {
        let mut m = machine();
        let data = m.layout().kernel_data_base;
        m.arm_injection(InjectionPlan::fault_range(data + 8, 8));
        // Outside the range: fine.
        m.write_bytes(AccessCtx::Kernel, data, &[0u8; 8]).unwrap();
        // Touching it: faults, repeatedly.
        assert!(m.write_bytes(AccessCtx::Kernel, data + 8, &[1]).is_err());
        assert!(m.write_bytes(AccessCtx::Kernel, data + 12, &[1]).is_err());
        // Straddling writes fault too.
        assert!(m
            .write_bytes(AccessCtx::Kernel, data + 4, &[0u8; 8])
            .is_err());
        m.raise_smi().unwrap();
        assert!(m.write_bytes(AccessCtx::Smm, data + 8, &[1]).is_err());
        let stats = m.disarm_injection().unwrap();
        assert_eq!(stats.faults_injected, 4);
        // Disarmed: the write lands.
        m.write_bytes(AccessCtx::Smm, data + 8, &[1]).unwrap();
    }

    #[test]
    fn power_loss_snapshots_state_before_the_write() {
        let mut m = machine();
        m.raise_smi().unwrap();
        let base = m.smram_scratch_base();
        m.write_bytes(AccessCtx::Smm, base, &[0xAA]).unwrap();
        m.arm_injection(InjectionPlan::power_loss_at_smm_write(0));
        let err = m.write_bytes(AccessCtx::Smm, base, &[0xBB]).unwrap_err();
        assert!(matches!(
            err,
            MachineError::InjectedFault {
                power_loss: true,
                ..
            }
        ));
        let snap = m.take_power_loss_snapshot().expect("snapshot captured");
        // Scribble over live state, then resume from the snapshot.
        m.write_bytes(AccessCtx::Smm, base, &[0xCC]).unwrap();
        m.restore_from_snapshot(snap);
        // Warm reset: protected mode, registers cleared, RAM preserved
        // from the instant *before* the faulting write.
        assert_eq!(m.mode(), crate::cpu::CpuMode::Protected);
        m.raise_smi().unwrap();
        let mut b = [0u8; 1];
        m.read_bytes(AccessCtx::Smm, base, &mut b).unwrap();
        assert_eq!(b, [0xAA]);
        // The restored machine carries no armed plan.
        assert!(m.injection_stats().is_none());
    }

    #[test]
    fn manual_snapshot_roundtrip() {
        let mut m = machine();
        let data = m.layout().kernel_data_base;
        m.write_u64(AccessCtx::Kernel, data, 42).unwrap();
        let snap = m.snapshot();
        m.write_u64(AccessCtx::Kernel, data, 7).unwrap();
        m.restore_from_snapshot(snap);
        assert_eq!(m.read_u64(AccessCtx::Kernel, data).unwrap(), 42);
    }

    #[test]
    fn arming_replaces_prior_plan() {
        let mut m = machine();
        m.arm_injection(InjectionPlan::fail_nth_smm_write(0));
        m.arm_injection(InjectionPlan::fail_nth_smm_write(5));
        m.raise_smi().unwrap();
        let base = m.smram_scratch_base();
        // Write 0 succeeds under the replacement plan.
        m.write_bytes(AccessCtx::Smm, base, &[1]).unwrap();
        assert_eq!(m.injection_stats().unwrap().smm_writes_seen, 1);
    }
}
