#![warn(missing_docs)]

//! # kshot-machine — the simulated target machine
//!
//! KShot's prototype runs on an Intel Core i7 with Coreboot firmware; its
//! security argument rests on two *hardware-enforced* properties
//! (paper §II-B, §IV):
//!
//! 1. **SMRAM isolation** — System Management RAM can only be accessed
//!    while the CPU is in System Management Mode, and the firmware locks
//!    it at boot so nothing (including a compromised kernel) can remap it.
//! 2. **State save/restore on SMM entry/exit** — entering SMM saves the
//!    full architectural state to SMRAM and `RSM` restores it, which is
//!    what lets KShot pause and resume the OS "for free" instead of
//!    checkpointing.
//!
//! This crate simulates exactly that machine: a flat physical memory with
//! a per-page attribute table ([`PageAttrs`]), a CPU register file
//! ([`CpuState`]), a locked SMRAM region, SMI entry / RSM exit with
//! hardware state save ([`Machine::raise_smi`], [`Machine::rsm`]), and a
//! simulated [`Clock`] driven by a [`CostModel`] calibrated against the
//! timing tables in the paper (Tables II and III).
//!
//! Every memory access is mediated by checked `Machine` accessors that take
//! an [`AccessCtx`] — the privilege domain performing the access — and
//! fault with [`MachineError::AccessViolation`] when the hardware would.
//! The attack experiments in `kshot-core` and the integration tests rely
//! on these faults being *real* control-flow, not advisory flags.

pub mod attrs;
pub mod cpu;
pub mod error;
pub mod flight;
pub mod inject;
pub mod layout;
pub mod machine;
pub mod phys;
pub mod timing;

pub use attrs::PageAttrs;
pub use cpu::{CpuMode, CpuState};
pub use error::MachineError;
pub use flight::{JournalOp, SmiCause, SmiExit, SmiFlightRecord, WriteRange};
pub use inject::{
    AttackKind, InjectionAction, InjectionPlan, InjectionStats, InjectionTrigger, MachineSnapshot,
};
pub use layout::MemLayout;
pub use machine::{AccessCtx, Machine};
pub use phys::{PhysMemory, PAGE_SIZE};
pub use timing::{Clock, CostModel, LinearCost, SimTime};
