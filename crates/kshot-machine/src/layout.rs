//! The standard physical memory layout of the simulated target machine.

/// Physical memory map used by the reproduction's target machine.
///
/// Mirrors the shape of the paper's prototype: a normal kernel image low
/// in memory, an 18 MB region reserved at boot for KShot (paper §V-B:
/// "We first configure the boot loader to reserve a suitable kernel
/// memory allocation space (18MB for our prototype)"), and SMRAM locked
/// by firmware.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemLayout {
    /// Total installed physical memory in bytes.
    pub total: u64,
    /// Base of the kernel text segment.
    pub kernel_text_base: u64,
    /// Maximum size of the kernel text segment.
    pub kernel_text_size: u64,
    /// Base of the kernel data segment (data + bss).
    pub kernel_data_base: u64,
    /// Maximum size of the kernel data segment.
    pub kernel_data_size: u64,
    /// Base of the kernel stack/heap scratch area.
    pub kernel_stack_base: u64,
    /// Size of the kernel stack/heap scratch area.
    pub kernel_stack_size: u64,
    /// Base of the boot-reserved KShot region (subdivided into
    /// `mem_RW`/`mem_W`/`mem_X` by `kshot-core`).
    pub reserved_base: u64,
    /// Size of the boot-reserved KShot region.
    pub reserved_size: u64,
    /// SMRAM base.
    pub smram_base: u64,
    /// SMRAM size.
    pub smram_size: u64,
}

impl MemLayout {
    /// The standard 48 MB machine used throughout tests and benchmarks.
    pub fn standard() -> Self {
        Self {
            total: 0x0300_0000,              // 48 MB
            kernel_text_base: 0x0010_0000,   // 1 MB
            kernel_text_size: 0x0080_0000,   // 8 MB
            kernel_data_base: 0x0090_0000,   // 9 MB
            kernel_data_size: 0x0080_0000,   // 8 MB
            kernel_stack_base: 0x0110_0000,  // 17 MB
            kernel_stack_size: 0x0080_0000,  // 8 MB
            reserved_base: 0x0190_0000,      // 25 MB
            reserved_size: 18 * 1024 * 1024, // the paper's 18 MB
            smram_base: 0x02B0_0000,         // 43 MB
            smram_size: 0x0010_0000,         // 1 MB
        }
    }

    /// A large-memory variant used by the 10 MB-patch benchmark rows
    /// (the standard reserved region fits them, but the workload needs
    /// head-room).
    pub fn large() -> Self {
        let mut l = Self::standard();
        l.total = 0x0400_0000; // 64 MB
        l
    }

    /// The layout for the Table II/III 10 MB-patch rows: the paper's
    /// prototype streams large patches through its 18 MB region, which
    /// our one-shot staging cannot; this variant grows the reserved
    /// region to 36 MB so `mem_W` and `mem_X` both hold a 10 MB payload
    /// (the substitution is documented in EXPERIMENTS.md).
    pub fn benchmark() -> Self {
        let mut l = Self::standard();
        l.reserved_size = 36 * 1024 * 1024;
        l.smram_base = l.reserved_base + l.reserved_size; // 0x03D0_0000
        l.total = 0x0400_0000; // 64 MB
        l
    }

    /// A compact 26 MB machine for fleet campaigns: same text and data
    /// bases (and sizes) as [`MemLayout::standard`], so an image linked
    /// for the standard layout boots unchanged — one shared link serves
    /// every fleet machine — but the stack is halved and the reserved
    /// region trimmed to 6 MB. A 64-machine campaign then holds dozens
    /// of live machines without gigabytes of backing RAM, while the
    /// reserved split (64 KiB `mem_RW`, ~2 MB `mem_W`, ~4 MB `mem_X`)
    /// still fits realistic CVE-sized patches with room for history.
    pub fn fleet() -> Self {
        Self {
            total: 0x01A0_0000,             // 26 MB
            kernel_text_base: 0x0010_0000,  // 1 MB (same as standard)
            kernel_text_size: 0x0080_0000,  // 8 MB
            kernel_data_base: 0x0090_0000,  // 9 MB (same as standard)
            kernel_data_size: 0x0080_0000,  // 8 MB
            kernel_stack_base: 0x0110_0000, // 17 MB
            kernel_stack_size: 0x0020_0000, // 2 MB
            reserved_base: 0x0130_0000,     // 19 MB
            reserved_size: 6 * 1024 * 1024, // 6 MB
            smram_base: 0x0190_0000,        // 25 MB
            smram_size: 0x0010_0000,        // 1 MB
        }
    }

    /// Validate internal consistency (regions in bounds, non-overlapping,
    /// in ascending order). Returns a description of the first problem.
    pub fn validate(&self) -> Result<(), String> {
        let regions = [
            ("text", self.kernel_text_base, self.kernel_text_size),
            ("data", self.kernel_data_base, self.kernel_data_size),
            ("stack", self.kernel_stack_base, self.kernel_stack_size),
            ("reserved", self.reserved_base, self.reserved_size),
            ("smram", self.smram_base, self.smram_size),
        ];
        let mut prev_end = 0u64;
        let mut prev_name = "start";
        for (name, base, size) in regions {
            if base < prev_end {
                return Err(format!("{name} overlaps {prev_name}"));
            }
            let end = base
                .checked_add(size)
                .ok_or_else(|| format!("{name} wraps"))?;
            if end > self.total {
                return Err(format!("{name} exceeds installed memory"));
            }
            prev_end = end;
            prev_name = name;
        }
        Ok(())
    }
}

impl Default for MemLayout {
    fn default() -> Self {
        Self::standard()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_is_valid() {
        MemLayout::standard().validate().unwrap();
        MemLayout::large().validate().unwrap();
        MemLayout::benchmark().validate().unwrap();
        MemLayout::fleet().validate().unwrap();
    }

    #[test]
    fn fleet_layout_boots_standard_images_in_half_the_ram() {
        let f = MemLayout::fleet();
        let s = MemLayout::standard();
        // Image compatibility: identical link bases and segment sizes.
        assert_eq!(f.kernel_text_base, s.kernel_text_base);
        assert_eq!(f.kernel_text_size, s.kernel_text_size);
        assert_eq!(f.kernel_data_base, s.kernel_data_base);
        assert_eq!(f.kernel_data_size, s.kernel_data_size);
        // The point of the variant: materially cheaper per machine.
        assert!(f.total <= s.total / 3 * 2, "fleet machine not compact");
    }

    #[test]
    fn benchmark_layout_holds_ten_megabyte_payloads() {
        let l = MemLayout::benchmark();
        // Split is 64 KiB + 1/3 / 2/3 (see kshot-core::reserved); both
        // big windows must exceed 10 MB.
        let rest = l.reserved_size - 16 * 4096;
        assert!(rest / 3 > 10 * 1024 * 1024 + 1024);
    }

    #[test]
    fn reserved_region_is_papers_18mb() {
        assert_eq!(MemLayout::standard().reserved_size, 18 * 1024 * 1024);
    }

    #[test]
    fn validate_catches_overlap() {
        let mut l = MemLayout::standard();
        l.kernel_data_base = l.kernel_text_base + 1;
        assert!(l.validate().is_err());
    }

    #[test]
    fn validate_catches_out_of_bounds() {
        let mut l = MemLayout::standard();
        l.smram_size = l.total; // pushes smram past the end
        assert!(l.validate().unwrap_err().contains("smram"));
    }
}
