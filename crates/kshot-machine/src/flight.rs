//! Per-SMI flight recorder types.
//!
//! Every SMI serviced by the [`crate::Machine`] produces one bounded,
//! schema-versioned [`SmiFlightRecord`] describing *what the handler
//! actually did* inside the SMI: the declared cause, the handler-image
//! measurement taken at entry, the ordered SMM write-set, the journal
//! operations performed, the dwell, and how the SMI exited. Records
//! accumulate in a bounded ring on the machine; the fleet streams them
//! as `smi.*` JSON lines so a detached integrity monitor can replay the
//! SMI against declarative invariants (see `kshot-telemetry`'s
//! `integrity` module) without trusting the handler.
//!
//! The design reproduces two ideas from the SMM-security literature:
//! behaviour-level monitoring of the handler from outside the CPU
//! (Chevalier et al.) and sealed handler images whose tampering is
//! detectable by measurement (SmmPack). The recorder is written by the
//! *machine* (the simulated hardware), not by the handler, so a
//! compromised handler cannot forge its own flight records.

use crate::timing::SimTime;

/// Schema version stamped on every streamed `smi.*` line.
pub const FLIGHT_SCHEMA_VERSION: u32 = 1;

/// Completed records retained per machine (oldest dropped beyond this).
pub const FLIGHT_RING_CAP: usize = 128;

/// Write-set ranges retained per SMI (further writes are counted in
/// [`SmiFlightRecord::writes_truncated`] but their addresses dropped).
pub const FLIGHT_WRITE_CAP: usize = 64;

/// Journal operations retained per SMI.
pub const FLIGHT_JOURNAL_CAP: usize = 48;

/// Why an SMI was raised, declared by the orchestrator immediately
/// before delivery (see `Machine::declare_smi_cause`). SMIs raised
/// without a declaration record [`SmiCause::Unattributed`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmiCause {
    /// No cause was declared before delivery.
    Unattributed,
    /// First SMI: firmware installs the SMM handler.
    Install,
    /// Live-patch application.
    Patch,
    /// Rollback of the most recent patch.
    Rollback,
    /// Crash recovery (journal roll-forward/unwind).
    Recover,
    /// Read-only introspection of the record store.
    Introspect,
    /// Active-site inventory.
    Inventory,
    /// Trampoline repair.
    Repair,
    /// Denial-of-service probe (rejected re-trigger).
    Probe,
}

impl SmiCause {
    /// Stable lower-case label used in streamed lines and reports.
    pub fn label(self) -> &'static str {
        match self {
            SmiCause::Unattributed => "unattributed",
            SmiCause::Install => "install",
            SmiCause::Patch => "patch",
            SmiCause::Rollback => "rollback",
            SmiCause::Recover => "recover",
            SmiCause::Introspect => "introspect",
            SmiCause::Inventory => "inventory",
            SmiCause::Repair => "repair",
            SmiCause::Probe => "probe",
        }
    }
}

/// How the SMI ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SmiExit {
    /// `RSM` executed; the CPU resumed Protected Mode normally.
    Ok,
    /// A warm reset tore the machine out of SMM before `RSM`; the
    /// record's dwell covers delivery up to the reset instant.
    Interrupted,
}

impl SmiExit {
    /// Stable lower-case label used in streamed lines.
    pub fn label(self) -> &'static str {
        match self {
            SmiExit::Ok => "ok",
            SmiExit::Interrupted => "interrupted",
        }
    }
}

/// One journal operation observed during an SMI, as noted by the SMM
/// journal primitives. Consecutive [`JournalOp::Entries`] notes merge,
/// so a chunked original-bytes capture appears as one growing count.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalOp {
    /// A journal window opened (`apply` when `rollback` is false).
    Begin {
        /// True for a rollback window, false for an apply window.
        rollback: bool,
    },
    /// A segment marker landed in the SMRAM segment table.
    Segment {
        /// Segment index within the batch.
        index: u64,
        /// FNV-1a hash of the segment's package id.
        id_hash: u64,
    },
    /// Undo entries were appended to the journal.
    Entries {
        /// Number of entries appended (merged across consecutive notes).
        count: u64,
    },
    /// The journal window closed.
    Commit,
}

impl JournalOp {
    /// Compact stable encoding used in streamed lines: `B:a`/`B:r`,
    /// `S:<index>:<id_hash hex>`, `E:<count>`, `C`.
    pub fn encode(&self) -> String {
        match self {
            JournalOp::Begin { rollback: false } => "B:a".to_string(),
            JournalOp::Begin { rollback: true } => "B:r".to_string(),
            JournalOp::Segment { index, id_hash } => format!("S:{index}:{id_hash:x}"),
            JournalOp::Entries { count } => format!("E:{count}"),
            JournalOp::Commit => "C".to_string(),
        }
    }

    /// Parse the compact encoding produced by [`JournalOp::encode`].
    pub fn decode(s: &str) -> Option<JournalOp> {
        match s {
            "B:a" => return Some(JournalOp::Begin { rollback: false }),
            "B:r" => return Some(JournalOp::Begin { rollback: true }),
            "C" => return Some(JournalOp::Commit),
            _ => {}
        }
        if let Some(rest) = s.strip_prefix("E:") {
            return rest.parse().ok().map(|count| JournalOp::Entries { count });
        }
        if let Some(rest) = s.strip_prefix("S:") {
            let (idx, hash) = rest.split_once(':')?;
            return Some(JournalOp::Segment {
                index: idx.parse().ok()?,
                id_hash: u64::from_str_radix(hash, 16).ok()?,
            });
        }
        None
    }
}

/// A half-open physical range `[base, base + len)` written under SMM
/// context during one SMI.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WriteRange {
    /// Base physical address of the range.
    pub base: u64,
    /// Length of the range in bytes.
    pub len: u64,
}

/// What one SMI actually did, as observed by the machine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmiFlightRecord {
    /// 1-based SMI index on this machine (`Machine::smi_count` at entry).
    pub index: u64,
    /// Declared cause of the SMI.
    pub cause: SmiCause,
    /// FNV-1a measurement of the sealed handler image taken at SMI
    /// entry; 0 when no image has been sealed yet (the install SMI).
    pub measurement: u64,
    /// Ordered, coalesced SMM-context write ranges.
    pub writes: Vec<WriteRange>,
    /// Ranges dropped once [`FLIGHT_WRITE_CAP`] was reached.
    pub writes_truncated: u64,
    /// Journal operations in execution order.
    pub journal: Vec<JournalOp>,
    /// Journal operations dropped once [`FLIGHT_JOURNAL_CAP`] was
    /// reached.
    pub journal_truncated: u64,
    /// SMM dwell: delivery to `RSM` completion (or to the warm reset
    /// for [`SmiExit::Interrupted`] records).
    pub dwell: SimTime,
    /// How the SMI ended.
    pub exit: SmiExit,
}

impl SmiFlightRecord {
    pub(crate) fn open(index: u64, cause: SmiCause, measurement: u64) -> Self {
        Self {
            index,
            cause,
            measurement,
            writes: Vec::new(),
            writes_truncated: 0,
            journal: Vec::new(),
            journal_truncated: 0,
            dwell: SimTime::ZERO,
            exit: SmiExit::Ok,
        }
    }

    /// Note one SMM-context write, coalescing with the previous range
    /// when contiguous and bounding the list at [`FLIGHT_WRITE_CAP`].
    pub(crate) fn note_write(&mut self, base: u64, len: u64) {
        if len == 0 {
            return;
        }
        if let Some(last) = self.writes.last_mut() {
            if last.base + last.len == base {
                last.len += len;
                return;
            }
        }
        if self.writes.len() >= FLIGHT_WRITE_CAP {
            self.writes_truncated += 1;
            return;
        }
        self.writes.push(WriteRange { base, len });
    }

    /// Note one journal operation, merging consecutive `Entries` notes
    /// and bounding the list at [`FLIGHT_JOURNAL_CAP`].
    pub(crate) fn note_journal(&mut self, op: JournalOp) {
        if let (Some(JournalOp::Entries { count }), JournalOp::Entries { count: more }) =
            (self.journal.last_mut(), &op)
        {
            *count += more;
            return;
        }
        if self.journal.len() >= FLIGHT_JOURNAL_CAP {
            self.journal_truncated += 1;
            return;
        }
        self.journal.push(op);
    }
}

/// FNV-1a 64-bit hash — the measurement function for sealed handler
/// images and the segment-id digest in streamed journal ops.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn journal_op_encoding_roundtrips() {
        let ops = [
            JournalOp::Begin { rollback: false },
            JournalOp::Begin { rollback: true },
            JournalOp::Segment {
                index: 3,
                id_hash: 0xdead_beef,
            },
            JournalOp::Entries { count: 17 },
            JournalOp::Commit,
        ];
        for op in ops {
            assert_eq!(JournalOp::decode(&op.encode()), Some(op), "{op:?}");
        }
        assert_eq!(JournalOp::decode("X:1"), None);
        assert_eq!(JournalOp::decode("S:1"), None);
        assert_eq!(JournalOp::decode("S:q:ff"), None);
    }

    #[test]
    fn write_notes_coalesce_and_truncate() {
        let mut r = SmiFlightRecord::open(1, SmiCause::Patch, 0);
        r.note_write(0x100, 8);
        r.note_write(0x108, 8); // contiguous: coalesces
        r.note_write(0x200, 4); // gap: new range
        assert_eq!(
            r.writes,
            vec![
                WriteRange {
                    base: 0x100,
                    len: 16
                },
                WriteRange {
                    base: 0x200,
                    len: 4
                },
            ]
        );
        // Zero-length writes are ignored.
        r.note_write(0x300, 0);
        assert_eq!(r.writes.len(), 2);
        // Overflowing the cap counts instead of growing.
        for i in 0..(FLIGHT_WRITE_CAP as u64 + 5) {
            r.note_write(0x1000 + i * 16, 1);
        }
        assert_eq!(r.writes.len(), FLIGHT_WRITE_CAP);
        assert_eq!(r.writes_truncated, 7);
    }

    #[test]
    fn journal_notes_merge_consecutive_entries() {
        let mut r = SmiFlightRecord::open(1, SmiCause::Patch, 0);
        r.note_journal(JournalOp::Begin { rollback: false });
        r.note_journal(JournalOp::Entries { count: 2 });
        r.note_journal(JournalOp::Entries { count: 3 });
        r.note_journal(JournalOp::Commit);
        assert_eq!(
            r.journal,
            vec![
                JournalOp::Begin { rollback: false },
                JournalOp::Entries { count: 5 },
                JournalOp::Commit,
            ]
        );
    }

    #[test]
    fn fnv1a_is_stable() {
        // Reference vectors for the 64-bit FNV-1a parameters.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_ne!(fnv1a(b"CVE-2016-5195"), fnv1a(b"CVE-2016-2543"));
    }
}
