//! Simulated time and the paper-calibrated cost model.
//!
//! The paper reports timings from a specific Core i7 testbed (Tables II
//! and III). We cannot reproduce those absolute numbers on different
//! hardware — and our substrate is a simulator — so the machine carries a
//! [`Clock`] of *simulated* nanoseconds advanced by a [`CostModel`] whose
//! per-operation fixed and per-byte rates were fitted to the paper's
//! tables (least-squares over the reported sizes; see EXPERIMENTS.md for
//! the fit residuals). Benchmarks then report the simulated series next
//! to the paper's, and Criterion separately measures the *real* wall-clock
//! cost of our Rust implementations to validate the shape.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A span of simulated time, stored in nanoseconds.
///
/// All arithmetic — the constructors' unit conversions and the
/// `Add`/`AddAssign`/`Sub` impls — *saturates* at the `u64` range. A
/// fleet campaign accumulates per-machine clocks over arbitrarily many
/// sessions, so a wrap here would differ between debug (panic) and
/// release (silent wrap); a clock pinned at `u64::MAX` ns is the
/// well-defined outcome for both.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

impl SimTime {
    /// Zero time.
    pub const ZERO: SimTime = SimTime(0);

    /// The largest representable span (`u64::MAX` nanoseconds); all
    /// arithmetic saturates here.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds (saturating).
    pub const fn from_us(us: u64) -> Self {
        SimTime(us.saturating_mul(1_000))
    }

    /// Construct from milliseconds (saturating).
    pub const fn from_ms(ms: u64) -> Self {
        SimTime(ms.saturating_mul(1_000_000))
    }

    /// Nanoseconds.
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    /// Microseconds (floating point, for report tables).
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    /// Saturating sum (what `+` also does; spelled out for symmetry
    /// with [`SimTime::saturating_sub`]).
    pub fn saturating_add(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(other.0))
    }

    /// Saturating difference.
    pub fn saturating_sub(self, other: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(other.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;

    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_add(rhs.0))
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 = self.0.saturating_add(rhs.0);
    }
}

impl Sub for SimTime {
    type Output = SimTime;

    fn sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.2}ms", self.0 as f64 / 1_000_000.0)
        } else if self.0 >= 1_000 {
            write!(f, "{:.2}µs", self.0 as f64 / 1_000.0)
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

/// The machine's monotonic simulated clock.
#[derive(Debug, Clone, Default)]
pub struct Clock {
    now: SimTime,
}

impl Clock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Advance the clock by `span`.
    pub fn charge(&mut self, span: SimTime) {
        self.now += span;
    }
}

/// A linear cost: fixed setup time plus a per-byte rate.
///
/// Rates are stored in picoseconds-per-byte so sub-nanosecond rates (the
/// SMM decrypt path runs at ~0.28 ns/B on the paper's testbed) stay exact.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinearCost {
    /// Fixed cost charged once per operation.
    pub fixed: SimTime,
    /// Additional cost per byte processed, in picoseconds.
    pub per_byte_ps: u64,
}

impl LinearCost {
    /// Cost of processing `bytes` bytes (saturating, like all `SimTime`
    /// arithmetic — the picosecond intermediate can overflow first).
    pub fn for_bytes(&self, bytes: usize) -> SimTime {
        let ps = (bytes as u64).saturating_mul(self.per_byte_ps);
        SimTime::from_ns(self.fixed.as_ns().saturating_add(ps / 1_000))
    }
}

/// Per-operation costs for every stage the paper times.
///
/// See Tables II/III of the paper; the constants here are a fixed+linear
/// fit to the reported series.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Switching into SMM (paper: 12.9 µs average).
    pub smm_entry: SimTime,
    /// Resuming from SMM via `RSM` (paper: 21.7 µs average).
    pub smm_exit: SimTime,
    /// Diffie–Hellman key generation inside SMM (paper: 5.2 µs).
    pub smm_keygen: SimTime,
    /// SMM-side read+decrypt of the staged patch (Table III "Data
    /// Decryption").
    pub smm_decrypt: LinearCost,
    /// SMM-side SHA-256 verification (Table III "Patch Verification").
    pub smm_verify: LinearCost,
    /// SMM-side verification when the operator opts into SDBM instead of
    /// SHA-2 (paper §VI-C2 suggests this as an optimisation).
    pub smm_verify_sdbm: LinearCost,
    /// SMM-side write of patch bytes + trampolines (Table III "Patch
    /// Application").
    pub smm_apply: LinearCost,
    /// SGX fetch from the remote patch server (Table II "Fetching").
    pub sgx_fetch: LinearCost,
    /// SGX patch preprocessing (Table II "Pre-processing").
    pub sgx_preprocess: LinearCost,
    /// SGX encrypt+write into shared memory (Table II "Passing").
    pub sgx_pass: LinearCost,
    /// Cost per interpreted guest instruction.
    pub insn: SimTime,
}

impl CostModel {
    /// The model calibrated against the paper's Tables II and III.
    pub fn paper_calibrated() -> Self {
        Self {
            smm_entry: SimTime::from_ns(12_900),
            smm_exit: SimTime::from_ns(21_700),
            smm_keygen: SimTime::from_ns(5_200),
            // Table III fits (ns fixed, ps/B):
            // decrypt: 40B→40ns … 10MB→2.83ms  ⇒ ~270 ps/B.
            smm_decrypt: LinearCost {
                fixed: SimTime::from_ns(30),
                per_byte_ps: 270,
            },
            // verify: 40B→2.93µs … 10MB→5.97ms ⇒ ~570 ps/B + 2.9µs fixed.
            smm_verify: LinearCost {
                fixed: SimTime::from_ns(2_900),
                per_byte_ps: 570,
            },
            // SDBM ablation: a single multiply-add per byte; we model it
            // at ~1/8 the SHA-256 rate with negligible setup.
            smm_verify_sdbm: LinearCost {
                fixed: SimTime::from_ns(80),
                per_byte_ps: 70,
            },
            // apply: 40B→60ns … 10MB→2.62ms ⇒ ~250 ps/B.
            smm_apply: LinearCost {
                fixed: SimTime::from_ns(40),
                per_byte_ps: 250,
            },
            // Table II fits (µs-scale):
            // fetch: ~50µs fixed + ~40 ns/B.
            sgx_fetch: LinearCost {
                fixed: SimTime::from_ns(52_000),
                per_byte_ps: 40_000,
            },
            // preprocess: ~70µs fixed + ~1.9 µs/B.
            sgx_preprocess: LinearCost {
                fixed: SimTime::from_ns(70_000),
                per_byte_ps: 1_900_000,
            },
            // pass: ~8µs fixed + ~12 ns/B.
            sgx_pass: LinearCost {
                fixed: SimTime::from_ns(8_000),
                per_byte_ps: 12_000,
            },
            // One interpreted instruction ≈ 1 ns of guest time (a 1 GHz
            // single-issue guest; only relative magnitudes matter).
            insn: SimTime::from_ns(1),
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        Self::paper_calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn simtime_arithmetic_and_display() {
        let a = SimTime::from_us(3);
        let b = SimTime::from_ns(500);
        assert_eq!((a + b).as_ns(), 3_500);
        assert_eq!((a - b).as_ns(), 2_500);
        assert_eq!((b - a), SimTime::ZERO); // saturating
        assert_eq!(SimTime::from_ms(1).as_ns(), 1_000_000);
        assert_eq!(SimTime::from_ns(10).to_string(), "10ns");
        assert_eq!(SimTime::from_us(5).to_string(), "5.00µs");
        assert_eq!(SimTime::from_ms(2).to_string(), "2.00ms");
    }

    /// Regression (pre-fix: `Add`/`AddAssign` used unchecked `+` and the
    /// unit constructors used unchecked `*`, so these expressions
    /// overflow-panicked in debug builds and wrapped in release).
    #[test]
    fn simtime_arithmetic_saturates_at_the_u64_boundary() {
        // Additive boundary.
        assert_eq!(SimTime::MAX + SimTime::from_ns(1), SimTime::MAX);
        assert_eq!(SimTime::MAX + SimTime::MAX, SimTime::MAX);
        let mut t = SimTime::from_ns(u64::MAX - 1);
        t += SimTime::from_ns(5);
        assert_eq!(t, SimTime::MAX);
        assert_eq!(
            SimTime::MAX.saturating_add(SimTime::from_ns(1)),
            SimTime::MAX
        );
        // Exactly at the boundary: no saturation yet.
        let mut u = SimTime::from_ns(u64::MAX - 1);
        u += SimTime::from_ns(1);
        assert_eq!(u.as_ns(), u64::MAX);
        // Multiplicative boundary in the constructors.
        assert_eq!(SimTime::from_us(u64::MAX), SimTime::MAX);
        assert_eq!(SimTime::from_ms(u64::MAX), SimTime::MAX);
        assert_eq!(
            SimTime::from_us(u64::MAX / 1_000).as_ns(),
            u64::MAX / 1_000 * 1_000
        );
    }

    #[test]
    fn clock_saturates_instead_of_wrapping() {
        let mut c = Clock::new();
        c.charge(SimTime::MAX);
        c.charge(SimTime::from_ms(1));
        assert_eq!(c.now(), SimTime::MAX);
    }

    #[test]
    fn linear_cost_saturates_on_huge_inputs() {
        // The picosecond intermediate saturates instead of wrapping…
        let lc = LinearCost {
            fixed: SimTime::from_ns(100),
            per_byte_ps: u64::MAX,
        };
        assert_eq!(
            lc.for_bytes(usize::MAX),
            SimTime::from_ns(100 + u64::MAX / 1_000)
        );
        // …and so does the fixed + per-byte sum.
        let lc = LinearCost {
            fixed: SimTime::MAX,
            per_byte_ps: 1_000,
        };
        assert_eq!(lc.for_bytes(4096), SimTime::MAX);
    }

    #[test]
    fn clock_accumulates() {
        let mut c = Clock::new();
        c.charge(SimTime::from_ns(10));
        c.charge(SimTime::from_ns(5));
        assert_eq!(c.now().as_ns(), 15);
    }

    #[test]
    fn linear_cost_scales() {
        let lc = LinearCost {
            fixed: SimTime::from_ns(100),
            per_byte_ps: 500,
        };
        assert_eq!(lc.for_bytes(0).as_ns(), 100);
        assert_eq!(lc.for_bytes(2000).as_ns(), 100 + 1000);
    }

    #[test]
    fn calibration_matches_paper_magnitudes() {
        let m = CostModel::paper_calibrated();
        // Table III, 4KB row: decrypt 1.27µs, verify 8.52µs, apply 6.92µs.
        // Shape check: within ~3× of the paper (the series are noisy).
        let d = m.smm_decrypt.for_bytes(4096).as_us_f64();
        assert!(d > 0.4 && d < 4.0, "decrypt 4KB = {d}µs");
        let v = m.smm_verify.for_bytes(4096).as_us_f64();
        assert!(v > 2.0 && v < 26.0, "verify 4KB = {v}µs");
        // Table II, 4KB row: total ≈ 8.3ms dominated by preprocessing.
        let p = m.sgx_preprocess.for_bytes(4096).as_us_f64();
        assert!(p > 2_000.0 && p < 25_000.0, "preprocess 4KB = {p}µs");
        // Verification dominates decrypt+apply at small sizes — the
        // paper's stated observation.
        assert!(
            m.smm_verify.for_bytes(1024) > m.smm_decrypt.for_bytes(1024),
            "verify should dominate decrypt"
        );
        // SDBM is meaningfully cheaper than SHA-2.
        assert!(
            m.smm_verify_sdbm.for_bytes(4096).as_ns() * 4 < m.smm_verify.for_bytes(4096).as_ns()
        );
    }
}
