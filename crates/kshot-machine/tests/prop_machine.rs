//! Property tests over the machine's hardware guarantees: page-attribute
//! enforcement for arbitrary ranges, SMRAM opacity under every kernel
//! access shape, and exact CPU state restoration across SMI/RSM.

use kshot_machine::attrs::Access;
use kshot_machine::cpu::CpuState;
use kshot_machine::{AccessCtx, Machine, MemLayout, PageAttrs, PAGE_SIZE};
use proptest::prelude::*;

fn machine() -> Machine {
    Machine::new(MemLayout::standard()).unwrap()
}

fn arb_attrs() -> impl Strategy<Value = PageAttrs> {
    prop_oneof![
        Just(PageAttrs::NONE),
        Just(PageAttrs::R),
        Just(PageAttrs::W),
        Just(PageAttrs::X),
        Just(PageAttrs::RW),
        Just(PageAttrs::RX),
        Just(PageAttrs::RWX),
    ]
}

proptest! {
    /// Kernel reads/writes succeed exactly when every touched page
    /// grants the permission — for arbitrary (addr, len, attrs).
    #[test]
    fn page_attrs_decide_kernel_access(
        attrs in arb_attrs(),
        page_off in 0u64..16,
        inner in 0u64..PAGE_SIZE,
        len in 1usize..64,
    ) {
        let mut m = machine();
        let region = m.layout().kernel_data_base;
        // Set 16 pages to `attrs`; neighbours stay RW.
        m.set_page_attrs(region, 16 * PAGE_SIZE, attrs).unwrap();
        let addr = region + page_off * PAGE_SIZE + inner.min(PAGE_SIZE - 1);
        let end_page = (addr + len as u64 - 1) / PAGE_SIZE;
        let fully_inside = end_page < (region / PAGE_SIZE) + 16;
        let mut buf = vec![0u8; len];
        let read = m.read_bytes(AccessCtx::Kernel, addr, &mut buf);
        let write = m.write_bytes(AccessCtx::Kernel, addr, &buf);
        if fully_inside {
            prop_assert_eq!(read.is_ok(), attrs.readable());
            prop_assert_eq!(write.is_ok(), attrs.writable());
        } else {
            // Straddles into the RW remainder: outcome still requires the
            // first pages' permission.
            if !attrs.readable() { prop_assert!(read.is_err()); }
            if !attrs.writable() { prop_assert!(write.is_err()); }
        }
        // SMM (in SMM mode) is never constrained by attributes.
        m.raise_smi().unwrap();
        prop_assert!(m.read_bytes(AccessCtx::Smm, addr, &mut buf).is_ok());
        prop_assert!(m.write_bytes(AccessCtx::Smm, addr, &buf).is_ok());
        m.rsm().unwrap();
    }

    /// No kernel access overlapping SMRAM ever succeeds, regardless of
    /// where it starts or how long it is.
    #[test]
    fn smram_is_opaque_to_every_kernel_access(
        start_off in -64i64..(1024 * 1024 + 64) as i64,
        len in 1usize..128,
        access_write in any::<bool>(),
    ) {
        let mut m = machine();
        let smram = m.layout().smram_base;
        let size = m.layout().smram_size;
        let addr = (smram as i64 + start_off).max(0) as u64;
        let overlaps = addr < smram + size && addr + len as u64 > smram;
        let mut buf = vec![0u8; len];
        let result = if access_write {
            m.write_bytes(AccessCtx::Kernel, addr, &buf)
        } else {
            m.read_bytes(AccessCtx::Kernel, addr, &mut buf)
        };
        if overlaps {
            prop_assert!(result.is_err(), "kernel touched SMRAM at {addr:#x}+{len}");
        }
    }

    /// SMI/RSM round-trips restore the architectural state exactly, for
    /// arbitrary register files — even when the SMM handler scribbles
    /// over the live CPU in between.
    #[test]
    fn smi_rsm_restores_arbitrary_cpu_state(
        regs in prop::collection::vec(any::<u64>(), 16),
        pc in any::<u64>(),
        flags in prop::option::of((any::<u64>(), any::<u64>())),
        clobber in prop::collection::vec(any::<u64>(), 16),
    ) {
        let mut m = machine();
        {
            let cpu = m.cpu_mut();
            for (i, r) in kshot_isa::Reg::ALL.iter().enumerate() {
                cpu.set(*r, regs[i]);
            }
            cpu.pc = pc;
            cpu.flags = flags;
        }
        let before = m.cpu().clone();
        m.raise_smi().unwrap();
        {
            let cpu = m.cpu_mut();
            for (i, r) in kshot_isa::Reg::ALL.iter().enumerate() {
                cpu.set(*r, clobber[i]);
            }
            cpu.pc = 0;
            cpu.flags = None;
        }
        m.rsm().unwrap();
        prop_assert_eq!(m.cpu(), &before);
    }

    /// The serialized save area is a faithful codec for any CPU state.
    #[test]
    fn save_area_roundtrip(
        regs in prop::collection::vec(any::<u64>(), 16),
        pc in any::<u64>(),
        flags in prop::option::of((any::<u64>(), any::<u64>())),
    ) {
        let mut cpu = CpuState::new();
        for (i, r) in kshot_isa::Reg::ALL.iter().enumerate() {
            cpu.set(*r, regs[i]);
        }
        cpu.pc = pc;
        cpu.flags = flags;
        let img = cpu.to_save_area();
        prop_assert_eq!(CpuState::from_save_area(&img), cpu);
    }

    /// Out-of-range accesses fail for every context without panicking,
    /// including address-space wrap-arounds.
    #[test]
    fn out_of_range_never_panics(
        addr in any::<u64>(),
        len in 0usize..64,
    ) {
        let mut m = machine();
        let total = m.layout().total;
        let mut buf = vec![0u8; len];
        for ctx in [AccessCtx::Kernel, AccessCtx::Firmware] {
            let r = m.read_bytes(ctx, addr, &mut buf);
            if addr.checked_add(len as u64).is_none_or(|e| e > total) {
                prop_assert!(r.is_err());
            }
        }
        let _ = m.fetch(AccessCtx::Kernel, addr);
    }
}

#[test]
fn execute_permission_is_orthogonal_to_read() {
    // An execute-only page can be fetched but not read — the exact
    // property mem_X depends on (checked here at machine level, without
    // kshot-core).
    let mut m = machine();
    let base = m.layout().kernel_data_base;
    m.write_bytes(AccessCtx::Firmware, base, &[kshot_isa::opcodes::RET])
        .unwrap();
    m.set_page_attrs(base, PAGE_SIZE, PageAttrs::X).unwrap();
    assert!(m.fetch(AccessCtx::Kernel, base).is_ok());
    let mut b = [0u8; 1];
    let err = m.read_bytes(AccessCtx::Kernel, base, &mut b).unwrap_err();
    assert!(matches!(
        err,
        kshot_machine::MachineError::AccessViolation {
            access: Access::Read,
            ..
        }
    ));
}
