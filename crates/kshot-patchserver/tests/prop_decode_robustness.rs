//! Decoder robustness: every wire-format parser in the system consumes
//! arbitrary attacker-controlled bytes (a compromised kernel writes
//! `mem_W`; the network writes frames). None of them may panic, loop, or
//! over-allocate on garbage — only return clean errors.

use kshot_patchserver::bundle::PatchBundle;
use kshot_patchserver::channel::Frame;
use kshot_patchserver::wire::Reader;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

    #[test]
    fn bundle_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = PatchBundle::decode(&bytes);
    }

    #[test]
    fn frame_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
        let _ = Frame::decode(&bytes);
    }

    #[test]
    fn reader_primitives_never_panic(bytes in prop::collection::vec(any::<u8>(), 0..64)) {
        let mut r = Reader::new(&bytes);
        let _ = r.get_u8("a");
        let _ = r.get_u32("b");
        let _ = r.get_u64("c");
        let _ = r.get_bytes("d");
        let _ = r.get_str("e");
        let _ = r.finish();
    }

    /// Length prefixes claiming enormous payloads must be rejected
    /// without allocating (the classic length-bomb).
    #[test]
    fn length_bombs_are_rejected(claim in 1024u32..u32::MAX) {
        let mut bytes = claim.to_le_bytes().to_vec();
        bytes.extend_from_slice(&[0u8; 16]);
        let mut r = Reader::new(&bytes);
        prop_assert!(r.get_bytes("payload").is_err());
    }

    /// Mutating any single byte of a valid encoded bundle must never
    /// produce a *different* successfully decoded bundle (the trailing
    /// hash covers every byte).
    #[test]
    fn bundle_bytes_are_tamper_evident(
        flip in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        let bundle = PatchBundle {
            id: "CVE-2016-5195".into(),
            kernel_version: "kv-4.4".into(),
            ..Default::default()
        };
        let mut bytes = bundle.encode();
        let i = flip.index(bytes.len());
        bytes[i] ^= 1 << bit;
        if let Ok(decoded) = PatchBundle::decode(&bytes) {
            prop_assert_eq!(decoded, bundle, "silent mutation accepted");
        }
    }
}

mod isa_robustness {
    use kshot_isa::Inst;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 1024, ..ProptestConfig::default() })]

        /// The instruction decoder over arbitrary bytes: no panics, and
        /// any successful decode must re-encode to the exact consumed
        /// bytes (round-trip fidelity even on hostile input).
        #[test]
        fn inst_decode_total_and_faithful(bytes in prop::collection::vec(any::<u8>(), 1..16)) {
            if let Ok((inst, len)) = Inst::decode(&bytes, 0) {
                prop_assert!(len <= bytes.len());
                prop_assert_eq!(inst.encode(), &bytes[..len]);
            }
        }
    }
}

mod package_robustness {
    use kshot_core::package::PatchPackage;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig { cases: 512, ..ProptestConfig::default() })]

        #[test]
        fn package_decode_never_panics(bytes in prop::collection::vec(any::<u8>(), 0..512)) {
            let _ = PatchPackage::decode(&bytes);
        }
    }
}
