//! Deterministic fuzz of `SecureChannel::open` against adversarial and
//! lossy frame schedules: drop, reorder, duplicate, tamper — in any
//! interleaving — must never corrupt the receiver. The channel
//! classifies every disturbance correctly (`Replay` for old frames,
//! `Desync` for gaps, `BadMac` for tampering), keeps its state
//! untouched on every rejection, and always recovers the remaining
//! in-order stream through the authenticated resync path without a
//! rekey.

use kshot_crypto::dh::DhParams;
use kshot_patchserver::channel::{ChannelError, Frame, SecureChannel, Tamper};
use proptest::prelude::*;

fn pair(seed_a: u64, seed_b: u64) -> (SecureChannel, SecureChannel) {
    let mut ea = [0u8; 32];
    let mut eb = [0u8; 32];
    for (i, b) in seed_a.to_le_bytes().iter().cycle().take(32).enumerate() {
        ea[i] = b.wrapping_add(i as u8);
    }
    for (i, b) in seed_b.to_le_bytes().iter().cycle().take(32).enumerate() {
        eb[i] = b.wrapping_add(0x80).wrapping_add(i as u8);
    }
    let params = DhParams::default_group();
    SecureChannel::pair_via_dh(&params, &ea, &eb).expect("pair")
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 256, ..ProptestConfig::default() })]

    /// Drive a random schedule of in-order delivery, replays,
    /// out-of-order (dropped-frame) delivery, and tampering; then drain
    /// the rest of the stream via resync. The receiver must accept
    /// exactly the original plaintexts, in order, and nothing else.
    #[test]
    fn any_frame_schedule_recovers_in_order(
        n in 1usize..10,
        actions in prop::collection::vec(any::<u8>(), 0..48),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let (mut tx, mut rx) = pair(seed_a, seed_b);
        let key_before = tx.session_key().clone();
        let msgs: Vec<Vec<u8>> = (0..n)
            .map(|i| vec![i as u8 ^ 0x5A; (i % 7) + 1])
            .collect();
        // Seal the whole stream up front; deterministic sealing means a
        // rewound sender reproduces these frames byte-for-byte.
        let frames: Vec<Frame> = msgs.iter().map(|m| tx.seal(m)).collect();
        let mut next = 0usize; // mirror of rx's expected sequence

        for &action in &actions {
            let pick = (action >> 3) as usize; // secondary choice bits
            match action % 5 {
                // In-order delivery: must open to the exact plaintext.
                0 => {
                    if next < n {
                        prop_assert_eq!(rx.open(&frames[next]).unwrap(), msgs[next].clone());
                        next += 1;
                    }
                }
                // Duplicate an already-consumed frame: Replay, state
                // untouched.
                1 => {
                    if next > 0 {
                        let j = pick % next;
                        prop_assert_eq!(
                            rx.open(&frames[j]).unwrap_err(),
                            ChannelError::Replay { expected: next as u64, got: j as u64 }
                        );
                    }
                }
                // Deliver from the future (earlier frames dropped):
                // Desync, state untouched.
                2 => {
                    if next + 1 < n {
                        let k = next + 1 + pick % (n - next - 1);
                        prop_assert_eq!(
                            rx.open(&frames[k]).unwrap_err(),
                            ChannelError::Desync { expected: next as u64, got: k as u64 }
                        );
                    }
                }
                // Tamper with the in-order frame: BadMac, state
                // untouched (the genuine frame still opens later).
                3 => {
                    if next < n {
                        let tamper = match pick % 4 {
                            0 => Tamper::FlipCiphertextBit { index: pick },
                            1 => Tamper::Truncate {
                                // Always a real truncation (keep < len);
                                // dropping to keep == len would be a no-op
                                // and the untampered frame would open.
                                keep: pick % frames[next].ciphertext.len(),
                            },
                            2 => Tamper::Reseq { seq: (pick as u64) + 1000 },
                            _ => Tamper::CorruptMac,
                        };
                        let attacked = tamper.apply(&frames[next]);
                        prop_assert_eq!(rx.open(&attacked).unwrap_err(), ChannelError::BadMac);
                    }
                }
                // Mid-stream resync: rewind the sender to the
                // receiver's expectation; the re-sealed frame is
                // byte-identical to the original.
                _ => {
                    if next < n {
                        let ack = rx.resync_ack();
                        tx.resync(&ack).unwrap();
                        let resent = tx.seal(&msgs[next]);
                        prop_assert_eq!(&resent, &frames[next]);
                        prop_assert_eq!(rx.open(&resent).unwrap(), msgs[next].clone());
                        next += 1;
                    }
                }
            }
        }

        // Final drain through the resync path: whatever the schedule
        // did, the remaining stream always comes through in order with
        // the original session key.
        let ack = rx.resync_ack();
        tx.resync(&ack).unwrap();
        for i in next..n {
            let resent = tx.seal(&msgs[i]);
            prop_assert_eq!(&resent, &frames[i]);
            prop_assert_eq!(rx.open(&resent).unwrap(), msgs[i].clone());
        }
        prop_assert_eq!(tx.session_key(), &key_before);
    }

    /// A forged resync ack (random expected + random MAC) must never
    /// move the sender.
    #[test]
    fn random_resync_acks_are_rejected(
        expected in any::<u64>(),
        mac_seed in any::<u64>(),
        seed_a in any::<u64>(),
        seed_b in any::<u64>(),
    ) {
        let (mut tx, rx) = pair(seed_a, seed_b);
        tx.seal(b"advance the sender");
        let mut mac = [0u8; 32];
        for (i, b) in mac_seed.to_le_bytes().iter().cycle().take(32).enumerate() {
            mac[i] = b.wrapping_mul(31).wrapping_add(i as u8);
        }
        let forged = kshot_patchserver::channel::ResyncAck { expected, mac };
        // Either it's rejected as forged, or — with probability 2^-256 —
        // the MAC collided; treat any acceptance as failure except the
        // genuine ack.
        if forged != rx.resync_ack() {
            prop_assert!(tx.resync(&forged).is_err());
        }
    }
}
