//! The encrypted, authenticated, replay-protected transport between the
//! patch server and the SGX enclave (and, reusing the same construction,
//! between the enclave and the SMM handler via shared memory).
//!
//! Paper §V-B: "we encrypt communication when obtaining the binary patch
//! from the remote server… Both communications are handled by untrusted
//! applications or network drivers — we encrypt data while in transit."
//! §V-C adds per-patch key rotation against replay and MITM detection via
//! identity verification; the MAC-with-sequence construction here is the
//! mechanical counterpart, and [`Tamper`] provides the attackers.

use std::fmt;

use kshot_crypto::chacha::ChaCha20;
use kshot_crypto::dh::{DhError, DhKeyPair, DhParams, SessionKey};
use kshot_crypto::hmac::{hmac_sha256, verify};

use crate::wire::{Reader, WireError, Writer};

/// An encrypted frame on the wire.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    /// Sequence number (also the nonce seed; never reused under a key).
    pub seq: u64,
    /// ChaCha20 ciphertext.
    pub ciphertext: Vec<u8>,
    /// HMAC-SHA256 over `seq || ciphertext`.
    pub mac: [u8; 32],
}

impl Frame {
    /// Serialize. Ciphertext length is bounded by the plaintext the
    /// sealer accepted, which itself passed the writer's `u32` length
    /// check — so the encode cannot be poisoned in practice.
    pub fn encode(&self) -> Vec<u8> {
        let mut w = Writer::new();
        w.put_u64(self.seq)
            .put_bytes(&self.ciphertext)
            .put_raw(&self.mac);
        w.into_bytes().expect("ciphertext fits the wire format")
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let seq = r.get_u64("seq")?;
        let ciphertext = r.get_bytes("ciphertext")?;
        let mut mac = [0u8; 32];
        mac.copy_from_slice(r.get_raw(32, "mac")?);
        r.finish()?;
        Ok(Self {
            seq,
            ciphertext,
            mac,
        })
    }
}

/// Channel failures. [`ChannelError::BadMac`] and
/// [`ChannelError::Replay`] are *attack detected* signals in the
/// security experiments; [`ChannelError::Desync`] is a *loss* signal —
/// an authenticated frame from the future means earlier frames were
/// dropped in the untrusted transport, which a resend fixes (see
/// [`SecureChannel::resync_ack`]). Conflating the two (the old
/// behaviour) made operators treat routine packet loss as replay
/// attacks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ChannelError {
    /// MAC verification failed (tampering or wrong key).
    BadMac,
    /// Sequence number regressed or repeated (`got < expected`): a
    /// genuinely old frame was presented again.
    Replay {
        /// Expected next sequence.
        expected: u64,
        /// Received sequence.
        got: u64,
    },
    /// Sequence number from the future (`got > expected`): frames in
    /// between were lost. The receiver's state is untouched; recover by
    /// resending from `expected` (cheaply, via
    /// [`SecureChannel::resync_ack`]) — no rekey needed.
    Desync {
        /// Expected next sequence.
        expected: u64,
        /// Received sequence.
        got: u64,
    },
    /// Frame bytes were malformed.
    Malformed(WireError),
    /// Key agreement failed.
    Dh(DhError),
}

impl fmt::Display for ChannelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChannelError::BadMac => write!(f, "frame authentication failed"),
            ChannelError::Replay { expected, got } => {
                write!(f, "replay detected: expected seq {expected}, got {got}")
            }
            ChannelError::Desync { expected, got } => {
                write!(
                    f,
                    "sequence gap: expected seq {expected}, got {got}; resend from {expected}"
                )
            }
            ChannelError::Malformed(e) => write!(f, "malformed frame: {e}"),
            ChannelError::Dh(e) => write!(f, "key agreement failed: {e}"),
        }
    }
}

impl std::error::Error for ChannelError {}

/// One endpoint of a secure channel.
#[derive(Debug, Clone)]
pub struct SecureChannel {
    key: SessionKey,
    send_seq: u64,
    recv_seq: u64,
    /// Highest sequence ever sealed (the resync high-water mark;
    /// survives rewinds).
    sent_high: u64,
}

impl SecureChannel {
    /// Build an endpoint over an agreed session key.
    pub fn new(key: SessionKey) -> Self {
        Self {
            key,
            send_seq: 0,
            recv_seq: 0,
            sent_high: 0,
        }
    }

    /// Run Diffie–Hellman with the supplied entropy and produce the two
    /// connected endpoints (a test/setup convenience that plays both
    /// sides; real deployments exchange the public values over the
    /// untrusted transport).
    ///
    /// # Errors
    ///
    /// [`ChannelError::Dh`] if entropy is insufficient or a public value
    /// is degenerate.
    pub fn pair_via_dh(
        params: &DhParams,
        entropy_a: &[u8],
        entropy_b: &[u8],
    ) -> Result<(SecureChannel, SecureChannel), ChannelError> {
        let a = DhKeyPair::from_entropy(params, entropy_a).map_err(ChannelError::Dh)?;
        let b = DhKeyPair::from_entropy(params, entropy_b).map_err(ChannelError::Dh)?;
        let ka = a.agree(params, b.public()).map_err(ChannelError::Dh)?;
        let kb = b.agree(params, a.public()).map_err(ChannelError::Dh)?;
        kshot_telemetry::counter("channel.handshakes", 1);
        Ok((SecureChannel::new(ka), SecureChannel::new(kb)))
    }

    /// Encrypt and authenticate `plaintext` into the next frame.
    pub fn seal(&mut self, plaintext: &[u8]) -> Frame {
        kshot_telemetry::counter("channel.frames_sealed", 1);
        let seq = self.send_seq;
        self.send_seq += 1;
        self.sent_high = self.sent_high.max(self.send_seq);
        let nonce = self.key.nonce_for(seq);
        let mut ciphertext = plaintext.to_vec();
        ChaCha20::new(self.key.as_bytes(), &nonce).apply(&mut ciphertext);
        let mac = mac_for(&self.key, seq, &ciphertext);
        Frame {
            seq,
            ciphertext,
            mac,
        }
    }

    /// Verify and decrypt a frame.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadMac`] on tampering, [`ChannelError::Replay`]
    /// on repeated/regressed sequence numbers,
    /// [`ChannelError::Desync`] on a sequence gap (dropped frames; the
    /// channel state is untouched and a resend recovers).
    pub fn open(&mut self, frame: &Frame) -> Result<Vec<u8>, ChannelError> {
        let expected_mac = mac_for(&self.key, frame.seq, &frame.ciphertext);
        if !verify(&expected_mac, &frame.mac) {
            kshot_telemetry::counter("channel.bad_mac", 1);
            kshot_telemetry::event_with("channel.bad_mac", None, |f| {
                f.push(("seq", frame.seq.into()));
            });
            return Err(ChannelError::BadMac);
        }
        match frame.seq.cmp(&self.recv_seq) {
            std::cmp::Ordering::Less => {
                // A frame we already consumed: replay.
                kshot_telemetry::counter("channel.replay", 1);
                kshot_telemetry::event_with("channel.replay", None, |f| {
                    f.push(("expected", self.recv_seq.into()));
                    f.push(("got", frame.seq.into()));
                });
                return Err(ChannelError::Replay {
                    expected: self.recv_seq,
                    got: frame.seq,
                });
            }
            std::cmp::Ordering::Greater => {
                // A frame from the future: the ones in between were
                // dropped. Not an attack signal — do not bump the
                // replay counter.
                kshot_telemetry::counter("channel.desync", 1);
                kshot_telemetry::event_with("channel.desync", None, |f| {
                    f.push(("expected", self.recv_seq.into()));
                    f.push(("got", frame.seq.into()));
                });
                return Err(ChannelError::Desync {
                    expected: self.recv_seq,
                    got: frame.seq,
                });
            }
            std::cmp::Ordering::Equal => {}
        }
        kshot_telemetry::counter("channel.frames_opened", 1);
        self.recv_seq += 1;
        let nonce = self.key.nonce_for(frame.seq);
        let mut plaintext = frame.ciphertext.clone();
        ChaCha20::new(self.key.as_bytes(), &nonce).apply(&mut plaintext);
        Ok(plaintext)
    }

    /// Produce an authenticated acknowledgement of the next sequence
    /// this endpoint expects. After a [`ChannelError::Desync`], the
    /// receiver hands this to the sender, whose
    /// [`SecureChannel::resync`] rewinds and resends — recovering from
    /// dropped frames without a re-handshake or rekey.
    pub fn resync_ack(&self) -> ResyncAck {
        ResyncAck {
            expected: self.recv_seq,
            mac: resync_mac(&self.key, self.recv_seq),
        }
    }

    /// Rewind this endpoint's send sequence to `ack.expected` so the
    /// lost frames are resent.
    ///
    /// Sequence numbers double as nonces, so rewinding re-uses them —
    /// sound only because [`SecureChannel::seal`] is deterministic: the
    /// resend of the *same plaintext* at the same seq is byte-identical
    /// to the lost frame, revealing nothing new. Callers must replay
    /// the original plaintext stream from `ack.expected`, not new data.
    ///
    /// # Errors
    ///
    /// [`ChannelError::BadMac`] if the ack was forged or belongs to a
    /// different session; [`ChannelError::Desync`] if the ack claims a
    /// sequence this sender has never sealed (`expected` beyond the
    /// high-water mark) — rewinds only go backwards.
    pub fn resync(&mut self, ack: &ResyncAck) -> Result<(), ChannelError> {
        if !verify(&resync_mac(&self.key, ack.expected), &ack.mac) {
            kshot_telemetry::counter("channel.bad_mac", 1);
            return Err(ChannelError::BadMac);
        }
        if ack.expected > self.sent_high {
            return Err(ChannelError::Desync {
                expected: ack.expected,
                got: self.sent_high,
            });
        }
        kshot_telemetry::counter("channel.resyncs", 1);
        self.send_seq = ack.expected;
        Ok(())
    }

    /// The session key (the SMM side derives its own copy from DH).
    pub fn session_key(&self) -> &SessionKey {
        &self.key
    }
}

/// An authenticated "next sequence I expect" message (see
/// [`SecureChannel::resync_ack`]). Travels over the same untrusted
/// transport as frames; the MAC stops a man-in-the-middle from
/// rewinding a sender arbitrarily.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ResyncAck {
    /// The receiver's next expected sequence.
    pub expected: u64,
    /// HMAC-SHA256 over a domain-separation tag and `expected`.
    pub mac: [u8; 32],
}

fn resync_mac(key: &SessionKey, expected: u64) -> [u8; 32] {
    // Domain-separated from frame MACs (those cover seq || ciphertext;
    // this covers a tag || seq) so an ack can never be confused with an
    // empty frame.
    let mut msg = Vec::with_capacity(6 + 8);
    msg.extend_from_slice(b"RESYNC");
    msg.extend_from_slice(&expected.to_le_bytes());
    hmac_sha256(key.as_bytes(), &msg)
}

fn mac_for(key: &SessionKey, seq: u64, ciphertext: &[u8]) -> [u8; 32] {
    let mut msg = Vec::with_capacity(8 + ciphertext.len());
    msg.extend_from_slice(&seq.to_le_bytes());
    msg.extend_from_slice(ciphertext);
    hmac_sha256(key.as_bytes(), &msg)
}

/// Man-in-the-middle mutations for the security experiments.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Tamper {
    /// Flip one bit of the ciphertext.
    FlipCiphertextBit {
        /// Byte index (modulo length).
        index: usize,
    },
    /// Truncate the ciphertext.
    Truncate {
        /// Bytes to keep.
        keep: usize,
    },
    /// Rewrite the sequence number (replay staging).
    Reseq {
        /// The forged sequence.
        seq: u64,
    },
    /// Flip a MAC byte.
    CorruptMac,
}

impl Tamper {
    /// Apply the mutation to a frame, producing the attacked frame.
    pub fn apply(self, frame: &Frame) -> Frame {
        let mut f = frame.clone();
        match self {
            Tamper::FlipCiphertextBit { index } => {
                if !f.ciphertext.is_empty() {
                    let i = index % f.ciphertext.len();
                    f.ciphertext[i] ^= 0x80;
                }
            }
            Tamper::Truncate { keep } => {
                f.ciphertext.truncate(keep);
            }
            Tamper::Reseq { seq } => f.seq = seq,
            Tamper::CorruptMac => f.mac[0] ^= 0x01,
        }
        f
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair() -> (SecureChannel, SecureChannel) {
        let params = DhParams::default_group();
        SecureChannel::pair_via_dh(&params, &[7u8; 32], &[9u8; 32]).unwrap()
    }

    #[test]
    fn seal_open_roundtrip() {
        let (mut tx, mut rx) = pair();
        let msgs: [&[u8]; 3] = [b"first", b"", b"a longer patch bundle payload"];
        for m in msgs {
            let frame = tx.seal(m);
            assert_eq!(rx.open(&frame).unwrap(), m);
        }
    }

    #[test]
    fn frames_differ_even_for_same_plaintext() {
        let (mut tx, _) = pair();
        let a = tx.seal(b"same");
        let b = tx.seal(b"same");
        assert_ne!(a.ciphertext, b.ciphertext, "nonce must vary by seq");
    }

    #[test]
    fn tampering_detected() {
        let (mut tx, rx) = pair();
        let frame = tx.seal(b"patch bytes");
        for tamper in [
            Tamper::FlipCiphertextBit { index: 3 },
            Tamper::Truncate { keep: 4 },
            Tamper::CorruptMac,
            Tamper::Reseq { seq: 99 },
        ] {
            let mut rx = rx.clone();
            let attacked = tamper.apply(&frame);
            let err = rx.open(&attacked).unwrap_err();
            match tamper {
                // Changing seq invalidates the MAC too.
                Tamper::Reseq { .. } => assert_eq!(err, ChannelError::BadMac),
                _ => assert_eq!(err, ChannelError::BadMac, "{tamper:?}"),
            }
        }
    }

    #[test]
    fn replay_detected() {
        let (mut tx, mut rx) = pair();
        let f0 = tx.seal(b"one");
        let f1 = tx.seal(b"two");
        rx.open(&f0).unwrap();
        rx.open(&f1).unwrap();
        // Replaying a valid old frame (MAC intact) trips the sequence
        // check.
        let err = rx.open(&f0).unwrap_err();
        assert!(matches!(
            err,
            ChannelError::Replay {
                expected: 2,
                got: 0
            }
        ));
    }

    #[test]
    fn gap_is_desync_not_replay() {
        let (mut tx, mut rx) = pair();
        let _f0 = tx.seal(b"dropped");
        let f1 = tx.seal(b"arrives early");
        // f0 lost in transit; the future frame must NOT be classified
        // as a replay.
        let err = rx.open(&f1).unwrap_err();
        assert_eq!(
            err,
            ChannelError::Desync {
                expected: 0,
                got: 1
            }
        );
        // Receiver state untouched: the in-order frame still opens.
        assert_eq!(rx.open(&_f0).unwrap(), b"dropped");
    }

    #[test]
    fn drop_then_resend_recovers_without_rekey() {
        let (mut tx, mut rx) = pair();
        let key_before = tx.session_key().clone();
        let plaintexts: [&[u8]; 3] = [b"one", b"two", b"three"];
        let frames: Vec<Frame> = plaintexts.iter().map(|p| tx.seal(p)).collect();
        // Frame 1 is dropped; 0 and 2 arrive.
        assert_eq!(rx.open(&frames[0]).unwrap(), b"one");
        assert_eq!(
            rx.open(&frames[2]).unwrap_err(),
            ChannelError::Desync {
                expected: 1,
                got: 2
            }
        );
        // Receiver acks its expected seq; sender rewinds and resends
        // the original plaintext stream from there.
        let ack = rx.resync_ack();
        tx.resync(&ack).unwrap();
        let resent1 = tx.seal(plaintexts[1]);
        // Deterministic seal: the resend is byte-identical to the lost
        // frame (same seq → same nonce → same ciphertext and MAC).
        assert_eq!(resent1, frames[1]);
        assert_eq!(rx.open(&resent1).unwrap(), b"two");
        let resent2 = tx.seal(plaintexts[2]);
        assert_eq!(resent2, frames[2]);
        assert_eq!(rx.open(&resent2).unwrap(), b"three");
        // No re-handshake happened: same session key throughout.
        assert_eq!(*tx.session_key(), key_before);
        // And the channel keeps working normally afterwards.
        let f3 = tx.seal(b"four");
        assert_eq!(rx.open(&f3).unwrap(), b"four");
    }

    #[test]
    fn forged_resync_ack_rejected() {
        let (mut tx, rx) = pair();
        tx.seal(b"advance");
        // Tampered expected value: the MAC no longer covers it.
        let forged = ResyncAck {
            expected: 99,
            ..rx.resync_ack()
        };
        assert_eq!(tx.resync(&forged).unwrap_err(), ChannelError::BadMac);
        // An ack from a different session fails too.
        let (_, other_rx) = pair_with(&[3u8; 32], &[4u8; 32]);
        assert_eq!(
            tx.resync(&other_rx.resync_ack()).unwrap_err(),
            ChannelError::BadMac
        );
    }

    #[test]
    fn resync_cannot_fast_forward_the_sender() {
        let (mut tx, mut rx) = pair();
        // Receiver somehow claims to expect seq 5 while the sender has
        // sent nothing: refused (rewinds only go backwards).
        rx.recv_seq = 5;
        let ack = rx.resync_ack();
        assert_eq!(
            tx.resync(&ack).unwrap_err(),
            ChannelError::Desync {
                expected: 5,
                got: 0
            }
        );
    }

    fn pair_with(a: &[u8], b: &[u8]) -> (SecureChannel, SecureChannel) {
        let params = DhParams::default_group();
        SecureChannel::pair_via_dh(&params, a, b).unwrap()
    }

    #[test]
    fn key_rotation_defeats_cross_session_replay() {
        // Paper §V-C: the key is rotated before each patch, so a frame
        // captured under an old key fails outright under the new one.
        let (mut tx1, _) = pair();
        let old_frame = tx1.seal(b"old patch");
        let params = DhParams::default_group();
        let (_, mut rx2) = SecureChannel::pair_via_dh(&params, &[1u8; 32], &[2u8; 32]).unwrap();
        assert_eq!(rx2.open(&old_frame).unwrap_err(), ChannelError::BadMac);
    }

    #[test]
    fn wrong_key_cannot_open() {
        let (mut tx, _) = pair();
        let frame = tx.seal(b"secret");
        let mut eve = SecureChannel::new(SessionKey([0xEE; 32]));
        assert_eq!(eve.open(&frame).unwrap_err(), ChannelError::BadMac);
    }

    #[test]
    fn frame_wire_roundtrip() {
        let (mut tx, mut rx) = pair();
        let frame = tx.seal(b"wire me");
        let bytes = frame.encode();
        let back = Frame::decode(&bytes).unwrap();
        assert_eq!(back, frame);
        assert_eq!(rx.open(&back).unwrap(), b"wire me");
        assert!(Frame::decode(&bytes[..5]).is_err());
    }
}
