//! The binary patch bundle: what the server ships to the SGX enclave.

use kshot_crypto::sha256::{sha256, DIGEST_LEN};

use crate::wire::{Reader, WireError, Writer};

/// Where a relocated call should land.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RelocTarget {
    /// An address in the running (pre-patch) kernel — calls to existing
    /// functions always go through the original entry, so trampolines
    /// chain naturally when the callee is itself patched.
    Absolute(u64),
    /// A function newly added by this patch, placed in `mem_X`; the SGX
    /// preprocessor resolves the address once placements are assigned.
    NewFunction(String),
}

/// One call-site fixup in a patch body.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleReloc {
    /// Offset of the `call` instruction within the body.
    pub offset: u32,
    /// Target.
    pub target: RelocTarget,
}

/// One patched function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchEntry {
    /// Function name.
    pub name: String,
    /// Entry address of the vulnerable function in the running kernel
    /// (the paper's `taddr`).
    pub taddr: u64,
    /// Size of the running function's body.
    pub tsize: u64,
    /// Offset of the running function's ftrace pad, if any — the
    /// trampoline must be installed after it (paper §V-A).
    pub ftrace_offset: Option<u64>,
    /// SHA-256 of the running function's expected bytes; the SMM handler
    /// verifies the target before redirecting it.
    pub expected_pre_hash: [u8; DIGEST_LEN],
    /// The patched body (ftrace pad stripped, call rel32s zeroed).
    pub body: Vec<u8>,
    /// Call fixups.
    pub relocs: Vec<BundleReloc>,
}

/// A global-data operation (Type 3 support, paper §V-C step 2).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GlobalOp {
    /// Overwrite bytes of an existing global (value/type change).
    SetBytes {
        /// Symbol name (for logs).
        name: String,
        /// Physical address in the kernel data segment.
        addr: u64,
        /// Replacement bytes.
        bytes: Vec<u8>,
    },
    /// Initialize storage for a global added by the patch (fresh,
    /// append-only space in the data segment).
    InitBytes {
        /// Symbol name.
        name: String,
        /// Physical address.
        addr: u64,
        /// Initial bytes.
        bytes: Vec<u8>,
    },
}

impl GlobalOp {
    /// The affected address.
    pub fn addr(&self) -> u64 {
        match self {
            GlobalOp::SetBytes { addr, .. } | GlobalOp::InitBytes { addr, .. } => *addr,
        }
    }

    /// The bytes written.
    pub fn bytes(&self) -> &[u8] {
        match self {
            GlobalOp::SetBytes { bytes, .. } | GlobalOp::InitBytes { bytes, .. } => bytes,
        }
    }
}

/// Patch types, mirrored from `kshot-analysis` for wire transport.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BundleTypes {
    /// Type 1 present.
    pub t1: bool,
    /// Type 2 present.
    pub t2: bool,
    /// Type 3 present.
    pub t3: bool,
}

/// One per-CVE slice of a merged (batched) bundle: its own patch id and
/// how many of the flattened `entries`/`new_functions`/`global_ops` it
/// contributed. Segments partition each list in order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BundleSegment {
    /// The segment's own patch id (the real CVE, not the merged
    /// `BATCH(...)` envelope id).
    pub id: String,
    /// Entries this segment contributed.
    pub entries: u32,
    /// New functions this segment contributed.
    pub new_functions: u32,
    /// Global ops this segment contributed.
    pub global_ops: u32,
}

/// The complete patch artefact for one CVE.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatchBundle {
    /// Patch identifier (CVE number).
    pub id: String,
    /// Kernel version the bundle was built for.
    pub kernel_version: String,
    /// Patched existing functions (sorted by name; applied in order).
    pub entries: Vec<PatchEntry>,
    /// Functions newly added by the patch (placed in `mem_X` but with no
    /// trampoline target of their own).
    pub new_functions: Vec<PatchEntry>,
    /// Global data operations.
    pub global_ops: Vec<GlobalOp>,
    /// Classification.
    pub types: BundleTypes,
    /// Per-CVE segment table for merged (batched) bundles. Empty means
    /// the bundle is one implicit segment carrying `id` — the classic
    /// single-CVE shape. The SGX preprocessor turns this into the
    /// package's segment table so SMM journals each CVE as its own
    /// crash-consistency unit.
    pub segments: Vec<BundleSegment>,
}

impl PatchBundle {
    /// Total payload bytes across all bodies (the "patch size" of the
    /// paper's performance tables).
    pub fn payload_size(&self) -> usize {
        self.entries
            .iter()
            .chain(&self.new_functions)
            .map(|e| e.body.len())
            .sum::<usize>()
            + self
                .global_ops
                .iter()
                .map(|g| g.bytes().len())
                .sum::<usize>()
    }

    /// Serialize to wire bytes (integrity hash appended).
    ///
    /// # Panics
    ///
    /// If any field exceeds the `u32` length-prefix range — see
    /// [`PatchBundle::try_encode`] for the fallible form used on paths
    /// that carry attacker- or fleet-sized payloads.
    pub fn encode(&self) -> Vec<u8> {
        self.try_encode()
            .expect("bundle fields fit the wire format")
    }

    /// Serialize to wire bytes (integrity hash appended), rejecting
    /// fields too large for their `u32` length prefix instead of
    /// truncating them.
    pub fn try_encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = Writer::new();
        w.put_str(&self.id).put_str(&self.kernel_version);
        w.put_u8(self.types.t1 as u8)
            .put_u8(self.types.t2 as u8)
            .put_u8(self.types.t3 as u8);
        for list in [&self.entries, &self.new_functions] {
            w.put_u32(list.len() as u32);
            for e in list {
                encode_entry(&mut w, e);
            }
        }
        w.put_u32(self.global_ops.len() as u32);
        for g in &self.global_ops {
            match g {
                GlobalOp::SetBytes { name, addr, bytes } => {
                    w.put_u8(0).put_str(name).put_u64(*addr).put_bytes(bytes);
                }
                GlobalOp::InitBytes { name, addr, bytes } => {
                    w.put_u8(1).put_str(name).put_u64(*addr).put_bytes(bytes);
                }
            }
        }
        w.put_u32(self.segments.len() as u32);
        for s in &self.segments {
            w.put_str(&s.id)
                .put_u32(s.entries)
                .put_u32(s.new_functions)
                .put_u32(s.global_ops);
        }
        // Trailing integrity hash over everything prior (paper: "we
        // verify the integrity of the received patch to guard against
        // network transmission errors").
        let mut out = w.into_bytes()?;
        let digest = sha256(&out);
        out.extend_from_slice(&digest);
        Ok(out)
    }

    /// Deserialize from wire bytes, verifying the integrity hash.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed input, including a special
    /// `BadTag { what: "integrity" }` when the trailing hash mismatches.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        if bytes.len() < DIGEST_LEN {
            return Err(WireError::Truncated { what: "bundle" });
        }
        let (payload, hash) = bytes.split_at(bytes.len() - DIGEST_LEN);
        if sha256(payload) != *hash {
            return Err(WireError::BadTag {
                what: "integrity",
                tag: 0,
            });
        }
        let mut r = Reader::new(payload);
        let id = r.get_str("id")?;
        let kernel_version = r.get_str("kernel_version")?;
        let types = BundleTypes {
            t1: r.get_u8("t1")? != 0,
            t2: r.get_u8("t2")? != 0,
            t3: r.get_u8("t3")? != 0,
        };
        let mut lists: [Vec<PatchEntry>; 2] = [Vec::new(), Vec::new()];
        for list in &mut lists {
            // Minimum entry footprint: four length prefixes, three u64
            // fields, the ftrace flag, and the 32-byte pre-hash.
            let n = r.get_count("entry count", 4 + 8 + 8 + 1 + 8 + 32 + 4 + 4)?;
            list.reserve(n);
            for _ in 0..n {
                list.push(decode_entry(&mut r)?);
            }
        }
        let [entries, new_functions] = lists;
        // Minimum op footprint: tag, name prefix, addr, bytes prefix.
        let n = r.get_count("global op count", 1 + 4 + 8 + 4)?;
        let mut global_ops = Vec::with_capacity(n);
        for _ in 0..n {
            let tag = r.get_u8("global op tag")?;
            let name = r.get_str("global name")?;
            let addr = r.get_u64("global addr")?;
            let bytes = r.get_bytes("global bytes")?;
            global_ops.push(match tag {
                0 => GlobalOp::SetBytes { name, addr, bytes },
                1 => GlobalOp::InitBytes { name, addr, bytes },
                tag => {
                    return Err(WireError::BadTag {
                        what: "global op",
                        tag,
                    })
                }
            });
        }
        // Minimum segment footprint: id prefix + three u32 counts.
        let n = r.get_count("segment count", 4 + 4 + 4 + 4)?;
        let mut segments = Vec::with_capacity(n);
        for _ in 0..n {
            segments.push(BundleSegment {
                id: r.get_str("segment id")?,
                entries: r.get_u32("segment entries")?,
                new_functions: r.get_u32("segment new functions")?,
                global_ops: r.get_u32("segment global ops")?,
            });
        }
        r.finish()?;
        Ok(Self {
            id,
            kernel_version,
            entries,
            new_functions,
            global_ops,
            types,
            segments,
        })
    }
}

fn encode_entry(w: &mut Writer, e: &PatchEntry) {
    w.put_str(&e.name)
        .put_u64(e.taddr)
        .put_u64(e.tsize)
        .put_u8(e.ftrace_offset.is_some() as u8)
        .put_u64(e.ftrace_offset.unwrap_or(0))
        .put_raw(&e.expected_pre_hash)
        .put_bytes(&e.body)
        .put_u32(e.relocs.len() as u32);
    for r in &e.relocs {
        w.put_u32(r.offset);
        match &r.target {
            RelocTarget::Absolute(a) => {
                w.put_u8(0).put_u64(*a);
            }
            RelocTarget::NewFunction(n) => {
                w.put_u8(1).put_str(n);
            }
        }
    }
}

fn decode_entry(r: &mut Reader<'_>) -> Result<PatchEntry, WireError> {
    let name = r.get_str("entry name")?;
    let taddr = r.get_u64("taddr")?;
    let tsize = r.get_u64("tsize")?;
    let has_ftrace = r.get_u8("ftrace flag")? != 0;
    let ftrace_raw = r.get_u64("ftrace offset")?;
    let mut expected_pre_hash = [0u8; DIGEST_LEN];
    expected_pre_hash.copy_from_slice(r.get_raw(DIGEST_LEN, "pre hash")?);
    let body = r.get_bytes("body")?;
    // Minimum reloc footprint: offset, tag, and a name-prefix target.
    let n = r.get_count("reloc count", 4 + 1 + 4)?;
    let mut relocs = Vec::with_capacity(n);
    for _ in 0..n {
        let offset = r.get_u32("reloc offset")?;
        let tag = r.get_u8("reloc tag")?;
        let target = match tag {
            0 => RelocTarget::Absolute(r.get_u64("reloc addr")?),
            1 => RelocTarget::NewFunction(r.get_str("reloc name")?),
            tag => return Err(WireError::BadTag { what: "reloc", tag }),
        };
        relocs.push(BundleReloc { offset, target });
    }
    Ok(PatchEntry {
        name,
        taddr,
        tsize,
        ftrace_offset: has_ftrace.then_some(ftrace_raw),
        expected_pre_hash,
        body,
        relocs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_bundle() -> PatchBundle {
        PatchBundle {
            id: "CVE-2017-17806".into(),
            kernel_version: "kv-4.4".into(),
            entries: vec![PatchEntry {
                name: "hmac_create".into(),
                taddr: 0x10_0040,
                tsize: 120,
                ftrace_offset: Some(0),
                expected_pre_hash: sha256(b"pre body"),
                body: vec![0x90, 0xC3],
                relocs: vec![
                    BundleReloc {
                        offset: 0,
                        target: RelocTarget::Absolute(0x10_2000),
                    },
                    BundleReloc {
                        offset: 9,
                        target: RelocTarget::NewFunction("helper_new".into()),
                    },
                ],
            }],
            new_functions: vec![PatchEntry {
                name: "helper_new".into(),
                taddr: 0,
                tsize: 0,
                ftrace_offset: None,
                expected_pre_hash: [0; 32],
                body: vec![0xC3],
                relocs: vec![],
            }],
            global_ops: vec![
                GlobalOp::SetBytes {
                    name: "limit".into(),
                    addr: 0x90_0010,
                    bytes: vec![1, 2, 3, 4, 5, 6, 7, 8],
                },
                GlobalOp::InitBytes {
                    name: "fresh".into(),
                    addr: 0x90_0100,
                    bytes: vec![0; 16],
                },
            ],
            types: BundleTypes {
                t1: true,
                t2: true,
                t3: true,
            },
            segments: vec![],
        }
    }

    #[test]
    fn encode_decode_roundtrip() {
        let b = sample_bundle();
        let bytes = b.encode();
        let back = PatchBundle::decode(&bytes).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn empty_bundle_roundtrip() {
        let b = PatchBundle {
            id: "x".into(),
            kernel_version: "v".into(),
            ..Default::default()
        };
        assert_eq!(PatchBundle::decode(&b.encode()).unwrap(), b);
    }

    #[test]
    fn segmented_bundle_roundtrips() {
        let mut b = sample_bundle();
        b.id = "BATCH(CVE-A+CVE-B)".into();
        b.segments = vec![
            BundleSegment {
                id: "CVE-A".into(),
                entries: 1,
                new_functions: 1,
                global_ops: 0,
            },
            BundleSegment {
                id: "CVE-B".into(),
                entries: 0,
                new_functions: 0,
                global_ops: 2,
            },
        ];
        let back = PatchBundle::decode(&b.encode()).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn corruption_detected_by_integrity_hash() {
        let mut bytes = sample_bundle().encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x01;
        assert!(matches!(
            PatchBundle::decode(&bytes),
            Err(WireError::BadTag {
                what: "integrity",
                ..
            })
        ));
    }

    #[test]
    fn truncation_detected() {
        let bytes = sample_bundle().encode();
        assert!(PatchBundle::decode(&bytes[..bytes.len() - 1]).is_err());
        assert!(PatchBundle::decode(&bytes[..10]).is_err());
        assert!(PatchBundle::decode(&[]).is_err());
    }

    #[test]
    fn payload_size_counts_everything() {
        let b = sample_bundle();
        assert_eq!(b.payload_size(), 2 + 1 + 8 + 16);
    }

    #[test]
    fn global_op_accessors() {
        let b = sample_bundle();
        assert_eq!(b.global_ops[0].addr(), 0x90_0010);
        assert_eq!(b.global_ops[1].bytes().len(), 16);
    }
}
