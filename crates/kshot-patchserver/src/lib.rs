#![warn(missing_docs)]

//! # kshot-patchserver — the remote trusted patch server
//!
//! Paper §IV-A/§V-A: an independent, trusted system that receives the
//! target's OS information (version, configuration, compiler flags),
//! rebuilds pre- and post-patch kernel binaries with identical flags,
//! extracts the changed functions, and ships a binary patch bundle back
//! to the SGX enclave over an encrypted channel.
//!
//! * [`patch`] — [`patch::SourcePatch`], the source-level edit a CVE fix
//!   is expressed as (replacement functions, new functions/globals,
//!   global value changes).
//! * [`server`] — [`server::PatchServer`], which runs the build → diff →
//!   analyze → extract pipeline and enforces the layout-compatibility
//!   rules (append-only globals; resizes are rejected as the paper's
//!   "complex data structure changes", §VIII).
//! * [`bundle`] — [`bundle::PatchBundle`], the serialized artefact with
//!   per-function target addresses, pre-image hashes, bodies, and call
//!   relocations.
//! * [`channel`] — [`channel::SecureChannel`], DH-keyed, HMAC'd,
//!   replay-protected transport, plus [`channel::Tamper`] adversaries for
//!   the security experiments.
//! * [`wire`] — the little binary reader/writer the bundle and the Fig. 3
//!   patch package share.
//! * [`cache`] — [`cache::BundleCache`], the decode-once shared bundle
//!   cache fleet campaigns distribute one verified bundle through.

pub mod bundle;
pub mod cache;
pub mod channel;
pub mod patch;
pub mod server;
pub mod wire;

pub use bundle::{GlobalOp, PatchBundle, PatchEntry, RelocTarget};
pub use cache::BundleCache;
pub use channel::{ChannelError, Frame, SecureChannel, Tamper};
pub use patch::SourcePatch;
pub use server::{PatchServer, ServerError};
