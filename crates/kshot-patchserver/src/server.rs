//! The patch server build pipeline.

use std::collections::BTreeMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use kshot_analysis::diff::GlobalChange;
use kshot_analysis::extract::extract_function;
use kshot_analysis::{analyze, AnalysisError};
use kshot_crypto::sha256::sha256;
use kshot_kcc::image::{KernelImage, LinkError};
use kshot_kcc::ir::{IrError, Program};
use kshot_kernel::KernelInfo;

use crate::bundle::{BundleReloc, BundleTypes, GlobalOp, PatchBundle, PatchEntry, RelocTarget};
use crate::patch::{PatchApplyError, SourcePatch};

/// Errors from the build pipeline.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ServerError {
    /// The target's kernel version is not registered.
    UnknownVersion(String),
    /// The patch did not apply to the tree.
    Apply(PatchApplyError),
    /// The patched tree is ill-formed.
    Ir(IrError),
    /// A build failed.
    Link(String),
    /// Analysis failed.
    Analysis(AnalysisError),
    /// The patch resizes or removes shared data — the layout-hazard case
    /// the paper excludes (§VIII "complex data structure changes").
    LayoutHazard(Vec<String>),
    /// A call inside a patched body targets a function that is neither in
    /// the running kernel nor added by the patch.
    UnresolvableCall {
        /// The patched function.
        function: String,
        /// The missing callee.
        callee: String,
    },
}

impl fmt::Display for ServerError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServerError::UnknownVersion(v) => write!(f, "unknown kernel version `{v}`"),
            ServerError::Apply(e) => write!(f, "patch application failed: {e}"),
            ServerError::Ir(e) => write!(f, "patched tree invalid: {e}"),
            ServerError::Link(e) => write!(f, "build failed: {e}"),
            ServerError::Analysis(e) => write!(f, "analysis failed: {e}"),
            ServerError::LayoutHazard(gs) => {
                write!(f, "patch changes data layout of: {}", gs.join(", "))
            }
            ServerError::UnresolvableCall { function, callee } => {
                write!(f, "`{function}` calls `{callee}` which cannot be resolved")
            }
        }
    }
}

impl std::error::Error for ServerError {}

impl From<LinkError> for ServerError {
    fn from(e: LinkError) -> Self {
        ServerError::Link(e.to_string())
    }
}

/// The remote, trusted patch server.
///
/// Holds the source trees of the kernel versions it supports, keyed by
/// version string; builds binary patch bundles on request. One server
/// instance can serve many concurrent sessions: building takes `&self`,
/// and [`PatchServer::build_patch_cached`] memoizes bundles per
/// `(kernel version, patch id)` so a fleet campaign compiles each patch
/// once, not once per machine.
#[derive(Debug, Default)]
pub struct PatchServer {
    trees: BTreeMap<String, Program>,
    built: Mutex<BTreeMap<(String, String), Arc<PatchBundle>>>,
}

/// The artefacts of one build, exposed for inspection and testing.
#[derive(Debug)]
pub struct BuildOutput {
    /// The shippable bundle.
    pub bundle: PatchBundle,
    /// The pre-patch image (matches the running kernel).
    pub pre_image: KernelImage,
    /// The post-patch image.
    pub post_image: KernelImage,
    /// Names of implicated functions, in bundle order.
    pub implicated: Vec<String>,
}

impl PatchServer {
    /// A server with no registered trees.
    pub fn new() -> Self {
        Self::default()
    }

    /// Register (or replace) the source tree for a kernel version.
    pub fn register_tree(&mut self, version: impl Into<String>, tree: Program) {
        self.trees.insert(version.into(), tree);
    }

    /// Registered version strings.
    pub fn versions(&self) -> Vec<&str> {
        self.trees.keys().map(|s| s.as_str()).collect()
    }

    /// [`PatchServer::build_patch`], memoized per `(kernel version,
    /// patch id)`. The full build pipeline runs at most once per key;
    /// every later request — from any thread — receives the same
    /// shared, immutable bundle. This is what lets a fleet campaign
    /// reuse one server across N sessions without rebuilding.
    ///
    /// The memo assumes a patch id names one immutable source edit (as
    /// CVE ids do). Registering a *different* patch under a previously
    /// built id returns the stale bundle.
    ///
    /// # Errors
    ///
    /// As [`PatchServer::build_patch`]; build failures are not cached.
    pub fn build_patch_cached(
        &self,
        info: &KernelInfo,
        patch: &SourcePatch,
    ) -> Result<Arc<PatchBundle>, ServerError> {
        let key = (info.version.clone(), patch.id.clone());
        if let Some(found) = self.built.lock().unwrap().get(&key) {
            kshot_telemetry::counter("server.build_memo_hit", 1);
            return Ok(Arc::clone(found));
        }
        // Build outside the lock so a slow compile does not serialize
        // unrelated requests; concurrent first-builds race benignly.
        let bundle = Arc::new(self.build_patch(info, patch)?.bundle);
        let mut built = self.built.lock().unwrap();
        let winner = built.entry(key).or_insert_with(|| Arc::clone(&bundle));
        Ok(Arc::clone(winner))
    }

    /// Build a binary patch bundle for the target described by `info`.
    ///
    /// Pipeline (paper §V-A): rebuild pre+post with the target's exact
    /// flags → diff → call-graph/inline analysis → worklist → extract
    /// implicated bodies → resolve call relocations → package.
    ///
    /// # Errors
    ///
    /// See [`ServerError`]; notably [`ServerError::LayoutHazard`] for
    /// data-layout-changing patches.
    pub fn build_patch(
        &self,
        info: &KernelInfo,
        patch: &SourcePatch,
    ) -> Result<BuildOutput, ServerError> {
        let mut span = kshot_telemetry::span("server.build_patch");
        span.field("patch", patch.id.as_str());
        let pre_tree = self
            .trees
            .get(&info.version)
            .ok_or_else(|| ServerError::UnknownVersion(info.version.clone()))?;
        let post_tree = patch.apply(pre_tree).map_err(ServerError::Apply)?;
        post_tree.validate().map_err(ServerError::Ir)?;
        let pre_image = kshot_kcc::link(pre_tree, &info.options, info.text_base, info.data_base)?;
        let post_image =
            kshot_kcc::link(&post_tree, &info.options, info.text_base, info.data_base)?;
        let analysis = analyze(pre_tree, &post_tree, &pre_image, &post_image)
            .map_err(ServerError::Analysis)?;
        if kshot_analysis::classify::has_layout_hazard(&analysis.source_diff) {
            let names = analysis
                .source_diff
                .global_changes
                .iter()
                .filter(|c| {
                    matches!(
                        c,
                        GlobalChange::Resized { .. } | GlobalChange::Removed { .. }
                    )
                })
                .map(|c| c.name().to_string())
                .collect();
            return Err(ServerError::LayoutHazard(names));
        }
        // Extract implicated function bodies from the post image.
        let implicated: Vec<String> = analysis.implicated.iter().cloned().collect();
        let new_names: Vec<&String> = patch.add_functions.iter().map(|f| &f.name).collect();
        let mut entries = Vec::with_capacity(implicated.len());
        for name in &implicated {
            entries.push(self.make_entry(
                name,
                &pre_image,
                &post_image,
                &new_names,
                /* is_new = */ false,
            )?);
        }
        let mut new_functions = Vec::with_capacity(new_names.len());
        for name in &new_names {
            new_functions.push(self.make_entry(
                name,
                &pre_image,
                &post_image,
                &new_names,
                /* is_new = */ true,
            )?);
        }
        // Global operations.
        let mut global_ops = Vec::new();
        for change in &analysis.source_diff.global_changes {
            match change {
                GlobalChange::ValueChanged { name } => {
                    let sym = post_image.symbols.lookup_global(name).ok_or_else(|| {
                        ServerError::Analysis(AnalysisError::MissingSymbol(name.clone()))
                    })?;
                    let bytes = global_bytes(&post_image, name);
                    global_ops.push(GlobalOp::SetBytes {
                        name: name.clone(),
                        addr: sym.addr,
                        bytes,
                    });
                }
                GlobalChange::Added { name, .. } => {
                    let sym = post_image.symbols.lookup_global(name).ok_or_else(|| {
                        ServerError::Analysis(AnalysisError::MissingSymbol(name.clone()))
                    })?;
                    let bytes = global_bytes(&post_image, name);
                    global_ops.push(GlobalOp::InitBytes {
                        name: name.clone(),
                        addr: sym.addr,
                        bytes,
                    });
                }
                GlobalChange::Resized { .. } | GlobalChange::Removed { .. } => {
                    unreachable!("layout hazards rejected above")
                }
            }
        }
        let bundle = PatchBundle {
            id: patch.id.clone(),
            kernel_version: info.version.clone(),
            entries,
            new_functions,
            global_ops,
            segments: Vec::new(),
            types: BundleTypes {
                t1: analysis.types.t1,
                t2: analysis.types.t2,
                t3: analysis.types.t3,
            },
        };
        kshot_telemetry::counter("server.patches_built", 1);
        span.field("implicated", implicated.len());
        span.field("new_functions", bundle.new_functions.len());
        span.field("global_ops", bundle.global_ops.len());
        Ok(BuildOutput {
            bundle,
            pre_image,
            post_image,
            implicated,
        })
    }

    /// Build just the pre/post image pair for a patch, with **no**
    /// layout-hazard gate or analysis. Whole-kernel replacement systems
    /// (KUP) use this: they can swap layouts wholesale, which is exactly
    /// the capability Table V credits them with.
    ///
    /// # Errors
    ///
    /// Version/apply/link failures as in [`PatchServer::build_patch`].
    pub fn build_images(
        &self,
        info: &KernelInfo,
        patch: &SourcePatch,
    ) -> Result<(KernelImage, KernelImage), ServerError> {
        let pre_tree = self
            .trees
            .get(&info.version)
            .ok_or_else(|| ServerError::UnknownVersion(info.version.clone()))?;
        let post_tree = patch.apply(pre_tree).map_err(ServerError::Apply)?;
        post_tree.validate().map_err(ServerError::Ir)?;
        let pre = kshot_kcc::link(pre_tree, &info.options, info.text_base, info.data_base)?;
        let post = kshot_kcc::link(&post_tree, &info.options, info.text_base, info.data_base)?;
        Ok((pre, post))
    }

    fn make_entry(
        &self,
        name: &str,
        pre_image: &KernelImage,
        post_image: &KernelImage,
        new_names: &[&String],
        is_new: bool,
    ) -> Result<PatchEntry, ServerError> {
        let extracted = extract_function(post_image, name).map_err(ServerError::Analysis)?;
        let mut relocs = Vec::with_capacity(extracted.relocs.len());
        for r in &extracted.relocs {
            let target = if let Some(sym) = pre_image.symbols.lookup(&r.callee) {
                RelocTarget::Absolute(sym.addr)
            } else if new_names.iter().any(|n| **n == r.callee) {
                RelocTarget::NewFunction(r.callee.clone())
            } else {
                return Err(ServerError::UnresolvableCall {
                    function: name.to_string(),
                    callee: r.callee.clone(),
                });
            };
            relocs.push(BundleReloc {
                offset: r.offset,
                target,
            });
        }
        let (taddr, tsize, ftrace_offset, expected_pre_hash) = if is_new {
            (0, 0, None, [0u8; 32])
        } else {
            let sym = pre_image.symbols.lookup(name).ok_or_else(|| {
                ServerError::Analysis(AnalysisError::MissingSymbol(name.to_string()))
            })?;
            let pre_body = pre_image.function_bytes(name).ok_or_else(|| {
                ServerError::Analysis(AnalysisError::MissingSymbol(name.to_string()))
            })?;
            (sym.addr, sym.size, sym.ftrace_offset, sha256(pre_body))
        };
        Ok(PatchEntry {
            name: name.to_string(),
            taddr,
            tsize,
            ftrace_offset,
            expected_pre_hash,
            body: extracted.body,
            relocs,
        })
    }
}

fn global_bytes(image: &KernelImage, name: &str) -> Vec<u8> {
    let sym = image
        .symbols
        .lookup_global(name)
        .expect("checked by caller");
    let start = (sym.addr - image.data_base) as usize;
    image.data[start..start + sym.size as usize].to_vec()
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{Expr, Function, Global, InlineHint};
    use kshot_kcc::CodegenOptions;

    fn tree() -> Program {
        let mut p = Program::new();
        p.add_global(Global::word("limit", 2));
        p.add_function(
            Function::new("helper", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::param(0).add(Expr::c(1))),
        );
        p.add_function(Function::new("tiny", 0, 0).returning(Expr::c(1)));
        p.add_function(
            Function::new("vuln", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(
                    Expr::call("helper", vec![Expr::param(0)]).add(Expr::call("tiny", vec![])),
                ),
        );
        p
    }

    fn info() -> KernelInfo {
        KernelInfo {
            version: "kv-4.4".into(),
            text_base: 0x10_0000,
            data_base: 0x90_0000,
            options: CodegenOptions::default(),
        }
    }

    fn server() -> PatchServer {
        let mut s = PatchServer::new();
        s.register_tree("kv-4.4", tree());
        s
    }

    #[test]
    fn build_simple_function_patch() {
        let patch = SourcePatch::new("CVE-TEST-1").replacing(
            Function::new("vuln", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(
                    Expr::call("helper", vec![Expr::param(0)])
                        .add(Expr::call("tiny", vec![]))
                        .add(Expr::c(100)),
                ),
        );
        let out = server().build_patch(&info(), &patch).unwrap();
        assert_eq!(out.bundle.id, "CVE-TEST-1");
        assert_eq!(out.implicated, vec!["vuln".to_string()]);
        let e = &out.bundle.entries[0];
        assert_eq!(e.name, "vuln");
        assert_eq!(e.taddr, out.pre_image.symbols.lookup("vuln").unwrap().addr);
        // The body calls helper (Never-inline) via an absolute reloc to
        // the running kernel's helper.
        let helper_addr = out.pre_image.symbols.lookup("helper").unwrap().addr;
        assert!(e
            .relocs
            .iter()
            .any(|r| r.target == RelocTarget::Absolute(helper_addr)));
        // The expected pre-hash matches the pre image's bytes.
        assert_eq!(
            e.expected_pre_hash,
            sha256(out.pre_image.function_bytes("vuln").unwrap())
        );
        assert!(out.bundle.types.t1);
    }

    #[test]
    fn cached_build_runs_the_pipeline_once_per_key() {
        let patch = SourcePatch::new("CVE-TEST-1").replacing(
            Function::new("vuln", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::call("helper", vec![Expr::param(0)]).add(Expr::c(9))),
        );
        let s = server();
        let a = s.build_patch_cached(&info(), &patch).unwrap();
        let b = s.build_patch_cached(&info(), &patch).unwrap();
        // Same Arc — the second request did not rebuild.
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(a.id, "CVE-TEST-1");
        // The memoized bundle matches a fresh uncached build.
        let fresh = s.build_patch(&info(), &patch).unwrap().bundle;
        assert_eq!(*a, fresh);
        // A different patch id builds its own entry.
        let other = SourcePatch::new("CVE-TEST-OTHER")
            .replacing(Function::new("tiny", 0, 0).returning(Expr::c(3)));
        let c = s.build_patch_cached(&info(), &other).unwrap();
        assert!(!Arc::ptr_eq(&a, &c));
        // Build failures are surfaced, not cached.
        let bad_info = KernelInfo {
            version: "kv-none".into(),
            ..info()
        };
        assert!(matches!(
            s.build_patch_cached(&bad_info, &patch),
            Err(ServerError::UnknownVersion(_))
        ));
    }

    #[test]
    fn inlined_change_implicates_host() {
        // Patch `tiny` (auto-inlined into vuln): both must be in the
        // bundle.
        let patch = SourcePatch::new("CVE-TEST-2")
            .replacing(Function::new("tiny", 0, 0).returning(Expr::c(2)));
        let out = server().build_patch(&info(), &patch).unwrap();
        let names: Vec<&str> = out.bundle.entries.iter().map(|e| e.name.as_str()).collect();
        assert!(names.contains(&"tiny"));
        assert!(names.contains(&"vuln"), "{names:?}");
        assert!(out.bundle.types.t2);
    }

    #[test]
    fn new_function_and_global() {
        let patch = SourcePatch::new("CVE-TEST-3")
            .replacing(
                Function::new("vuln", 1, 0)
                    .with_inline(InlineHint::Never)
                    .returning(Expr::call("check_new", vec![Expr::param(0)])),
            )
            .adding_function(
                Function::new("check_new", 1, 0)
                    .with_inline(InlineHint::Never)
                    .returning(Expr::param(0).and(Expr::global("mask_new"))),
            )
            .adding_global(Global::word("mask_new", 0xFF));
        let out = server().build_patch(&info(), &patch).unwrap();
        assert_eq!(out.bundle.new_functions.len(), 1);
        assert_eq!(out.bundle.new_functions[0].name, "check_new");
        // vuln's reloc to check_new is symbolic.
        assert!(out.bundle.entries.iter().any(|e| e
            .relocs
            .iter()
            .any(|r| r.target == RelocTarget::NewFunction("check_new".into()))));
        // The new global becomes an InitBytes op at a fresh address.
        assert!(out
            .bundle
            .global_ops
            .iter()
            .any(|g| matches!(g, GlobalOp::InitBytes { name, .. } if name == "mask_new")));
        assert!(out.bundle.types.t3);
    }

    #[test]
    fn value_change_becomes_setbytes() {
        let patch = SourcePatch::new("CVE-TEST-4").setting_global("limit", 99);
        let out = server().build_patch(&info(), &patch).unwrap();
        let op = &out.bundle.global_ops[0];
        assert!(matches!(op, GlobalOp::SetBytes { name, .. } if name == "limit"));
        assert_eq!(op.bytes(), &99u64.to_le_bytes());
    }

    #[test]
    fn layout_hazard_rejected() {
        // Resizing a shared global: the case the paper cannot handle
        // (§VIII); the server must refuse to build it.
        let mut s = PatchServer::new();
        let mut t = tree();
        t.add_global(Global::buffer("shared", 2));
        s.register_tree("kv-4.4", t);
        let hazard = SourcePatch::new("CVE-HAZARD").resizing_global("shared", 4);
        match s.build_patch(&info(), &hazard) {
            Err(ServerError::LayoutHazard(names)) => {
                assert_eq!(names, vec!["shared".to_string()]);
            }
            other => panic!("expected LayoutHazard, got {other:?}"),
        }
        // Duplicate-global additions fail at apply time.
        let dup = SourcePatch::new("x").adding_global(Global::word("shared", 0));
        assert!(matches!(
            s.build_patch(&info(), &dup),
            Err(ServerError::Apply(PatchApplyError::GlobalExists(_)))
        ));
    }

    #[test]
    fn unknown_version_rejected() {
        let patch = SourcePatch::new("x");
        let mut bad = info();
        bad.version = "kv-9.9".into();
        assert!(matches!(
            server().build_patch(&bad, &patch),
            Err(ServerError::UnknownVersion(_))
        ));
    }

    #[test]
    fn bundle_roundtrips_through_wire() {
        let patch = SourcePatch::new("CVE-TEST-5")
            .replacing(Function::new("tiny", 0, 0).returning(Expr::c(7)));
        let out = server().build_patch(&info(), &patch).unwrap();
        let bytes = out.bundle.encode();
        let back = PatchBundle::decode(&bytes).unwrap();
        assert_eq!(back, out.bundle);
    }

    #[test]
    fn different_flags_produce_different_binaries_same_pipeline() {
        // A target compiled without inlining yields a bundle whose
        // implicated set is exactly the changed function.
        let patch = SourcePatch::new("CVE-TEST-6")
            .replacing(Function::new("tiny", 0, 0).returning(Expr::c(2)));
        let mut no_inline_info = info();
        no_inline_info.options = CodegenOptions::no_inline();
        let out = server().build_patch(&no_inline_info, &patch).unwrap();
        assert_eq!(out.implicated, vec!["tiny".to_string()]);
        assert!(!out.bundle.types.t2);
    }
}
