//! Minimal binary serialization helpers shared by the patch bundle and
//! the SGX→SMM patch package (paper Fig. 3).

use std::fmt;

/// Serialization writer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Append a length-prefixed byte string.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        self.put_u32(v.len() as u32);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        self.buf.extend_from_slice(v);
        self
    }

    /// Finish, returning the buffer.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the field.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the remaining buffer (corruption guard).
    BadLength {
        /// What was being read.
        what: &'static str,
        /// The claimed length.
        claimed: usize,
        /// Remaining bytes.
        remaining: usize,
    },
    /// An enum tag was out of range.
    BadTag {
        /// What was being read.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// Trailing bytes after a complete decode.
    TrailingBytes(usize),
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated while reading {what}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadLength {
                what,
                claimed,
                remaining,
            } => write!(
                f,
                "length {claimed} for {what} exceeds remaining {remaining} bytes"
            ),
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
        }
    }
}

impl std::error::Error for WireError {}

/// Deserialization reader.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        if self.pos + n > self.buf.len() {
            return Err(WireError::Truncated { what });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte string.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32(what)? as usize;
        if self.pos + len > self.buf.len() {
            return Err(WireError::BadLength {
                what,
                claimed: len,
                remaining: self.buf.len() - self.pos,
            });
        }
        Ok(self.take(len, what)?.to_vec())
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let b = self.get_bytes(what)?;
        String::from_utf8(b).map_err(|_| WireError::BadUtf8)
    }

    /// Read `n` raw bytes (fixed-size fields).
    pub fn get_raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Remaining unread byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the buffer is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u32(0xAABB_CCDD)
            .put_u64(u64::MAX)
            .put_bytes(&[1, 2, 3])
            .put_str("kshot")
            .put_raw(&[9, 9]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xAABB_CCDD);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX);
        assert_eq!(r.get_bytes("d").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str("e").unwrap(), "kshot");
        assert_eq!(r.get_raw(2, "f").unwrap(), &[9, 9]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(
            r.get_u64("x"),
            Err(WireError::Truncated { what: "x" })
        ));
    }

    #[test]
    fn bad_length_detected() {
        let mut w = Writer::new();
        w.put_u32(1000); // claims 1000 bytes follow
        w.put_raw(&[1, 2]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes("payload"),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str("s"), Err(WireError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1).put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        r.get_u8("a").unwrap();
        assert_eq!(r.clone().finish(), Err(WireError::TrailingBytes(1)));
        r.get_u8("b").unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn errors_display() {
        for e in [
            WireError::Truncated { what: "x" },
            WireError::BadUtf8,
            WireError::BadLength {
                what: "y",
                claimed: 9,
                remaining: 1,
            },
            WireError::BadTag { what: "z", tag: 9 },
            WireError::TrailingBytes(3),
        ] {
            assert!(!e.to_string().is_empty());
        }
    }
}
