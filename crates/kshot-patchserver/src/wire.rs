//! Minimal binary serialization helpers shared by the patch bundle and
//! the SGX→SMM patch package (paper Fig. 3).

use std::fmt;

/// Serialization writer.
///
/// Length-prefixed fields carry a `u32` prefix, so a payload longer
/// than `u32::MAX` bytes cannot be represented. Rather than silently
/// truncating the prefix (the pre-fix behaviour: `len as u32`), an
/// oversize [`Writer::put_bytes`]/[`Writer::put_str`] *poisons* the
/// writer: the field is not appended, subsequent puts become no-ops,
/// and [`Writer::into_bytes`] returns the error. Poisoning keeps the
/// chained-call style at encode sites while guaranteeing a corrupt
/// frame can never leave the writer.
#[derive(Debug, Default, Clone)]
pub struct Writer {
    buf: Vec<u8>,
    error: Option<WireError>,
}

impl Writer {
    /// Fresh empty writer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a `u8`.
    pub fn put_u8(&mut self, v: u8) -> &mut Self {
        if self.error.is_none() {
            self.buf.push(v);
        }
        self
    }

    /// Append a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) -> &mut Self {
        if self.error.is_none() {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) -> &mut Self {
        if self.error.is_none() {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
        self
    }

    /// Append a length-prefixed byte string. Payloads longer than
    /// `u32::MAX` bytes poison the writer instead of truncating the
    /// length prefix.
    pub fn put_bytes(&mut self, v: &[u8]) -> &mut Self {
        if self.error.is_some() {
            return self;
        }
        let Ok(len) = u32::try_from(v.len()) else {
            self.error = Some(WireError::Oversize { len: v.len() });
            return self;
        };
        self.put_u32(len);
        self.buf.extend_from_slice(v);
        self
    }

    /// Append a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, v: &str) -> &mut Self {
        self.put_bytes(v.as_bytes())
    }

    /// Append raw bytes with no length prefix (fixed-size fields).
    pub fn put_raw(&mut self, v: &[u8]) -> &mut Self {
        if self.error.is_none() {
            self.buf.extend_from_slice(v);
        }
        self
    }

    /// The poisoning error, if an oversize put was rejected.
    pub fn error(&self) -> Option<&WireError> {
        self.error.as_ref()
    }

    /// Finish, returning the buffer — or the poisoning error if any
    /// put was rejected.
    pub fn into_bytes(self) -> Result<Vec<u8>, WireError> {
        match self.error {
            Some(e) => Err(e),
            None => Ok(self.buf),
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before the field.
    Truncated {
        /// What was being read.
        what: &'static str,
    },
    /// A string field was not valid UTF-8.
    BadUtf8,
    /// A length prefix exceeded the remaining buffer (corruption guard).
    BadLength {
        /// What was being read.
        what: &'static str,
        /// The claimed length.
        claimed: usize,
        /// Remaining bytes.
        remaining: usize,
    },
    /// An enum tag was out of range.
    BadTag {
        /// What was being read.
        what: &'static str,
        /// The offending tag.
        tag: u8,
    },
    /// Trailing bytes after a complete decode.
    TrailingBytes(usize),
    /// A writer-side payload exceeded the `u32` length-prefix range.
    Oversize {
        /// Byte length of the rejected payload.
        len: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Truncated { what } => write!(f, "truncated while reading {what}"),
            WireError::BadUtf8 => write!(f, "string field is not valid UTF-8"),
            WireError::BadLength {
                what,
                claimed,
                remaining,
            } => write!(
                f,
                "length {claimed} for {what} exceeds remaining {remaining} bytes"
            ),
            WireError::BadTag { what, tag } => write!(f, "invalid tag {tag} for {what}"),
            WireError::TrailingBytes(n) => write!(f, "{n} trailing bytes after decode"),
            WireError::Oversize { len } => {
                write!(f, "payload of {len} bytes exceeds the u32 length prefix")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Deserialization reader.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Read from `buf`.
    pub fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        // `checked_add` so a hostile `n` near `usize::MAX` cannot wrap
        // the bound check into a false pass.
        let end = match self.pos.checked_add(n) {
            Some(end) if end <= self.buf.len() => end,
            _ => return Err(WireError::Truncated { what }),
        };
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// Read a `u8`.
    pub fn get_u8(&mut self, what: &'static str) -> Result<u8, WireError> {
        Ok(self.take(1, what)?[0])
    }

    /// Read a little-endian `u32`.
    pub fn get_u32(&mut self, what: &'static str) -> Result<u32, WireError> {
        let b = self.take(4, what)?;
        Ok(u32::from_le_bytes(b.try_into().expect("4 bytes")))
    }

    /// Read a little-endian `u64`.
    pub fn get_u64(&mut self, what: &'static str) -> Result<u64, WireError> {
        let b = self.take(8, what)?;
        Ok(u64::from_le_bytes(b.try_into().expect("8 bytes")))
    }

    /// Read a length-prefixed byte string. The declared length is
    /// checked against the remaining buffer *before* any allocation,
    /// so a corrupt prefix cannot drive an outsized `Vec`.
    pub fn get_bytes(&mut self, what: &'static str) -> Result<Vec<u8>, WireError> {
        let len = self.get_u32(what)? as usize;
        if len > self.remaining() {
            return Err(WireError::BadLength {
                what,
                claimed: len,
                remaining: self.remaining(),
            });
        }
        Ok(self.take(len, what)?.to_vec())
    }

    /// Read a `u32` element count and validate it against the
    /// remaining buffer: each element occupies at least
    /// `min_elem_bytes` on the wire, so a count whose minimum footprint
    /// exceeds the remaining bytes is rejected here — before the caller
    /// sizes a `Vec::with_capacity` from it.
    pub fn get_count(
        &mut self,
        what: &'static str,
        min_elem_bytes: usize,
    ) -> Result<usize, WireError> {
        let n = self.get_u32(what)? as usize;
        if n.saturating_mul(min_elem_bytes.max(1)) > self.remaining() {
            return Err(WireError::BadLength {
                what,
                claimed: n,
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }

    /// Read a length-prefixed UTF-8 string.
    pub fn get_str(&mut self, what: &'static str) -> Result<String, WireError> {
        let b = self.get_bytes(what)?;
        String::from_utf8(b).map_err(|_| WireError::BadUtf8)
    }

    /// Read `n` raw bytes (fixed-size fields).
    pub fn get_raw(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], WireError> {
        self.take(n, what)
    }

    /// Remaining unread byte count.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Assert the buffer is fully consumed.
    pub fn finish(self) -> Result<(), WireError> {
        if self.remaining() != 0 {
            return Err(WireError::TrailingBytes(self.remaining()));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_all_field_kinds() {
        let mut w = Writer::new();
        w.put_u8(7)
            .put_u32(0xAABB_CCDD)
            .put_u64(u64::MAX)
            .put_bytes(&[1, 2, 3])
            .put_str("kshot")
            .put_raw(&[9, 9]);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_u8("a").unwrap(), 7);
        assert_eq!(r.get_u32("b").unwrap(), 0xAABB_CCDD);
        assert_eq!(r.get_u64("c").unwrap(), u64::MAX);
        assert_eq!(r.get_bytes("d").unwrap(), vec![1, 2, 3]);
        assert_eq!(r.get_str("e").unwrap(), "kshot");
        assert_eq!(r.get_raw(2, "f").unwrap(), &[9, 9]);
        r.finish().unwrap();
    }

    #[test]
    fn truncation_detected() {
        let mut w = Writer::new();
        w.put_u64(1);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes[..4]);
        assert!(matches!(
            r.get_u64("x"),
            Err(WireError::Truncated { what: "x" })
        ));
    }

    #[test]
    fn bad_length_detected() {
        let mut w = Writer::new();
        w.put_u32(1000); // claims 1000 bytes follow
        w.put_raw(&[1, 2]);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_bytes("payload"),
            Err(WireError::BadLength { .. })
        ));
    }

    #[test]
    fn bad_utf8_detected() {
        let mut w = Writer::new();
        w.put_bytes(&[0xFF, 0xFE]);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_str("s"), Err(WireError::BadUtf8));
    }

    #[test]
    fn trailing_bytes_detected() {
        let mut w = Writer::new();
        w.put_u8(1).put_u8(2);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        r.get_u8("a").unwrap();
        assert_eq!(r.clone().finish(), Err(WireError::TrailingBytes(1)));
        r.get_u8("b").unwrap();
        r.finish().unwrap();
    }

    #[test]
    fn errors_display() {
        for e in [
            WireError::Truncated { what: "x" },
            WireError::BadUtf8,
            WireError::BadLength {
                what: "y",
                claimed: 9,
                remaining: 1,
            },
            WireError::BadTag { what: "z", tag: 9 },
            WireError::TrailingBytes(3),
            WireError::Oversize { len: 1 << 33 },
        ] {
            assert!(!e.to_string().is_empty());
        }
    }

    /// Regression (pre-fix: `put_bytes` did `v.len() as u32`, silently
    /// truncating the prefix of a >4 GiB payload). The payload is a
    /// zeroed `Vec`, so the pages are never touched — the rejection
    /// must happen before any copy.
    #[test]
    #[cfg(target_pointer_width = "64")]
    fn oversize_put_bytes_poisons_the_writer() {
        let huge = vec![0u8; u32::MAX as usize + 1];
        let mut w = Writer::new();
        w.put_u8(1).put_bytes(&huge).put_u8(2);
        assert_eq!(w.error(), Some(&WireError::Oversize { len: huge.len() }));
        // Poison is sticky: the trailing put did not land either.
        assert_eq!(w.len(), 1);
        assert_eq!(w.into_bytes(), Err(WireError::Oversize { len: huge.len() }));
    }

    #[test]
    #[cfg(target_pointer_width = "64")]
    fn exactly_u32_max_is_representable() {
        // The boundary itself must still be accepted: try_from(u32::MAX)
        // succeeds, one past it does not. Checked without materializing
        // 4 GiB by probing the conversion the writer relies on.
        assert!(u32::try_from(u32::MAX as usize).is_ok());
        assert!(u32::try_from(u32::MAX as usize + 1).is_err());
    }

    /// Regression: `take` computed `pos + n` unchecked, so a hostile
    /// `get_raw` length near `usize::MAX` would overflow-panic in debug
    /// (or wrap in release) instead of reporting truncation.
    #[test]
    fn reader_length_overflow_is_truncation_not_panic() {
        let bytes = [1u8, 2, 3];
        let mut r = Reader::new(&bytes);
        r.get_u8("a").unwrap();
        assert!(matches!(
            r.get_raw(usize::MAX - 1, "huge"),
            Err(WireError::Truncated { what: "huge" })
        ));
        // Reader is still usable after the rejected read.
        assert_eq!(r.get_u8("b").unwrap(), 2);
    }

    #[test]
    fn get_count_rejects_counts_larger_than_the_buffer() {
        let mut w = Writer::new();
        w.put_u32(1_000_000); // claims a million 8-byte elements
        w.put_u64(0);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            r.get_count("entries", 8),
            Err(WireError::BadLength {
                what: "entries",
                claimed: 1_000_000,
                ..
            })
        ));
        // A plausible count passes.
        let mut w = Writer::new();
        w.put_u32(1);
        w.put_u64(42);
        let bytes = w.into_bytes().unwrap();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.get_count("entries", 8).unwrap(), 1);
        assert_eq!(r.get_u64("e").unwrap(), 42);
    }
}
