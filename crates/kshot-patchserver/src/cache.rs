//! Shared immutable bundle cache for fleet campaigns.
//!
//! A datacenter pushing one patch to N machines ships the *same*
//! encoded bundle N times. Decoding (and integrity-hashing) it once per
//! machine is pure waste: the bundle is immutable after verification,
//! so one decode can serve every session. [`BundleCache`] keys decoded
//! bundles by the SHA-256 of their encoded bytes — the same digest the
//! bundle's trailing integrity hash covers — and hands out `Arc`s, so
//! concurrent fleet workers share one allocation.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use kshot_crypto::sha256::{sha256, DIGEST_LEN};

use crate::bundle::PatchBundle;
use crate::wire::WireError;

/// A concurrent decode-once cache of verified patch bundles.
///
/// Cheap to clone conceptually — wrap it in an `Arc` and share it
/// across workers; all methods take `&self`.
#[derive(Debug, Default)]
pub struct BundleCache {
    entries: Mutex<BTreeMap<[u8; DIGEST_LEN], Arc<PatchBundle>>>,
    hits: AtomicU64,
    misses: AtomicU64,
}

impl BundleCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// The decoded bundle for `bytes`, decoding (with full integrity
    /// verification) only on first sight of this exact byte string.
    ///
    /// # Errors
    ///
    /// [`WireError`] from [`PatchBundle::decode`] on a malformed or
    /// corrupted payload; failures are never cached, so a corrupt
    /// transfer followed by a clean resend succeeds.
    pub fn get_or_decode(&self, bytes: &[u8]) -> Result<Arc<PatchBundle>, WireError> {
        let key = sha256(bytes);
        if let Some(found) = self.entries.lock().unwrap().get(&key) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            kshot_telemetry::counter("cache.bundle_hit", 1);
            return Ok(Arc::clone(found));
        }
        // Decode outside the lock: it hashes and parses the whole
        // payload, and other workers should not stall behind it. Two
        // workers racing the same first decode both succeed; one
        // insertion wins and the duplicate Arc is dropped.
        let decoded = Arc::new(PatchBundle::decode(bytes)?);
        self.misses.fetch_add(1, Ordering::Relaxed);
        kshot_telemetry::counter("cache.bundle_miss", 1);
        let mut entries = self.entries.lock().unwrap();
        let winner = entries.entry(key).or_insert_with(|| Arc::clone(&decoded));
        Ok(Arc::clone(winner))
    }

    /// Pre-seed the cache with an already-decoded bundle, keyed by its
    /// canonical encoding. Lets an orchestrator that *built* the bundle
    /// skip even the first decode.
    ///
    /// # Errors
    ///
    /// [`WireError::Oversize`] if the bundle cannot be encoded.
    pub fn insert(&self, bundle: Arc<PatchBundle>) -> Result<(), WireError> {
        let key = sha256(&bundle.try_encode()?);
        self.entries.lock().unwrap().insert(key, bundle);
        Ok(())
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Cache misses (i.e. actual decodes) so far.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Number of distinct bundles cached.
    pub fn len(&self) -> usize {
        self.entries.lock().unwrap().len()
    }

    /// True when nothing has been cached.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bundle::{BundleTypes, PatchEntry};

    fn bundle(id: &str) -> PatchBundle {
        PatchBundle {
            id: id.into(),
            kernel_version: "kv-test".into(),
            entries: vec![PatchEntry {
                name: "f".into(),
                taddr: 0x10_0000,
                tsize: 16,
                ftrace_offset: None,
                expected_pre_hash: [7; 32],
                body: vec![0xC3],
                relocs: vec![],
            }],
            new_functions: vec![],
            global_ops: vec![],
            segments: vec![],
            types: BundleTypes::default(),
        }
    }

    #[test]
    fn decodes_once_then_hits() {
        let cache = BundleCache::new();
        let bytes = bundle("CVE-A").encode();
        let a = cache.get_or_decode(&bytes).unwrap();
        let b = cache.get_or_decode(&bytes).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn distinct_bundles_get_distinct_entries() {
        let cache = BundleCache::new();
        let a = cache.get_or_decode(&bundle("CVE-A").encode()).unwrap();
        let b = cache.get_or_decode(&bundle("CVE-B").encode()).unwrap();
        assert!(!Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.misses(), 2);
    }

    #[test]
    fn corrupt_bytes_are_rejected_and_not_cached() {
        let cache = BundleCache::new();
        let mut bytes = bundle("CVE-A").encode();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 1;
        assert!(cache.get_or_decode(&bytes).is_err());
        assert!(cache.is_empty());
        // The clean resend succeeds.
        bytes[mid] ^= 1;
        assert!(cache.get_or_decode(&bytes).is_ok());
    }

    #[test]
    fn insert_preseeds_the_canonical_encoding() {
        let cache = BundleCache::new();
        let b = Arc::new(bundle("CVE-A"));
        cache.insert(Arc::clone(&b)).unwrap();
        let got = cache.get_or_decode(&b.encode()).unwrap();
        assert!(Arc::ptr_eq(&got, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 0));
    }

    #[test]
    fn shared_across_threads() {
        let cache = Arc::new(BundleCache::new());
        let bytes = Arc::new(bundle("CVE-A").encode());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let cache = Arc::clone(&cache);
                let bytes = Arc::clone(&bytes);
                std::thread::spawn(move || cache.get_or_decode(&bytes).unwrap().id.clone())
            })
            .collect();
        for h in handles {
            assert_eq!(h.join().unwrap(), "CVE-A");
        }
        assert_eq!(cache.len(), 1);
        assert_eq!(cache.hits() + cache.misses(), 4);
    }
}
