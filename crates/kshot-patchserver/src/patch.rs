//! Source-level patch description and application.
//!
//! A CVE fix is expressed the way kernel developers express it: edits to
//! the source tree. The patch server applies the edit to its registered
//! tree and rebuilds (paper §V-A: "The remote server then builds
//! pre-patch and post-patch versions of the kernel binary using that same
//! compilation information").

use std::fmt;

use kshot_kcc::ir::{Function, Global, Program};

/// A source-level patch: the edit set a CVE fix applies to the tree.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SourcePatch {
    /// Identifier (CVE number in the benchmark).
    pub id: String,
    /// Functions whose definitions are replaced.
    pub replace_functions: Vec<Function>,
    /// Brand-new functions added by the patch.
    pub add_functions: Vec<Function>,
    /// Brand-new globals added by the patch (append-only).
    pub add_globals: Vec<Global>,
    /// Existing single-word globals whose value changes.
    pub set_globals: Vec<(String, u64)>,
    /// Existing globals resized to a new word count — a layout-changing
    /// edit the server will reject as hazardous (paper §VIII), present so
    /// the rejection path is testable.
    pub resize_globals: Vec<(String, usize)>,
}

/// Errors applying a source patch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatchApplyError {
    /// A replacement names a function absent from the tree.
    NoSuchFunction(String),
    /// An added function already exists.
    FunctionExists(String),
    /// A set-value names a global absent from the tree.
    NoSuchGlobal(String),
    /// An added global already exists.
    GlobalExists(String),
}

impl fmt::Display for PatchApplyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatchApplyError::NoSuchFunction(n) => {
                write!(f, "patch replaces nonexistent function `{n}`")
            }
            PatchApplyError::FunctionExists(n) => {
                write!(f, "patch adds function `{n}` which already exists")
            }
            PatchApplyError::NoSuchGlobal(n) => {
                write!(f, "patch sets nonexistent global `{n}`")
            }
            PatchApplyError::GlobalExists(n) => {
                write!(f, "patch adds global `{n}` which already exists")
            }
        }
    }
}

impl std::error::Error for PatchApplyError {}

impl SourcePatch {
    /// A patch with the given id and no edits yet.
    pub fn new(id: impl Into<String>) -> Self {
        Self {
            id: id.into(),
            ..Default::default()
        }
    }

    /// Builder: replace a function definition.
    pub fn replacing(mut self, f: Function) -> Self {
        self.replace_functions.push(f);
        self
    }

    /// Builder: add a new function.
    pub fn adding_function(mut self, f: Function) -> Self {
        self.add_functions.push(f);
        self
    }

    /// Builder: add a new global (appended after existing globals).
    pub fn adding_global(mut self, g: Global) -> Self {
        self.add_globals.push(g);
        self
    }

    /// Builder: change an existing global's (first-word) value.
    pub fn setting_global(mut self, name: impl Into<String>, value: u64) -> Self {
        self.set_globals.push((name.into(), value));
        self
    }

    /// Builder: resize an existing global (layout hazard; the server
    /// refuses such patches).
    pub fn resizing_global(mut self, name: impl Into<String>, words: usize) -> Self {
        self.resize_globals.push((name.into(), words));
        self
    }

    /// Apply to a source tree, producing the post-patch tree.
    ///
    /// Globals are strictly appended so every pre-existing symbol keeps
    /// its address in the rebuilt image — the compatibility invariant the
    /// whole binary-patching scheme rests on.
    ///
    /// # Errors
    ///
    /// Returns [`PatchApplyError`] if the edit references missing or
    /// duplicate symbols.
    pub fn apply(&self, pre: &Program) -> Result<Program, PatchApplyError> {
        let mut post = pre.clone();
        for f in &self.replace_functions {
            if post.replace_function(f.clone()).is_none() {
                return Err(PatchApplyError::NoSuchFunction(f.name.clone()));
            }
        }
        for f in &self.add_functions {
            if post.function(&f.name).is_some() {
                return Err(PatchApplyError::FunctionExists(f.name.clone()));
            }
            post.add_function(f.clone());
        }
        for g in &self.add_globals {
            if post.global(&g.name).is_some() {
                return Err(PatchApplyError::GlobalExists(g.name.clone()));
            }
            post.add_global(g.clone());
        }
        for (name, value) in &self.set_globals {
            let g = post
                .globals
                .iter_mut()
                .find(|g| &g.name == name)
                .ok_or_else(|| PatchApplyError::NoSuchGlobal(name.clone()))?;
            g.words[0] = *value;
        }
        for (name, words) in &self.resize_globals {
            let g = post
                .globals
                .iter_mut()
                .find(|g| &g.name == name)
                .ok_or_else(|| PatchApplyError::NoSuchGlobal(name.clone()))?;
            g.words.resize(*words, 0);
        }
        Ok(post)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::Expr;

    fn tree() -> Program {
        let mut p = Program::new();
        p.add_global(Global::word("limit", 10));
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(1)));
        p
    }

    #[test]
    fn replace_and_add() {
        let patch = SourcePatch::new("CVE-TEST-1")
            .replacing(Function::new("f", 0, 0).returning(Expr::c(2)))
            .adding_function(Function::new("g", 0, 0).returning(Expr::c(3)))
            .adding_global(Global::word("extra", 0))
            .setting_global("limit", 20);
        let post = patch.apply(&tree()).unwrap();
        post.validate().unwrap();
        assert_eq!(
            post.function("f").unwrap().body,
            vec![kshot_kcc::ir::Stmt::Return(Expr::c(2))]
        );
        assert!(post.function("g").is_some());
        assert_eq!(post.global("limit").unwrap().words[0], 20);
        // Append-only: `limit` stays first.
        assert_eq!(post.globals[0].name, "limit");
        assert_eq!(post.globals[1].name, "extra");
    }

    #[test]
    fn replace_missing_rejected() {
        let patch =
            SourcePatch::new("x").replacing(Function::new("ghost", 0, 0).returning(Expr::c(0)));
        assert_eq!(
            patch.apply(&tree()),
            Err(PatchApplyError::NoSuchFunction("ghost".into()))
        );
    }

    #[test]
    fn add_duplicate_function_rejected() {
        let patch =
            SourcePatch::new("x").adding_function(Function::new("f", 0, 0).returning(Expr::c(0)));
        assert_eq!(
            patch.apply(&tree()),
            Err(PatchApplyError::FunctionExists("f".into()))
        );
    }

    #[test]
    fn add_duplicate_global_rejected() {
        let patch = SourcePatch::new("x").adding_global(Global::word("limit", 0));
        assert_eq!(
            patch.apply(&tree()),
            Err(PatchApplyError::GlobalExists("limit".into()))
        );
    }

    #[test]
    fn set_missing_global_rejected() {
        let patch = SourcePatch::new("x").setting_global("nope", 1);
        assert_eq!(
            patch.apply(&tree()),
            Err(PatchApplyError::NoSuchGlobal("nope".into()))
        );
    }

    #[test]
    fn pre_tree_is_untouched() {
        let pre = tree();
        let patch = SourcePatch::new("x").replacing(Function::new("f", 0, 0).returning(Expr::c(9)));
        let _ = patch.apply(&pre).unwrap();
        assert_eq!(
            pre.function("f").unwrap().body,
            vec![kshot_kcc::ir::Stmt::Return(Expr::c(1))]
        );
    }
}
