//! The runtime function tracer.
//!
//! Recent kernels compile most functions with a 5-byte pad at entry that
//! the tracing machinery may rewrite at runtime (paper §V-A: 23,000 of
//! 32,000 functions in Linux 3.14). KShot must not clobber those bytes
//! when installing trampolines. This module is the *owner* of those pads
//! in the simulation: it counts hits as the interpreter executes
//! [`kshot_isa::Inst::Ftrace`] pads, and it can rewrite pad payload bytes
//! at runtime — creating exactly the hazard the paper's "patch after the
//! pad" rule avoids.

use std::collections::BTreeMap;

use kshot_isa::{opcodes, Inst};
use kshot_machine::{AccessCtx, Machine, MachineError};

/// Runtime tracer state: whether tracing is enabled, and per-site hit
/// counts.
#[derive(Debug, Clone, Default)]
pub struct TraceState {
    enabled: bool,
    hits: BTreeMap<u32, u64>,
}

impl TraceState {
    /// Fresh, disabled tracer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Enable hit counting.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disable hit counting (pads still execute, hits are not recorded).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Whether tracing is enabled.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a pad execution (called by the interpreter).
    pub(crate) fn record(&mut self, site: u32) {
        if self.enabled {
            *self.hits.entry(site).or_insert(0) += 1;
            kshot_telemetry::counter("ftrace.hits", 1);
        }
    }

    /// Hits recorded for a trace site.
    pub fn hits(&self, site: u32) -> u64 {
        self.hits.get(&site).copied().unwrap_or(0)
    }

    /// Total hits across all sites.
    pub fn total_hits(&self) -> u64 {
        self.hits.values().sum()
    }

    /// Clear all counters.
    pub fn reset(&mut self) {
        self.hits.clear();
    }
}

/// Rewrite the ftrace pad at `pad_addr` to carry a new site id — the
/// kernel's dynamic-tracing runtime doing what it is allowed to do with
/// its own 5 bytes. Fails if the bytes there are not an ftrace pad
/// (e.g. someone clobbered them with a trampoline — the bug KShot's
/// pad-aware patching avoids).
///
/// # Errors
///
/// Returns a machine fault on unreadable memory, or an
/// [`MachineError::AccessViolation`]-shaped fault when the pad was
/// destroyed.
pub fn retag_pad(machine: &mut Machine, pad_addr: u64, new_site: u32) -> Result<(), MachineError> {
    let mut cur = [0u8; 5];
    // The tracer runs inside the kernel, but rewriting r-x text is done
    // through the kernel's own text-poke machinery; model that with
    // firmware-privilege writes after verifying the pad is intact.
    machine.read_bytes(AccessCtx::Firmware, pad_addr, &mut cur)?;
    if cur[0] != opcodes::FTRACE {
        return Err(MachineError::AccessViolation {
            addr: pad_addr,
            access: kshot_machine::attrs::Access::Write,
            ctx: "ftrace",
            reason: "trace pad destroyed",
        });
    }
    let mut pad = Vec::with_capacity(5);
    Inst::Ftrace { site: new_site }.encode_into(&mut pad);
    machine.write_bytes(AccessCtx::Firmware, pad_addr, &pad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_machine::MemLayout;

    #[test]
    fn hit_counting_respects_enable() {
        let mut t = TraceState::new();
        t.record(1);
        assert_eq!(t.hits(1), 0); // disabled
        t.enable();
        t.record(1);
        t.record(1);
        t.record(2);
        assert_eq!(t.hits(1), 2);
        assert_eq!(t.hits(2), 1);
        assert_eq!(t.total_hits(), 3);
        t.disable();
        t.record(1);
        assert_eq!(t.hits(1), 2);
        t.reset();
        assert_eq!(t.total_hits(), 0);
    }

    #[test]
    fn retag_rewrites_valid_pad() {
        let mut m = Machine::new(MemLayout::standard()).unwrap();
        let addr = m.layout().kernel_text_base;
        let mut pad = Vec::new();
        Inst::Ftrace { site: 7 }.encode_into(&mut pad);
        m.write_bytes(AccessCtx::Firmware, addr, &pad).unwrap();
        retag_pad(&mut m, addr, 99).unwrap();
        let mut out = [0u8; 5];
        m.read_bytes(AccessCtx::Firmware, addr, &mut out).unwrap();
        let (inst, _) = Inst::decode(&out, 0).unwrap();
        assert_eq!(inst, Inst::Ftrace { site: 99 });
    }

    #[test]
    fn retag_refuses_destroyed_pad() {
        let mut m = Machine::new(MemLayout::standard()).unwrap();
        let addr = m.layout().kernel_text_base;
        // A jmp where the pad should be (a naive patcher's damage).
        let mut jmp = [0u8; 5];
        kshot_isa::write_jmp_rel32(&mut jmp, addr, addr + 64).unwrap();
        m.write_bytes(AccessCtx::Firmware, addr, &jmp).unwrap();
        let err = retag_pad(&mut m, addr, 1).unwrap_err();
        assert!(matches!(err, MachineError::AccessViolation { reason, .. }
            if reason == "trace pad destroyed"));
    }
}
