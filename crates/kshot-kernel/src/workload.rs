//! The Sysbench analogue: a syscall-heavy synthetic workload with
//! throughput accounting in simulated time.
//!
//! Paper §VI-C3: "We also used Sysbench to measure overall system
//! overhead. We live patched the kernel while Sysbench executed in
//! userspace and measured end-user-visible system overhead. Over 1,000
//! live patches … we incur under 3% overhead." The
//! `bench/benches/sysbench_overhead.rs` harness replays that experiment
//! against this engine.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kshot_machine::SimTime;

use crate::interp::ExecFault;
use crate::loader::Kernel;

/// One workload operation: a kernel function invocation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Op {
    /// Kernel function to invoke.
    pub func: String,
    /// Arguments.
    pub args: Vec<u64>,
}

/// A deterministic stream of operations over a set of kernel functions.
#[derive(Debug, Clone)]
pub struct Workload {
    ops: Vec<Op>,
    /// Additional simulated time charged per op, modelling the userspace
    /// side of each benchmark event (real sysbench events are
    /// millisecond-class prime computations; the interpreted kernel part
    /// of an op is only tens of µs). Zero by default.
    op_latency: SimTime,
}

/// Result of running a workload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkloadReport {
    /// Operations completed.
    pub ops: u64,
    /// Operations that faulted (should be zero on a healthy kernel).
    pub faults: u64,
    /// Simulated time consumed.
    pub elapsed: SimTime,
}

impl WorkloadReport {
    /// Throughput in operations per simulated second.
    pub fn ops_per_sec(&self) -> f64 {
        if self.elapsed == SimTime::ZERO {
            return 0.0;
        }
        self.ops as f64 / (self.elapsed.as_ns() as f64 / 1e9)
    }

    /// Relative slowdown of `self` versus a `baseline` run of the same
    /// op count, as a fraction (0.03 = 3% overhead).
    pub fn overhead_vs(&self, baseline: &WorkloadReport) -> f64 {
        if baseline.elapsed == SimTime::ZERO {
            return 0.0;
        }
        let b = baseline.elapsed.as_ns() as f64;
        let s = self.elapsed.as_ns() as f64;
        (s - b) / b
    }
}

impl Workload {
    /// Build a workload from an explicit op sequence.
    pub fn from_ops(ops: Vec<Op>) -> Self {
        Self {
            ops,
            op_latency: SimTime::ZERO,
        }
    }

    /// Builder: charge `latency` of simulated time per op on top of the
    /// interpreted kernel work (models the userspace share of each
    /// benchmark event; see EXPERIMENTS.md).
    pub fn with_op_latency(mut self, latency: SimTime) -> Self {
        self.op_latency = latency;
        self
    }

    /// Build a deterministic random mix of `count` calls over the given
    /// `(function, max_arg)` menu — each op calls one function with a
    /// single argument in `1..=max_arg`.
    pub fn uniform_mix(menu: &[(&str, u64)], count: usize, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let ops = (0..count)
            .map(|_| {
                let (f, max) = menu[rng.gen_range(0..menu.len())];
                Op {
                    func: f.to_string(),
                    args: vec![rng.gen_range(1..=max)],
                }
            })
            .collect();
        Self {
            ops,
            op_latency: SimTime::ZERO,
        }
    }

    /// Number of operations in the workload.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the workload is empty.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The op list.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Run every operation against the kernel, timing in simulated time.
    ///
    /// Individual op faults are counted, not fatal (a userspace benchmark
    /// keeps running when one syscall fails).
    pub fn run(&self, kernel: &mut Kernel) -> WorkloadReport {
        self.run_with_hook(kernel, |_, _| {})
    }

    /// Like [`Workload::run`], invoking `hook(kernel, op_index)` before
    /// every operation. The overhead experiment uses the hook to inject
    /// live patch events at chosen points in the op stream.
    pub fn run_with_hook(
        &self,
        kernel: &mut Kernel,
        mut hook: impl FnMut(&mut Kernel, usize),
    ) -> WorkloadReport {
        let start = kernel.machine().now();
        let mut span = kshot_telemetry::span_at("workload.run", start.as_ns());
        let mut ops = 0u64;
        let mut faults = 0u64;
        for (i, op) in self.ops.iter().enumerate() {
            hook(kernel, i);
            kernel.machine_mut().charge(self.op_latency);
            match kernel.call_function(&op.func, &op.args) {
                Ok(_) => ops += 1,
                Err(ExecFault::UnknownSymbol) => faults += 1,
                Err(_) => faults += 1,
            }
        }
        let end = kernel.machine().now();
        kshot_telemetry::counter("workload.ops", ops);
        kshot_telemetry::counter("workload.faults", faults);
        span.field("ops", ops);
        span.field("faults", faults);
        span.end_at(end.as_ns());
        WorkloadReport {
            ops,
            faults,
            elapsed: end - start,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_isa::Cond;
    use kshot_kcc::ir::{CondExpr, Expr, Function, Program, Stmt};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_machine::MemLayout;

    fn boot() -> Kernel {
        let mut p = Program::new();
        // A CPU-bound op akin to sysbench's prime loop.
        p.add_function(Function::new("cpu_op", 1, 2).with_body(vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::Assign(1, Expr::c(0)),
            Stmt::While {
                cond: CondExpr::new(Expr::local(1), Cond::B, Expr::param(0)),
                body: vec![
                    Stmt::Assign(0, Expr::local(0).add(Expr::local(1).mul(Expr::local(1)))),
                    Stmt::Assign(1, Expr::local(1).add(Expr::c(1))),
                ],
            },
            Stmt::Return(Expr::local(0)),
        ]));
        p.add_function(Function::new("fast_op", 1, 0).returning(Expr::param(0).add(Expr::c(1))));
        p.validate().unwrap();
        let layout = MemLayout::standard();
        let image = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        Kernel::boot(image, "kv-test", layout).unwrap()
    }

    #[test]
    fn workload_runs_and_times() {
        let mut k = boot();
        let w = Workload::uniform_mix(&[("cpu_op", 50), ("fast_op", 10)], 100, 42);
        let r = w.run(&mut k);
        assert_eq!(r.ops, 100);
        assert_eq!(r.faults, 0);
        assert!(r.elapsed > SimTime::ZERO);
        assert!(r.ops_per_sec() > 0.0);
    }

    #[test]
    fn deterministic_given_seed() {
        let w1 = Workload::uniform_mix(&[("cpu_op", 50)], 50, 7);
        let w2 = Workload::uniform_mix(&[("cpu_op", 50)], 50, 7);
        assert_eq!(w1.ops(), w2.ops());
        let mut k1 = boot();
        let mut k2 = boot();
        assert_eq!(w1.run(&mut k1).elapsed, w2.run(&mut k2).elapsed);
    }

    #[test]
    fn hook_injection_points_fire() {
        let mut k = boot();
        let w = Workload::uniform_mix(&[("fast_op", 5)], 10, 1);
        let mut fired = 0;
        w.run_with_hook(&mut k, |_, _| fired += 1);
        assert_eq!(fired, 10);
    }

    #[test]
    fn overhead_accounting() {
        let base = WorkloadReport {
            ops: 100,
            faults: 0,
            elapsed: SimTime::from_us(100),
        };
        let patched = WorkloadReport {
            ops: 100,
            faults: 0,
            elapsed: SimTime::from_us(102),
        };
        let oh = patched.overhead_vs(&base);
        assert!((oh - 0.02).abs() < 1e-9);
    }

    #[test]
    fn op_latency_charges_simulated_time() {
        let mut k1 = boot();
        let mut k2 = boot();
        let w_fast = Workload::uniform_mix(&[("fast_op", 5)], 10, 3);
        let w_slow =
            Workload::uniform_mix(&[("fast_op", 5)], 10, 3).with_op_latency(SimTime::from_us(100));
        let fast = w_fast.run(&mut k1);
        let slow = w_slow.run(&mut k2);
        assert_eq!(
            slow.elapsed.as_ns() - fast.elapsed.as_ns(),
            10 * 100_000,
            "latency must add exactly 100µs per op"
        );
    }

    #[test]
    fn faulting_ops_are_counted_not_fatal() {
        let mut k = boot();
        let w = Workload::from_ops(vec![
            Op {
                func: "fast_op".into(),
                args: vec![1],
            },
            Op {
                func: "missing".into(),
                args: vec![],
            },
            Op {
                func: "fast_op".into(),
                args: vec![2],
            },
        ]);
        let r = w.run(&mut k);
        assert_eq!(r.ops, 2);
        assert_eq!(r.faults, 1);
    }
}
