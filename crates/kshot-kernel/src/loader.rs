//! Booting a kernel image onto the simulated machine.

use std::fmt;

use kshot_kcc::codegen::CodegenOptions;
use kshot_kcc::image::KernelImage;
use kshot_machine::{AccessCtx, Machine, MachineError, MemLayout, PageAttrs};

use crate::ftrace::TraceState;
use crate::task::Task;

/// Basic OS information gathered at boot and shipped to the remote patch
/// server so it can rebuild byte-compatible binaries (paper §V-A: "basic
/// information about the OS, including the kernel version, configuration,
/// and compilation flags sufficient to rebuild the binary image").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct KernelInfo {
    /// Kernel version string (e.g. `"kv-3.14"`).
    pub version: String,
    /// Physical base of the text segment.
    pub text_base: u64,
    /// Physical base of the data segment.
    pub data_base: u64,
    /// Compiler flags the image was built with.
    pub options: CodegenOptions,
}

/// Errors raised while booting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BootError {
    /// A segment does not fit its region in the memory layout.
    SegmentTooLarge {
        /// Which segment.
        segment: &'static str,
        /// Segment size.
        size: u64,
        /// Region capacity.
        capacity: u64,
    },
    /// The image's base addresses disagree with the layout.
    BaseMismatch {
        /// Which segment.
        segment: &'static str,
        /// Address in the image.
        image: u64,
        /// Address in the layout.
        layout: u64,
    },
    /// Machine-level failure while loading.
    Machine(MachineError),
}

impl fmt::Display for BootError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BootError::SegmentTooLarge {
                segment,
                size,
                capacity,
            } => write!(
                f,
                "{segment} segment of {size} bytes exceeds region capacity {capacity}"
            ),
            BootError::BaseMismatch {
                segment,
                image,
                layout,
            } => write!(
                f,
                "{segment} base mismatch: image says {image:#x}, layout says {layout:#x}"
            ),
            BootError::Machine(e) => write!(f, "machine fault during boot: {e}"),
        }
    }
}

impl std::error::Error for BootError {}

impl From<MachineError> for BootError {
    fn from(e: MachineError) -> Self {
        BootError::Machine(e)
    }
}

/// The running kernel: a machine, the boot-time image it was loaded from,
/// the runtime tracer, and the task table.
///
/// # Examples
///
/// ```
/// use kshot_kcc::ir::{Expr, Function, Program};
/// use kshot_kcc::{link, CodegenOptions};
/// use kshot_kernel::Kernel;
/// use kshot_machine::MemLayout;
///
/// let mut p = Program::new();
/// p.add_function(Function::new("double_it", 1, 0).returning(
///     Expr::param(0).mul(Expr::c(2))));
/// let layout = MemLayout::standard();
/// let image = link(&p, &CodegenOptions::default(),
///                  layout.kernel_text_base, layout.kernel_data_base).unwrap();
/// let mut k = Kernel::boot(image, "kv-test", layout).unwrap();
/// assert_eq!(k.call_function("double_it", &[21]).unwrap(), 42);
/// ```
#[derive(Debug)]
pub struct Kernel {
    pub(crate) machine: Machine,
    pub(crate) image: KernelImage,
    pub(crate) tracer: TraceState,
    pub(crate) tasks: Vec<Task>,
    pub(crate) current_task: Option<u64>,
    pub(crate) exec_trace: crate::interp::ExecTrace,
    version: String,
}

/// Stack bytes reserved per task.
pub(crate) const TASK_STACK_SIZE: u64 = 64 * 1024;

impl Kernel {
    /// Boot `image` on a fresh machine with the given layout.
    ///
    /// Performs what the boot loader and early kernel do in the paper's
    /// prototype: copy segments into place, apply page attributes (text
    /// `r-x`, data/stack `rw-`), and leave the boot-reserved KShot region
    /// untouched for `kshot-core` to claim.
    ///
    /// # Errors
    ///
    /// Returns a [`BootError`] if the image does not fit the layout.
    pub fn boot(
        image: KernelImage,
        version: impl Into<String>,
        layout: MemLayout,
    ) -> Result<Kernel, BootError> {
        let mut machine = Machine::new(layout)?;
        if image.text_base != layout.kernel_text_base {
            return Err(BootError::BaseMismatch {
                segment: "text",
                image: image.text_base,
                layout: layout.kernel_text_base,
            });
        }
        if image.data_base != layout.kernel_data_base {
            return Err(BootError::BaseMismatch {
                segment: "data",
                image: image.data_base,
                layout: layout.kernel_data_base,
            });
        }
        if image.text.len() as u64 > layout.kernel_text_size {
            return Err(BootError::SegmentTooLarge {
                segment: "text",
                size: image.text.len() as u64,
                capacity: layout.kernel_text_size,
            });
        }
        if image.data.len() as u64 > layout.kernel_data_size {
            return Err(BootError::SegmentTooLarge {
                segment: "data",
                size: image.data.len() as u64,
                capacity: layout.kernel_data_size,
            });
        }
        machine.write_bytes(AccessCtx::Firmware, image.text_base, &image.text)?;
        machine.write_bytes(AccessCtx::Firmware, image.data_base, &image.data)?;
        // Text pages are r-x (set by Machine::new); data and stack rw-.
        machine.set_page_attrs(
            layout.kernel_data_base,
            layout.kernel_data_size,
            PageAttrs::RW,
        )?;
        machine.set_page_attrs(
            layout.kernel_stack_base,
            layout.kernel_stack_size,
            PageAttrs::RW,
        )?;
        Ok(Kernel {
            machine,
            image,
            tracer: TraceState::new(),
            tasks: Vec::new(),
            current_task: None,
            exec_trace: crate::interp::ExecTrace::default(),
            version: version.into(),
        })
    }

    /// Kernel version string.
    pub fn version(&self) -> &str {
        &self.version
    }

    /// The OS info packet sent to the remote patch server.
    pub fn info(&self) -> KernelInfo {
        KernelInfo {
            version: self.version.clone(),
            text_base: self.image.text_base,
            data_base: self.image.data_base,
            options: self.image.options.clone(),
        }
    }

    /// Borrow the machine.
    pub fn machine(&self) -> &Machine {
        &self.machine
    }

    /// Mutably borrow the machine (the SMM handler and attackers use
    /// this; their accesses still go through privilege checks).
    pub fn machine_mut(&mut self) -> &mut Machine {
        &mut self.machine
    }

    /// The boot-time image (symbol table, segment bases). Note that after
    /// live patching, *machine memory* is authoritative; the image is the
    /// pristine boot copy.
    pub fn image(&self) -> &KernelImage {
        &self.image
    }

    /// Tear the kernel down and reclaim its pristine boot image. The
    /// image is never mutated after [`boot`](Self::boot) (live patching
    /// writes machine memory only), so the returned value is
    /// bit-identical to what was booted — fleet workers recycle it into
    /// the next machine's boot instead of cloning the shared image
    /// again.
    pub fn into_image(self) -> KernelImage {
        self.image
    }

    /// The execution-trace ring (post-mortem debugging aid).
    pub fn exec_trace(&self) -> &crate::interp::ExecTrace {
        &self.exec_trace
    }

    /// Mutable execution-trace access (enable/clear).
    pub fn exec_trace_mut(&mut self) -> &mut crate::interp::ExecTrace {
        &mut self.exec_trace
    }

    /// The runtime tracer.
    pub fn tracer(&self) -> &TraceState {
        &self.tracer
    }

    /// Mutable tracer access (enable/disable, rewrite pads).
    pub fn tracer_mut(&mut self) -> &mut TraceState {
        &mut self.tracer
    }

    /// Entry address of a named kernel function.
    pub fn function_addr(&self, name: &str) -> Option<u64> {
        self.image.symbols.lookup(name).map(|s| s.addr)
    }

    /// Read the first word of a named global from *live* kernel memory.
    ///
    /// # Errors
    ///
    /// Returns a fault if the global does not exist or memory is
    /// unreadable.
    pub fn read_global(&mut self, name: &str) -> Result<u64, crate::interp::ExecFault> {
        let sym = self
            .image
            .symbols
            .lookup_global(name)
            .ok_or(crate::interp::ExecFault::UnknownSymbol)?;
        let addr = sym.addr;
        self.machine
            .read_u64(AccessCtx::Kernel, addr)
            .map_err(crate::interp::ExecFault::Memory)
    }

    /// Read word `index` of a named global buffer from live memory.
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or the index is out of the
    /// global's bounds.
    pub fn read_global_word(
        &mut self,
        name: &str,
        index: u64,
    ) -> Result<u64, crate::interp::ExecFault> {
        let sym = self
            .image
            .symbols
            .lookup_global(name)
            .ok_or(crate::interp::ExecFault::UnknownSymbol)?;
        if (index + 1) * 8 > sym.size {
            return Err(crate::interp::ExecFault::UnknownSymbol);
        }
        let addr = sym.addr + index * 8;
        self.machine
            .read_u64(AccessCtx::Kernel, addr)
            .map_err(crate::interp::ExecFault::Memory)
    }

    /// Write the first word of a named global (test setup convenience;
    /// uses kernel privilege).
    ///
    /// # Errors
    ///
    /// Faults if the symbol is missing or memory is unwritable.
    pub fn write_global(&mut self, name: &str, value: u64) -> Result<(), crate::interp::ExecFault> {
        let sym = self
            .image
            .symbols
            .lookup_global(name)
            .ok_or(crate::interp::ExecFault::UnknownSymbol)?;
        let addr = sym.addr;
        self.machine
            .write_u64(AccessCtx::Kernel, addr, value)
            .map_err(crate::interp::ExecFault::Memory)
    }

    /// Top of the dedicated stack used by [`Kernel::call_function`]
    /// (task stacks are allocated above it).
    pub(crate) fn syscall_stack_top(&self) -> u64 {
        self.machine.layout().kernel_stack_base + TASK_STACK_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{Expr, Function, Program};
    use kshot_kcc::link;

    fn boot_simple() -> Kernel {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(9)));
        let layout = MemLayout::standard();
        let image = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        Kernel::boot(image, "kv-test", layout).unwrap()
    }

    #[test]
    fn boot_loads_text_into_memory() {
        let mut k = boot_simple();
        let addr = k.function_addr("f").unwrap();
        let mut b = [0u8; 1];
        // Text is readable (r-x) by the kernel.
        k.machine_mut()
            .read_bytes(AccessCtx::Kernel, addr, &mut b)
            .unwrap();
        // And not writable.
        assert!(k
            .machine_mut()
            .write_bytes(AccessCtx::Kernel, addr, &[0])
            .is_err());
    }

    #[test]
    fn boot_rejects_base_mismatch() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(9)));
        let layout = MemLayout::standard();
        let image = link(
            &p,
            &CodegenOptions::default(),
            0x4000,
            layout.kernel_data_base,
        )
        .unwrap();
        assert!(matches!(
            Kernel::boot(image, "kv", layout),
            Err(BootError::BaseMismatch { .. })
        ));
    }

    #[test]
    fn info_reflects_image() {
        let k = boot_simple();
        let info = k.info();
        assert_eq!(info.version, "kv-test");
        assert_eq!(info.text_base, MemLayout::standard().kernel_text_base);
    }

    #[test]
    fn read_write_globals() {
        let mut p = Program::new();
        p.add_global(kshot_kcc::ir::Global::word("g", 5));
        p.add_global(kshot_kcc::ir::Global::buffer("b", 3));
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(0)));
        let layout = MemLayout::standard();
        let image = link(
            &p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let mut k = Kernel::boot(image, "kv", layout).unwrap();
        assert_eq!(k.read_global("g").unwrap(), 5);
        k.write_global("g", 11).unwrap();
        assert_eq!(k.read_global("g").unwrap(), 11);
        assert_eq!(k.read_global_word("b", 2).unwrap(), 0);
        assert!(k.read_global_word("b", 3).is_err());
        assert!(k.read_global("missing").is_err());
    }
}
