#![warn(missing_docs)]

//! # kshot-kernel — the miniature running kernel
//!
//! The KShot paper patches *live* Linux kernels: the correctness criterion
//! for RQ1 is that a vulnerable kernel function misbehaves before the
//! patch and behaves after it, with no crashes, no corrupted tasks, and no
//! inconsistency for workloads running across the patch event (§VI-B).
//!
//! To make those observations real rather than asserted, this crate runs a
//! miniature kernel on the simulated machine:
//!
//! * [`Kernel::boot`] loads a [`kshot_kcc::KernelImage`] into machine
//!   memory the way a boot loader would (text `r-x`, data `rw-`), and
//!   reserves the KShot region per the paper's grub configuration.
//! * [`interp`] executes KV instructions against machine memory under
//!   kernel privilege — so a buffer overflow in a "kernel function" really
//!   scribbles over adjacent globals, and execute-only pages really fault
//!   when read.
//! * [`task`] provides preemptible tasks and a round-robin scheduler,
//!   letting live patches land *between* or *during* task slices.
//! * [`ftrace`] is the runtime tracer that owns the 5-byte pads at
//!   function entry (paper §V-A): it counts hits and may rewrite pad
//!   bytes at runtime, which live patching must tolerate.
//! * [`workload`] is the Sysbench analogue used by the whole-system
//!   overhead experiment (§VI-C3).

pub mod ftrace;
pub mod interp;
pub mod task;
pub mod workload;

mod loader;

pub use interp::{ExecFault, ExecTrace, StepEvent};
pub use loader::{BootError, Kernel, KernelInfo};
pub use task::{Scheduler, SliceOutcome, Task, TaskId, TaskState};
pub use workload::{Workload, WorkloadReport};
