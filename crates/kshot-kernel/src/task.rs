//! Tasks and a round-robin scheduler.
//!
//! Live patching must not corrupt in-flight work: the paper patches with
//! "the default Ubuntu background processes running" and again under
//! heavier workloads (§VI-B, §VI-C3). Tasks here are preemptible guest
//! execution contexts — an SMI can land between (or conceptually during)
//! slices, and the hardware save/restore guarantees each task resumes
//! exactly where it left off.

use kshot_isa::Reg;
use kshot_machine::cpu::CpuState;

use crate::interp::{ExecFault, StepEvent, RETURN_SENTINEL};
use crate::loader::{Kernel, TASK_STACK_SIZE};

/// Task identifier (non-zero; 0 means "no task" in `sys gettid`).
pub type TaskId = u64;

/// Lifecycle state of a task.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaskState {
    /// Runnable (possibly mid-execution).
    Ready,
    /// Finished with a return value.
    Exited(u64),
    /// Terminated by a fault.
    Killed(ExecFault),
}

/// A guest task: a named invocation of a kernel function with its own
/// stack and a saved CPU context.
#[derive(Debug, Clone)]
pub struct Task {
    /// Identifier.
    pub id: TaskId,
    /// Human-readable name.
    pub name: String,
    /// Saved CPU context (swapped onto the machine while running).
    pub cpu: CpuState,
    /// Lifecycle state.
    pub state: TaskState,
    /// Instructions executed so far.
    pub steps: u64,
}

/// What a scheduling slice concluded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SliceOutcome {
    /// Fuel ran out; the task remains ready.
    Preempted,
    /// The task's function returned.
    Exited(u64),
    /// The task faulted and was killed.
    Killed(ExecFault),
    /// The task was already finished before the slice.
    AlreadyDone,
}

impl Kernel {
    /// Spawn a task that will run kernel function `func` with `args`.
    ///
    /// # Errors
    ///
    /// [`ExecFault::UnknownSymbol`] if `func` does not exist; a memory
    /// fault if the task table outgrew the stack region.
    pub fn spawn(
        &mut self,
        name: impl Into<String>,
        func: &str,
        args: &[u64],
    ) -> Result<TaskId, ExecFault> {
        assert!(args.len() <= 5, "at most five arguments");
        let entry = self.function_addr(func).ok_or(ExecFault::UnknownSymbol)?;
        let id = self.tasks.len() as TaskId + 1;
        // Stack slot 0 is reserved for call_function; tasks start at 1.
        let layout = *self.machine.layout();
        let stack_top = layout.kernel_stack_base + TASK_STACK_SIZE * (id + 1);
        if stack_top > layout.kernel_stack_base + layout.kernel_stack_size {
            return Err(ExecFault::Memory(kshot_machine::MachineError::OutOfRange {
                addr: stack_top,
                len: 0,
                mem_size: layout.total,
            }));
        }
        let mut cpu = CpuState::new();
        for (i, &a) in args.iter().enumerate() {
            cpu.set(Reg::from_index(1 + i as u8).expect("≤5 args"), a);
        }
        let sp = stack_top - 8;
        cpu.set(Reg::SP, sp);
        cpu.pc = entry;
        // Seed the sentinel return address.
        self.machine
            .write_u64(kshot_machine::AccessCtx::Kernel, sp, RETURN_SENTINEL)
            .map_err(ExecFault::Memory)?;
        self.tasks.push(Task {
            id,
            name: name.into(),
            cpu,
            state: TaskState::Ready,
            steps: 0,
        });
        Ok(id)
    }

    /// Look up a task.
    pub fn task(&self, id: TaskId) -> Option<&Task> {
        self.tasks.iter().find(|t| t.id == id)
    }

    /// All task ids.
    pub fn task_ids(&self) -> Vec<TaskId> {
        self.tasks.iter().map(|t| t.id).collect()
    }

    /// Run task `id` for at most `fuel` instructions.
    ///
    /// # Errors
    ///
    /// [`ExecFault::UnknownSymbol`] for a bogus id (task faults are
    /// reported in the returned [`SliceOutcome`], not as `Err`).
    pub fn run_task_slice(&mut self, id: TaskId, fuel: u64) -> Result<SliceOutcome, ExecFault> {
        let idx = self
            .tasks
            .iter()
            .position(|t| t.id == id)
            .ok_or(ExecFault::UnknownSymbol)?;
        if self.tasks[idx].state != TaskState::Ready {
            return Ok(SliceOutcome::AlreadyDone);
        }
        // Context switch in.
        let saved = self.machine.cpu().clone();
        let task_cpu = self.tasks[idx].cpu.clone();
        *self.machine.cpu_mut() = task_cpu;
        self.current_task = Some(id);
        let mut outcome = SliceOutcome::Preempted;
        for _ in 0..fuel {
            self.tasks[idx].steps += 1;
            match self.step() {
                Ok(StepEvent::Continue) => {}
                Ok(StepEvent::Returned) | Ok(StepEvent::Halted) => {
                    let rv = self.machine.cpu().get(Reg::R0);
                    self.tasks[idx].state = TaskState::Exited(rv);
                    outcome = SliceOutcome::Exited(rv);
                    break;
                }
                Err(fault) => {
                    self.tasks[idx].state = TaskState::Killed(fault.clone());
                    outcome = SliceOutcome::Killed(fault);
                    break;
                }
            }
        }
        // Context switch out.
        self.tasks[idx].cpu = self.machine.cpu().clone();
        *self.machine.cpu_mut() = saved;
        self.current_task = None;
        Ok(outcome)
    }
}

/// A simple round-robin scheduler over a set of tasks.
#[derive(Debug, Clone)]
pub struct Scheduler {
    ids: Vec<TaskId>,
    next: usize,
}

impl Scheduler {
    /// Schedule the given tasks round-robin.
    pub fn new(ids: Vec<TaskId>) -> Self {
        Self { ids, next: 0 }
    }

    /// Run one slice of the next ready task. Returns `None` when every
    /// task has finished.
    ///
    /// # Errors
    ///
    /// Propagates host-side errors (bogus task ids).
    pub fn run_next(
        &mut self,
        kernel: &mut Kernel,
        fuel: u64,
    ) -> Result<Option<(TaskId, SliceOutcome)>, ExecFault> {
        let n = self.ids.len();
        for _ in 0..n {
            let id = self.ids[self.next % n];
            self.next = (self.next + 1) % n;
            if matches!(kernel.task(id).map(|t| &t.state), Some(TaskState::Ready)) {
                let outcome = kernel.run_task_slice(id, fuel)?;
                return Ok(Some((id, outcome)));
            }
        }
        Ok(None)
    }

    /// Run everything to completion with the given per-slice fuel.
    ///
    /// # Errors
    ///
    /// Propagates host-side errors.
    pub fn run_to_completion(&mut self, kernel: &mut Kernel, fuel: u64) -> Result<(), ExecFault> {
        while self.run_next(kernel, fuel)?.is_some() {}
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_isa::Cond;
    use kshot_kcc::ir::{CondExpr, Expr, Function, Global, Program, Stmt};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_machine::MemLayout;

    fn boot(p: &Program) -> Kernel {
        p.validate().unwrap();
        let layout = MemLayout::standard();
        let image = link(
            p,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        Kernel::boot(image, "kv-test", layout).unwrap()
    }

    fn counting_program() -> Program {
        let mut p = Program::new();
        p.add_global(Global::word("total", 0));
        p.add_global(Global::word("total_b", 0));
        // Adds `n` to a counter one unit at a time. `work` bumps `total`,
        // `work_b` bumps `total_b` (disjoint so interleaving is safe).
        for (fname, gname) in [("work", "total"), ("work_b", "total_b")] {
            p.add_function(Function::new(fname, 1, 1).with_body(vec![
                Stmt::Assign(0, Expr::c(0)),
                Stmt::While {
                    cond: CondExpr::new(Expr::local(0), Cond::B, Expr::param(0)),
                    body: vec![
                        Stmt::StoreGlobal(gname.into(), Expr::global(gname).add(Expr::c(1))),
                        Stmt::Assign(0, Expr::local(0).add(Expr::c(1))),
                    ],
                },
                Stmt::Return(Expr::local(0)),
            ]));
        }
        p
    }

    #[test]
    fn single_task_runs_to_completion() {
        let mut k = boot(&counting_program());
        let id = k.spawn("t", "work", &[25]).unwrap();
        let mut out = SliceOutcome::Preempted;
        for _ in 0..1000 {
            out = k.run_task_slice(id, 100).unwrap();
            if out != SliceOutcome::Preempted {
                break;
            }
        }
        assert_eq!(out, SliceOutcome::Exited(25));
        assert_eq!(k.read_global("total").unwrap(), 25);
        assert!(matches!(k.task(id).unwrap().state, TaskState::Exited(25)));
    }

    #[test]
    fn preemption_interleaves_tasks() {
        let mut k = boot(&counting_program());
        let a = k.spawn("a", "work", &[30]).unwrap();
        let b = k.spawn("b", "work_b", &[30]).unwrap();
        let mut sched = Scheduler::new(vec![a, b]);
        // Small slices force interleaving; both must still finish exactly.
        sched.run_to_completion(&mut k, 37).unwrap();
        assert_eq!(k.read_global("total").unwrap(), 30);
        assert_eq!(k.read_global("total_b").unwrap(), 30);
        assert!(matches!(k.task(a).unwrap().state, TaskState::Exited(30)));
        assert!(matches!(k.task(b).unwrap().state, TaskState::Exited(30)));
    }

    #[test]
    fn preemption_mid_increment_exhibits_real_races() {
        // Two tasks bumping the SAME global with a non-atomic
        // load-add-store can lose updates when preempted mid-sequence —
        // the same hazard real kernels guard with locks. This documents
        // that our preemption is instruction-granular, not op-granular.
        let mut k = boot(&counting_program());
        let a = k.spawn("a", "work", &[30]).unwrap();
        let b = k.spawn("b", "work", &[30]).unwrap();
        let mut sched = Scheduler::new(vec![a, b]);
        sched.run_to_completion(&mut k, 37).unwrap();
        let total = k.read_global("total").unwrap();
        assert!(total <= 60, "cannot exceed the update count");
        assert!(total >= 30, "each task performed its own 30 updates");
    }

    #[test]
    fn task_fault_is_contained() {
        let mut p = counting_program();
        p.add_function(Function::new("boom", 0, 0).with_body(vec![Stmt::Trap]));
        let mut k = boot(&p);
        let good = k.spawn("good", "work", &[5]).unwrap();
        let bad = k.spawn("bad", "boom", &[]).unwrap();
        let mut sched = Scheduler::new(vec![good, bad]);
        sched.run_to_completion(&mut k, 50).unwrap();
        assert!(matches!(k.task(bad).unwrap().state, TaskState::Killed(_)));
        assert!(matches!(k.task(good).unwrap().state, TaskState::Exited(5)));
    }

    #[test]
    fn slice_preserves_host_cpu_state() {
        let mut k = boot(&counting_program());
        let id = k.spawn("t", "work", &[5]).unwrap();
        k.machine_mut().cpu_mut().set(Reg::R9, 0x9999);
        k.run_task_slice(id, 10).unwrap();
        assert_eq!(k.machine().cpu().get(Reg::R9), 0x9999);
    }

    #[test]
    fn finished_task_reports_already_done() {
        let mut k = boot(&counting_program());
        let id = k.spawn("t", "work", &[1]).unwrap();
        while k.run_task_slice(id, 1000).unwrap() == SliceOutcome::Preempted {}
        assert_eq!(k.run_task_slice(id, 10).unwrap(), SliceOutcome::AlreadyDone);
    }

    #[test]
    fn unknown_task_is_error() {
        let mut k = boot(&counting_program());
        assert!(k.run_task_slice(42, 10).is_err());
    }

    #[test]
    fn gettid_syscall_sees_task_id() {
        // A function that returns sys_gettid; hand-patch body after boot.
        let mut p = counting_program();
        p.add_function(Function::new("whoami", 0, 0).returning(Expr::c(0)));
        let mut k = boot(&p);
        let addr = k.function_addr("whoami").unwrap();
        let mut code = Vec::new();
        kshot_isa::Inst::Sys {
            num: crate::interp::syscalls::GETTID,
        }
        .encode_into(&mut code);
        kshot_isa::Inst::Ret.encode_into(&mut code);
        k.machine_mut()
            .write_bytes(kshot_machine::AccessCtx::Firmware, addr, &code)
            .unwrap();
        let id = k.spawn("w", "whoami", &[]).unwrap();
        let out = k.run_task_slice(id, 100).unwrap();
        assert_eq!(out, SliceOutcome::Exited(id));
        // Outside a task, gettid reports 0.
        assert_eq!(k.call_function("whoami", &[]).unwrap(), 0);
    }
}
