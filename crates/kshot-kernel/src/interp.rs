//! The instruction interpreter — the "CPU core" executing kernel code.
//!
//! Every memory access goes through the machine's privilege checks under
//! [`AccessCtx::Kernel`], so page attributes (including KShot's
//! execute-only `mem_X`) and SMRAM protection apply to everything the
//! kernel — or an exploit running inside it — does.

use std::fmt;

use kshot_isa::{Inst, Reg};
use kshot_machine::{AccessCtx, MachineError};

use crate::loader::Kernel;

/// The sentinel return address marking the bottom of an execution
/// context; `ret` to this address ends the invocation.
pub const RETURN_SENTINEL: u64 = 0xFFFF_FFFF_FFFF_FFF0;

/// Default fuel (instruction budget) for one function invocation.
pub const DEFAULT_FUEL: u64 = 2_000_000;

/// A fault that terminates guest execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExecFault {
    /// Memory access rejected by the machine.
    Memory(MachineError),
    /// Unsigned division by zero.
    DivideByZero {
        /// Faulting instruction address.
        pc: u64,
    },
    /// A `trap` instruction executed (deliberate undefined behaviour).
    Trap {
        /// Faulting instruction address.
        pc: u64,
    },
    /// Unknown syscall number.
    UnknownSyscall {
        /// The requested service.
        num: u8,
        /// Faulting instruction address.
        pc: u64,
    },
    /// The instruction budget ran out (runaway loop).
    FuelExhausted,
    /// A named symbol was not found (host-side API misuse).
    UnknownSymbol,
    /// More arguments than the calling convention's five argument
    /// registers (`r1`–`r5`).
    TooManyArgs {
        /// Number of arguments supplied.
        got: usize,
    },
}

impl fmt::Display for ExecFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExecFault::Memory(e) => write!(f, "memory fault: {e}"),
            ExecFault::DivideByZero { pc } => write!(f, "division by zero at {pc:#x}"),
            ExecFault::Trap { pc } => write!(f, "trap at {pc:#x}"),
            ExecFault::UnknownSyscall { num, pc } => {
                write!(f, "unknown syscall {num} at {pc:#x}")
            }
            ExecFault::FuelExhausted => write!(f, "instruction budget exhausted"),
            ExecFault::UnknownSymbol => write!(f, "unknown kernel symbol"),
            ExecFault::TooManyArgs { got } => {
                write!(f, "{got} arguments exceed the five argument registers")
            }
        }
    }
}

impl std::error::Error for ExecFault {}

impl From<MachineError> for ExecFault {
    fn from(e: MachineError) -> Self {
        ExecFault::Memory(e)
    }
}

/// Outcome of a single interpreter step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepEvent {
    /// Execution continues.
    Continue,
    /// `ret` reached the sentinel — the invocation returned; `r0` holds
    /// the return value.
    Returned,
    /// `hlt` executed — the context halted voluntarily.
    Halted,
}

/// A bounded ring of recently executed instructions — the post-mortem
/// debugging aid for kernel faults (think `ftrace`'s function ring or a
/// crash dump's last-branch record). Disabled by default; costs nothing
/// when off.
#[derive(Debug, Clone, Default)]
pub struct ExecTrace {
    enabled: bool,
    ring: std::collections::VecDeque<(u64, Inst)>,
}

/// Capacity of the execution-trace ring.
pub const EXEC_TRACE_CAP: usize = 64;

impl ExecTrace {
    /// Enable recording.
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// Disable recording (the ring is retained for inspection).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Clear the ring.
    pub fn clear(&mut self) {
        self.ring.clear();
    }

    /// The recorded `(address, instruction)` pairs, oldest first.
    pub fn entries(&self) -> impl Iterator<Item = &(u64, Inst)> {
        self.ring.iter()
    }

    /// Render the ring as a human-readable listing.
    pub fn listing(&self) -> String {
        use std::fmt::Write;
        let mut s = String::new();
        for (addr, inst) in &self.ring {
            let _ = writeln!(s, "{addr:#010x}:  {inst}");
        }
        s
    }

    #[inline]
    fn record(&mut self, addr: u64, inst: Inst) {
        if !self.enabled {
            return;
        }
        if self.ring.len() == EXEC_TRACE_CAP {
            self.ring.pop_front();
        }
        self.ring.push_back((addr, inst));
    }
}

/// Kernel service numbers reachable via the `sys` instruction.
pub mod syscalls {
    /// No-op (scheduling hint).
    pub const YIELD: u8 = 0;
    /// Returns the current simulated time in nanoseconds in `r0`.
    pub const CLOCK: u8 = 1;
    /// Returns the current task id in `r0` (0 when not in a task).
    pub const GETTID: u8 = 2;
}

impl Kernel {
    /// Execute one instruction at the current CPU program counter.
    ///
    /// # Errors
    ///
    /// Returns an [`ExecFault`] on any fault; the CPU state is left at
    /// the faulting instruction for post-mortem inspection.
    pub fn step(&mut self) -> Result<StepEvent, ExecFault> {
        let pc = self.machine.cpu().pc;
        let (inst, len) = self.machine.fetch(AccessCtx::Kernel, pc)?;
        self.exec_trace.record(pc, inst);
        let insn_cost = self.machine.cost().insn;
        self.machine.charge(insn_cost);
        let next = pc.wrapping_add(len as u64);
        match inst {
            Inst::Nop => self.machine.cpu_mut().pc = next,
            Inst::Ftrace { site } => {
                self.tracer.record(site);
                self.machine.cpu_mut().pc = next;
            }
            Inst::Jmp { .. } => {
                self.machine.cpu_mut().pc = inst.branch_target(pc).expect("jmp has target");
            }
            Inst::Call { .. } => {
                self.push(next)?;
                self.machine.cpu_mut().pc = inst.branch_target(pc).expect("call has target");
            }
            Inst::Ret => {
                let addr = self.pop()?;
                if addr == RETURN_SENTINEL {
                    return Ok(StepEvent::Returned);
                }
                self.machine.cpu_mut().pc = addr;
            }
            Inst::Jcc { cond, .. } => {
                let (a, b) = self.machine.cpu().flags.unwrap_or((0, 0));
                if cond.eval(a, b) {
                    self.machine.cpu_mut().pc = inst.branch_target(pc).expect("jcc has target");
                } else {
                    self.machine.cpu_mut().pc = next;
                }
            }
            Inst::MovImm { dst, imm } => {
                self.machine.cpu_mut().set(dst, imm);
                self.machine.cpu_mut().pc = next;
            }
            Inst::MovReg { dst, src } => {
                let v = self.machine.cpu().get(src);
                self.machine.cpu_mut().set(dst, v);
                self.machine.cpu_mut().pc = next;
            }
            Inst::Add { dst, src } => self.alu(dst, src, next, u64::wrapping_add),
            Inst::Sub { dst, src } => self.alu(dst, src, next, u64::wrapping_sub),
            Inst::And { dst, src } => self.alu(dst, src, next, |a, b| a & b),
            Inst::Or { dst, src } => self.alu(dst, src, next, |a, b| a | b),
            Inst::Xor { dst, src } => self.alu(dst, src, next, |a, b| a ^ b),
            Inst::Mul { dst, src } => self.alu(dst, src, next, u64::wrapping_mul),
            Inst::Div { dst, src } => {
                let d = self.machine.cpu().get(src);
                if d == 0 {
                    return Err(ExecFault::DivideByZero { pc });
                }
                let v = self.machine.cpu().get(dst) / d;
                self.machine.cpu_mut().set(dst, v);
                self.machine.cpu_mut().pc = next;
            }
            Inst::ShlImm { dst, amount } => {
                let v = self.machine.cpu().get(dst) << (amount & 63);
                self.machine.cpu_mut().set(dst, v);
                self.machine.cpu_mut().pc = next;
            }
            Inst::ShrImm { dst, amount } => {
                let v = self.machine.cpu().get(dst) >> (amount & 63);
                self.machine.cpu_mut().set(dst, v);
                self.machine.cpu_mut().pc = next;
            }
            Inst::AddImm { dst, imm } => {
                let v = self.machine.cpu().get(dst).wrapping_add(imm as i64 as u64);
                self.machine.cpu_mut().set(dst, v);
                self.machine.cpu_mut().pc = next;
            }
            Inst::Load { dst, base, disp } => {
                let addr = self
                    .machine
                    .cpu()
                    .get(base)
                    .wrapping_add(disp as i64 as u64);
                let v = self.machine.read_u64(AccessCtx::Kernel, addr)?;
                self.machine.cpu_mut().set(dst, v);
                self.machine.cpu_mut().pc = next;
            }
            Inst::Store { base, disp, src } => {
                let addr = self
                    .machine
                    .cpu()
                    .get(base)
                    .wrapping_add(disp as i64 as u64);
                let v = self.machine.cpu().get(src);
                self.machine.write_u64(AccessCtx::Kernel, addr, v)?;
                self.machine.cpu_mut().pc = next;
            }
            Inst::LoadByte { dst, base, disp } => {
                let addr = self
                    .machine
                    .cpu()
                    .get(base)
                    .wrapping_add(disp as i64 as u64);
                let mut b = [0u8; 1];
                self.machine.read_bytes(AccessCtx::Kernel, addr, &mut b)?;
                self.machine.cpu_mut().set(dst, b[0] as u64);
                self.machine.cpu_mut().pc = next;
            }
            Inst::StoreByte { base, disp, src } => {
                let addr = self
                    .machine
                    .cpu()
                    .get(base)
                    .wrapping_add(disp as i64 as u64);
                let v = self.machine.cpu().get(src) as u8;
                self.machine.write_bytes(AccessCtx::Kernel, addr, &[v])?;
                self.machine.cpu_mut().pc = next;
            }
            Inst::Cmp { a, b } => {
                let flags = (self.machine.cpu().get(a), self.machine.cpu().get(b));
                self.machine.cpu_mut().flags = Some(flags);
                self.machine.cpu_mut().pc = next;
            }
            Inst::CmpImm { reg, imm } => {
                let flags = (self.machine.cpu().get(reg), imm as i64 as u64);
                self.machine.cpu_mut().flags = Some(flags);
                self.machine.cpu_mut().pc = next;
            }
            Inst::Push { src } => {
                let v = self.machine.cpu().get(src);
                self.push(v)?;
                self.machine.cpu_mut().pc = next;
            }
            Inst::Pop { dst } => {
                let v = self.pop()?;
                self.machine.cpu_mut().set(dst, v);
                self.machine.cpu_mut().pc = next;
            }
            Inst::Sys { num } => {
                match num {
                    syscalls::YIELD => {}
                    syscalls::CLOCK => {
                        let now = self.machine.now().as_ns();
                        self.machine.cpu_mut().set(Reg::R0, now);
                    }
                    syscalls::GETTID => {
                        let tid = self.current_task.unwrap_or(0);
                        self.machine.cpu_mut().set(Reg::R0, tid);
                    }
                    other => return Err(ExecFault::UnknownSyscall { num: other, pc }),
                }
                self.machine.cpu_mut().pc = next;
            }
            Inst::Halt => return Ok(StepEvent::Halted),
            Inst::Trap => return Err(ExecFault::Trap { pc }),
        }
        Ok(StepEvent::Continue)
    }

    fn alu(&mut self, dst: Reg, src: Reg, next: u64, f: fn(u64, u64) -> u64) {
        let v = f(self.machine.cpu().get(dst), self.machine.cpu().get(src));
        self.machine.cpu_mut().set(dst, v);
        self.machine.cpu_mut().pc = next;
    }

    fn push(&mut self, v: u64) -> Result<(), ExecFault> {
        let sp = self.machine.cpu().get(Reg::SP).wrapping_sub(8);
        self.machine.write_u64(AccessCtx::Kernel, sp, v)?;
        self.machine.cpu_mut().set(Reg::SP, sp);
        Ok(())
    }

    fn pop(&mut self) -> Result<u64, ExecFault> {
        let sp = self.machine.cpu().get(Reg::SP);
        let v = self.machine.read_u64(AccessCtx::Kernel, sp)?;
        self.machine.cpu_mut().set(Reg::SP, sp.wrapping_add(8));
        Ok(v)
    }

    /// Call a kernel function by name with up to five arguments, running
    /// it to completion on a dedicated kernel stack.
    ///
    /// This models an in-kernel invocation (a syscall dispatching into
    /// the vulnerable function, an exploit driver, a workload operation).
    ///
    /// # Errors
    ///
    /// Returns any [`ExecFault`] the guest code raises;
    /// [`ExecFault::FuelExhausted`] after [`DEFAULT_FUEL`] instructions;
    /// [`ExecFault::TooManyArgs`] when `args` exceeds the five argument
    /// registers.
    pub fn call_function(&mut self, name: &str, args: &[u64]) -> Result<u64, ExecFault> {
        self.call_function_with_fuel(name, args, DEFAULT_FUEL)
    }

    /// [`Kernel::call_function`] with an explicit instruction budget.
    ///
    /// # Errors
    ///
    /// As [`Kernel::call_function`].
    pub fn call_function_with_fuel(
        &mut self,
        name: &str,
        args: &[u64],
        fuel: u64,
    ) -> Result<u64, ExecFault> {
        if args.len() > 5 {
            return Err(ExecFault::TooManyArgs { got: args.len() });
        }
        let entry = self.function_addr(name).ok_or(ExecFault::UnknownSymbol)?;
        let saved = self.machine.cpu().clone();
        let result = self.run_invocation(entry, args, fuel);
        *self.machine.cpu_mut() = saved;
        result
    }

    fn run_invocation(&mut self, entry: u64, args: &[u64], fuel: u64) -> Result<u64, ExecFault> {
        {
            let cpu = self.machine.cpu_mut();
            *cpu = Default::default();
            // `call_function_with_fuel` rejects >5 args before reaching
            // here, so the register index is always in range.
            for (i, &a) in args.iter().enumerate() {
                cpu.set(Reg::from_index(1 + i as u8).expect("≤5 args"), a);
            }
            cpu.set(Reg::SP, 0); // placeholder, set below
            cpu.pc = entry;
        }
        let top = self.syscall_stack_top();
        self.machine.cpu_mut().set(Reg::SP, top);
        self.push(RETURN_SENTINEL)?;
        for _ in 0..fuel {
            match self.step()? {
                StepEvent::Continue => {}
                StepEvent::Returned | StepEvent::Halted => {
                    return Ok(self.machine.cpu().get(Reg::R0));
                }
            }
        }
        Err(ExecFault::FuelExhausted)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_isa::Cond;
    use kshot_kcc::ir::{CondExpr, Expr, Function, Global, InlineHint, Program, Stmt};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_machine::MemLayout;

    fn boot(p: &Program) -> Kernel {
        boot_opts(p, &CodegenOptions::default())
    }

    fn boot_opts(p: &Program, opts: &CodegenOptions) -> Kernel {
        p.validate().unwrap();
        let layout = MemLayout::standard();
        let image = link(p, opts, layout.kernel_text_base, layout.kernel_data_base).unwrap();
        Kernel::boot(image, "kv-test", layout).unwrap()
    }

    #[test]
    fn arithmetic_function() {
        let mut p = Program::new();
        p.add_function(
            Function::new("axpy", 3, 0)
                .returning(Expr::param(0).mul(Expr::param(1)).add(Expr::param(2))),
        );
        let mut k = boot(&p);
        assert_eq!(k.call_function("axpy", &[3, 7, 11]).unwrap(), 32);
    }

    /// Regression (pre-fix: a 6-argument call panicked on the
    /// `assert!(args.len() <= 5)` instead of faulting).
    #[test]
    fn six_argument_call_faults_instead_of_panicking() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 5, 0).returning(Expr::param(0)));
        let mut k = boot(&p);
        assert_eq!(
            k.call_function("f", &[1, 2, 3, 4, 5, 6]),
            Err(ExecFault::TooManyArgs { got: 6 })
        );
        // Exactly five still works, and the fault did not corrupt the
        // CPU for subsequent calls.
        assert_eq!(k.call_function("f", &[9, 2, 3, 4, 5]).unwrap(), 9);
        assert!(!ExecFault::TooManyArgs { got: 6 }.to_string().is_empty());
    }

    #[test]
    fn loops_and_locals() {
        let mut p = Program::new();
        // sum of 0..n
        p.add_function(Function::new("sum", 1, 2).with_body(vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::Assign(1, Expr::c(0)),
            Stmt::While {
                cond: CondExpr::new(Expr::local(1), Cond::B, Expr::param(0)),
                body: vec![
                    Stmt::Assign(0, Expr::local(0).add(Expr::local(1))),
                    Stmt::Assign(1, Expr::local(1).add(Expr::c(1))),
                ],
            },
            Stmt::Return(Expr::local(0)),
        ]));
        let mut k = boot(&p);
        assert_eq!(k.call_function("sum", &[10]).unwrap(), 45);
        assert_eq!(k.call_function("sum", &[0]).unwrap(), 0);
    }

    #[test]
    fn nested_calls_and_inlining_agree() {
        let mut p = Program::new();
        p.add_function(Function::new("sq", 1, 0).returning(Expr::param(0).mul(Expr::param(0))));
        p.add_function(Function::new("sumsq", 2, 0).returning(
            Expr::call("sq", vec![Expr::param(0)]).add(Expr::call("sq", vec![Expr::param(1)])),
        ));
        // Inlined build and non-inlined build must agree.
        let mut k_inline = boot(&p);
        let mut k_call = boot_opts(&p, &CodegenOptions::no_inline());
        for (a, b) in [(0u64, 0u64), (3, 4), (100, 1)] {
            let want = a * a + b * b;
            assert_eq!(k_inline.call_function("sumsq", &[a, b]).unwrap(), want);
            assert_eq!(k_call.call_function("sumsq", &[a, b]).unwrap(), want);
        }
    }

    #[test]
    fn recursion_executes() {
        let mut p = Program::new();
        p.add_function(
            Function::new("fact", 1, 0)
                .with_inline(InlineHint::Never)
                .with_body(vec![Stmt::If {
                    cond: CondExpr::new(Expr::param(0), Cond::Eq, Expr::c(0)),
                    then: vec![Stmt::Return(Expr::c(1))],
                    els: vec![Stmt::Return(
                        Expr::param(0)
                            .mul(Expr::call("fact", vec![Expr::param(0).sub(Expr::c(1))])),
                    )],
                }]),
        );
        let mut k = boot(&p);
        assert_eq!(k.call_function("fact", &[10]).unwrap(), 3_628_800);
    }

    #[test]
    fn globals_and_buffers() {
        let mut p = Program::new();
        p.add_global(Global::word("counter", 100));
        p.add_global(Global::buffer("buf", 4));
        p.add_function(Function::new("bump", 1, 0).with_body(vec![
            Stmt::StoreGlobal(
                "counter".into(),
                Expr::global("counter").add(Expr::param(0)),
            ),
            Stmt::Store {
                addr: Expr::global_addr("buf").add(Expr::c(8)),
                value: Expr::global("counter"),
            },
            Stmt::Return(Expr::global("counter")),
        ]));
        let mut k = boot(&p);
        assert_eq!(k.call_function("bump", &[5]).unwrap(), 105);
        assert_eq!(k.read_global("counter").unwrap(), 105);
        assert_eq!(k.read_global_word("buf", 1).unwrap(), 105);
        assert_eq!(k.call_function("bump", &[5]).unwrap(), 110);
    }

    #[test]
    fn buffer_overflow_corrupts_neighbour() {
        // The core mechanism behind several benchmark CVEs: an unchecked
        // index write walks past a buffer into the adjacent global.
        let mut p = Program::new();
        p.add_global(Global::buffer("buf", 2));
        p.add_global(Global::word("sentinel", 0xAAAA));
        p.add_function(Function::new("write_at", 2, 0).with_body(vec![
            Stmt::Store {
                addr: Expr::global_addr("buf").add(Expr::param(0).mul(Expr::c(8))),
                value: Expr::param(1),
            },
            Stmt::Return(Expr::c(0)),
        ]));
        let mut k = boot(&p);
        k.call_function("write_at", &[0, 1]).unwrap();
        assert_eq!(k.read_global("sentinel").unwrap(), 0xAAAA);
        // Out-of-bounds index 2 lands on the sentinel.
        k.call_function("write_at", &[2, 0xDEAD]).unwrap();
        assert_eq!(k.read_global("sentinel").unwrap(), 0xDEAD);
    }

    #[test]
    fn divide_by_zero_faults() {
        let mut p = Program::new();
        p.add_function(
            Function::new("divider", 2, 0).returning(Expr::param(0).div(Expr::param(1))),
        );
        let mut k = boot(&p);
        assert_eq!(k.call_function("divider", &[10, 2]).unwrap(), 5);
        assert!(matches!(
            k.call_function("divider", &[10, 0]),
            Err(ExecFault::DivideByZero { .. })
        ));
    }

    #[test]
    fn trap_faults() {
        let mut p = Program::new();
        p.add_function(Function::new("boom", 0, 0).with_body(vec![Stmt::Trap]));
        let mut k = boot(&p);
        assert!(matches!(
            k.call_function("boom", &[]),
            Err(ExecFault::Trap { .. })
        ));
    }

    #[test]
    fn runaway_loop_exhausts_fuel() {
        let mut p = Program::new();
        p.add_function(Function::new("spin", 0, 0).with_body(vec![Stmt::While {
            cond: CondExpr::new(Expr::c(0), Cond::Eq, Expr::c(0)),
            body: vec![],
        }]));
        let mut k = boot(&p);
        assert_eq!(
            k.call_function_with_fuel("spin", &[], 10_000),
            Err(ExecFault::FuelExhausted)
        );
    }

    #[test]
    fn unknown_function_rejected() {
        let p = {
            let mut p = Program::new();
            p.add_function(Function::new("f", 0, 0).returning(Expr::c(0)));
            p
        };
        let mut k = boot(&p);
        assert_eq!(
            k.call_function("missing", &[]),
            Err(ExecFault::UnknownSymbol)
        );
    }

    #[test]
    fn ftrace_pads_are_counted() {
        let mut p = Program::new();
        p.add_function(Function::new("traced", 0, 0).returning(Expr::c(1)));
        let mut k = boot(&p);
        k.tracer_mut().enable();
        k.call_function("traced", &[]).unwrap();
        k.call_function("traced", &[]).unwrap();
        assert_eq!(k.tracer().hits(0), 2);
    }

    #[test]
    fn clock_syscall_returns_time() {
        // Hand-assemble: sys CLOCK; ret.
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(0)));
        let mut k = boot(&p);
        // Patch f's body via firmware to: sys 1; ret (no frame needed).
        let addr = k.function_addr("f").unwrap();
        let mut code = Vec::new();
        Inst::Sys {
            num: syscalls::CLOCK,
        }
        .encode_into(&mut code);
        Inst::Ret.encode_into(&mut code);
        k.machine_mut()
            .write_bytes(kshot_machine::AccessCtx::Firmware, addr, &code)
            .unwrap();
        let t = k.call_function("f", &[]).unwrap();
        assert!(t > 0);
        let t2 = k.call_function("f", &[]).unwrap();
        assert!(t2 > t);
    }

    #[test]
    fn exec_trace_records_last_instructions_of_a_fault() {
        let mut p = Program::new();
        p.add_function(Function::new("boom2", 1, 0).with_body(vec![
            Stmt::if_then(
                CondExpr::new(Expr::param(0), Cond::Eq, Expr::c(7)),
                vec![Stmt::Trap],
            ),
            Stmt::Return(Expr::param(0)),
        ]));
        let mut k = boot(&p);
        k.exec_trace_mut().enable();
        let err = k.call_function("boom2", &[7]).unwrap_err();
        assert!(matches!(err, ExecFault::Trap { .. }));
        // The last recorded instruction is the trap itself, and the ring
        // holds the path that led to it.
        let entries: Vec<_> = k.exec_trace().entries().cloned().collect();
        assert_eq!(entries.last().unwrap().1, Inst::Trap);
        assert!(entries.len() > 3);
        let listing = k.exec_trace().listing();
        assert!(listing.contains("trap"));
        // Ring is bounded.
        k.exec_trace_mut().clear();
        for _ in 0..50 {
            let _ = k.call_function("boom2", &[1]);
        }
        assert!(k.exec_trace().entries().count() <= super::EXEC_TRACE_CAP);
        // Disabled by default: a fresh kernel records nothing.
        let mut k2 = boot(&p);
        let _ = k2.call_function("boom2", &[1]);
        assert_eq!(k2.exec_trace().entries().count(), 0);
    }

    #[test]
    fn call_function_restores_cpu_state() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(7)));
        let mut k = boot(&p);
        k.machine_mut().cpu_mut().set(Reg::R5, 0x5555);
        k.machine_mut().cpu_mut().pc = 0x1234;
        k.call_function("f", &[]).unwrap();
        assert_eq!(k.machine().cpu().get(Reg::R5), 0x5555);
        assert_eq!(k.machine().cpu().pc, 0x1234);
    }
}
