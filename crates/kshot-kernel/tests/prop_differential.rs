//! Differential testing of the whole compile–link–boot–execute stack.
//!
//! Random KIR programs are run three ways and must agree exactly:
//!
//! 1. a direct reference interpreter over the IR (defined here, simple
//!    enough to audit by eye),
//! 2. compiled **with** inlining, executed on the machine, and
//! 3. compiled **without** inlining, executed on the machine.
//!
//! Agreement of (2) and (3) is precisely the property KShot's Type 2
//! patch handling depends on: inlining must be semantics-preserving, and
//! therefore the only observable difference between the builds is the
//! call-graph shape the analysis recovers.

use std::collections::BTreeMap;

use kshot_isa::Cond;
use kshot_kcc::ir::{BinOp, CondExpr, Expr, Function, Global, Program, Stmt};
use kshot_kcc::{link, CodegenOptions};
use kshot_kernel::Kernel;
use kshot_machine::MemLayout;
use proptest::prelude::*;

// ---- reference interpreter ------------------------------------------------

struct RefEval<'p> {
    program: &'p Program,
    globals: BTreeMap<String, u64>,
}

impl<'p> RefEval<'p> {
    fn new(program: &'p Program) -> Self {
        let globals = program
            .globals
            .iter()
            .map(|g| (g.name.clone(), g.words[0]))
            .collect();
        Self { program, globals }
    }

    fn call(&mut self, name: &str, args: &[u64]) -> u64 {
        let f = self.program.function(name).expect("function exists");
        let mut locals = vec![0u64; f.locals];
        let body = f.body.clone();
        // The generator always ends bodies with an explicit Return, so
        // fall-through (None) cannot occur for generated programs.
        self.run(&body, args, &mut locals).unwrap_or_default()
    }

    fn run(&mut self, stmts: &[Stmt], args: &[u64], locals: &mut Vec<u64>) -> Option<u64> {
        for s in stmts {
            match s {
                Stmt::Assign(l, e) => {
                    let v = self.eval(e, args, locals);
                    locals[*l] = v;
                }
                Stmt::StoreGlobal(g, e) => {
                    let v = self.eval(e, args, locals);
                    *self.globals.get_mut(g).expect("global exists") = v;
                }
                Stmt::If { cond, then, els } => {
                    let branch = if self.cond(cond, args, locals) {
                        then
                    } else {
                        els
                    };
                    if let Some(v) = self.run(branch, args, locals) {
                        return Some(v);
                    }
                }
                Stmt::While { cond, body } => {
                    while self.cond(cond, args, locals) {
                        if let Some(v) = self.run(body, args, locals) {
                            return Some(v);
                        }
                    }
                }
                Stmt::Return(e) => return Some(self.eval(e, args, locals)),
                Stmt::Call(name, call_args) => {
                    let vals: Vec<u64> = call_args
                        .iter()
                        .map(|a| self.eval(a, args, locals))
                        .collect();
                    self.call(name, &vals);
                }
                other => unreachable!("generator does not emit {other:?}"),
            }
        }
        None
    }

    fn cond(&mut self, c: &CondExpr, args: &[u64], locals: &mut Vec<u64>) -> bool {
        let l = self.eval(&c.lhs, args, locals);
        let r = self.eval(&c.rhs, args, locals);
        c.op.eval(l, r)
    }

    fn eval(&mut self, e: &Expr, args: &[u64], locals: &mut Vec<u64>) -> u64 {
        match e {
            Expr::Const(v) => *v,
            Expr::Param(i) => args[*i],
            Expr::Local(l) => locals[*l],
            Expr::Global(g) => self.globals[g],
            Expr::Bin(op, a, b) => {
                let x = self.eval(a, args, locals);
                let y = self.eval(b, args, locals);
                match op {
                    BinOp::Add => x.wrapping_add(y),
                    BinOp::Sub => x.wrapping_sub(y),
                    BinOp::Mul => x.wrapping_mul(y),
                    BinOp::And => x & y,
                    BinOp::Or => x | y,
                    BinOp::Xor => x ^ y,
                    BinOp::Div => unreachable!("generator avoids div"),
                }
            }
            Expr::Call(name, call_args) => {
                let vals: Vec<u64> = call_args
                    .iter()
                    .map(|a| self.eval(a, args, locals))
                    .collect();
                self.call(name, &vals)
            }
            other => unreachable!("generator does not emit {other:?}"),
        }
    }
}

// ---- program generator ------------------------------------------------------

const N_GLOBALS: usize = 3;
const LOCALS: usize = 4;

#[derive(Debug, Clone)]
struct GenCtx {
    /// Index of the function being generated (may call strictly lower).
    fn_index: usize,
    params: usize,
}

fn arb_binop() -> impl Strategy<Value = BinOp> {
    prop_oneof![
        Just(BinOp::Add),
        Just(BinOp::Sub),
        Just(BinOp::Mul),
        Just(BinOp::And),
        Just(BinOp::Or),
        Just(BinOp::Xor),
    ]
}

fn arb_cond_code() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::B),
        Just(Cond::Be),
        Just(Cond::A),
        Just(Cond::Ae),
        Just(Cond::Lt),
        Just(Cond::Ge),
    ]
}

fn arb_expr(ctx: GenCtx, depth: u32) -> BoxedStrategy<Expr> {
    let leaf = {
        let mut options: Vec<BoxedStrategy<Expr>> = vec![
            (0u64..1000).prop_map(Expr::Const).boxed(),
            (0..LOCALS).prop_map(Expr::Local).boxed(),
            (0..N_GLOBALS)
                .prop_map(|g| Expr::Global(format!("g{g}")))
                .boxed(),
        ];
        if ctx.params > 0 {
            options.push((0..ctx.params).prop_map(Expr::Param).boxed());
        }
        prop::strategy::Union::new(options)
    };
    if depth == 0 {
        return leaf.boxed();
    }
    let sub = arb_expr(ctx.clone(), depth - 1);
    let bin = (arb_binop(), sub.clone(), sub.clone())
        .prop_map(|(op, a, b)| Expr::Bin(op, Box::new(a), Box::new(b)));
    let mut options: Vec<BoxedStrategy<Expr>> = vec![leaf.boxed(), bin.boxed()];
    if ctx.fn_index > 0 {
        // Call an earlier function with freshly generated args; callee
        // arity is fixed at 2 for simplicity of generation.
        let callee = 0..ctx.fn_index;
        let args = prop::collection::vec(arb_expr(ctx, depth - 1), 2);
        options.push(
            (callee, args)
                .prop_map(|(k, args)| Expr::Call(format!("f{k}"), args))
                .boxed(),
        );
    }
    prop::strategy::Union::new(options).boxed()
}

fn arb_cond(ctx: GenCtx) -> impl Strategy<Value = CondExpr> {
    (arb_expr(ctx.clone(), 1), arb_cond_code(), arb_expr(ctx, 1))
        .prop_map(|(l, op, r)| CondExpr::new(l, op, r))
}

fn arb_stmt(ctx: GenCtx, depth: u32) -> BoxedStrategy<Stmt> {
    let assign = ((0..LOCALS), arb_expr(ctx.clone(), 2)).prop_map(|(l, e)| Stmt::Assign(l, e));
    let store = ((0..N_GLOBALS), arb_expr(ctx.clone(), 2))
        .prop_map(|(g, e)| Stmt::StoreGlobal(format!("g{g}"), e));
    if depth == 0 {
        return prop_oneof![assign, store].boxed();
    }
    let iff = (
        arb_cond(ctx.clone()),
        prop::collection::vec(arb_stmt(ctx.clone(), depth - 1), 0..3),
        prop::collection::vec(arb_stmt(ctx.clone(), depth - 1), 0..3),
    )
        .prop_map(|(cond, then, els)| Stmt::If { cond, then, els });
    // A strictly counted loop: local 3 runs 0..k with a fixed increment,
    // guaranteeing termination independent of the body.
    let counted_loop = (
        1u64..8,
        prop::collection::vec(arb_stmt(ctx.clone(), depth - 1), 0..3),
    )
        .prop_map(|(k, mut body)| {
            body.retain(|s| !touches_counter(s));
            let mut stmts = vec![Stmt::Assign(3, Expr::c(0))];
            body.push(Stmt::Assign(3, Expr::local(3).add(Expr::c(1))));
            stmts.push(Stmt::While {
                cond: CondExpr::new(Expr::local(3), Cond::B, Expr::c(k)),
                body,
            });
            Stmt::If {
                cond: CondExpr::new(Expr::c(0), Cond::Eq, Expr::c(0)),
                then: stmts,
                els: vec![],
            }
        });
    prop_oneof![4 => assign, 3 => store, 2 => iff, 1 => counted_loop].boxed()
}

/// The loop counter (local 3) must not be clobbered by generated bodies.
fn touches_counter(s: &Stmt) -> bool {
    match s {
        Stmt::Assign(3, _) => true,
        Stmt::If { then, els, .. } => {
            then.iter().any(touches_counter) || els.iter().any(touches_counter)
        }
        Stmt::While { body, .. } => body.iter().any(touches_counter),
        _ => false,
    }
}

fn arb_function(fn_index: usize) -> impl Strategy<Value = Function> {
    let ctx = GenCtx {
        fn_index,
        params: 2,
    };
    (
        prop::collection::vec(arb_stmt(ctx.clone(), 2), 1..5),
        arb_expr(ctx, 2),
    )
        .prop_map(move |(mut body, ret)| {
            body.push(Stmt::Return(ret));
            Function::new(format!("f{fn_index}"), 2, LOCALS).with_body(body)
        })
}

fn arb_program() -> impl Strategy<Value = Program> {
    (
        arb_function(0),
        arb_function(1),
        arb_function(2),
        prop::collection::vec(0u64..100, N_GLOBALS),
    )
        .prop_map(|(f0, f1, f2, ginit)| {
            let mut p = Program::new();
            for (i, v) in ginit.iter().enumerate() {
                p.add_global(Global::word(format!("g{i}"), *v));
            }
            p.add_function(f0);
            p.add_function(f1);
            p.add_function(f2);
            p
        })
}

fn boot(p: &Program, opts: &CodegenOptions) -> Kernel {
    let layout = MemLayout::standard();
    let image = link(p, opts, layout.kernel_text_base, layout.kernel_data_base)
        .expect("generated program links");
    Kernel::boot(image, "kv-diff", layout).expect("boots")
}

proptest! {
    #![proptest_config(ProptestConfig {
        cases: 64,
        ..ProptestConfig::default()
    })]

    #[test]
    fn reference_inline_and_noinline_builds_agree(
        program in arb_program(),
        a in 0u64..1000,
        b in 0u64..1000,
    ) {
        program.validate().expect("generated program is well-formed");
        // Reference semantics.
        let mut reference = RefEval::new(&program);
        let want = reference.call("f2", &[a, b]);
        let want_globals: Vec<u64> =
            (0..N_GLOBALS).map(|g| reference.globals[&format!("g{g}")]).collect();
        // Compiled with aggressive inlining.
        let mut k_inline = boot(&program, &CodegenOptions {
            inline_threshold: 64,
            ..CodegenOptions::default()
        });
        let got_inline = k_inline
            .call_function_with_fuel("f2", &[a, b], 5_000_000)
            .expect("inline build executes");
        // Compiled with no inlining.
        let mut k_plain = boot(&program, &CodegenOptions::no_inline());
        let got_plain = k_plain
            .call_function_with_fuel("f2", &[a, b], 5_000_000)
            .expect("no-inline build executes");
        prop_assert_eq!(got_inline, want, "inline build diverged from reference");
        prop_assert_eq!(got_plain, want, "no-inline build diverged from reference");
        for (g, want) in want_globals.iter().enumerate() {
            let name = format!("g{g}");
            let gi = k_inline.read_global(&name).unwrap();
            let gp = k_plain.read_global(&name).unwrap();
            prop_assert_eq!(gi, *want, "global {} (inline)", &name);
            prop_assert_eq!(gp, *want, "global {} (plain)", &name);
        }
    }
}
