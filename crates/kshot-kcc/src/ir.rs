//! KIR — the kernel intermediate representation.
//!
//! A deliberately small structured language: enough to express the
//! control flow, buffer manipulation and global-state access patterns
//! that the benchmark CVEs (Table I of the paper) exercise, while keeping
//! the compiler honest about inlining and call graphs.

use std::collections::BTreeMap;
use std::fmt;

use kshot_isa::Cond;

/// Index of a function-local variable slot.
pub type LocalId = usize;

/// Maximum number of parameters (bounded by argument registers `r1`–`r5`).
pub const MAX_PARAMS: usize = 5;

/// An expression; evaluation produces a 64-bit value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Expr {
    /// Constant.
    Const(u64),
    /// Read parameter `i`.
    Param(usize),
    /// Read local slot.
    Local(LocalId),
    /// Load the first 8 bytes of a named global.
    Global(String),
    /// The address of a named global (for buffer indexing).
    GlobalAddr(String),
    /// Binary operation.
    Bin(BinOp, Box<Expr>, Box<Expr>),
    /// Call a function and use its return value.
    Call(String, Vec<Expr>),
    /// Load 8 bytes from a computed address.
    Load(Box<Expr>),
    /// Load 1 byte (zero-extended) from a computed address.
    LoadByte(Box<Expr>),
}

impl Expr {
    /// Constant shorthand.
    pub fn c(v: u64) -> Expr {
        Expr::Const(v)
    }

    /// Parameter shorthand.
    pub fn param(i: usize) -> Expr {
        Expr::Param(i)
    }

    /// Local shorthand.
    pub fn local(i: LocalId) -> Expr {
        Expr::Local(i)
    }

    /// Global-value shorthand.
    pub fn global(name: impl Into<String>) -> Expr {
        Expr::Global(name.into())
    }

    /// Global-address shorthand.
    pub fn global_addr(name: impl Into<String>) -> Expr {
        Expr::GlobalAddr(name.into())
    }

    /// Call shorthand.
    pub fn call(name: impl Into<String>, args: Vec<Expr>) -> Expr {
        Expr::Call(name.into(), args)
    }

    /// `self + rhs`.
    #[allow(clippy::should_implement_trait)] // deliberate DSL builders
    pub fn add(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Add, Box::new(self), Box::new(rhs))
    }

    /// `self − rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Sub, Box::new(self), Box::new(rhs))
    }

    /// `self × rhs`.
    #[allow(clippy::should_implement_trait)]
    pub fn mul(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Mul, Box::new(self), Box::new(rhs))
    }

    /// `self ÷ rhs` (unsigned; faults on zero divisor at runtime).
    #[allow(clippy::should_implement_trait)]
    pub fn div(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Div, Box::new(self), Box::new(rhs))
    }

    /// `self & rhs`.
    pub fn and(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::And, Box::new(self), Box::new(rhs))
    }

    /// `self | rhs`.
    pub fn or(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Or, Box::new(self), Box::new(rhs))
    }

    /// `self ^ rhs`.
    pub fn xor(self, rhs: Expr) -> Expr {
        Expr::Bin(BinOp::Xor, Box::new(self), Box::new(rhs))
    }

    /// Dereference 8 bytes at `self`.
    pub fn deref(self) -> Expr {
        Expr::Load(Box::new(self))
    }

    /// Dereference 1 byte at `self`.
    pub fn deref_byte(self) -> Expr {
        Expr::LoadByte(Box::new(self))
    }

    /// Names of functions called anywhere in this expression.
    pub fn callees(&self, out: &mut Vec<String>) {
        match self {
            Expr::Call(name, args) => {
                out.push(name.clone());
                for a in args {
                    a.callees(out);
                }
            }
            Expr::Bin(_, a, b) => {
                a.callees(out);
                b.callees(out);
            }
            Expr::Load(a) | Expr::LoadByte(a) => a.callees(out),
            _ => {}
        }
    }
}

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum BinOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Unsigned division (runtime fault on zero divisor).
    Div,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
}

/// A comparison used by `If` and `While`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CondExpr {
    /// Condition code applied as `lhs <op> rhs`.
    pub op: Cond,
    /// Left operand.
    pub lhs: Expr,
    /// Right operand.
    pub rhs: Expr,
}

impl CondExpr {
    /// Build a comparison.
    pub fn new(lhs: Expr, op: Cond, rhs: Expr) -> Self {
        Self { op, lhs, rhs }
    }
}

/// A statement.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Stmt {
    /// Assign to a local slot.
    Assign(LocalId, Expr),
    /// Store 8 bytes of `value` into the first word of a global.
    StoreGlobal(String, Expr),
    /// Store 8 bytes of `value` at a computed address.
    Store {
        /// Destination address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Store the low byte of `value` at a computed address.
    StoreByte {
        /// Destination address expression.
        addr: Expr,
        /// Value expression.
        value: Expr,
    },
    /// Conditional.
    If {
        /// Branch condition.
        cond: CondExpr,
        /// Statements when the condition holds.
        then: Vec<Stmt>,
        /// Statements when it does not.
        els: Vec<Stmt>,
    },
    /// Pre-tested loop.
    While {
        /// Loop condition.
        cond: CondExpr,
        /// Loop body.
        body: Vec<Stmt>,
    },
    /// Return a value to the caller.
    Return(Expr),
    /// Call a function for effect, discarding the result.
    Call(String, Vec<Expr>),
    /// Deliberate fault — models hitting undefined behaviour (the
    /// interpreter reports a `Trap` fault and kills the task).
    Trap,
}

impl Stmt {
    /// `if cond { then }` with an empty else.
    pub fn if_then(cond: CondExpr, then: Vec<Stmt>) -> Stmt {
        Stmt::If {
            cond,
            then,
            els: Vec::new(),
        }
    }

    /// Collect called function names into `out`.
    pub fn callees(&self, out: &mut Vec<String>) {
        match self {
            Stmt::Assign(_, e) | Stmt::StoreGlobal(_, e) | Stmt::Return(e) => e.callees(out),
            Stmt::Store { addr, value } | Stmt::StoreByte { addr, value } => {
                addr.callees(out);
                value.callees(out);
            }
            Stmt::If { cond, then, els } => {
                cond.lhs.callees(out);
                cond.rhs.callees(out);
                for s in then.iter().chain(els) {
                    s.callees(out);
                }
            }
            Stmt::While { cond, body } => {
                cond.lhs.callees(out);
                cond.rhs.callees(out);
                for s in body {
                    s.callees(out);
                }
            }
            Stmt::Call(name, args) => {
                out.push(name.clone());
                for a in args {
                    a.callees(out);
                }
            }
            Stmt::Trap => {}
        }
    }

    fn count(&self) -> usize {
        match self {
            Stmt::If { then, els, .. } => {
                1 + then.iter().map(Stmt::count).sum::<usize>()
                    + els.iter().map(Stmt::count).sum::<usize>()
            }
            Stmt::While { body, .. } => 1 + body.iter().map(Stmt::count).sum::<usize>(),
            _ => 1,
        }
    }
}

/// Inlining hint attached to a function, analogous to
/// `__always_inline`/`noinline` in kernel C.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum InlineHint {
    /// Let the compiler decide based on size (default).
    #[default]
    Auto,
    /// Always inline into callers.
    Always,
    /// Never inline.
    Never,
}

/// A KIR function definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Function {
    /// Function name (kernel symbol).
    pub name: String,
    /// Number of parameters (≤ [`MAX_PARAMS`]).
    pub params: usize,
    /// Number of local slots.
    pub locals: usize,
    /// Body statements.
    pub body: Vec<Stmt>,
    /// Inlining hint.
    pub inline: InlineHint,
    /// Whether the function gets an ftrace pad when tracing is compiled
    /// in (most kernel functions do; paper: 23,000 of 32,000).
    pub traceable: bool,
}

impl Function {
    /// Create a function with an empty body.
    ///
    /// # Panics
    ///
    /// Panics if `params` exceeds [`MAX_PARAMS`].
    pub fn new(name: impl Into<String>, params: usize, locals: usize) -> Self {
        assert!(params <= MAX_PARAMS, "too many parameters");
        Self {
            name: name.into(),
            params,
            locals,
            body: Vec::new(),
            inline: InlineHint::Auto,
            traceable: true,
        }
    }

    /// Builder: set the body.
    pub fn with_body(mut self, body: Vec<Stmt>) -> Self {
        self.body = body;
        self
    }

    /// Builder: single-statement `return expr` body.
    pub fn returning(mut self, expr: Expr) -> Self {
        self.body = vec![Stmt::Return(expr)];
        self
    }

    /// Builder: set the inline hint.
    pub fn with_inline(mut self, hint: InlineHint) -> Self {
        self.inline = hint;
        self
    }

    /// Builder: mark untraceable (no ftrace pad).
    pub fn untraceable(mut self) -> Self {
        self.traceable = false;
        self
    }

    /// Total statement count (used by the auto-inline heuristic).
    pub fn stmt_count(&self) -> usize {
        self.body.iter().map(Stmt::count).sum()
    }

    /// All function names this function calls (with duplicates).
    pub fn callees(&self) -> Vec<String> {
        let mut out = Vec::new();
        for s in &self.body {
            s.callees(&mut out);
        }
        out
    }
}

/// A global variable or buffer in the kernel data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Global {
    /// Symbol name.
    pub name: String,
    /// Initial contents as 64-bit words; the size in bytes is
    /// `words.len() * 8`.
    pub words: Vec<u64>,
}

impl Global {
    /// A single-word global with an initial value.
    pub fn word(name: impl Into<String>, init: u64) -> Self {
        Self {
            name: name.into(),
            words: vec![init],
        }
    }

    /// A zeroed buffer of `words` 64-bit words.
    pub fn buffer(name: impl Into<String>, words: usize) -> Self {
        Self {
            name: name.into(),
            words: vec![0; words],
        }
    }

    /// Size in bytes.
    pub fn size(&self) -> u64 {
        (self.words.len() * 8) as u64
    }
}

/// A complete KIR program — the "kernel source tree".
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    /// Function definitions in declaration order.
    pub functions: Vec<Function>,
    /// Global definitions in declaration order.
    pub globals: Vec<Global>,
}

/// A problem detected by [`Program::validate`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IrError {
    /// A call references a function that does not exist.
    UnknownFunction {
        /// The calling function.
        caller: String,
        /// The missing callee.
        callee: String,
    },
    /// A call passes the wrong number of arguments.
    ArityMismatch {
        /// The calling function.
        caller: String,
        /// The callee.
        callee: String,
        /// Expected parameter count.
        expected: usize,
        /// Arguments supplied.
        got: usize,
    },
    /// Two functions share a name.
    DuplicateFunction(String),
    /// Two globals share a name.
    DuplicateGlobal(String),
    /// An expression references a global that does not exist.
    UnknownGlobal {
        /// The function containing the reference.
        function: String,
        /// The missing global.
        global: String,
    },
    /// A `Param(i)` with `i` out of range, or `Local(j)` out of range.
    SlotOutOfRange {
        /// The function containing the reference.
        function: String,
        /// Description of the slot.
        what: &'static str,
        /// The referenced index.
        index: usize,
    },
}

impl fmt::Display for IrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IrError::UnknownFunction { caller, callee } => {
                write!(f, "`{caller}` calls unknown function `{callee}`")
            }
            IrError::ArityMismatch {
                caller,
                callee,
                expected,
                got,
            } => write!(
                f,
                "`{caller}` calls `{callee}` with {got} args, expected {expected}"
            ),
            IrError::DuplicateFunction(n) => write!(f, "duplicate function `{n}`"),
            IrError::DuplicateGlobal(n) => write!(f, "duplicate global `{n}`"),
            IrError::UnknownGlobal { function, global } => {
                write!(f, "`{function}` references unknown global `{global}`")
            }
            IrError::SlotOutOfRange {
                function,
                what,
                index,
            } => write!(f, "`{function}` references {what} {index} out of range"),
        }
    }
}

impl std::error::Error for IrError {}

impl Program {
    /// An empty program.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a function definition.
    pub fn add_function(&mut self, f: Function) -> &mut Self {
        self.functions.push(f);
        self
    }

    /// Add a global definition.
    pub fn add_global(&mut self, g: Global) -> &mut Self {
        self.globals.push(g);
        self
    }

    /// Find a function by name.
    pub fn function(&self, name: &str) -> Option<&Function> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Mutable lookup (patch construction edits function bodies).
    pub fn function_mut(&mut self, name: &str) -> Option<&mut Function> {
        self.functions.iter_mut().find(|f| f.name == name)
    }

    /// Find a global by name.
    pub fn global(&self, name: &str) -> Option<&Global> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// Replace an existing function definition, returning the old one.
    ///
    /// This is how patches are expressed at the source level: the patched
    /// tree is the original with some functions replaced.
    pub fn replace_function(&mut self, f: Function) -> Option<Function> {
        let slot = self.functions.iter_mut().find(|g| g.name == f.name)?;
        Some(std::mem::replace(slot, f))
    }

    /// The source-level call graph: caller → sorted, deduplicated callees.
    pub fn call_graph(&self) -> BTreeMap<String, Vec<String>> {
        let mut g = BTreeMap::new();
        for f in &self.functions {
            let mut callees = f.callees();
            callees.sort();
            callees.dedup();
            g.insert(f.name.clone(), callees);
        }
        g
    }

    /// Check referential integrity of the whole program.
    ///
    /// # Errors
    ///
    /// Returns the first [`IrError`] found.
    pub fn validate(&self) -> Result<(), IrError> {
        let mut names = std::collections::HashSet::new();
        for f in &self.functions {
            if !names.insert(&f.name) {
                return Err(IrError::DuplicateFunction(f.name.clone()));
            }
        }
        let mut globals = std::collections::HashSet::new();
        for g in &self.globals {
            if !globals.insert(&g.name) {
                return Err(IrError::DuplicateGlobal(g.name.clone()));
            }
        }
        for f in &self.functions {
            self.validate_stmts(f, &f.body)?;
        }
        Ok(())
    }

    fn validate_stmts(&self, f: &Function, stmts: &[Stmt]) -> Result<(), IrError> {
        for s in stmts {
            match s {
                Stmt::Assign(l, e) => {
                    if *l >= f.locals {
                        return Err(IrError::SlotOutOfRange {
                            function: f.name.clone(),
                            what: "local",
                            index: *l,
                        });
                    }
                    self.validate_expr(f, e)?;
                }
                Stmt::StoreGlobal(g, e) => {
                    self.check_global(f, g)?;
                    self.validate_expr(f, e)?;
                }
                Stmt::Store { addr, value } | Stmt::StoreByte { addr, value } => {
                    self.validate_expr(f, addr)?;
                    self.validate_expr(f, value)?;
                }
                Stmt::If { cond, then, els } => {
                    self.validate_expr(f, &cond.lhs)?;
                    self.validate_expr(f, &cond.rhs)?;
                    self.validate_stmts(f, then)?;
                    self.validate_stmts(f, els)?;
                }
                Stmt::While { cond, body } => {
                    self.validate_expr(f, &cond.lhs)?;
                    self.validate_expr(f, &cond.rhs)?;
                    self.validate_stmts(f, body)?;
                }
                Stmt::Return(e) => self.validate_expr(f, e)?,
                Stmt::Call(name, args) => self.validate_call(f, name, args)?,
                Stmt::Trap => {}
            }
        }
        Ok(())
    }

    fn validate_expr(&self, f: &Function, e: &Expr) -> Result<(), IrError> {
        match e {
            Expr::Const(_) => Ok(()),
            Expr::Param(i) => {
                if *i >= f.params {
                    Err(IrError::SlotOutOfRange {
                        function: f.name.clone(),
                        what: "param",
                        index: *i,
                    })
                } else {
                    Ok(())
                }
            }
            Expr::Local(l) => {
                if *l >= f.locals {
                    Err(IrError::SlotOutOfRange {
                        function: f.name.clone(),
                        what: "local",
                        index: *l,
                    })
                } else {
                    Ok(())
                }
            }
            Expr::Global(g) | Expr::GlobalAddr(g) => self.check_global(f, g),
            Expr::Bin(_, a, b) => {
                self.validate_expr(f, a)?;
                self.validate_expr(f, b)
            }
            Expr::Call(name, args) => self.validate_call(f, name, args),
            Expr::Load(a) | Expr::LoadByte(a) => self.validate_expr(f, a),
        }
    }

    fn validate_call(&self, f: &Function, name: &str, args: &[Expr]) -> Result<(), IrError> {
        let callee = self
            .function(name)
            .ok_or_else(|| IrError::UnknownFunction {
                caller: f.name.clone(),
                callee: name.to_string(),
            })?;
        if callee.params != args.len() {
            return Err(IrError::ArityMismatch {
                caller: f.name.clone(),
                callee: name.to_string(),
                expected: callee.params,
                got: args.len(),
            });
        }
        for a in args {
            self.validate_expr(f, a)?;
        }
        Ok(())
    }

    fn check_global(&self, f: &Function, g: &str) -> Result<(), IrError> {
        if self.global(g).is_none() {
            return Err(IrError::UnknownGlobal {
                function: f.name.clone(),
                global: g.to_string(),
            });
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_fn_program() -> Program {
        let mut p = Program::new();
        p.add_global(Global::word("counter", 0));
        p.add_function(Function::new("leaf", 1, 0).returning(Expr::param(0).add(Expr::c(1))));
        p.add_function(Function::new("root", 0, 1).with_body(vec![
            Stmt::Assign(0, Expr::call("leaf", vec![Expr::c(41)])),
            Stmt::StoreGlobal("counter".into(), Expr::local(0)),
            Stmt::Return(Expr::local(0)),
        ]));
        p
    }

    #[test]
    fn validate_accepts_well_formed() {
        two_fn_program().validate().unwrap();
    }

    #[test]
    fn validate_rejects_unknown_function() {
        let mut p = two_fn_program();
        p.add_function(
            Function::new("bad", 0, 0).with_body(vec![Stmt::Call("missing".into(), vec![])]),
        );
        assert!(matches!(p.validate(), Err(IrError::UnknownFunction { .. })));
    }

    #[test]
    fn validate_rejects_arity_mismatch() {
        let mut p = two_fn_program();
        p.add_function(
            Function::new("bad", 0, 0).with_body(vec![Stmt::Call("leaf".into(), vec![])]),
        );
        assert!(matches!(p.validate(), Err(IrError::ArityMismatch { .. })));
    }

    #[test]
    fn validate_rejects_unknown_global() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).returning(Expr::global("nope")));
        assert!(matches!(p.validate(), Err(IrError::UnknownGlobal { .. })));
    }

    #[test]
    fn validate_rejects_bad_slots() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 1, 1).returning(Expr::param(3)));
        assert!(matches!(p.validate(), Err(IrError::SlotOutOfRange { .. })));
        let mut p2 = Program::new();
        p2.add_function(Function::new("g", 0, 1).with_body(vec![Stmt::Assign(5, Expr::c(0))]));
        assert!(matches!(p2.validate(), Err(IrError::SlotOutOfRange { .. })));
    }

    #[test]
    fn validate_rejects_duplicates() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0));
        p.add_function(Function::new("f", 0, 0));
        assert!(matches!(p.validate(), Err(IrError::DuplicateFunction(_))));
        let mut p2 = Program::new();
        p2.add_global(Global::word("g", 0));
        p2.add_global(Global::word("g", 1));
        assert!(matches!(p2.validate(), Err(IrError::DuplicateGlobal(_))));
    }

    #[test]
    fn call_graph_collects_nested_calls() {
        let mut p = two_fn_program();
        p.add_function(Function::new("complex", 0, 0).with_body(vec![Stmt::If {
            cond: CondExpr::new(Expr::call("leaf", vec![Expr::c(0)]), Cond::Ne, Expr::c(0)),
            then: vec![Stmt::Call("root".into(), vec![])],
            els: vec![Stmt::Return(Expr::call("leaf", vec![Expr::c(1)]))],
        }]));
        let g = p.call_graph();
        assert_eq!(g["complex"], vec!["leaf".to_string(), "root".to_string()]);
        assert_eq!(g["root"], vec!["leaf".to_string()]);
        assert!(g["leaf"].is_empty());
    }

    #[test]
    fn replace_function_swaps_definition() {
        let mut p = two_fn_program();
        let newer = Function::new("leaf", 1, 0).returning(Expr::param(0).add(Expr::c(2)));
        let old = p.replace_function(newer.clone()).unwrap();
        assert_ne!(old, newer);
        assert_eq!(p.function("leaf"), Some(&newer));
        assert!(p.replace_function(Function::new("ghost", 0, 0)).is_none());
    }

    #[test]
    fn stmt_count_recurses() {
        let f = Function::new("f", 0, 1).with_body(vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::While {
                cond: CondExpr::new(Expr::local(0), Cond::B, Expr::c(10)),
                body: vec![
                    Stmt::Assign(0, Expr::local(0).add(Expr::c(1))),
                    Stmt::if_then(
                        CondExpr::new(Expr::local(0), Cond::Eq, Expr::c(5)),
                        vec![Stmt::Trap],
                    ),
                ],
            },
        ]);
        assert_eq!(f.stmt_count(), 5);
    }

    #[test]
    fn global_constructors() {
        let w = Global::word("x", 9);
        assert_eq!(w.size(), 8);
        let b = Global::buffer("buf", 4);
        assert_eq!(b.size(), 32);
        assert!(b.words.iter().all(|&w| w == 0));
    }

    #[test]
    #[should_panic(expected = "too many parameters")]
    fn too_many_params_panics() {
        let _ = Function::new("f", 6, 0);
    }
}
