#![warn(missing_docs)]

//! # kshot-kcc — the miniature kernel compiler
//!
//! KShot's patch-identification pipeline (paper §V-A) hinges on compiler
//! behaviour: patched functions may be **inlined** into callers (Type 2
//! patches), so the set of binary functions that must be live-patched is
//! larger than the set of source functions the patch diff touches. The
//! paper recovers this by comparing a *source-level* call graph against a
//! *binary-level* call graph and running a worklist algorithm over the
//! differences.
//!
//! To reproduce that honestly we need a compiler that really inlines.
//! `kshot-kcc` compiles a small structured IR ("KIR", [`ir`]) down to the
//! KV instruction set ([`kshot_isa`]):
//!
//! * [`ir`] — functions, statements, expressions, globals; the "kernel
//!   source tree" that patches are written against.
//! * [`codegen`] — a stack-frame code generator with **codegen-time
//!   inlining** driven by per-function hints and a size threshold, plus
//!   optional ftrace-pad emission (the 5-byte trace slot at function
//!   entry, paper §V-A "Supporting Kernel Tracing").
//! * [`image`] — lays out globals and functions, links inter-function
//!   calls, and produces a [`image::KernelImage`] with a symbol table and
//!   a ground-truth inline log (used to *validate* the analysis crate,
//!   never consulted by it).
//!
//! ```
//! use kshot_kcc::ir::{Expr, Function, Program, Stmt};
//! use kshot_kcc::image::link;
//! use kshot_kcc::codegen::CodegenOptions;
//!
//! let mut p = Program::new();
//! p.add_function(Function::new("answer", 0, 0).returning(Expr::c(42)));
//! let image = link(&p, &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
//! assert!(image.symbols.lookup("answer").is_some());
//! ```

pub mod codegen;
pub mod image;
pub mod ir;

pub use codegen::CodegenOptions;
pub use image::{link, KernelImage};
pub use ir::{Expr, Function, Program, Stmt};
