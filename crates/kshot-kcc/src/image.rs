//! Kernel image layout and linking.
//!
//! Produces the binary artefact the rest of the system consumes: a text
//! segment with all functions laid out and call relocations resolved, a
//! data segment with globals, and a symbol table (the `System.map`
//! analogue the SMM handler uses to locate Type 3 globals, paper §V-C
//! step 2).

use std::collections::BTreeMap;
use std::fmt;

use crate::codegen::{compile_function, CodegenError, CodegenOptions};
use crate::ir::Program;

/// A function symbol: where the function landed in the text segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FunctionSym {
    /// Symbol name.
    pub name: String,
    /// Physical address of the function entry.
    pub addr: u64,
    /// Size of the function body in bytes.
    pub size: u64,
    /// Offset of the ftrace pad from the entry, if compiled in.
    pub ftrace_offset: Option<u64>,
}

/// A global symbol: where the global landed in the data segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalSym {
    /// Symbol name.
    pub name: String,
    /// Physical address.
    pub addr: u64,
    /// Size in bytes.
    pub size: u64,
}

/// The kernel symbol table (functions + globals), in address order.
#[derive(Debug, Clone, Default)]
pub struct SymbolTable {
    functions: Vec<FunctionSym>,
    globals: Vec<GlobalSym>,
}

impl SymbolTable {
    /// Look up a function by name.
    pub fn lookup(&self, name: &str) -> Option<&FunctionSym> {
        self.functions.iter().find(|f| f.name == name)
    }

    /// Look up a global by name.
    pub fn lookup_global(&self, name: &str) -> Option<&GlobalSym> {
        self.globals.iter().find(|g| g.name == name)
    }

    /// The function containing `addr`, if any.
    pub fn function_at(&self, addr: u64) -> Option<&FunctionSym> {
        self.functions
            .iter()
            .find(|f| addr >= f.addr && addr < f.addr + f.size)
    }

    /// All function symbols in layout order.
    pub fn functions(&self) -> &[FunctionSym] {
        &self.functions
    }

    /// All global symbols in layout order.
    pub fn globals(&self) -> &[GlobalSym] {
        &self.globals
    }
}

/// A fully linked kernel image.
#[derive(Debug, Clone)]
pub struct KernelImage {
    /// Text segment bytes.
    pub text: Vec<u8>,
    /// Physical base address of the text segment.
    pub text_base: u64,
    /// Data segment bytes (globals, initialized).
    pub data: Vec<u8>,
    /// Physical base address of the data segment.
    pub data_base: u64,
    /// Symbol table.
    pub symbols: SymbolTable,
    /// Ground truth: for each compiled (binary) function, the source
    /// functions transitively inlined into it. Used only to validate
    /// `kshot-analysis`, never consulted by it.
    pub inline_log: BTreeMap<String, Vec<String>>,
    /// The options the image was compiled with (patch compatibility
    /// requires rebuilding with identical flags, paper §V-A).
    pub options: CodegenOptions,
}

/// Linking failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinkError {
    /// Code generation failed for a function.
    Codegen {
        /// The function being compiled.
        function: String,
        /// The underlying error.
        source: CodegenError,
    },
    /// A call relocation references a function missing from the layout.
    UnresolvedCall {
        /// The calling function.
        caller: String,
        /// The missing callee.
        callee: String,
    },
    /// A branch displacement overflowed during relocation.
    RelocOutOfRange {
        /// The calling function.
        caller: String,
        /// The callee.
        callee: String,
    },
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Codegen { function, source } => {
                write!(f, "compiling `{function}`: {source}")
            }
            LinkError::UnresolvedCall { caller, callee } => {
                write!(f, "`{caller}` calls `{callee}` which was not laid out")
            }
            LinkError::RelocOutOfRange { caller, callee } => {
                write!(f, "call from `{caller}` to `{callee}` out of rel32 range")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Compile and link `program` into a kernel image.
///
/// Functions are laid out in declaration order, aligned per
/// `options.align`; globals are laid out in declaration order, 8-byte
/// aligned, starting at `data_base`.
///
/// # Errors
///
/// Returns [`LinkError`] on compilation or relocation failures.
pub fn link(
    program: &Program,
    options: &CodegenOptions,
    text_base: u64,
    data_base: u64,
) -> Result<KernelImage, LinkError> {
    // Lay out globals first (codegen needs their addresses).
    let mut data = Vec::new();
    let mut globals = Vec::new();
    let mut global_addrs = BTreeMap::new();
    for g in &program.globals {
        // 8-byte align.
        while data.len() % 8 != 0 {
            data.push(0);
        }
        let addr = data_base + data.len() as u64;
        for w in &g.words {
            data.extend_from_slice(&w.to_le_bytes());
        }
        global_addrs.insert(g.name.clone(), addr);
        globals.push(GlobalSym {
            name: g.name.clone(),
            addr,
            size: g.size(),
        });
    }
    // Compile each function.
    let mut compiled = Vec::with_capacity(program.functions.len());
    for (i, f) in program.functions.iter().enumerate() {
        let c = compile_function(program, f, &global_addrs, options, i as u32).map_err(|e| {
            LinkError::Codegen {
                function: f.name.clone(),
                source: e,
            }
        })?;
        compiled.push(c);
    }
    // Lay out text.
    let align = options.align.max(1) as u64;
    let mut text = Vec::new();
    let mut functions = Vec::new();
    let mut fn_addrs = BTreeMap::new();
    let mut inline_log = BTreeMap::new();
    for c in &compiled {
        while !(text_base + text.len() as u64).is_multiple_of(align) {
            text.push(kshot_isa::opcodes::NOP);
        }
        let addr = text_base + text.len() as u64;
        fn_addrs.insert(c.name.clone(), addr);
        functions.push(FunctionSym {
            name: c.name.clone(),
            addr,
            size: c.code.len() as u64,
            ftrace_offset: c.ftrace_offset.map(|o| o as u64),
        });
        inline_log.insert(c.name.clone(), c.inlined.clone());
        text.extend_from_slice(&c.code);
    }
    // Resolve call relocations.
    for (c, sym) in compiled.iter().zip(functions.iter()) {
        for reloc in &c.relocs {
            let &target = fn_addrs
                .get(&reloc.callee)
                .ok_or_else(|| LinkError::UnresolvedCall {
                    caller: c.name.clone(),
                    callee: reloc.callee.clone(),
                })?;
            let at = sym.addr + reloc.offset as u64;
            let rel = kshot_isa::rel32_for(at, target).map_err(|_| LinkError::RelocOutOfRange {
                caller: c.name.clone(),
                callee: reloc.callee.clone(),
            })?;
            let off = (at - text_base) as usize;
            debug_assert_eq!(text[off], kshot_isa::opcodes::CALL);
            text[off + 1..off + 5].copy_from_slice(&rel.to_le_bytes());
        }
    }
    Ok(KernelImage {
        text,
        text_base,
        data,
        data_base,
        symbols: SymbolTable { functions, globals },
        inline_log,
        options: options.clone(),
    })
}

impl KernelImage {
    /// The bytes of a single function's body.
    pub fn function_bytes(&self, name: &str) -> Option<&[u8]> {
        let sym = self.symbols.lookup(name)?;
        let start = (sym.addr - self.text_base) as usize;
        Some(&self.text[start..start + sym.size as usize])
    }

    /// Total text size in bytes.
    pub fn text_size(&self) -> u64 {
        self.text.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Expr, Function, Global, InlineHint, Program, Stmt};
    use kshot_isa::disasm::disassemble;
    use kshot_isa::Inst;

    fn program() -> Program {
        let mut p = Program::new();
        p.add_global(Global::word("state", 7));
        p.add_global(Global::buffer("buf", 4));
        p.add_function(
            Function::new("callee", 1, 0)
                .with_inline(InlineHint::Never)
                .returning(Expr::param(0).add(Expr::global("state"))),
        );
        p.add_function(Function::new("main_fn", 0, 1).with_body(vec![
            Stmt::Assign(0, Expr::call("callee", vec![Expr::c(1)])),
            Stmt::StoreGlobal("state".into(), Expr::local(0)),
            Stmt::Return(Expr::local(0)),
        ]));
        p
    }

    #[test]
    fn link_produces_symbols_and_resolves_calls() {
        let img = link(&program(), &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        let callee = img.symbols.lookup("callee").unwrap();
        let main_fn = img.symbols.lookup("main_fn").unwrap();
        assert!(callee.addr < main_fn.addr);
        assert_eq!(callee.addr % 16, 0);
        // Find the call in main_fn and check it targets callee's entry.
        let body = img.function_bytes("main_fn").unwrap();
        let insts = disassemble(body, main_fn.addr).unwrap();
        let call = insts
            .iter()
            .find(|(_, i)| matches!(i, Inst::Call { .. }))
            .expect("main_fn must contain a call");
        assert_eq!(call.1.branch_target(call.0), Some(callee.addr));
    }

    #[test]
    fn globals_are_laid_out_with_initial_values() {
        let img = link(&program(), &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        let state = img.symbols.lookup_global("state").unwrap();
        assert_eq!(state.addr, 0x90_0000);
        assert_eq!(state.size, 8);
        let word = u64::from_le_bytes(img.data[0..8].try_into().unwrap());
        assert_eq!(word, 7);
        let buf = img.symbols.lookup_global("buf").unwrap();
        assert_eq!(buf.addr, 0x90_0008);
        assert_eq!(buf.size, 32);
    }

    #[test]
    fn function_at_resolves_interior_addresses() {
        let img = link(&program(), &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        let callee = img.symbols.lookup("callee").unwrap().clone();
        assert_eq!(
            img.symbols.function_at(callee.addr + 3).map(|f| &f.name),
            Some(&callee.name)
        );
        assert!(img.symbols.function_at(0).is_none());
    }

    #[test]
    fn inline_log_is_ground_truth() {
        let mut p = program();
        p.add_function(Function::new("tiny", 0, 0).returning(Expr::c(2)));
        p.add_function(Function::new("wrapper", 0, 0).returning(Expr::call("tiny", vec![])));
        let img = link(&p, &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        assert_eq!(img.inline_log["wrapper"], vec!["tiny".to_string()]);
        assert!(img.inline_log["main_fn"].is_empty());
        // The binary wrapper contains no call.
        let body = img.function_bytes("wrapper").unwrap();
        let insts = disassemble(body, 0).unwrap();
        assert!(!insts.iter().any(|(_, i)| matches!(i, Inst::Call { .. })));
    }

    #[test]
    fn whole_text_disassembles() {
        let img = link(&program(), &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        disassemble(&img.text, img.text_base).unwrap();
    }

    #[test]
    fn ftrace_offsets_recorded() {
        let img = link(&program(), &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        assert_eq!(img.symbols.lookup("callee").unwrap().ftrace_offset, Some(0));
        let no_trace = CodegenOptions {
            tracing: false,
            ..CodegenOptions::default()
        };
        let img2 = link(&program(), &no_trace, 0x10_0000, 0x90_0000).unwrap();
        assert_eq!(img2.symbols.lookup("callee").unwrap().ftrace_offset, None);
    }

    #[test]
    fn unresolved_call_is_an_error_at_validate_or_link() {
        let mut p = Program::new();
        p.add_function(
            Function::new("f", 0, 0).with_body(vec![Stmt::Call("ghost".into(), vec![])]),
        );
        let err = link(&p, &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap_err();
        assert!(matches!(err, LinkError::Codegen { .. }));
    }

    #[test]
    fn deterministic_output() {
        let a = link(&program(), &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        let b = link(&program(), &CodegenOptions::default(), 0x10_0000, 0x90_0000).unwrap();
        assert_eq!(a.text, b.text);
        assert_eq!(a.data, b.data);
    }
}
