//! Code generation: KIR → KV machine code, with codegen-time inlining.
//!
//! ## ABI
//!
//! * `r0` — return value and expression result.
//! * `r1`–`r5` — argument registers.
//! * `r10`, `r11` — codegen scratch.
//! * `r14` — frame pointer (callee-saved via push/pop).
//! * `r15` — stack pointer; `Push`/`Pop` move it by 8.
//!
//! Each function's frame holds its parameters (spilled at entry), its
//! locals, and — crucially — the parameter/local slots of every call it
//! **inlines**, recursively. Inlining happens at codegen time: instead of
//! emitting `call f`, the compiler emits `f`'s body in place, binding
//! `f`'s parameter slots and redirecting `f`'s returns to a local label.
//! This is the mechanism that produces genuine source-vs-binary call-graph
//! divergence, which `kshot-analysis` must then recover (paper §V-A,
//! Type 2 patches).

use std::collections::BTreeMap;
use std::fmt;

use kshot_isa::asm::Assembler;
use kshot_isa::{Inst, IsaError, Reg};

use crate::ir::{CondExpr, Expr, Function, InlineHint, Program, Stmt};

/// Compilation options.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CodegenOptions {
    /// Auto-inline functions whose statement count is at most this
    /// (functions hinted `Always`/`Never` override it).
    pub inline_threshold: usize,
    /// Emit the 5-byte ftrace pad at the entry of traceable functions
    /// (paper: the kernel tracer owns those bytes at runtime).
    pub tracing: bool,
    /// Function alignment in the text segment.
    pub align: usize,
}

impl Default for CodegenOptions {
    fn default() -> Self {
        Self {
            inline_threshold: 3,
            tracing: true,
            align: 16,
        }
    }
}

impl CodegenOptions {
    /// Options with inlining completely disabled (used to build the
    /// "source-shaped" binary that the call-graph comparison needs).
    pub fn no_inline() -> Self {
        Self {
            inline_threshold: 0,
            tracing: true,
            align: 16,
        }
    }
}

/// A call-site relocation: the `Call` instruction at `offset` (relative to
/// the function start) targets `callee` and must be fixed up at link time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Reloc {
    /// Byte offset of the `Call` instruction within the function body.
    pub offset: usize,
    /// Name of the called function.
    pub callee: String,
}

/// The output of compiling one function.
#[derive(Debug, Clone)]
pub struct CompiledFunction {
    /// Function name.
    pub name: String,
    /// Machine code (with zeroed placeholders at call relocations).
    pub code: Vec<u8>,
    /// Call fixups for the linker.
    pub relocs: Vec<Reloc>,
    /// Offset of the ftrace pad, if one was emitted (always 0 today, but
    /// recorded so analysis does not assume).
    pub ftrace_offset: Option<usize>,
    /// Ground truth: every function transitively inlined into this body,
    /// in emission order (with duplicates if inlined at several sites).
    pub inlined: Vec<String>,
}

/// Errors produced during code generation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodegenError {
    /// Call to a function not present in the program.
    UnknownFunction(String),
    /// Reference to a global not present in the address map.
    UnknownGlobal(String),
    /// Assembly-level failure (label or displacement problems).
    Asm(IsaError),
}

impl fmt::Display for CodegenError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodegenError::UnknownFunction(n) => write!(f, "unknown function `{n}`"),
            CodegenError::UnknownGlobal(n) => write!(f, "unknown global `{n}`"),
            CodegenError::Asm(e) => write!(f, "assembly error: {e}"),
        }
    }
}

impl std::error::Error for CodegenError {}

impl From<IsaError> for CodegenError {
    fn from(e: IsaError) -> Self {
        CodegenError::Asm(e)
    }
}

const SCRATCH_A: Reg = Reg::R10;
const SCRATCH_B: Reg = Reg::R11;
const FP: Reg = Reg::R14;
const RESULT: Reg = Reg::R0;

/// Compile one function of `program`.
///
/// `globals` maps global names to their physical data-segment addresses
/// (assigned by the linker before compilation). `site` is the ftrace site
/// id stamped into the trace pad.
///
/// # Errors
///
/// Returns [`CodegenError`] on dangling references or assembly failures;
/// run [`Program::validate`] first for friendlier diagnostics.
pub fn compile_function(
    program: &Program,
    func: &Function,
    globals: &BTreeMap<String, u64>,
    opts: &CodegenOptions,
    site: u32,
) -> Result<CompiledFunction, CodegenError> {
    let mut c = Compiler {
        program,
        opts,
        globals,
        asm: Assembler::new(),
        relocs: Vec::new(),
        inlined: Vec::new(),
        label_counter: 0,
        next_slot: 0,
        inline_stack: vec![func.name.clone()],
    };
    let total = c.slots_for(func, &mut vec![func.name.clone()])?;
    let mut ftrace_offset = None;
    if opts.tracing && func.traceable {
        ftrace_offset = Some(c.asm.offset());
        c.asm.push(Inst::Ftrace { site });
    }
    // Prologue.
    c.asm.push(Inst::Push { src: FP });
    c.asm.push(Inst::MovReg {
        dst: FP,
        src: Reg::SP,
    });
    if total > 0 {
        c.asm.push(Inst::AddImm {
            dst: Reg::SP,
            imm: -(8 * total as i32),
        });
    }
    // Spill parameters, zero locals.
    c.next_slot = func.params + func.locals;
    for i in 0..func.params {
        c.asm.push(Inst::Store {
            base: FP,
            disp: slot_disp(i),
            src: arg_reg(i),
        });
    }
    c.zero_slots(func.params, func.locals);
    let ctx = FnCtx {
        param_base: 0,
        local_base: func.params,
        end_label: None,
    };
    c.stmts(&func.body, &ctx)?;
    // Epilogue.
    c.asm.label(EPILOGUE);
    c.asm.push(Inst::MovReg {
        dst: Reg::SP,
        src: FP,
    });
    c.asm.push(Inst::Pop { dst: FP });
    c.asm.push(Inst::Ret);
    debug_assert_eq!(c.next_slot, total, "slot planner / emitter divergence");
    let code = c.asm.assemble(0)?;
    Ok(CompiledFunction {
        name: func.name.clone(),
        code,
        relocs: c.relocs,
        ftrace_offset,
        inlined: c.inlined,
    })
}

const EPILOGUE: &str = "__epilogue";

fn arg_reg(i: usize) -> Reg {
    Reg::from_index(1 + i as u8).expect("≤5 args by IR validation")
}

fn slot_disp(slot: usize) -> i32 {
    -8 * (slot as i32 + 1)
}

/// Per-(possibly inlined)-body compilation context.
#[derive(Debug, Clone)]
struct FnCtx {
    param_base: usize,
    local_base: usize,
    /// For inlined bodies, the label a `Return` jumps to; `None` in the
    /// outer function (returns go to the epilogue).
    end_label: Option<String>,
}

struct Compiler<'a> {
    program: &'a Program,
    opts: &'a CodegenOptions,
    globals: &'a BTreeMap<String, u64>,
    asm: Assembler,
    relocs: Vec<Reloc>,
    inlined: Vec<String>,
    label_counter: u64,
    next_slot: usize,
    inline_stack: Vec<String>,
}

impl Compiler<'_> {
    fn fresh(&mut self, tag: &str) -> String {
        self.label_counter += 1;
        format!("{tag}_{}", self.label_counter)
    }

    fn should_inline(&self, callee: &Function, stack: &[String]) -> bool {
        if stack.iter().any(|n| n == &callee.name) {
            return false; // never inline recursion
        }
        match callee.inline {
            InlineHint::Always => true,
            InlineHint::Never => false,
            InlineHint::Auto => {
                self.opts.inline_threshold > 0 && callee.stmt_count() <= self.opts.inline_threshold
            }
        }
    }

    /// Total frame slots needed by `f`, including transitively inlined
    /// callees. Must mirror the emitter's slot consumption exactly.
    fn slots_for(&self, f: &Function, stack: &mut Vec<String>) -> Result<usize, CodegenError> {
        let mut n = f.params + f.locals;
        for callee_name in f.callees() {
            let callee = self
                .program
                .function(&callee_name)
                .ok_or_else(|| CodegenError::UnknownFunction(callee_name.clone()))?;
            if self.should_inline(callee, stack) {
                stack.push(callee_name);
                n += self.slots_for(callee, stack)?;
                stack.pop();
            }
        }
        Ok(n)
    }

    fn zero_slots(&mut self, base: usize, count: usize) {
        if count == 0 {
            return;
        }
        self.asm.push(Inst::MovImm {
            dst: SCRATCH_A,
            imm: 0,
        });
        for j in 0..count {
            self.asm.push(Inst::Store {
                base: FP,
                disp: slot_disp(base + j),
                src: SCRATCH_A,
            });
        }
    }

    fn stmts(&mut self, stmts: &[Stmt], ctx: &FnCtx) -> Result<(), CodegenError> {
        for s in stmts {
            self.stmt(s, ctx)?;
        }
        Ok(())
    }

    fn stmt(&mut self, s: &Stmt, ctx: &FnCtx) -> Result<(), CodegenError> {
        match s {
            Stmt::Assign(l, e) => {
                self.expr(e, ctx)?;
                self.asm.push(Inst::Store {
                    base: FP,
                    disp: slot_disp(ctx.local_base + l),
                    src: RESULT,
                });
            }
            Stmt::StoreGlobal(g, e) => {
                let addr = self.global_addr(g)?;
                self.expr(e, ctx)?;
                self.asm.push(Inst::MovImm {
                    dst: SCRATCH_A,
                    imm: addr,
                });
                self.asm.push(Inst::Store {
                    base: SCRATCH_A,
                    disp: 0,
                    src: RESULT,
                });
            }
            Stmt::Store { addr, value } => {
                self.expr(addr, ctx)?;
                self.asm.push(Inst::Push { src: RESULT });
                self.expr(value, ctx)?;
                self.asm.push(Inst::Pop { dst: SCRATCH_A });
                self.asm.push(Inst::Store {
                    base: SCRATCH_A,
                    disp: 0,
                    src: RESULT,
                });
            }
            Stmt::StoreByte { addr, value } => {
                self.expr(addr, ctx)?;
                self.asm.push(Inst::Push { src: RESULT });
                self.expr(value, ctx)?;
                self.asm.push(Inst::Pop { dst: SCRATCH_A });
                self.asm.push(Inst::StoreByte {
                    base: SCRATCH_A,
                    disp: 0,
                    src: RESULT,
                });
            }
            Stmt::If { cond, then, els } => {
                let l_else = self.fresh("else");
                let l_end = self.fresh("endif");
                self.cond(cond, ctx)?;
                self.asm.jcc(cond.op.negate(), l_else.clone());
                self.stmts(then, ctx)?;
                self.asm.jmp(l_end.clone());
                self.asm.label(l_else);
                self.stmts(els, ctx)?;
                self.asm.label(l_end);
            }
            Stmt::While { cond, body } => {
                let l_head = self.fresh("while");
                let l_end = self.fresh("wend");
                self.asm.label(l_head.clone());
                self.cond(cond, ctx)?;
                self.asm.jcc(cond.op.negate(), l_end.clone());
                self.stmts(body, ctx)?;
                self.asm.jmp(l_head);
                self.asm.label(l_end);
            }
            Stmt::Return(e) => {
                self.expr(e, ctx)?;
                match &ctx.end_label {
                    Some(l) => {
                        let l = l.clone();
                        self.asm.jmp(l);
                    }
                    None => {
                        self.asm.jmp(EPILOGUE);
                    }
                }
            }
            Stmt::Call(name, args) => {
                self.emit_call(name, args, ctx)?;
            }
            Stmt::Trap => {
                self.asm.push(Inst::Trap);
            }
        }
        Ok(())
    }

    /// Evaluate a condition: leaves the flags set for `cond.op`.
    fn cond(&mut self, cond: &CondExpr, ctx: &FnCtx) -> Result<(), CodegenError> {
        self.expr(&cond.lhs, ctx)?;
        self.asm.push(Inst::Push { src: RESULT });
        self.expr(&cond.rhs, ctx)?;
        self.asm.push(Inst::MovReg {
            dst: SCRATCH_B,
            src: RESULT,
        });
        self.asm.push(Inst::Pop { dst: RESULT });
        self.asm.push(Inst::Cmp {
            a: RESULT,
            b: SCRATCH_B,
        });
        Ok(())
    }

    /// Evaluate an expression into `r0`.
    fn expr(&mut self, e: &Expr, ctx: &FnCtx) -> Result<(), CodegenError> {
        match e {
            Expr::Const(v) => {
                self.asm.push(Inst::MovImm {
                    dst: RESULT,
                    imm: *v,
                });
            }
            Expr::Param(i) => {
                self.asm.push(Inst::Load {
                    dst: RESULT,
                    base: FP,
                    disp: slot_disp(ctx.param_base + i),
                });
            }
            Expr::Local(l) => {
                self.asm.push(Inst::Load {
                    dst: RESULT,
                    base: FP,
                    disp: slot_disp(ctx.local_base + l),
                });
            }
            Expr::Global(g) => {
                let addr = self.global_addr(g)?;
                self.asm.push(Inst::MovImm {
                    dst: SCRATCH_A,
                    imm: addr,
                });
                self.asm.push(Inst::Load {
                    dst: RESULT,
                    base: SCRATCH_A,
                    disp: 0,
                });
            }
            Expr::GlobalAddr(g) => {
                let addr = self.global_addr(g)?;
                self.asm.push(Inst::MovImm {
                    dst: RESULT,
                    imm: addr,
                });
            }
            Expr::Bin(op, a, b) => {
                self.expr(a, ctx)?;
                self.asm.push(Inst::Push { src: RESULT });
                self.expr(b, ctx)?;
                self.asm.push(Inst::MovReg {
                    dst: SCRATCH_B,
                    src: RESULT,
                });
                self.asm.push(Inst::Pop { dst: RESULT });
                let inst = match op {
                    crate::ir::BinOp::Add => Inst::Add {
                        dst: RESULT,
                        src: SCRATCH_B,
                    },
                    crate::ir::BinOp::Sub => Inst::Sub {
                        dst: RESULT,
                        src: SCRATCH_B,
                    },
                    crate::ir::BinOp::Mul => Inst::Mul {
                        dst: RESULT,
                        src: SCRATCH_B,
                    },
                    crate::ir::BinOp::Div => Inst::Div {
                        dst: RESULT,
                        src: SCRATCH_B,
                    },
                    crate::ir::BinOp::And => Inst::And {
                        dst: RESULT,
                        src: SCRATCH_B,
                    },
                    crate::ir::BinOp::Or => Inst::Or {
                        dst: RESULT,
                        src: SCRATCH_B,
                    },
                    crate::ir::BinOp::Xor => Inst::Xor {
                        dst: RESULT,
                        src: SCRATCH_B,
                    },
                };
                self.asm.push(inst);
            }
            Expr::Call(name, args) => {
                self.emit_call(name, args, ctx)?;
            }
            Expr::Load(a) => {
                self.expr(a, ctx)?;
                self.asm.push(Inst::MovReg {
                    dst: SCRATCH_A,
                    src: RESULT,
                });
                self.asm.push(Inst::Load {
                    dst: RESULT,
                    base: SCRATCH_A,
                    disp: 0,
                });
            }
            Expr::LoadByte(a) => {
                self.expr(a, ctx)?;
                self.asm.push(Inst::MovReg {
                    dst: SCRATCH_A,
                    src: RESULT,
                });
                self.asm.push(Inst::LoadByte {
                    dst: RESULT,
                    base: SCRATCH_A,
                    disp: 0,
                });
            }
        }
        Ok(())
    }

    /// Emit a call — either a real `call` (with relocation) or an inline
    /// expansion. Leaves the result in `r0`.
    fn emit_call(&mut self, name: &str, args: &[Expr], ctx: &FnCtx) -> Result<(), CodegenError> {
        let callee = self
            .program
            .function(name)
            .ok_or_else(|| CodegenError::UnknownFunction(name.to_string()))?
            .clone();
        if self.should_inline(&callee, &self.inline_stack) {
            self.emit_inline(&callee, args, ctx)
        } else {
            // Evaluate args left-to-right onto the stack, then pop into
            // argument registers (reverse order).
            for a in args {
                self.expr(a, ctx)?;
                self.asm.push(Inst::Push { src: RESULT });
            }
            for i in (0..args.len()).rev() {
                self.asm.push(Inst::Pop { dst: arg_reg(i) });
            }
            self.relocs.push(Reloc {
                offset: self.asm.offset(),
                callee: name.to_string(),
            });
            self.asm.push(Inst::Call { rel: 0 });
            Ok(())
        }
    }

    fn emit_inline(
        &mut self,
        callee: &Function,
        args: &[Expr],
        ctx: &FnCtx,
    ) -> Result<(), CodegenError> {
        self.inlined.push(callee.name.clone());
        let base = self.next_slot;
        self.next_slot += callee.params + callee.locals;
        // Bind arguments into the callee's parameter slots (evaluated in
        // the *caller's* context).
        for (i, a) in args.iter().enumerate() {
            self.expr(a, ctx)?;
            self.asm.push(Inst::Store {
                base: FP,
                disp: slot_disp(base + i),
                src: RESULT,
            });
        }
        self.zero_slots(base + callee.params, callee.locals);
        let end = self.fresh("inlret");
        let inner = FnCtx {
            param_base: base,
            local_base: base + callee.params,
            end_label: Some(end.clone()),
        };
        self.inline_stack.push(callee.name.clone());
        self.stmts(&callee.body, &inner)?;
        self.inline_stack.pop();
        self.asm.label(end);
        Ok(())
    }

    fn global_addr(&self, name: &str) -> Result<u64, CodegenError> {
        self.globals
            .get(name)
            .copied()
            .ok_or_else(|| CodegenError::UnknownGlobal(name.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ir::{Global, Program};
    use kshot_isa::Cond;

    fn compile_one(p: &Program, name: &str, opts: &CodegenOptions) -> CompiledFunction {
        let globals: BTreeMap<String, u64> = p
            .globals
            .iter()
            .scan(0x90_0000u64, |addr, g| {
                let a = *addr;
                *addr += g.size();
                Some((g.name.clone(), a))
            })
            .collect();
        compile_function(p, p.function(name).unwrap(), &globals, opts, 0).unwrap()
    }

    #[test]
    fn leaf_function_compiles_and_has_ftrace_pad() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 1, 0).returning(Expr::param(0).add(Expr::c(1))));
        let out = compile_one(&p, "f", &CodegenOptions::default());
        assert_eq!(out.ftrace_offset, Some(0));
        assert_eq!(out.code[0], kshot_isa::opcodes::FTRACE);
        assert!(out.relocs.is_empty());
        assert!(out.inlined.is_empty());
        // Whole body disassembles cleanly.
        kshot_isa::disasm::disassemble(&out.code, 0).unwrap();
    }

    #[test]
    fn tracing_disabled_removes_pad() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).returning(Expr::c(1)));
        let opts = CodegenOptions {
            tracing: false,
            ..CodegenOptions::default()
        };
        let out = compile_one(&p, "f", &opts);
        assert_eq!(out.ftrace_offset, None);
        assert_ne!(out.code[0], kshot_isa::opcodes::FTRACE);
    }

    #[test]
    fn untraceable_function_has_no_pad() {
        let mut p = Program::new();
        p.add_function(Function::new("f", 0, 0).untraceable().returning(Expr::c(1)));
        let out = compile_one(&p, "f", &CodegenOptions::default());
        assert_eq!(out.ftrace_offset, None);
    }

    #[test]
    fn call_produces_relocation_when_not_inlined() {
        let mut p = Program::new();
        p.add_function(
            Function::new("big", 1, 0)
                .with_inline(crate::ir::InlineHint::Never)
                .returning(Expr::param(0)),
        );
        p.add_function(
            Function::new("caller", 0, 0).returning(Expr::call("big", vec![Expr::c(3)])),
        );
        let out = compile_one(&p, "caller", &CodegenOptions::default());
        assert_eq!(out.relocs.len(), 1);
        assert_eq!(out.relocs[0].callee, "big");
        assert!(out.inlined.is_empty());
        // The reloc offset points at a Call opcode.
        assert_eq!(out.code[out.relocs[0].offset], kshot_isa::opcodes::CALL);
    }

    #[test]
    fn small_function_is_auto_inlined() {
        let mut p = Program::new();
        p.add_function(Function::new("tiny", 1, 0).returning(Expr::param(0).add(Expr::c(7))));
        p.add_function(
            Function::new("caller", 0, 0).returning(Expr::call("tiny", vec![Expr::c(1)])),
        );
        let out = compile_one(&p, "caller", &CodegenOptions::default());
        assert!(out.relocs.is_empty(), "tiny should be inlined");
        assert_eq!(out.inlined, vec!["tiny".to_string()]);
    }

    #[test]
    fn always_hint_forces_inline_of_large_function() {
        let mut p = Program::new();
        let mut body = Vec::new();
        for i in 0..20 {
            body.push(Stmt::Assign(0, Expr::c(i)));
        }
        body.push(Stmt::Return(Expr::local(0)));
        p.add_function(
            Function::new("large", 0, 1)
                .with_inline(crate::ir::InlineHint::Always)
                .with_body(body),
        );
        p.add_function(Function::new("caller", 0, 0).returning(Expr::call("large", vec![])));
        let out = compile_one(&p, "caller", &CodegenOptions::default());
        assert!(out.relocs.is_empty());
        assert_eq!(out.inlined, vec!["large".to_string()]);
    }

    #[test]
    fn transitive_inlining_recorded() {
        let mut p = Program::new();
        p.add_function(Function::new("h", 0, 0).returning(Expr::c(1)));
        p.add_function(Function::new("g", 0, 0).returning(Expr::call("h", vec![]).add(Expr::c(1))));
        p.add_function(Function::new("f", 0, 0).returning(Expr::call("g", vec![])));
        let out = compile_one(&p, "f", &CodegenOptions::default());
        assert_eq!(out.inlined, vec!["g".to_string(), "h".to_string()]);
    }

    #[test]
    fn recursion_is_never_inlined() {
        let mut p = Program::new();
        p.add_function(
            Function::new("rec", 1, 0)
                .with_inline(crate::ir::InlineHint::Always)
                .with_body(vec![Stmt::If {
                    cond: CondExpr::new(Expr::param(0), Cond::Eq, Expr::c(0)),
                    then: vec![Stmt::Return(Expr::c(0))],
                    els: vec![Stmt::Return(Expr::call(
                        "rec",
                        vec![Expr::param(0).sub(Expr::c(1))],
                    ))],
                }]),
        );
        p.add_function(
            Function::new("caller", 0, 0).returning(Expr::call("rec", vec![Expr::c(3)])),
        );
        let out = compile_one(&p, "caller", &CodegenOptions::default());
        // "rec" inlines into caller once, but the recursive call inside
        // stays a real call.
        assert_eq!(out.inlined, vec!["rec".to_string()]);
        assert_eq!(out.relocs.len(), 1);
        assert_eq!(out.relocs[0].callee, "rec");
    }

    #[test]
    fn no_inline_options_disable_auto() {
        let mut p = Program::new();
        p.add_function(Function::new("tiny", 0, 0).returning(Expr::c(5)));
        p.add_function(Function::new("caller", 0, 0).returning(Expr::call("tiny", vec![])));
        let out = compile_one(&p, "caller", &CodegenOptions::no_inline());
        assert_eq!(out.relocs.len(), 1);
    }

    #[test]
    fn code_disassembles_for_control_flow() {
        let mut p = Program::new();
        p.add_global(Global::buffer("buf", 8));
        p.add_function(Function::new("loops", 1, 2).with_body(vec![
            Stmt::Assign(0, Expr::c(0)),
            Stmt::While {
                cond: CondExpr::new(Expr::local(0), Cond::B, Expr::param(0)),
                body: vec![
                    Stmt::Store {
                        addr: Expr::global_addr("buf").add(Expr::local(0).mul(Expr::c(8))),
                        value: Expr::local(0),
                    },
                    Stmt::Assign(0, Expr::local(0).add(Expr::c(1))),
                ],
            },
            Stmt::Return(Expr::local(0)),
        ]));
        let out = compile_one(&p, "loops", &CodegenOptions::default());
        let listing = kshot_isa::disasm::disassemble(&out.code, 0).unwrap();
        assert!(listing.len() > 10);
        // Ends with ret.
        assert_eq!(listing.last().unwrap().1, Inst::Ret);
    }
}
