#![warn(missing_docs)]

//! # kshot — facade crate for the KShot reproduction
//!
//! Re-exports every subsystem of the reproduction of *KShot: Live Kernel
//! Patching with SMM and SGX* (DSN 2020) and provides the
//! [`bench_setup`] helpers the repository-level examples, integration
//! tests and Criterion benchmarks share.
//!
//! ```
//! use kshot::bench_setup::{boot_benchmark_kernel, install_kshot};
//! use kshot_cve::{exploit_for, patch_for, find};
//!
//! let spec = find("CVE-2017-17806").unwrap();
//! let (kernel, server) = boot_benchmark_kernel(spec.version);
//! let mut system = install_kshot(kernel, 7);
//! let exploit = exploit_for(spec);
//! assert!(exploit.is_vulnerable(system.kernel_mut()).unwrap());
//! system.live_patch(&server, &patch_for(spec)).unwrap();
//! assert!(!exploit.is_vulnerable(system.kernel_mut()).unwrap());
//! ```

pub use kshot_analysis as analysis;
pub use kshot_baselines as baselines;
pub use kshot_core as core;
pub use kshot_crypto as crypto;
pub use kshot_cve as cve;
pub use kshot_enclave as enclave;
pub use kshot_fleet as fleet;
pub use kshot_isa as isa;
pub use kshot_kcc as kcc;
pub use kshot_kernel as kernel;
pub use kshot_machine as machine;
pub use kshot_patchserver as patchserver;
pub use kshot_telemetry as telemetry;

/// Shared setup used by examples, integration tests and benchmarks.
pub mod bench_setup {
    use kshot_core::KShot;
    use kshot_cve::{benchmark_options, benchmark_tree, KernelVersion};
    use kshot_kernel::Kernel;
    use kshot_machine::MemLayout;
    use kshot_patchserver::PatchServer;

    /// Boot the benchmark kernel for one version and a patch server that
    /// knows its source tree.
    pub fn boot_benchmark_kernel(version: KernelVersion) -> (Kernel, PatchServer) {
        boot_benchmark_kernel_on(version, MemLayout::standard())
    }

    /// [`boot_benchmark_kernel`] on an explicit memory layout (the
    /// large-patch benchmark rows need more reserved memory).
    pub fn boot_benchmark_kernel_on(
        version: KernelVersion,
        layout: MemLayout,
    ) -> (Kernel, PatchServer) {
        let tree = benchmark_tree(version);
        let image = kshot_kcc::link(
            &tree,
            &benchmark_options(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .expect("benchmark tree links");
        let kernel = Kernel::boot(image, version.as_str(), layout).expect("kernel boots");
        let mut server = PatchServer::new();
        server.register_tree(version.as_str(), tree);
        (kernel, server)
    }

    /// Install KShot with a deterministic seed.
    pub fn install_kshot(kernel: Kernel, seed: u64) -> KShot {
        KShot::install(kernel, seed).expect("KShot installs")
    }

    /// A synthetic patch bundle whose payload is exactly `size` bytes of
    /// placeable code — used by the Table II/III sweeps, which vary the
    /// patch size from 40 B to 10 MB.
    pub fn synthetic_bundle(
        id: &str,
        version: KernelVersion,
        size: usize,
    ) -> kshot_patchserver::PatchBundle {
        use kshot_patchserver::bundle::{PatchBundle, PatchEntry};
        let mut body = vec![kshot_isa::opcodes::NOP; size.max(1)];
        *body.last_mut().expect("nonempty") = kshot_isa::opcodes::RET;
        PatchBundle {
            id: id.to_string(),
            kernel_version: version.as_str().to_string(),
            new_functions: vec![PatchEntry {
                name: format!("{id}_blob"),
                taddr: 0,
                tsize: 0,
                ftrace_offset: None,
                expected_pre_hash: [0; 32],
                body,
                relocs: vec![],
            }],
            ..Default::default()
        }
    }

    /// The patch sizes the paper's Tables II and III sweep.
    pub const TABLE_SIZES: &[(&str, usize)] = &[
        ("40B", 40),
        ("400B", 400),
        ("4KB", 4 * 1024),
        ("40KB", 40 * 1024),
        ("400KB", 400 * 1024),
        ("10MB", 10 * 1024 * 1024),
    ];
}
