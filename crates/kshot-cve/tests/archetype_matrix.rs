//! Archetype validation independent of the live-patching mechanism.
//!
//! For every benchmark CVE, boot (a) the vulnerable tree and (b) the
//! *source-patched* tree rebuilt from scratch, and run the exploit
//! against both. This proves each vulnerability model and each fix are
//! semantically correct on their own — so when the RQ1 campaign shows
//! the same flip through KShot's binary pipeline, the flip is
//! attributable to the pipeline and not to an artefact of the model.

use kshot_cve::{
    benchmark_options, benchmark_tree, exploit_for, patch_for, KernelVersion, ALL_CVES,
};
use kshot_kernel::Kernel;
use kshot_machine::MemLayout;

fn boot(tree: &kshot_kcc::ir::Program, version: KernelVersion) -> Kernel {
    let layout = MemLayout::standard();
    let image = kshot_kcc::link(
        tree,
        &benchmark_options(),
        layout.kernel_text_base,
        layout.kernel_data_base,
    )
    .unwrap();
    Kernel::boot(image, version.as_str(), layout).unwrap()
}

#[test]
fn every_archetype_is_vulnerable_then_fixed_at_source_level() {
    for spec in ALL_CVES {
        let tree = benchmark_tree(spec.version);
        let exploit = exploit_for(spec);
        // (a) vulnerable build.
        let mut vuln_kernel = boot(&tree, spec.version);
        assert!(
            exploit.is_vulnerable(&mut vuln_kernel).unwrap(),
            "{}: model not vulnerable",
            spec.id
        );
        // (b) source-patched build (no live patching involved).
        let post = patch_for(spec).apply(&tree).unwrap();
        let mut fixed_kernel = boot(&post, spec.version);
        assert!(
            !exploit.is_vulnerable(&mut fixed_kernel).unwrap(),
            "{}: source-level fix ineffective",
            spec.id
        );
    }
}

#[test]
fn exploits_are_repeatable_and_reset_cleanly() {
    // Exploit checks must be idempotent: run each three times against
    // the vulnerable kernel (same verdict every time — the checks reset
    // their sentinels), then three times against the fixed kernel.
    for spec in ALL_CVES {
        let tree = benchmark_tree(spec.version);
        let exploit = exploit_for(spec);
        let mut k = boot(&tree, spec.version);
        for round in 0..3 {
            assert!(
                exploit.is_vulnerable(&mut k).unwrap(),
                "{}: flaky vulnerable verdict in round {round}",
                spec.id
            );
        }
        let post = patch_for(spec).apply(&tree).unwrap();
        let mut k = boot(&post, spec.version);
        for round in 0..3 {
            assert!(
                !exploit.is_vulnerable(&mut k).unwrap(),
                "{}: flaky fixed verdict in round {round}",
                spec.id
            );
        }
    }
}

#[test]
fn benign_usage_works_on_both_builds() {
    // The patch must not break legitimate use: for the archetypes with a
    // well-defined benign operation, run it on both builds.
    use kshot_cve::archetype::Archetype;
    for spec in ALL_CVES {
        let tree = benchmark_tree(spec.version);
        let post = patch_for(spec).apply(&tree).unwrap();
        for (label, program) in [("pre", &tree), ("post", &post)] {
            let mut k = boot(program, spec.version);
            match &spec.archetype {
                Archetype::BoundsWrite { funcs } => {
                    // In-bounds write must succeed on both builds.
                    let rv = k.call_function(funcs[0].0, &[1, 42]).unwrap();
                    assert_eq!(rv, 0, "{} ({label})", spec.id);
                }
                Archetype::DivZero { func } => {
                    let rv = k.call_function(func.0, &[4]).unwrap();
                    assert_eq!(rv, 250, "{} ({label})", spec.id);
                }
                Archetype::InfoLeak { func } => {
                    let rv = k.call_function(func.0, &[0]).unwrap();
                    assert_eq!(rv, 0x11, "{} ({label})", spec.id);
                }
                Archetype::SignConfusion { func } => {
                    let rv = k.call_function(func.0, &[1, 7]).unwrap();
                    assert_eq!(rv, 0, "{} ({label})", spec.id);
                }
                Archetype::TrapOops { func } => {
                    let rv = k.call_function(func.0, &[5]).unwrap();
                    assert_eq!(rv, 5, "{} ({label})", spec.id);
                }
                Archetype::ValueChange { funcs } => {
                    let rv = k.call_function(funcs[0].0, &[1, 9]).unwrap();
                    assert_eq!(rv, 0, "{} ({label})", spec.id);
                }
                // Pair/inline/struct archetypes have benign paths covered
                // by their exploit structure; spot-check callability.
                Archetype::MissingCheckPair { host, .. } => {
                    let _ = k.call_function(host.0, &[1]).unwrap();
                }
                Archetype::InlinedOnly { changed } => {
                    let _ = k
                        .call_function(&format!("{}_host", changed[0].0), &[0, 1])
                        .unwrap();
                }
                Archetype::StructField { reader, .. } => {
                    let _ = k.call_function(reader.0, &[]).unwrap();
                }
            }
        }
    }
}
