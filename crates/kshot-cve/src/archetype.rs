//! Vulnerability archetypes.
//!
//! Each archetype is a parametric model of one *mechanism class* from the
//! benchmark: it contributes the vulnerable functions/globals to the
//! kernel tree, produces the source patch that fixes them, and produces
//! the exploit check that observes the difference. Padding statements
//! (benign arithmetic on a scratch local, identical pre- and post-patch)
//! scale each function to the source-line sizes reported in Table I.

use kshot_isa::Cond;
use kshot_kcc::ir::{CondExpr, Expr, Function, Global, InlineHint, Program, Stmt};
use kshot_patchserver::SourcePatch;

use crate::exploit::ExploitCheck;

/// Clean sentinel value planted before exploit attempts.
pub const RESET: u64 = 0xA5A5;
/// Value a successful exploit plants.
pub const CORRUPT: u64 = 0xDEAD_BEEF;
/// The "secret" adjacent to leaky buffers.
pub const SECRET: u64 = 0x5EC_12E7;
/// Return value patched functions use to refuse an attack.
pub const REFUSED: u64 = u64::MAX;

/// A function name plus its padding statement count.
pub type PaddedFn = (&'static str, usize);

/// The mechanism class of one CVE model. See the module docs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Archetype {
    /// Unchecked buffer index write; the patch adds the bounds check.
    /// One sub-vulnerability per listed function (the exploit targets
    /// the first).
    BoundsWrite {
        /// Affected functions.
        funcs: &'static [PaddedFn],
    },
    /// A host function ignores a safety predicate computed by a small
    /// helper that the compiler inlines (Type 1,2).
    MissingCheckPair {
        /// The outer function (standalone in the binary).
        host: PaddedFn,
        /// The inlined predicate helper.
        helper: PaddedFn,
    },
    /// Small functions that swallow an error code; each is inlined into
    /// a synthetic `<name>_host` caller that the patch does not name but
    /// the analysis must implicate (Type 2).
    InlinedOnly {
        /// The changed (inlined) functions.
        changed: &'static [PaddedFn],
    },
    /// The patch adds a struct field (a fresh global) that a writer
    /// function must save and a reader must consume (Type 3,
    /// CVE-2014-3690-class).
    StructField {
        /// Function that should save the new field.
        writer: PaddedFn,
        /// Function that should read it back.
        reader: PaddedFn,
        /// Optional third implicated function.
        extra: Option<PaddedFn>,
        /// Name of the new field/global added by the patch.
        field: &'static str,
    },
    /// Unchecked division by an attacker-controlled value (kernel oops).
    DivZero {
        /// Affected function.
        func: PaddedFn,
    },
    /// Out-of-bounds read that leaks the adjacent secret.
    InfoLeak {
        /// Affected function.
        func: PaddedFn,
    },
    /// Signed comparison guards an unsigned index; a huge index passes
    /// the check and writes *before* the buffer.
    SignConfusion {
        /// Affected function.
        func: PaddedFn,
    },
    /// A shared limit global holds an unsafe value and the function
    /// trusts it; the patch hardens the function *and* fixes the global
    /// (Type 1,3, CVE-2016-5195-class).
    ValueChange {
        /// The two affected functions.
        funcs: [PaddedFn; 2],
    },
    /// Crafted input reaches undefined behaviour (`trap`); the patch
    /// intercepts it.
    TrapOops {
        /// Affected function.
        func: PaddedFn,
    },
}

/// Benign padding: `pad_local += i` repeated, on a dedicated local.
fn pad(n: usize, pad_local: usize) -> Vec<Stmt> {
    (0..n)
        .map(|i| Stmt::Assign(pad_local, Expr::local(pad_local).add(Expr::c(i as u64 + 1))))
        .collect()
}

fn with_pad(padding: usize, pad_local: usize, core: Vec<Stmt>) -> Vec<Stmt> {
    let mut body = pad(padding, pad_local);
    body.extend(core);
    body
}

fn buf_name(prefix: &str, i: usize) -> String {
    format!("{prefix}_{i}_buf")
}

fn sent_name(prefix: &str, i: usize) -> String {
    format!("{prefix}_{i}_sent")
}

impl Archetype {
    /// Add this CVE's vulnerable functions and globals to the tree.
    pub fn add_vulnerable(&self, p: &mut Program, prefix: String) {
        match self {
            Archetype::BoundsWrite { funcs } => {
                for (i, &(name, padding)) in funcs.iter().enumerate() {
                    p.add_global(Global::buffer(buf_name(&prefix, i), 2));
                    p.add_global(Global::word(sent_name(&prefix, i), RESET));
                    p.add_function(
                        Function::new(name, 2, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                padding,
                                0,
                                vec![
                                    Stmt::Store {
                                        addr: Expr::global_addr(buf_name(&prefix, i))
                                            .add(Expr::param(0).mul(Expr::c(8))),
                                        value: Expr::param(1),
                                    },
                                    Stmt::Return(Expr::c(0)),
                                ],
                            )),
                    );
                }
            }
            Archetype::MissingCheckPair { host, helper } => {
                p.add_global(Global::word(format!("{prefix}_flag"), 1));
                p.add_global(Global::word(format!("{prefix}_state"), RESET));
                p.add_function(Function::new(helper.0, 0, 1).with_body(with_pad(
                    helper.1,
                    0,
                    vec![Stmt::Return(Expr::global(format!("{prefix}_flag")))],
                )));
                p.add_function(
                    Function::new(host.0, 1, 2)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            host.1,
                            0,
                            vec![
                                Stmt::Assign(1, Expr::call(helper.0, vec![])),
                                // Vulnerable: the predicate result is ignored.
                                Stmt::StoreGlobal(format!("{prefix}_state"), Expr::param(0)),
                                Stmt::Return(Expr::c(0)),
                            ],
                        )),
                );
            }
            Archetype::InlinedOnly { changed } => {
                for (i, &(name, padding)) in changed.iter().enumerate() {
                    let state = format!("{prefix}_{i}_state");
                    p.add_global(Global::word(&state[..], RESET));
                    // Vulnerable: swallows the error code.
                    p.add_function(Function::new(name, 1, 1).with_body(with_pad(
                        padding,
                        0,
                        vec![Stmt::Return(Expr::c(0))],
                    )));
                    p.add_function(
                        Function::new(format!("{name}_host"), 2, 2)
                            .with_inline(InlineHint::Never)
                            .with_body(vec![
                                Stmt::Assign(1, Expr::call(name, vec![Expr::param(0)])),
                                Stmt::if_then(
                                    CondExpr::new(Expr::local(1), Cond::Eq, Expr::c(0)),
                                    vec![Stmt::StoreGlobal(state.clone(), Expr::param(1))],
                                ),
                                Stmt::Return(Expr::local(1)),
                            ]),
                    );
                }
            }
            Archetype::StructField {
                writer,
                reader,
                extra,
                field: _,
            } => {
                p.add_global(Global::word(format!("{prefix}_legacy"), 0));
                p.add_function(
                    Function::new(writer.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        // Vulnerable: fails to save the state.
                        .with_body(with_pad(writer.1, 0, vec![Stmt::Return(Expr::c(0))])),
                );
                p.add_function(
                    Function::new(reader.0, 0, 1)
                        .with_inline(InlineHint::Never)
                        // Vulnerable: reads the stale legacy slot.
                        .with_body(with_pad(
                            reader.1,
                            0,
                            vec![Stmt::Return(Expr::global(format!("{prefix}_legacy")))],
                        )),
                );
                if let Some((name, padding)) = extra {
                    p.add_function(
                        Function::new(*name, 0, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(*padding, 0, vec![Stmt::Return(Expr::c(0))])),
                    );
                }
            }
            Archetype::DivZero { func } => {
                p.add_function(
                    Function::new(func.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![Stmt::Return(Expr::c(1000).div(Expr::param(0)))],
                        )),
                );
            }
            Archetype::InfoLeak { func } => {
                p.add_global(Global {
                    name: format!("{prefix}_buf"),
                    words: vec![0x11, 0x22],
                });
                p.add_global(Global::word(format!("{prefix}_secret"), SECRET));
                p.add_function(
                    Function::new(func.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![Stmt::Return(
                                Expr::global_addr(format!("{prefix}_buf"))
                                    .add(Expr::param(0).mul(Expr::c(8)))
                                    .deref(),
                            )],
                        )),
                );
            }
            Archetype::SignConfusion { func } => {
                // Victim is laid out immediately before the buffer.
                p.add_global(Global::word(format!("{prefix}_victim"), RESET));
                p.add_global(Global::buffer(format!("{prefix}_buf"), 2));
                p.add_function(
                    Function::new(func.0, 2, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![
                                // Vulnerable: *signed* comparison.
                                Stmt::if_then(
                                    CondExpr::new(Expr::param(0), Cond::Lt, Expr::c(2)),
                                    vec![Stmt::Store {
                                        addr: Expr::global_addr(format!("{prefix}_buf"))
                                            .add(Expr::param(0).mul(Expr::c(8))),
                                        value: Expr::param(1),
                                    }],
                                ),
                                Stmt::Return(Expr::c(0)),
                            ],
                        )),
                );
            }
            Archetype::ValueChange { funcs } => {
                p.add_global(Global::word(format!("{prefix}_limit"), 8)); // unsafe
                p.add_global(Global::buffer(format!("{prefix}_buf"), 2));
                p.add_global(Global::word(format!("{prefix}_sent"), RESET));
                let (f1, f2) = (funcs[0], funcs[1]);
                p.add_function(
                    Function::new(f1.0, 2, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            f1.1,
                            0,
                            vec![
                                Stmt::if_then(
                                    CondExpr::new(
                                        Expr::param(0),
                                        Cond::Ae,
                                        Expr::global(format!("{prefix}_limit")),
                                    ),
                                    vec![Stmt::Return(Expr::c(REFUSED))],
                                ),
                                Stmt::Store {
                                    addr: Expr::global_addr(format!("{prefix}_buf"))
                                        .add(Expr::param(0).mul(Expr::c(8))),
                                    value: Expr::param(1),
                                },
                                Stmt::Return(Expr::c(0)),
                            ],
                        )),
                );
                p.add_function(
                    Function::new(f2.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(f2.1, 0, vec![Stmt::Return(Expr::param(0))])),
                );
            }
            Archetype::TrapOops { func } => {
                p.add_function(
                    Function::new(func.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![
                                Stmt::if_then(
                                    CondExpr::new(Expr::param(0), Cond::Eq, Expr::c(0x7777)),
                                    vec![Stmt::Trap],
                                ),
                                Stmt::Return(Expr::param(0)),
                            ],
                        )),
                );
            }
        }
    }

    /// Build the source patch fixing this CVE.
    pub fn patch(&self, cve_id: &str, prefix: String) -> SourcePatch {
        let mut patch = SourcePatch::new(cve_id);
        match self {
            Archetype::BoundsWrite { funcs } => {
                for (i, &(name, padding)) in funcs.iter().enumerate() {
                    patch = patch.replacing(
                        Function::new(name, 2, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                padding,
                                0,
                                vec![
                                    Stmt::if_then(
                                        CondExpr::new(Expr::param(0), Cond::Ae, Expr::c(2)),
                                        vec![Stmt::Return(Expr::c(REFUSED))],
                                    ),
                                    Stmt::Store {
                                        addr: Expr::global_addr(buf_name(&prefix, i))
                                            .add(Expr::param(0).mul(Expr::c(8))),
                                        value: Expr::param(1),
                                    },
                                    Stmt::Return(Expr::c(0)),
                                ],
                            )),
                    );
                }
            }
            Archetype::MissingCheckPair { host, helper } => {
                patch = patch
                    .replacing(Function::new(helper.0, 0, 1).with_body(with_pad(
                        helper.1,
                        0,
                        vec![Stmt::Return(
                            Expr::global(format!("{prefix}_flag")).add(Expr::c(0)),
                        )],
                    )))
                    .replacing(
                        Function::new(host.0, 1, 2)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                host.1,
                                0,
                                vec![
                                    Stmt::Assign(1, Expr::call(helper.0, vec![])),
                                    Stmt::if_then(
                                        CondExpr::new(Expr::local(1), Cond::Ne, Expr::c(0)),
                                        vec![Stmt::Return(Expr::c(REFUSED))],
                                    ),
                                    Stmt::StoreGlobal(format!("{prefix}_state"), Expr::param(0)),
                                    Stmt::Return(Expr::c(0)),
                                ],
                            )),
                    );
            }
            Archetype::InlinedOnly { changed } => {
                for &(name, padding) in changed.iter() {
                    patch = patch.replacing(Function::new(name, 1, 1).with_body(with_pad(
                        padding,
                        0,
                        vec![Stmt::Return(Expr::param(0))],
                    )));
                }
            }
            Archetype::StructField {
                writer,
                reader,
                extra,
                field,
            } => {
                let saved = format!("{prefix}_{field}");
                patch = patch
                    .adding_global(Global::word(&saved[..], 0))
                    .replacing(
                        Function::new(writer.0, 1, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                writer.1,
                                0,
                                vec![
                                    Stmt::StoreGlobal(saved.clone(), Expr::param(0)),
                                    Stmt::Return(Expr::c(0)),
                                ],
                            )),
                    )
                    .replacing(
                        Function::new(reader.0, 0, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                reader.1,
                                0,
                                vec![Stmt::Return(Expr::global(saved.clone()))],
                            )),
                    );
                if let Some((name, padding)) = extra {
                    patch = patch.replacing(
                        Function::new(*name, 0, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                *padding,
                                0,
                                vec![Stmt::Return(Expr::global(saved).add(Expr::c(0)))],
                            )),
                    );
                }
            }
            Archetype::DivZero { func } => {
                patch = patch.replacing(
                    Function::new(func.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![
                                Stmt::if_then(
                                    CondExpr::new(Expr::param(0), Cond::Eq, Expr::c(0)),
                                    vec![Stmt::Return(Expr::c(REFUSED))],
                                ),
                                Stmt::Return(Expr::c(1000).div(Expr::param(0))),
                            ],
                        )),
                );
            }
            Archetype::InfoLeak { func } => {
                patch = patch.replacing(
                    Function::new(func.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![
                                Stmt::if_then(
                                    CondExpr::new(Expr::param(0), Cond::Ae, Expr::c(2)),
                                    vec![Stmt::Return(Expr::c(0))],
                                ),
                                Stmt::Return(
                                    Expr::global_addr(format!("{prefix}_buf"))
                                        .add(Expr::param(0).mul(Expr::c(8)))
                                        .deref(),
                                ),
                            ],
                        )),
                );
            }
            Archetype::SignConfusion { func } => {
                patch = patch.replacing(
                    Function::new(func.0, 2, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![
                                Stmt::if_then(
                                    // Fixed: unsigned comparison.
                                    CondExpr::new(Expr::param(0), Cond::B, Expr::c(2)),
                                    vec![Stmt::Store {
                                        addr: Expr::global_addr(format!("{prefix}_buf"))
                                            .add(Expr::param(0).mul(Expr::c(8))),
                                        value: Expr::param(1),
                                    }],
                                ),
                                Stmt::Return(Expr::c(0)),
                            ],
                        )),
                );
            }
            Archetype::ValueChange { funcs } => {
                let (f1, f2) = (funcs[0], funcs[1]);
                patch = patch
                    .replacing(
                        Function::new(f1.0, 2, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                f1.1,
                                0,
                                vec![
                                    Stmt::if_then(
                                        CondExpr::new(Expr::param(0), Cond::Ae, Expr::c(2)),
                                        vec![Stmt::Return(Expr::c(REFUSED))],
                                    ),
                                    Stmt::if_then(
                                        CondExpr::new(
                                            Expr::param(0),
                                            Cond::Ae,
                                            Expr::global(format!("{prefix}_limit")),
                                        ),
                                        vec![Stmt::Return(Expr::c(REFUSED))],
                                    ),
                                    Stmt::Store {
                                        addr: Expr::global_addr(format!("{prefix}_buf"))
                                            .add(Expr::param(0).mul(Expr::c(8))),
                                        value: Expr::param(1),
                                    },
                                    Stmt::Return(Expr::c(0)),
                                ],
                            )),
                    )
                    .replacing(
                        Function::new(f2.0, 1, 1)
                            .with_inline(InlineHint::Never)
                            .with_body(with_pad(
                                f2.1,
                                0,
                                vec![Stmt::Return(Expr::param(0).add(Expr::c(0)))],
                            )),
                    )
                    .setting_global(format!("{prefix}_limit"), 2);
            }
            Archetype::TrapOops { func } => {
                patch = patch.replacing(
                    Function::new(func.0, 1, 1)
                        .with_inline(InlineHint::Never)
                        .with_body(with_pad(
                            func.1,
                            0,
                            vec![
                                Stmt::if_then(
                                    CondExpr::new(Expr::param(0), Cond::Eq, Expr::c(0x7777)),
                                    vec![Stmt::Return(Expr::c(REFUSED))],
                                ),
                                Stmt::Return(Expr::param(0)),
                            ],
                        )),
                );
            }
        }
        patch
    }

    /// Build the exploit check.
    pub fn exploit(&self, prefix: String) -> ExploitCheck {
        match self {
            Archetype::BoundsWrite { funcs } => ExploitCheck::CorruptsGlobal {
                func: funcs[0].0.to_string(),
                args: vec![2, CORRUPT],
                global: sent_name(&prefix, 0),
                reset: RESET,
                corrupted: CORRUPT,
            },
            Archetype::MissingCheckPair { host, .. } => ExploitCheck::CorruptsGlobal {
                func: host.0.to_string(),
                args: vec![CORRUPT],
                global: format!("{prefix}_state"),
                reset: RESET,
                corrupted: CORRUPT,
            },
            Archetype::InlinedOnly { changed } => ExploitCheck::CorruptsGlobal {
                func: format!("{}_host", changed[0].0),
                args: vec![1, CORRUPT],
                global: format!("{prefix}_0_state"),
                reset: RESET,
                corrupted: CORRUPT,
            },
            Archetype::StructField { writer, reader, .. } => ExploitCheck::Returns {
                setup: Some((writer.0.to_string(), vec![42])),
                func: reader.0.to_string(),
                args: vec![],
                vulnerable_rv: 0,
                patched_rv: 42,
            },
            Archetype::DivZero { func } => ExploitCheck::Faults {
                func: func.0.to_string(),
                args: vec![0],
            },
            Archetype::InfoLeak { func } => ExploitCheck::Returns {
                setup: None,
                func: func.0.to_string(),
                args: vec![2],
                vulnerable_rv: SECRET,
                patched_rv: 0,
            },
            Archetype::SignConfusion { func } => ExploitCheck::CorruptsGlobal {
                func: func.0.to_string(),
                args: vec![u64::MAX, CORRUPT],
                global: format!("{prefix}_victim"),
                reset: RESET,
                corrupted: CORRUPT,
            },
            Archetype::ValueChange { funcs } => ExploitCheck::CorruptsGlobal {
                func: funcs[0].0.to_string(),
                args: vec![2, CORRUPT],
                global: format!("{prefix}_sent"),
                reset: RESET,
                corrupted: CORRUPT,
            },
            Archetype::TrapOops { func } => ExploitCheck::Faults {
                func: func.0.to_string(),
                args: vec![0x7777],
            },
        }
    }
}
