//! The benchmark registry mirroring the paper's Table I.
//!
//! Each entry records the CVE number, the affected function names and
//! patch size (source lines) as printed in Table I, the paper's Type
//! classification, the kernel version the model targets, and the
//! [`Archetype`] that models the vulnerability mechanism.
//!
//! Where Table I lists the same function name for two CVEs
//! (`sctp_assoc_update`, `init_new_context`), the tree-level names carry
//! a `__<cve>` suffix so one kernel can host both models; `functions`
//! keeps the paper's names.

use crate::archetype::Archetype;

/// Which miniature kernel tree the CVE belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelVersion {
    /// The `kv-3.14` tree (CVEs published before 2016).
    V3_14,
    /// The `kv-4.4` tree (2016 and later).
    V4_4,
}

impl KernelVersion {
    /// The version string used when booting.
    pub fn as_str(self) -> &'static str {
        match self {
            KernelVersion::V3_14 => "kv-3.14",
            KernelVersion::V4_4 => "kv-4.4",
        }
    }
}

/// One Table I row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CveSpec {
    /// CVE number as printed.
    pub id: &'static str,
    /// Affected function names as printed in Table I.
    pub functions: &'static [&'static str],
    /// "Patch Size" column (source lines of changed functions).
    pub patch_lines: usize,
    /// "Type" column as printed (`"1"`, `"1,2"`, `"3"`, …).
    pub types: &'static str,
    /// Target kernel tree.
    pub version: KernelVersion,
    /// Mechanism model.
    pub archetype: Archetype,
}

impl CveSpec {
    /// Globals-name prefix unique to this CVE (e.g. `g2014_0196`).
    pub fn prefix(&self) -> String {
        let digits: String = self
            .id
            .chars()
            .map(|c| if c.is_ascii_digit() { c } else { '_' })
            .collect();
        format!("g{}", digits.trim_matches('_').replace("__", "_"))
    }
}

use Archetype::*;
use KernelVersion::*;

/// All 30 benchmark CVEs (paper Table I).
pub static ALL_CVES: &[CveSpec] = &[
    CveSpec {
        id: "CVE-2014-0196",
        functions: &["n_tty_write"],
        patch_lines: 86,
        types: "1",
        version: V3_14,
        archetype: BoundsWrite {
            funcs: &[("n_tty_write", 80)],
        },
    },
    CveSpec {
        id: "CVE-2014-3687",
        functions: &["sctp_chunk_pending", "sctp_assoc_lookup_asconf_ack"],
        patch_lines: 16,
        types: "1,2",
        version: V3_14,
        archetype: MissingCheckPair {
            host: ("sctp_assoc_lookup_asconf_ack", 6),
            helper: ("sctp_chunk_pending", 4),
        },
    },
    CveSpec {
        id: "CVE-2014-3690",
        functions: &[
            "vmx_vcpu_run",
            "vmcs_host_cr4",
            "vmx_set_constant_host_state",
        ],
        patch_lines: 247,
        types: "3",
        version: V3_14,
        archetype: StructField {
            writer: ("vmx_set_constant_host_state", 120),
            reader: ("vmx_vcpu_run", 120),
            extra: None,
            field: "vmcs_host_cr4",
        },
    },
    CveSpec {
        id: "CVE-2014-4157",
        functions: &["current_thread_info"],
        patch_lines: 5,
        types: "2",
        version: V3_14,
        archetype: InlinedOnly {
            changed: &[("current_thread_info", 2)],
        },
    },
    CveSpec {
        id: "CVE-2014-5077",
        functions: &["sctp_assoc_update"],
        patch_lines: 98,
        types: "1",
        version: V3_14,
        archetype: BoundsWrite {
            funcs: &[("sctp_assoc_update", 92)],
        },
    },
    CveSpec {
        id: "CVE-2014-8206",
        functions: &["do_remount"],
        patch_lines: 34,
        types: "2",
        version: V3_14,
        archetype: InlinedOnly {
            changed: &[("do_remount", 20)],
        },
    },
    CveSpec {
        id: "CVE-2014-7842",
        functions: &["handle_emulation_failure"],
        patch_lines: 16,
        types: "1",
        version: V3_14,
        archetype: TrapOops {
            func: ("handle_emulation_failure", 12),
        },
    },
    CveSpec {
        id: "CVE-2014-8133",
        functions: &["set_tls_desc", "regset_tls_set"],
        patch_lines: 81,
        types: "1,2",
        version: V3_14,
        archetype: MissingCheckPair {
            host: ("regset_tls_set", 40),
            helper: ("set_tls_desc", 20),
        },
    },
    CveSpec {
        id: "CVE-2015-1333",
        functions: &["__key_link_end"],
        patch_lines: 21,
        types: "1",
        version: V3_14,
        archetype: BoundsWrite {
            funcs: &[("__key_link_end", 15)],
        },
    },
    CveSpec {
        id: "CVE-2015-1421",
        functions: &["sctp_assoc_update"],
        patch_lines: 96,
        types: "1",
        version: V3_14,
        archetype: InfoLeak {
            func: ("sctp_assoc_update__1421", 90),
        },
    },
    CveSpec {
        id: "CVE-2015-5707",
        functions: &["sg_start_req"],
        patch_lines: 117,
        types: "1",
        version: V3_14,
        archetype: SignConfusion {
            func: ("sg_start_req", 111),
        },
    },
    CveSpec {
        id: "CVE-2015-7172",
        functions: &["key_gc_unused_keys", "request_key_and_link"],
        patch_lines: 20,
        types: "1",
        version: V3_14,
        archetype: BoundsWrite {
            funcs: &[("key_gc_unused_keys", 5), ("request_key_and_link", 5)],
        },
    },
    CveSpec {
        id: "CVE-2015-8812",
        functions: &["iwch_l2t_send", "iwch_cxgb3_ofld_send"],
        patch_lines: 26,
        types: "1",
        version: V3_14,
        archetype: BoundsWrite {
            funcs: &[("iwch_l2t_send", 8), ("iwch_cxgb3_ofld_send", 8)],
        },
    },
    CveSpec {
        id: "CVE-2015-8963",
        functions: &[
            "perf_swevent_add",
            "swevent_hlist_get_cpu",
            "perf_event_exit_cpu_context",
        ],
        patch_lines: 72,
        types: "3",
        version: V3_14,
        archetype: StructField {
            writer: ("perf_swevent_add", 20),
            reader: ("swevent_hlist_get_cpu", 20),
            extra: Some(("perf_event_exit_cpu_context", 20)),
            field: "hlist_cpu_state",
        },
    },
    CveSpec {
        id: "CVE-2015-8964",
        functions: &["tty_set_termios_ldisc"],
        patch_lines: 10,
        types: "2",
        version: V3_14,
        archetype: InlinedOnly {
            changed: &[("tty_set_termios_ldisc", 6)],
        },
    },
    CveSpec {
        id: "CVE-2016-2143",
        functions: &["init_new_context", "pgd_alloc", "pgd_free"],
        patch_lines: 53,
        types: "2",
        version: V4_4,
        archetype: InlinedOnly {
            changed: &[
                ("init_new_context__2143", 15),
                ("pgd_alloc", 15),
                ("pgd_free", 15),
            ],
        },
    },
    CveSpec {
        id: "CVE-2016-2543",
        functions: &["snd_seq_ioctl_remove_events"],
        patch_lines: 25,
        types: "1",
        version: V4_4,
        archetype: DivZero {
            func: ("snd_seq_ioctl_remove_events", 20),
        },
    },
    CveSpec {
        id: "CVE-2016-4578",
        functions: &["snd_timer_user_ccallback"],
        patch_lines: 24,
        types: "1",
        version: V4_4,
        archetype: InfoLeak {
            func: ("snd_timer_user_ccallback", 18),
        },
    },
    CveSpec {
        id: "CVE-2016-4580",
        functions: &["x25_negotiate_facilities"],
        patch_lines: 67,
        types: "1",
        version: V4_4,
        archetype: InfoLeak {
            func: ("x25_negotiate_facilities", 61),
        },
    },
    CveSpec {
        id: "CVE-2016-5195",
        functions: &["follow_page_pte", "faultin_page"],
        patch_lines: 229,
        types: "1,3",
        version: V4_4,
        archetype: ValueChange {
            funcs: [("follow_page_pte", 150), ("faultin_page", 70)],
        },
    },
    CveSpec {
        id: "CVE-2016-5829",
        functions: &["hiddev_ioctl_usage"],
        patch_lines: 119,
        types: "1",
        version: V4_4,
        archetype: BoundsWrite {
            funcs: &[("hiddev_ioctl_usage", 113)],
        },
    },
    CveSpec {
        id: "CVE-2016-7914",
        functions: &["assoc_array_insert_into_terminal_node"],
        patch_lines: 330,
        types: "1",
        version: V4_4,
        archetype: BoundsWrite {
            funcs: &[("assoc_array_insert_into_terminal_node", 324)],
        },
    },
    CveSpec {
        id: "CVE-2016-7916",
        functions: &["environ_read"],
        patch_lines: 63,
        types: "1",
        version: V4_4,
        archetype: InfoLeak {
            func: ("environ_read", 57),
        },
    },
    CveSpec {
        id: "CVE-2017-6347",
        functions: &["ip_cmsg_recv_checksum"],
        patch_lines: 15,
        types: "2",
        version: V4_4,
        archetype: InlinedOnly {
            changed: &[("ip_cmsg_recv_checksum", 11)],
        },
    },
    CveSpec {
        id: "CVE-2017-8251",
        functions: &["omninet_open"],
        patch_lines: 9,
        types: "2",
        version: V4_4,
        archetype: InlinedOnly {
            changed: &[("omninet_open", 5)],
        },
    },
    CveSpec {
        id: "CVE-2017-16994",
        functions: &["walk_page_range"],
        patch_lines: 27,
        types: "1",
        version: V4_4,
        archetype: TrapOops {
            func: ("walk_page_range", 22),
        },
    },
    CveSpec {
        id: "CVE-2017-17053",
        functions: &["init_new_context"],
        patch_lines: 13,
        types: "2",
        version: V4_4,
        archetype: InlinedOnly {
            changed: &[("init_new_context__17053", 9)],
        },
    },
    CveSpec {
        id: "CVE-2017-17806",
        functions: &["hmac_create", "crypto_hash_algs_setkey"],
        patch_lines: 91,
        types: "1,2",
        version: V4_4,
        archetype: MissingCheckPair {
            host: ("hmac_create", 60),
            helper: ("crypto_hash_algs_setkey", 20),
        },
    },
    CveSpec {
        id: "CVE-2017-18270",
        functions: &["install_user_keyring", "join_session_keyring"],
        patch_lines: 273,
        types: "1,2",
        version: V4_4,
        archetype: MissingCheckPair {
            host: ("join_session_keyring", 240),
            helper: ("install_user_keyring", 20),
        },
    },
    CveSpec {
        id: "CVE-2018-10124",
        functions: &["kill_something_info", "sys_kill"],
        patch_lines: 51,
        types: "1,2",
        version: V4_4,
        archetype: MissingCheckPair {
            host: ("sys_kill", 25),
            helper: ("kill_something_info", 18),
        },
    },
];

/// The six CVEs the paper selects for the whole-system drill-down
/// (§VI-C3, Figures 4 and 5). The paper names CVE-2014-4608 in the text,
/// which is absent from Table I; we substitute the Table I entry
/// CVE-2014-4157 of the same vintage and size class (documented in
/// EXPERIMENTS.md).
pub static FIGURE_CVES: &[&str] = &[
    "CVE-2014-4157",
    "CVE-2014-7842",
    "CVE-2015-1333",
    "CVE-2016-2543",
    "CVE-2017-17806",
    "CVE-2016-5195",
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefixes_are_unique_and_clean() {
        let mut ps: Vec<String> = ALL_CVES.iter().map(|s| s.prefix()).collect();
        ps.sort();
        ps.dedup();
        assert_eq!(ps.len(), ALL_CVES.len());
        for p in ps {
            assert!(p.starts_with('g'));
            assert!(!p.contains("__"));
        }
    }

    #[test]
    fn figure_cves_exist_in_table() {
        for id in FIGURE_CVES {
            assert!(
                ALL_CVES.iter().any(|s| s.id == *id),
                "{id} missing from Table I registry"
            );
        }
        assert_eq!(FIGURE_CVES.len(), 6);
    }

    #[test]
    fn version_split_matches_years() {
        for s in ALL_CVES {
            let year: u32 = s.id[4..8].parse().unwrap();
            let expected = if year < 2016 { V3_14 } else { V4_4 };
            assert_eq!(s.version, expected, "{}", s.id);
        }
    }
}
