#![warn(missing_docs)]

//! # kshot-cve — the 30-CVE benchmark suite (paper Table I)
//!
//! The paper evaluates KShot on 30 randomly selected, reproducible Linux
//! kernel CVEs. We cannot run real Linux CVE exploits against a simulated
//! kernel, so each CVE is modelled as a **synthetic vulnerability of the
//! same class** in the miniature kernel:
//!
//! * the affected function names, patch sizes (source lines) and Type
//!   1/2/3 classification mirror Table I;
//! * each model has an *executable exploit check*
//!   ([`exploit::ExploitCheck`]) that observably succeeds on the
//!   vulnerable kernel and observably fails after the patch — so RQ1
//!   ("can KShot correctly apply kernel patches?") is answered by running
//!   code, not by flags;
//! * the vulnerability archetypes ([`archetype::Archetype`]) cover the
//!   mechanism classes in the benchmark: unchecked buffer writes
//!   (CVE-2014-0196-class), missing algorithm/permission checks
//!   (CVE-2017-17806-class), error codes lost through inlined helpers
//!   (CVE-2017-17053-class), struct-field additions (CVE-2014-3690-class,
//!   Type 3), signedness confusions, division-by-zero oopses,
//!   out-of-bounds info leaks, and bad shared limits (CVE-2016-5195-class,
//!   Type 1+3).
//!
//! Function names duplicated across Table I rows (`sctp_assoc_update`,
//! `init_new_context`) carry a `__<cve>` suffix in the tree so both rows
//! can coexist in one kernel; the metadata keeps the paper's names.
//!
//! Two kernel versions are modelled, as in the paper: CVEs published
//! before 2016 live in the `kv-3.14` tree, the rest in `kv-4.4`.

pub mod archetype;
pub mod exploit;
pub mod table;

use kshot_kcc::ir::{Function, Global, InlineHint, Program};
use kshot_kcc::CodegenOptions;
use kshot_patchserver::SourcePatch;

pub use exploit::ExploitCheck;
pub use table::{CveSpec, KernelVersion, ALL_CVES, FIGURE_CVES};

/// The codegen options the benchmark kernels are compiled with.
///
/// A higher auto-inline threshold than the library default lets Type 2
/// CVEs carry realistically sized inlined helpers (the paper's patch
/// sizes reach ~50 lines for inlined functions).
pub fn benchmark_options() -> CodegenOptions {
    CodegenOptions {
        inline_threshold: 24,
        tracing: true,
        align: 16,
    }
}

/// Base kernel functions present in every benchmark tree (the workload
/// operations and a couple of innocuous helpers).
fn base_tree(p: &mut Program) {
    use kshot_isa::Cond;
    use kshot_kcc::ir::{CondExpr, Expr, Stmt};
    // A sysbench-style CPU op: sum of squares below n.
    p.add_function(
        Function::new("sysbench_cpu", 1, 2)
            .with_inline(InlineHint::Never)
            .with_body(vec![
                Stmt::Assign(0, Expr::c(0)),
                Stmt::Assign(1, Expr::c(0)),
                Stmt::While {
                    cond: CondExpr::new(Expr::local(1), Cond::B, Expr::param(0)),
                    body: vec![
                        Stmt::Assign(0, Expr::local(0).add(Expr::local(1).mul(Expr::local(1)))),
                        Stmt::Assign(1, Expr::local(1).add(Expr::c(1))),
                    ],
                },
                Stmt::Return(Expr::local(0)),
            ]),
    );
    // A memory op: walk a scratch buffer.
    p.add_global(Global::buffer("sysbench_scratch", 64));
    p.add_function(
        Function::new("sysbench_mem", 1, 1)
            .with_inline(InlineHint::Never)
            .with_body(vec![
                Stmt::Assign(0, Expr::c(0)),
                Stmt::While {
                    cond: CondExpr::new(Expr::local(0), Cond::B, Expr::param(0).and(Expr::c(63))),
                    body: vec![
                        Stmt::Store {
                            addr: Expr::global_addr("sysbench_scratch")
                                .add(Expr::local(0).mul(Expr::c(8))),
                            value: Expr::local(0),
                        },
                        Stmt::Assign(0, Expr::local(0).add(Expr::c(1))),
                    ],
                },
                Stmt::Return(Expr::local(0)),
            ]),
    );
    // A no-op syscall-ish function.
    p.add_function(
        Function::new("vfs_noop", 1, 0)
            .with_inline(InlineHint::Never)
            .returning(Expr::param(0)),
    );
}

/// Build the vulnerable kernel source tree for one kernel version: the
/// base functions plus every CVE model targeting that version.
pub fn benchmark_tree(version: KernelVersion) -> Program {
    let mut p = Program::new();
    base_tree(&mut p);
    for spec in ALL_CVES {
        if spec.version == version {
            spec.archetype.add_vulnerable(&mut p, spec.prefix());
        }
    }
    p.validate().expect("benchmark tree is well-formed");
    p
}

/// Build the source patch for one CVE.
pub fn patch_for(spec: &CveSpec) -> SourcePatch {
    spec.archetype.patch(spec.id, spec.prefix())
}

/// Build the exploit check for one CVE.
pub fn exploit_for(spec: &CveSpec) -> ExploitCheck {
    spec.archetype.exploit(spec.prefix())
}

/// Find a CVE spec by id.
pub fn find(id: &str) -> Option<&'static CveSpec> {
    ALL_CVES.iter().find(|s| s.id == id)
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::link;
    use kshot_machine::MemLayout;

    #[test]
    fn thirty_cves_registered() {
        assert_eq!(ALL_CVES.len(), 30);
        let v314 = ALL_CVES
            .iter()
            .filter(|s| s.version == KernelVersion::V3_14)
            .count();
        assert_eq!(v314, 15);
    }

    #[test]
    fn ids_are_unique() {
        let mut ids: Vec<_> = ALL_CVES.iter().map(|s| s.id).collect();
        ids.sort();
        ids.dedup();
        assert_eq!(ids.len(), 30);
    }

    #[test]
    fn both_trees_validate_and_link() {
        for version in [KernelVersion::V3_14, KernelVersion::V4_4] {
            let tree = benchmark_tree(version);
            let layout = MemLayout::standard();
            let img = link(
                &tree,
                &benchmark_options(),
                layout.kernel_text_base,
                layout.kernel_data_base,
            )
            .unwrap();
            assert!(img.text_size() > 0);
            assert!(
                img.text_size() < layout.kernel_text_size,
                "tree must fit the text region"
            );
        }
    }

    #[test]
    fn every_patch_applies_to_its_tree() {
        for spec in ALL_CVES {
            let tree = benchmark_tree(spec.version);
            let patch = patch_for(spec);
            let post = patch.apply(&tree).unwrap_or_else(|e| {
                panic!("{}: patch failed to apply: {e}", spec.id);
            });
            post.validate()
                .unwrap_or_else(|e| panic!("{}: post tree invalid: {e}", spec.id));
        }
    }

    #[test]
    fn patch_sizes_approximate_table1() {
        // "Size" in Table I is the line count of all changed functions
        // post-patch; our stmt counts should land within a loose band.
        for spec in ALL_CVES {
            let tree = benchmark_tree(spec.version);
            let patch = patch_for(spec);
            let post = patch.apply(&tree).unwrap();
            let mut lines = 0usize;
            for f in &patch.replace_functions {
                lines += post.function(&f.name).unwrap().stmt_count();
            }
            for f in &patch.add_functions {
                lines += post.function(&f.name).unwrap().stmt_count();
            }
            let target = spec.patch_lines;
            assert!(
                lines * 2 >= target && lines <= target * 2 + 8,
                "{}: modelled {lines} lines vs Table I {target}",
                spec.id
            );
        }
    }

    #[test]
    fn metadata_types_render() {
        for spec in ALL_CVES {
            assert!(!spec.types.is_empty());
            assert!(!spec.functions.is_empty());
        }
    }
}
