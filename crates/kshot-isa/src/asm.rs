//! Two-pass assembler with symbolic labels.
//!
//! Used by hand-written machine-code fixtures and by `kshot-kcc`'s code
//! generator to resolve intra-function branch targets. All displacements
//! are resolved relative to the base address given to
//! [`Assembler::assemble`], so the same item stream can be laid out at any
//! address (the patch preprocessor relies on this to place patched bodies
//! in `mem_X`).

use std::collections::HashMap;

use crate::{Cond, Inst, IsaError};

/// One element of an assembly stream: either a concrete instruction or a
/// use of a label in a branch position.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Item {
    Inst(Inst),
    /// Branch to a label; resolved in pass two. The `make` function turns
    /// a resolved displacement into the final instruction.
    Branch {
        kind: BranchKind,
        label: String,
    },
    Label(String),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchKind {
    Jmp,
    Call,
    Jcc(Cond),
}

impl BranchKind {
    fn len(self) -> usize {
        match self {
            BranchKind::Jmp | BranchKind::Call => 5,
            BranchKind::Jcc(_) => 6,
        }
    }

    fn build(self, rel: i32) -> Inst {
        match self {
            BranchKind::Jmp => Inst::Jmp { rel },
            BranchKind::Call => Inst::Call { rel },
            BranchKind::Jcc(cond) => Inst::Jcc { cond, rel },
        }
    }
}

/// A two-pass, label-resolving assembler.
///
/// # Examples
///
/// ```
/// use kshot_isa::{Inst, Reg, Cond, asm::Assembler};
///
/// let mut a = Assembler::new();
/// a.push(Inst::MovImm { dst: Reg::R0, imm: 10 });
/// a.label("head");
/// a.push(Inst::AddImm { dst: Reg::R0, imm: -1 });
/// a.push(Inst::CmpImm { reg: Reg::R0, imm: 0 });
/// a.jcc(Cond::Ne, "head");
/// a.push(Inst::Ret);
/// let bytes = a.assemble(0).unwrap();
/// assert!(!bytes.is_empty());
/// ```
#[derive(Debug, Default, Clone)]
pub struct Assembler {
    items: Vec<Item>,
}

impl Assembler {
    /// Create an empty assembler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Append a concrete instruction.
    pub fn push(&mut self, inst: Inst) -> &mut Self {
        self.items.push(Item::Inst(inst));
        self
    }

    /// Define a label at the current position.
    pub fn label(&mut self, name: impl Into<String>) -> &mut Self {
        self.items.push(Item::Label(name.into()));
        self
    }

    /// Append an unconditional jump to `label`.
    pub fn jmp(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Branch {
            kind: BranchKind::Jmp,
            label: label.into(),
        });
        self
    }

    /// Append a call to `label`.
    pub fn call(&mut self, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Branch {
            kind: BranchKind::Call,
            label: label.into(),
        });
        self
    }

    /// Append a conditional branch to `label`.
    pub fn jcc(&mut self, cond: Cond, label: impl Into<String>) -> &mut Self {
        self.items.push(Item::Branch {
            kind: BranchKind::Jcc(cond),
            label: label.into(),
        });
        self
    }

    /// Current byte offset from the start of the stream (useful for
    /// computing entry offsets while building).
    pub fn offset(&self) -> usize {
        self.items
            .iter()
            .map(|i| match i {
                Item::Inst(inst) => inst.encoded_len(),
                Item::Branch { kind, .. } => kind.len(),
                Item::Label(_) => 0,
            })
            .sum()
    }

    /// Byte offset of a defined label, if present.
    pub fn label_offset(&self, name: &str) -> Option<usize> {
        let mut off = 0;
        for item in &self.items {
            match item {
                Item::Label(l) if l == name => return Some(off),
                Item::Inst(inst) => off += inst.encoded_len(),
                Item::Branch { kind, .. } => off += kind.len(),
                Item::Label(_) => {}
            }
        }
        None
    }

    /// Resolve labels and produce machine code laid out at `base`.
    ///
    /// # Errors
    ///
    /// [`IsaError::UndefinedLabel`] / [`IsaError::DuplicateLabel`] for
    /// label problems, [`IsaError::RelOutOfRange`] if a branch cannot be
    /// encoded.
    pub fn assemble(&self, base: u64) -> Result<Vec<u8>, IsaError> {
        // Pass one: lay out offsets and record label positions.
        let mut labels: HashMap<&str, usize> = HashMap::new();
        let mut off = 0usize;
        for item in &self.items {
            match item {
                Item::Label(name) => {
                    if labels.insert(name.as_str(), off).is_some() {
                        return Err(IsaError::DuplicateLabel(name.clone()));
                    }
                }
                Item::Inst(inst) => off += inst.encoded_len(),
                Item::Branch { kind, .. } => off += kind.len(),
            }
        }
        // Pass two: emit.
        let mut out = Vec::with_capacity(off);
        for item in &self.items {
            match item {
                Item::Label(_) => {}
                Item::Inst(inst) => inst.encode_into(&mut out),
                Item::Branch { kind, label } => {
                    let &target_off = labels
                        .get(label.as_str())
                        .ok_or_else(|| IsaError::UndefinedLabel(label.clone()))?;
                    let at = base + out.len() as u64;
                    let target = base + target_off as u64;
                    let next = at + kind.len() as u64;
                    let rel = (target as i128) - (next as i128);
                    if rel > i32::MAX as i128 || rel < i32::MIN as i128 {
                        return Err(IsaError::RelOutOfRange { at, target });
                    }
                    kind.build(rel as i32).encode_into(&mut out);
                }
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disasm::disassemble;
    use crate::Reg;

    #[test]
    fn forward_and_backward_labels() {
        let mut a = Assembler::new();
        a.jmp("end"); // forward
        a.label("mid");
        a.push(Inst::Nop);
        a.jmp("mid"); // backward
        a.label("end");
        a.push(Inst::Ret);
        let code = a.assemble(0x4000).unwrap();
        let insts = disassemble(&code, 0x4000).unwrap();
        // jmp end: at 0x4000, end offset = 5+1+5 = 11
        assert_eq!(insts[0].1.branch_target(0x4000), Some(0x400B));
        // jmp mid: mid offset = 5; instruction at 0x4006
        assert_eq!(insts[2].1.branch_target(0x4006), Some(0x4005));
    }

    #[test]
    fn base_independence_of_relative_code() {
        let mut a = Assembler::new();
        a.label("top");
        a.push(Inst::AddImm {
            dst: Reg::R0,
            imm: 1,
        });
        a.jmp("top");
        let at_zero = a.assemble(0).unwrap();
        let at_high = a.assemble(0xffff_0000).unwrap();
        // Purely intra-stream branches produce identical bytes at any base.
        assert_eq!(at_zero, at_high);
    }

    #[test]
    fn undefined_label_error() {
        let mut a = Assembler::new();
        a.jmp("nowhere");
        assert_eq!(
            a.assemble(0),
            Err(IsaError::UndefinedLabel("nowhere".into()))
        );
    }

    #[test]
    fn duplicate_label_error() {
        let mut a = Assembler::new();
        a.label("x");
        a.label("x");
        assert_eq!(a.assemble(0), Err(IsaError::DuplicateLabel("x".into())));
    }

    #[test]
    fn offset_tracking() {
        let mut a = Assembler::new();
        assert_eq!(a.offset(), 0);
        a.push(Inst::Nop);
        assert_eq!(a.offset(), 1);
        a.jmp("later");
        assert_eq!(a.offset(), 6);
        a.label("later");
        assert_eq!(a.label_offset("later"), Some(6));
        assert_eq!(a.label_offset("missing"), None);
    }

    #[test]
    fn call_and_jcc_resolution() {
        let mut a = Assembler::new();
        a.call("f");
        a.jcc(Cond::Eq, "f");
        a.label("f");
        a.push(Inst::Ret);
        let code = a.assemble(0x100).unwrap();
        let insts = disassemble(&code, 0x100).unwrap();
        assert_eq!(insts[0].1.branch_target(0x100), Some(0x10B));
        assert_eq!(insts[1].1.branch_target(0x105), Some(0x10B));
    }
}
