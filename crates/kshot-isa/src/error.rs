//! Error type for encoding, decoding and assembly.

use std::error::Error;
use std::fmt;

/// Errors produced while encoding, decoding or assembling KV instructions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IsaError {
    /// A relative displacement does not fit in 32 bits.
    RelOutOfRange {
        /// Address of the branch instruction.
        at: u64,
        /// Intended branch target.
        target: u64,
    },
    /// The output buffer is too small for the requested write.
    BufferTooSmall {
        /// Bytes required.
        need: usize,
        /// Bytes available.
        have: usize,
    },
    /// An unknown opcode byte was encountered while decoding.
    UnknownOpcode {
        /// The offending byte.
        opcode: u8,
        /// Offset within the decoded buffer.
        offset: usize,
    },
    /// The instruction at `offset` is truncated (buffer ended mid-encoding).
    Truncated {
        /// Offset within the decoded buffer.
        offset: usize,
    },
    /// An operand field decoded to an invalid value (bad register or
    /// condition index).
    BadOperand {
        /// Offset within the decoded buffer.
        offset: usize,
        /// Human-readable description of the field.
        what: &'static str,
    },
    /// A label referenced during assembly was never defined.
    UndefinedLabel(String),
    /// A label was defined more than once during assembly.
    DuplicateLabel(String),
}

impl fmt::Display for IsaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IsaError::RelOutOfRange { at, target } => write!(
                f,
                "relative displacement from {at:#x} to {target:#x} exceeds 32 bits"
            ),
            IsaError::BufferTooSmall { need, have } => {
                write!(f, "buffer too small: need {need} bytes, have {have}")
            }
            IsaError::UnknownOpcode { opcode, offset } => {
                write!(f, "unknown opcode {opcode:#04x} at offset {offset:#x}")
            }
            IsaError::Truncated { offset } => {
                write!(f, "truncated instruction at offset {offset:#x}")
            }
            IsaError::BadOperand { offset, what } => {
                write!(f, "invalid {what} operand at offset {offset:#x}")
            }
            IsaError::UndefinedLabel(l) => write!(f, "undefined label `{l}`"),
            IsaError::DuplicateLabel(l) => write!(f, "duplicate label `{l}`"),
        }
    }
}

impl Error for IsaError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_nonempty() {
        let samples: Vec<IsaError> = vec![
            IsaError::RelOutOfRange { at: 1, target: 2 },
            IsaError::BufferTooSmall { need: 5, have: 1 },
            IsaError::UnknownOpcode {
                opcode: 0xff,
                offset: 3,
            },
            IsaError::Truncated { offset: 9 },
            IsaError::BadOperand {
                offset: 0,
                what: "register",
            },
            IsaError::UndefinedLabel("x".into()),
            IsaError::DuplicateLabel("y".into()),
        ];
        for e in samples {
            assert!(!e.to_string().is_empty());
        }
    }
}
