//! Linear-sweep disassembler.
//!
//! The binary-analysis pipeline (`kshot-analysis`) and the SMM handler's
//! integrity introspection both need to walk instruction streams; this
//! module provides a plain linear sweep plus a formatted listing helper.

use crate::{Inst, IsaError};

/// Disassemble an entire byte region laid out at `base`.
///
/// Returns `(address, instruction)` pairs in layout order.
///
/// # Errors
///
/// Fails if any byte position begins an unknown or truncated instruction —
/// a linear sweep must consume the whole region exactly.
pub fn disassemble(bytes: &[u8], base: u64) -> Result<Vec<(u64, Inst)>, IsaError> {
    let mut out = Vec::new();
    let mut off = 0usize;
    while off < bytes.len() {
        let (inst, len) = Inst::decode(bytes, off)?;
        out.push((base + off as u64, inst));
        off += len;
    }
    Ok(out)
}

/// Iterator-style disassembler that tolerates errors by stopping.
///
/// Unlike [`disassemble`], this yields instructions until the first decode
/// failure, which is what introspection wants when scanning a region that
/// may end in non-code bytes.
#[derive(Debug, Clone)]
pub struct Sweep<'a> {
    bytes: &'a [u8],
    base: u64,
    off: usize,
}

impl<'a> Sweep<'a> {
    /// Start a sweep over `bytes` laid out at `base`.
    pub fn new(bytes: &'a [u8], base: u64) -> Self {
        Self {
            bytes,
            base,
            off: 0,
        }
    }

    /// Byte offset the sweep has reached.
    pub fn offset(&self) -> usize {
        self.off
    }
}

impl Iterator for Sweep<'_> {
    type Item = (u64, Inst);

    fn next(&mut self) -> Option<Self::Item> {
        if self.off >= self.bytes.len() {
            return None;
        }
        match Inst::decode(self.bytes, self.off) {
            Ok((inst, len)) => {
                let addr = self.base + self.off as u64;
                self.off += len;
                Some((addr, inst))
            }
            Err(_) => None,
        }
    }
}

/// Produce a human-readable listing (one instruction per line, with
/// addresses), for debugging and the example binaries' output.
pub fn listing(bytes: &[u8], base: u64) -> String {
    use std::fmt::Write;
    let mut s = String::new();
    for (addr, inst) in Sweep::new(bytes, base) {
        let _ = writeln!(s, "{addr:#010x}:  {inst}");
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Cond, Reg};

    fn sample_code() -> Vec<u8> {
        let mut buf = Vec::new();
        for inst in [
            Inst::Ftrace { site: 7 },
            Inst::MovImm {
                dst: Reg::R0,
                imm: 1,
            },
            Inst::CmpImm {
                reg: Reg::R0,
                imm: 0,
            },
            Inst::Jcc {
                cond: Cond::Eq,
                rel: 1,
            },
            Inst::Ret,
        ] {
            inst.encode_into(&mut buf);
        }
        buf
    }

    #[test]
    fn full_disassembly() {
        let code = sample_code();
        let insts = disassemble(&code, 0x8000).unwrap();
        assert_eq!(insts.len(), 5);
        assert_eq!(insts[0], (0x8000, Inst::Ftrace { site: 7 }));
        assert_eq!(insts[4].1, Inst::Ret);
        // Addresses are cumulative encoded lengths.
        assert_eq!(insts[1].0, 0x8005);
        assert_eq!(insts[2].0, 0x800F);
    }

    #[test]
    fn disassemble_rejects_garbage() {
        let mut code = sample_code();
        code.push(0xAB); // junk trailing byte
        assert!(disassemble(&code, 0).is_err());
    }

    #[test]
    fn sweep_stops_at_garbage() {
        let mut code = sample_code();
        let good_len = code.len();
        code.push(0xAB);
        let sweep = Sweep::new(&code, 0);
        let got: Vec<_> = sweep.collect();
        assert_eq!(got.len(), 5);
        let mut sweep = Sweep::new(&code, 0);
        while sweep.next().is_some() {}
        assert_eq!(sweep.offset(), good_len);
    }

    #[test]
    fn listing_contains_addresses_and_mnemonics() {
        let code = sample_code();
        let text = listing(&code, 0x8000);
        assert!(text.contains("0x00008000"));
        assert!(text.contains("ftrace"));
        assert!(text.contains("ret"));
    }

    #[test]
    fn empty_region() {
        assert!(disassemble(&[], 0).unwrap().is_empty());
        assert_eq!(Sweep::new(&[], 0).count(), 0);
    }
}
