//! Branch condition codes.

use std::fmt;

/// Condition code for conditional branches (`Jcc`).
///
/// Conditions are evaluated against the flags produced by the most recent
/// `Cmp`/`CmpImm` instruction, which records both a signed and an unsigned
/// comparison of its two operands.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Cond {
    /// Equal.
    Eq = 0,
    /// Not equal.
    Ne = 1,
    /// Signed less-than.
    Lt = 2,
    /// Signed less-or-equal.
    Le = 3,
    /// Signed greater-than.
    Gt = 4,
    /// Signed greater-or-equal.
    Ge = 5,
    /// Unsigned below.
    B = 6,
    /// Unsigned below-or-equal.
    Be = 7,
    /// Unsigned above.
    A = 8,
    /// Unsigned above-or-equal.
    Ae = 9,
}

impl Cond {
    /// All condition codes, indexed by their encoding.
    pub const ALL: [Cond; 10] = [
        Cond::Eq,
        Cond::Ne,
        Cond::Lt,
        Cond::Le,
        Cond::Gt,
        Cond::Ge,
        Cond::B,
        Cond::Be,
        Cond::A,
        Cond::Ae,
    ];

    /// Encoding byte.
    #[inline]
    pub fn code(self) -> u8 {
        self as u8
    }

    /// Decode from an encoding byte.
    pub fn from_code(code: u8) -> Option<Cond> {
        Cond::ALL.get(code as usize).copied()
    }

    /// Evaluate the condition against a pair of compared values.
    pub fn eval(self, a: u64, b: u64) -> bool {
        match self {
            Cond::Eq => a == b,
            Cond::Ne => a != b,
            Cond::Lt => (a as i64) < (b as i64),
            Cond::Le => (a as i64) <= (b as i64),
            Cond::Gt => (a as i64) > (b as i64),
            Cond::Ge => (a as i64) >= (b as i64),
            Cond::B => a < b,
            Cond::Be => a <= b,
            Cond::A => a > b,
            Cond::Ae => a >= b,
        }
    }

    /// The condition that accepts exactly the complementary set of inputs.
    pub fn negate(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::Ge => Cond::Lt,
            Cond::B => Cond::Ae,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::Ae => Cond::B,
        }
    }
}

impl fmt::Display for Cond {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Cond::Eq => "eq",
            Cond::Ne => "ne",
            Cond::Lt => "lt",
            Cond::Le => "le",
            Cond::Gt => "gt",
            Cond::Ge => "ge",
            Cond::B => "b",
            Cond::Be => "be",
            Cond::A => "a",
            Cond::Ae => "ae",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn code_roundtrip() {
        for c in Cond::ALL {
            assert_eq!(Cond::from_code(c.code()), Some(c));
        }
        assert_eq!(Cond::from_code(10), None);
    }

    #[test]
    fn signed_vs_unsigned() {
        let neg1 = u64::MAX; // -1 as i64
        assert!(Cond::Lt.eval(neg1, 0)); // signed: -1 < 0
        assert!(!Cond::B.eval(neg1, 0)); // unsigned: MAX > 0
        assert!(Cond::A.eval(neg1, 0));
        assert!(Cond::Ge.eval(0, neg1));
    }

    #[test]
    fn negation_is_exact_complement() {
        let samples = [(0u64, 0u64), (1, 2), (2, 1), (u64::MAX, 0), (0, u64::MAX)];
        for c in Cond::ALL {
            for &(a, b) in &samples {
                assert_ne!(c.eval(a, b), c.negate().eval(a, b), "{c} on ({a},{b})");
            }
        }
    }
}
