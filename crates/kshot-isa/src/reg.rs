//! General-purpose register names for the KV ISA.

use std::fmt;

/// One of the sixteen 64-bit general-purpose registers (`r0`–`r15`).
///
/// By convention (enforced by the `kshot-kcc` code generator, not the
/// hardware):
///
/// * `r0` — return value / first scratch
/// * `r1`–`r5` — argument registers
/// * `r14` — frame-ish scratch reserved for the compiler
/// * `r15` — stack pointer
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum Reg {
    /// General-purpose register `r0`.
    R0 = 0,
    /// General-purpose register `r1`.
    R1 = 1,
    /// General-purpose register `r2`.
    R2 = 2,
    /// General-purpose register `r3`.
    R3 = 3,
    /// General-purpose register `r4`.
    R4 = 4,
    /// General-purpose register `r5`.
    R5 = 5,
    /// General-purpose register `r6`.
    R6 = 6,
    /// General-purpose register `r7`.
    R7 = 7,
    /// General-purpose register `r8`.
    R8 = 8,
    /// General-purpose register `r9`.
    R9 = 9,
    /// General-purpose register `r10`.
    R10 = 10,
    /// General-purpose register `r11`.
    R11 = 11,
    /// General-purpose register `r12`.
    R12 = 12,
    /// General-purpose register `r13`.
    R13 = 13,
    /// General-purpose register `r14`.
    R14 = 14,
    /// General-purpose register `r15`.
    R15 = 15,
}

impl Reg {
    /// Number of architectural general-purpose registers.
    pub const COUNT: usize = 16;

    /// The stack-pointer register (`r15`).
    pub const SP: Reg = Reg::R15;

    /// All registers in index order.
    pub const ALL: [Reg; 16] = [
        Reg::R0,
        Reg::R1,
        Reg::R2,
        Reg::R3,
        Reg::R4,
        Reg::R5,
        Reg::R6,
        Reg::R7,
        Reg::R8,
        Reg::R9,
        Reg::R10,
        Reg::R11,
        Reg::R12,
        Reg::R13,
        Reg::R14,
        Reg::R15,
    ];

    /// Register index as used in instruction encodings.
    #[inline]
    pub fn index(self) -> usize {
        self as usize
    }

    /// Build a register from an encoding index.
    ///
    /// Returns `None` for indices ≥ 16.
    pub fn from_index(idx: u8) -> Option<Reg> {
        Reg::ALL.get(idx as usize).copied()
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.index())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn index_roundtrip() {
        for r in Reg::ALL {
            assert_eq!(Reg::from_index(r.index() as u8), Some(r));
        }
    }

    #[test]
    fn from_index_out_of_range() {
        assert_eq!(Reg::from_index(16), None);
        assert_eq!(Reg::from_index(255), None);
    }

    #[test]
    fn display() {
        assert_eq!(Reg::R0.to_string(), "r0");
        assert_eq!(Reg::SP.to_string(), "r15");
    }
}
