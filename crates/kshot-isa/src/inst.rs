//! Instruction definitions, encoding and decoding.

use std::fmt;

use crate::{Cond, IsaError, Reg};

/// Length in bytes of the `jmp rel32` / `call rel32` encodings — and of the
/// ftrace pad. The constant `5` appears throughout the KShot paper
/// (trampoline offset `paddr − taddr + 5`, "5-byte trace instruction").
pub const JMP_LEN: usize = 5;

/// Longest possible instruction encoding (`MovImm` = opcode + reg + imm64).
pub const MAX_INST_LEN: usize = 10;

/// Opcode bytes for the KV ISA.
///
/// Chosen to echo the corresponding x86 opcodes where one exists, which
/// keeps disassembly listings familiar when debugging.
pub mod opcodes {
    /// 1-byte no-op.
    pub const NOP: u8 = 0x90;
    /// 5-byte ftrace pad (`call __fentry__` analogue).
    pub const FTRACE: u8 = 0xF1;
    /// 5-byte unconditional `jmp rel32`.
    pub const JMP: u8 = 0xE9;
    /// 5-byte `call rel32`.
    pub const CALL: u8 = 0xE8;
    /// Return.
    pub const RET: u8 = 0xC3;
    /// Conditional branch: `0x0F cc rel32`.
    pub const JCC: u8 = 0x0F;
    /// Move 64-bit immediate: `0xB8 reg imm64`.
    pub const MOV_IMM: u8 = 0xB8;
    /// Register-to-register move.
    pub const MOV_REG: u8 = 0x89;
    /// ALU register ops (dst ← dst op src).
    pub const ADD: u8 = 0x01;
    /// Subtract.
    pub const SUB: u8 = 0x29;
    /// Bitwise and.
    pub const AND: u8 = 0x21;
    /// Bitwise or.
    pub const OR: u8 = 0x09;
    /// Bitwise xor.
    pub const XOR: u8 = 0x31;
    /// Multiply (wrapping).
    pub const MUL: u8 = 0x6B;
    /// Unsigned divide; traps at runtime on divide-by-zero.
    pub const DIV: u8 = 0xF7;
    /// Shift left by immediate.
    pub const SHL_IMM: u8 = 0xC1;
    /// Logical shift right by immediate.
    pub const SHR_IMM: u8 = 0xD1;
    /// Add sign-extended 32-bit immediate.
    pub const ADD_IMM: u8 = 0x83;
    /// 64-bit load: `dst ← mem64[base+disp32]`.
    pub const LOAD: u8 = 0x8B;
    /// 64-bit store: `mem64[base+disp32] ← src`.
    pub const STORE: u8 = 0x88;
    /// Byte load (zero-extended).
    pub const LOAD_BYTE: u8 = 0x8A;
    /// Byte store (low 8 bits).
    pub const STORE_BYTE: u8 = 0x8C;
    /// Compare two registers, setting flags.
    pub const CMP: u8 = 0x3B;
    /// Compare register with sign-extended 32-bit immediate.
    pub const CMP_IMM: u8 = 0x3D;
    /// Push register onto the stack.
    pub const PUSH: u8 = 0x50;
    /// Pop register from the stack.
    pub const POP: u8 = 0x58;
    /// System call / kernel service: `0xCD imm8`.
    pub const SYS: u8 = 0xCD;
    /// Halt the current task.
    pub const HALT: u8 = 0xF4;
    /// Software trap (deliberate fault, like `ud2`).
    pub const TRAP: u8 = 0xCC;
}

/// A single KV instruction.
///
/// Every variant has a fixed encoded length retrievable via
/// [`Inst::encoded_len`]; [`Inst::encode_into`] and [`Inst::decode`] are
/// exact inverses (see the property tests).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)] // operand fields are fully described by each variant's doc line
pub enum Inst {
    /// 1-byte no-op.
    Nop,
    /// 5-byte ftrace pad carrying a trace-site identifier. Emitted at
    /// function entry by the compiler when tracing is enabled; the kernel's
    /// tracer may rewrite it at runtime, so live patching must leave it
    /// intact (paper §V-A).
    Ftrace {
        /// Trace-site identifier (assigned per function by the compiler).
        site: u32,
    },
    /// Unconditional relative jump.
    Jmp {
        /// Displacement relative to the end of this instruction.
        rel: i32,
    },
    /// Relative call; pushes the return address.
    Call {
        /// Displacement relative to the end of this instruction.
        rel: i32,
    },
    /// Return to the address on top of the stack.
    Ret,
    /// Conditional relative branch.
    Jcc {
        /// Branch condition, evaluated against the last comparison.
        cond: Cond,
        /// Displacement relative to the end of this instruction.
        rel: i32,
    },
    /// Load a 64-bit immediate.
    MovImm {
        /// Destination register.
        dst: Reg,
        /// Immediate value.
        imm: u64,
    },
    /// Register move.
    MovReg {
        /// Destination register.
        dst: Reg,
        /// Source register.
        src: Reg,
    },
    /// `dst ← dst + src` (wrapping).
    Add { dst: Reg, src: Reg },
    /// `dst ← dst − src` (wrapping).
    Sub { dst: Reg, src: Reg },
    /// `dst ← dst & src`.
    And { dst: Reg, src: Reg },
    /// `dst ← dst | src`.
    Or { dst: Reg, src: Reg },
    /// `dst ← dst ^ src`.
    Xor { dst: Reg, src: Reg },
    /// `dst ← dst × src` (wrapping).
    Mul { dst: Reg, src: Reg },
    /// `dst ← dst ÷ src` (unsigned); runtime fault on `src == 0`.
    Div { dst: Reg, src: Reg },
    /// `dst ← dst << amount` (amount masked to 0–63).
    ShlImm { dst: Reg, amount: u8 },
    /// `dst ← dst >> amount` logical (amount masked to 0–63).
    ShrImm { dst: Reg, amount: u8 },
    /// `dst ← dst + sx(imm)` (wrapping).
    AddImm { dst: Reg, imm: i32 },
    /// `dst ← mem64[base + disp]`.
    Load { dst: Reg, base: Reg, disp: i32 },
    /// `mem64[base + disp] ← src`.
    Store { base: Reg, disp: i32, src: Reg },
    /// `dst ← zx(mem8[base + disp])`.
    LoadByte { dst: Reg, base: Reg, disp: i32 },
    /// `mem8[base + disp] ← low8(src)`.
    StoreByte { base: Reg, disp: i32, src: Reg },
    /// Set flags from `a ? b`.
    Cmp { a: Reg, b: Reg },
    /// Set flags from `reg ? sx(imm)`.
    CmpImm { reg: Reg, imm: i32 },
    /// Push a register.
    Push { src: Reg },
    /// Pop into a register.
    Pop { dst: Reg },
    /// Invoke kernel service `num` (syscall-style).
    Sys { num: u8 },
    /// Halt the executing task.
    Halt,
    /// Deliberate fault (undefined behaviour marker).
    Trap,
}

impl Inst {
    /// Encoded length in bytes of this instruction.
    pub fn encoded_len(&self) -> usize {
        use Inst::*;
        match self {
            Nop | Ret | Halt | Trap => 1,
            Push { .. } | Pop { .. } | Sys { .. } => 2,
            MovReg { .. }
            | Add { .. }
            | Sub { .. }
            | And { .. }
            | Or { .. }
            | Xor { .. }
            | Mul { .. }
            | Div { .. }
            | ShlImm { .. }
            | ShrImm { .. }
            | Cmp { .. } => 3,
            Ftrace { .. } | Jmp { .. } | Call { .. } => 5,
            Jcc { .. } | AddImm { .. } | CmpImm { .. } => 6,
            Load { .. } | Store { .. } | LoadByte { .. } | StoreByte { .. } => 7,
            MovImm { .. } => 10,
        }
    }

    /// Append this instruction's encoding to `out`.
    pub fn encode_into(&self, out: &mut Vec<u8>) {
        use opcodes::*;
        use Inst::*;
        match *self {
            Nop => out.push(NOP),
            Ftrace { site } => {
                out.push(FTRACE);
                out.extend_from_slice(&site.to_le_bytes());
            }
            Jmp { rel } => {
                out.push(JMP);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Call { rel } => {
                out.push(CALL);
                out.extend_from_slice(&rel.to_le_bytes());
            }
            Ret => out.push(RET),
            Jcc { cond, rel } => {
                out.push(JCC);
                out.push(cond.code());
                out.extend_from_slice(&rel.to_le_bytes());
            }
            MovImm { dst, imm } => {
                out.push(MOV_IMM);
                out.push(dst.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            MovReg { dst, src } => enc_rr(out, MOV_REG, dst, src),
            Add { dst, src } => enc_rr(out, ADD, dst, src),
            Sub { dst, src } => enc_rr(out, SUB, dst, src),
            And { dst, src } => enc_rr(out, AND, dst, src),
            Or { dst, src } => enc_rr(out, OR, dst, src),
            Xor { dst, src } => enc_rr(out, XOR, dst, src),
            Mul { dst, src } => enc_rr(out, MUL, dst, src),
            Div { dst, src } => enc_rr(out, DIV, dst, src),
            ShlImm { dst, amount } => {
                out.push(SHL_IMM);
                out.push(dst.index() as u8);
                out.push(amount);
            }
            ShrImm { dst, amount } => {
                out.push(SHR_IMM);
                out.push(dst.index() as u8);
                out.push(amount);
            }
            AddImm { dst, imm } => {
                out.push(ADD_IMM);
                out.push(dst.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Load { dst, base, disp } => enc_mem(out, LOAD, dst, base, disp),
            Store { base, disp, src } => enc_mem(out, STORE, src, base, disp),
            LoadByte { dst, base, disp } => enc_mem(out, LOAD_BYTE, dst, base, disp),
            StoreByte { base, disp, src } => enc_mem(out, STORE_BYTE, src, base, disp),
            Cmp { a, b } => enc_rr(out, CMP, a, b),
            CmpImm { reg, imm } => {
                out.push(CMP_IMM);
                out.push(reg.index() as u8);
                out.extend_from_slice(&imm.to_le_bytes());
            }
            Push { src } => {
                out.push(PUSH);
                out.push(src.index() as u8);
            }
            Pop { dst } => {
                out.push(POP);
                out.push(dst.index() as u8);
            }
            Sys { num } => {
                out.push(SYS);
                out.push(num);
            }
            Halt => out.push(HALT),
            Trap => out.push(TRAP),
        }
    }

    /// Encode to a fresh byte vector.
    pub fn encode(&self) -> Vec<u8> {
        let mut v = Vec::with_capacity(self.encoded_len());
        self.encode_into(&mut v);
        v
    }

    /// Decode the instruction starting at `buf[offset]`.
    ///
    /// Returns the instruction and its encoded length.
    ///
    /// # Errors
    ///
    /// [`IsaError::UnknownOpcode`], [`IsaError::Truncated`] or
    /// [`IsaError::BadOperand`] on malformed input.
    pub fn decode(buf: &[u8], offset: usize) -> Result<(Inst, usize), IsaError> {
        use opcodes::*;
        let b = &buf[offset..];
        let first = *b.first().ok_or(IsaError::Truncated { offset })?;
        let need = |n: usize| -> Result<(), IsaError> {
            if b.len() < n {
                Err(IsaError::Truncated { offset })
            } else {
                Ok(())
            }
        };
        let reg_at = |i: usize| -> Result<Reg, IsaError> {
            Reg::from_index(b[i]).ok_or(IsaError::BadOperand {
                offset,
                what: "register",
            })
        };
        let i32_at = |i: usize| i32::from_le_bytes([b[i], b[i + 1], b[i + 2], b[i + 3]]);
        let inst = match first {
            NOP => Inst::Nop,
            RET => Inst::Ret,
            HALT => Inst::Halt,
            TRAP => Inst::Trap,
            FTRACE => {
                need(5)?;
                Inst::Ftrace {
                    site: u32::from_le_bytes([b[1], b[2], b[3], b[4]]),
                }
            }
            JMP => {
                need(5)?;
                Inst::Jmp { rel: i32_at(1) }
            }
            CALL => {
                need(5)?;
                Inst::Call { rel: i32_at(1) }
            }
            JCC => {
                need(6)?;
                let cond = Cond::from_code(b[1]).ok_or(IsaError::BadOperand {
                    offset,
                    what: "condition",
                })?;
                Inst::Jcc {
                    cond,
                    rel: i32_at(2),
                }
            }
            MOV_IMM => {
                need(10)?;
                Inst::MovImm {
                    dst: reg_at(1)?,
                    imm: u64::from_le_bytes([b[2], b[3], b[4], b[5], b[6], b[7], b[8], b[9]]),
                }
            }
            MOV_REG | ADD | SUB | AND | OR | XOR | MUL | DIV | CMP => {
                need(3)?;
                let x = reg_at(1)?;
                let y = reg_at(2)?;
                match first {
                    MOV_REG => Inst::MovReg { dst: x, src: y },
                    ADD => Inst::Add { dst: x, src: y },
                    SUB => Inst::Sub { dst: x, src: y },
                    AND => Inst::And { dst: x, src: y },
                    OR => Inst::Or { dst: x, src: y },
                    XOR => Inst::Xor { dst: x, src: y },
                    MUL => Inst::Mul { dst: x, src: y },
                    DIV => Inst::Div { dst: x, src: y },
                    _ => Inst::Cmp { a: x, b: y },
                }
            }
            SHL_IMM | SHR_IMM => {
                need(3)?;
                let dst = reg_at(1)?;
                let amount = b[2];
                if first == SHL_IMM {
                    Inst::ShlImm { dst, amount }
                } else {
                    Inst::ShrImm { dst, amount }
                }
            }
            ADD_IMM => {
                need(6)?;
                Inst::AddImm {
                    dst: reg_at(1)?,
                    imm: i32_at(2),
                }
            }
            CMP_IMM => {
                need(6)?;
                Inst::CmpImm {
                    reg: reg_at(1)?,
                    imm: i32_at(2),
                }
            }
            LOAD | LOAD_BYTE => {
                need(7)?;
                let dst = reg_at(1)?;
                let base = reg_at(2)?;
                let disp = i32_at(3);
                if first == LOAD {
                    Inst::Load { dst, base, disp }
                } else {
                    Inst::LoadByte { dst, base, disp }
                }
            }
            STORE | STORE_BYTE => {
                need(7)?;
                let src = reg_at(1)?;
                let base = reg_at(2)?;
                let disp = i32_at(3);
                if first == STORE {
                    Inst::Store { base, disp, src }
                } else {
                    Inst::StoreByte { base, disp, src }
                }
            }
            PUSH => {
                need(2)?;
                Inst::Push { src: reg_at(1)? }
            }
            POP => {
                need(2)?;
                Inst::Pop { dst: reg_at(1)? }
            }
            SYS => {
                need(2)?;
                Inst::Sys { num: b[1] }
            }
            other => {
                return Err(IsaError::UnknownOpcode {
                    opcode: other,
                    offset,
                })
            }
        };
        Ok((inst, inst.encoded_len()))
    }

    /// The relative displacement if this is a control-transfer with an
    /// encoded target (`Jmp`, `Call`, `Jcc`).
    pub fn branch_rel(&self) -> Option<i32> {
        match *self {
            Inst::Jmp { rel } | Inst::Call { rel } | Inst::Jcc { rel, .. } => Some(rel),
            _ => None,
        }
    }

    /// Replace the relative displacement of a branching instruction.
    ///
    /// Returns `None` for non-branching instructions. Used by the patch
    /// preprocessor when relocating patched function bodies into `mem_X`
    /// (paper §V-A: "we must change these offsets to retain required
    /// functionality").
    pub fn with_branch_rel(&self, rel: i32) -> Option<Inst> {
        match *self {
            Inst::Jmp { .. } => Some(Inst::Jmp { rel }),
            Inst::Call { .. } => Some(Inst::Call { rel }),
            Inst::Jcc { cond, .. } => Some(Inst::Jcc { cond, rel }),
            _ => None,
        }
    }

    /// True for instructions that may divert control flow.
    pub fn is_control_flow(&self) -> bool {
        matches!(
            self,
            Inst::Jmp { .. } | Inst::Call { .. } | Inst::Jcc { .. } | Inst::Ret | Inst::Halt
        )
    }

    /// True if execution cannot fall through to the next instruction.
    pub fn is_terminator(&self) -> bool {
        matches!(self, Inst::Jmp { .. } | Inst::Ret | Inst::Halt | Inst::Trap)
    }

    /// Absolute branch target given the instruction's own address.
    ///
    /// Returns `None` for instructions with no encoded target.
    pub fn branch_target(&self, at: u64) -> Option<u64> {
        self.branch_rel().map(|rel| {
            at.wrapping_add(self.encoded_len() as u64)
                .wrapping_add(rel as i64 as u64)
        })
    }
}

fn enc_rr(out: &mut Vec<u8>, op: u8, x: Reg, y: Reg) {
    out.push(op);
    out.push(x.index() as u8);
    out.push(y.index() as u8);
}

fn enc_mem(out: &mut Vec<u8>, op: u8, reg: Reg, base: Reg, disp: i32) {
    out.push(op);
    out.push(reg.index() as u8);
    out.push(base.index() as u8);
    out.extend_from_slice(&disp.to_le_bytes());
}

impl fmt::Display for Inst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        use Inst::*;
        match *self {
            Nop => write!(f, "nop"),
            Ftrace { site } => write!(f, "ftrace #{site}"),
            Jmp { rel } => write!(f, "jmp {rel:+}"),
            Call { rel } => write!(f, "call {rel:+}"),
            Ret => write!(f, "ret"),
            Jcc { cond, rel } => write!(f, "j{cond} {rel:+}"),
            MovImm { dst, imm } => write!(f, "mov {dst}, {imm:#x}"),
            MovReg { dst, src } => write!(f, "mov {dst}, {src}"),
            Add { dst, src } => write!(f, "add {dst}, {src}"),
            Sub { dst, src } => write!(f, "sub {dst}, {src}"),
            And { dst, src } => write!(f, "and {dst}, {src}"),
            Or { dst, src } => write!(f, "or {dst}, {src}"),
            Xor { dst, src } => write!(f, "xor {dst}, {src}"),
            Mul { dst, src } => write!(f, "mul {dst}, {src}"),
            Div { dst, src } => write!(f, "div {dst}, {src}"),
            ShlImm { dst, amount } => write!(f, "shl {dst}, {amount}"),
            ShrImm { dst, amount } => write!(f, "shr {dst}, {amount}"),
            AddImm { dst, imm } => write!(f, "add {dst}, {imm:+}"),
            Load { dst, base, disp } => write!(f, "mov {dst}, [{base}{disp:+}]"),
            Store { base, disp, src } => write!(f, "mov [{base}{disp:+}], {src}"),
            LoadByte { dst, base, disp } => write!(f, "movb {dst}, [{base}{disp:+}]"),
            StoreByte { base, disp, src } => write!(f, "movb [{base}{disp:+}], {src}"),
            Cmp { a, b } => write!(f, "cmp {a}, {b}"),
            CmpImm { reg, imm } => write!(f, "cmp {reg}, {imm:+}"),
            Push { src } => write!(f, "push {src}"),
            Pop { dst } => write!(f, "pop {dst}"),
            Sys { num } => write!(f, "sys {num:#x}"),
            Halt => write!(f, "hlt"),
            Trap => write!(f, "trap"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_insts() -> Vec<Inst> {
        use Inst::*;
        vec![
            Nop,
            Ftrace { site: 0xdead },
            Jmp { rel: -5 },
            Call { rel: 1234 },
            Ret,
            Jcc {
                cond: Cond::Ne,
                rel: -60,
            },
            MovImm {
                dst: Reg::R3,
                imm: 0xdead_beef_cafe_f00d,
            },
            MovReg {
                dst: Reg::R1,
                src: Reg::R2,
            },
            Add {
                dst: Reg::R0,
                src: Reg::R1,
            },
            Sub {
                dst: Reg::R5,
                src: Reg::R6,
            },
            And {
                dst: Reg::R7,
                src: Reg::R8,
            },
            Or {
                dst: Reg::R9,
                src: Reg::R10,
            },
            Xor {
                dst: Reg::R11,
                src: Reg::R12,
            },
            Mul {
                dst: Reg::R13,
                src: Reg::R14,
            },
            Div {
                dst: Reg::R0,
                src: Reg::R15,
            },
            ShlImm {
                dst: Reg::R2,
                amount: 8,
            },
            ShrImm {
                dst: Reg::R2,
                amount: 63,
            },
            AddImm {
                dst: Reg::R4,
                imm: -1,
            },
            Load {
                dst: Reg::R0,
                base: Reg::R1,
                disp: 0x40,
            },
            Store {
                base: Reg::R1,
                disp: -8,
                src: Reg::R2,
            },
            LoadByte {
                dst: Reg::R3,
                base: Reg::R4,
                disp: 0,
            },
            StoreByte {
                base: Reg::R5,
                disp: 7,
                src: Reg::R6,
            },
            Cmp {
                a: Reg::R0,
                b: Reg::R1,
            },
            CmpImm {
                reg: Reg::R9,
                imm: 100,
            },
            Push { src: Reg::R14 },
            Pop { dst: Reg::R13 },
            Sys { num: 0x80 },
            Halt,
            Trap,
        ]
    }

    #[test]
    fn encode_decode_roundtrip_all_variants() {
        for inst in sample_insts() {
            let bytes = inst.encode();
            assert_eq!(bytes.len(), inst.encoded_len(), "{inst}");
            let (decoded, len) = Inst::decode(&bytes, 0).unwrap();
            assert_eq!(decoded, inst);
            assert_eq!(len, bytes.len());
        }
    }

    #[test]
    fn decode_stream_of_all_variants() {
        let insts = sample_insts();
        let mut buf = Vec::new();
        for i in &insts {
            i.encode_into(&mut buf);
        }
        let mut off = 0;
        let mut decoded = Vec::new();
        while off < buf.len() {
            let (i, len) = Inst::decode(&buf, off).unwrap();
            decoded.push(i);
            off += len;
        }
        assert_eq!(decoded, insts);
    }

    #[test]
    fn decode_unknown_opcode() {
        assert!(matches!(
            Inst::decode(&[0xAB], 0),
            Err(IsaError::UnknownOpcode { opcode: 0xAB, .. })
        ));
    }

    #[test]
    fn decode_truncated() {
        let bytes = Inst::MovImm {
            dst: Reg::R0,
            imm: 42,
        }
        .encode();
        assert!(matches!(
            Inst::decode(&bytes[..5], 0),
            Err(IsaError::Truncated { .. })
        ));
        assert!(matches!(
            Inst::decode(&[], 0),
            Err(IsaError::Truncated { .. })
        ));
    }

    #[test]
    fn decode_bad_register() {
        // MovReg with register index 200.
        assert!(matches!(
            Inst::decode(&[opcodes::MOV_REG, 200, 0], 0),
            Err(IsaError::BadOperand { .. })
        ));
    }

    #[test]
    fn decode_bad_condition() {
        let mut b = vec![opcodes::JCC, 99];
        b.extend_from_slice(&0i32.to_le_bytes());
        assert!(matches!(
            Inst::decode(&b, 0),
            Err(IsaError::BadOperand { .. })
        ));
    }

    #[test]
    fn branch_target_arithmetic() {
        let j = Inst::Jmp { rel: 0x10 };
        assert_eq!(j.branch_target(0x1000), Some(0x1015));
        let j = Inst::Jcc {
            cond: Cond::Eq,
            rel: -6,
        };
        // Jcc is 6 bytes: target = at + 6 - 6 = at (self-loop).
        assert_eq!(j.branch_target(0x1000), Some(0x1000));
        assert_eq!(Inst::Ret.branch_target(0x1000), None);
    }

    #[test]
    fn with_branch_rel_replaces_only_branches() {
        assert_eq!(
            Inst::Jmp { rel: 1 }.with_branch_rel(9),
            Some(Inst::Jmp { rel: 9 })
        );
        assert_eq!(
            Inst::Jcc {
                cond: Cond::Lt,
                rel: 1
            }
            .with_branch_rel(-2),
            Some(Inst::Jcc {
                cond: Cond::Lt,
                rel: -2
            })
        );
        assert_eq!(Inst::Nop.with_branch_rel(5), None);
    }

    #[test]
    fn jmp_is_five_bytes() {
        assert_eq!(Inst::Jmp { rel: 0 }.encoded_len(), JMP_LEN);
        assert_eq!(Inst::Ftrace { site: 0 }.encoded_len(), JMP_LEN);
        assert_eq!(Inst::Call { rel: 0 }.encoded_len(), JMP_LEN);
    }

    #[test]
    fn display_smoke() {
        for inst in sample_insts() {
            assert!(!inst.to_string().is_empty());
        }
    }
}
