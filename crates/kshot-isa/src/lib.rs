#![warn(missing_docs)]

//! # kshot-isa — the KV instruction set
//!
//! A compact, x86-flavoured instruction set used by the KShot reproduction
//! as the binary substrate for its miniature kernel. The design goals mirror
//! the properties of x86-64 that the KShot paper's binary patching mechanics
//! depend on:
//!
//! * **Variable-length encoding** so that binary diffing, disassembly and
//!   signature matching are non-trivial (as they are on x86).
//! * **A 5-byte `jmp rel32`** (`0xE9` + little-endian `i32`), which is the
//!   exact trampoline shape KShot installs at the entry of a vulnerable
//!   function: `offset = p.paddr − p.taddr + 5`.
//! * **A 5-byte ftrace pad** (`call __fentry__`-analogue) emitted at the
//!   entry of traceable functions, which live patching must skip over
//!   (paper §V-A, "Supporting Kernel Tracing").
//! * Enough real computation (ALU, memory, branches, calls, syscalls) that
//!   kernel functions — and therefore CVE exploits and their fixes — are
//!   *executable behaviours*, not flags.
//!
//! The crate provides instruction [`Inst`] encode/decode, a two-pass
//! label-resolving [`asm::Assembler`], a linear-sweep [`disasm`]
//! disassembler, and the raw byte-level helpers used by the SMM patching
//! module (e.g. [`write_jmp_rel32`]).
//!
//! ```
//! use kshot_isa::{Inst, Reg, asm::Assembler};
//!
//! let mut a = Assembler::new();
//! a.label("loop");
//! a.push(Inst::AddImm { dst: Reg::R0, imm: 1 });
//! a.jmp("loop");
//! let code = a.assemble(0x1000).unwrap();
//! assert_eq!(code.len(), 6 + 5);
//! ```

pub mod asm;
pub mod disasm;

mod cond;
mod error;
mod inst;
mod reg;

pub use cond::Cond;
pub use error::IsaError;
pub use inst::{opcodes, Inst, JMP_LEN, MAX_INST_LEN};
pub use reg::Reg;

/// Compute the `rel32` displacement for a 5-byte jump/call placed at
/// address `at` whose target is `target`.
///
/// The displacement is relative to the *next* instruction, i.e.
/// `target = at + 5 + rel`, matching both x86 and the paper's
/// `p.paddr − p.taddr + 5` formulation (the paper states the stored offset
/// such that control arrives at `paddr`; solving for the encoded
/// displacement gives `paddr − (taddr + 5)`).
///
/// # Errors
///
/// Returns [`IsaError::RelOutOfRange`] if the displacement does not fit in
/// a signed 32-bit value.
pub fn rel32_for(at: u64, target: u64) -> Result<i32, IsaError> {
    let next = at.wrapping_add(JMP_LEN as u64);
    let rel = (target as i128) - (next as i128);
    if rel > i32::MAX as i128 || rel < i32::MIN as i128 {
        return Err(IsaError::RelOutOfRange { at, target });
    }
    Ok(rel as i32)
}

/// Encode a 5-byte `jmp rel32` into `buf` such that execution at address
/// `at` lands on `target`. This is the trampoline writer used by the SMM
/// handler when redirecting a vulnerable function into `mem_X`.
///
/// # Errors
///
/// Returns an error if `buf` is shorter than 5 bytes or the displacement
/// is out of range.
pub fn write_jmp_rel32(buf: &mut [u8], at: u64, target: u64) -> Result<(), IsaError> {
    if buf.len() < JMP_LEN {
        return Err(IsaError::BufferTooSmall {
            need: JMP_LEN,
            have: buf.len(),
        });
    }
    let rel = rel32_for(at, target)?;
    buf[0] = inst::opcodes::JMP;
    buf[1..5].copy_from_slice(&rel.to_le_bytes());
    Ok(())
}

/// Decode the target of a 5-byte `jmp rel32` located at address `at`.
///
/// Returns `None` if the bytes do not start with a jump opcode or are too
/// short.
pub fn read_jmp_target(buf: &[u8], at: u64) -> Option<u64> {
    if buf.len() < JMP_LEN || buf[0] != inst::opcodes::JMP {
        return None;
    }
    let rel = i32::from_le_bytes([buf[1], buf[2], buf[3], buf[4]]);
    Some(
        at.wrapping_add(JMP_LEN as u64)
            .wrapping_add(rel as i64 as u64),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rel32_forward_and_back() {
        assert_eq!(rel32_for(0x1000, 0x1005).unwrap(), 0);
        assert_eq!(rel32_for(0x1000, 0x1000).unwrap(), -5);
        assert_eq!(rel32_for(0x1000, 0x2000).unwrap(), 0xFFB);
    }

    #[test]
    fn rel32_out_of_range() {
        assert!(rel32_for(0, 0x1_0000_0000).is_err());
    }

    #[test]
    fn jmp_roundtrip() {
        let mut buf = [0u8; 5];
        write_jmp_rel32(&mut buf, 0xffff_0000, 0xffff_1234).unwrap();
        assert_eq!(read_jmp_target(&buf, 0xffff_0000), Some(0xffff_1234));
    }

    #[test]
    fn jmp_backward_target() {
        let mut buf = [0u8; 5];
        write_jmp_rel32(&mut buf, 0x2000, 0x1000).unwrap();
        assert_eq!(read_jmp_target(&buf, 0x2000), Some(0x1000));
    }

    #[test]
    fn jmp_buffer_too_small() {
        let mut buf = [0u8; 4];
        assert!(matches!(
            write_jmp_rel32(&mut buf, 0, 0),
            Err(IsaError::BufferTooSmall { .. })
        ));
    }

    #[test]
    fn read_jmp_rejects_non_jmp() {
        let buf = [0x90u8, 0, 0, 0, 0];
        assert_eq!(read_jmp_target(&buf, 0), None);
    }
}
