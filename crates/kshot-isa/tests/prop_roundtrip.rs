//! Property tests: arbitrary instruction streams encode/decode losslessly,
//! and trampoline arithmetic is exact for arbitrary address pairs.

use kshot_isa::{asm::Assembler, disasm, read_jmp_target, rel32_for, write_jmp_rel32};
use kshot_isa::{Cond, Inst, Reg};
use proptest::prelude::*;

fn arb_reg() -> impl Strategy<Value = Reg> {
    (0u8..16).prop_map(|i| Reg::from_index(i).unwrap())
}

fn arb_cond() -> impl Strategy<Value = Cond> {
    (0u8..10).prop_map(|i| Cond::from_code(i).unwrap())
}

fn arb_inst() -> impl Strategy<Value = Inst> {
    prop_oneof![
        Just(Inst::Nop),
        Just(Inst::Ret),
        Just(Inst::Halt),
        Just(Inst::Trap),
        any::<u32>().prop_map(|site| Inst::Ftrace { site }),
        any::<i32>().prop_map(|rel| Inst::Jmp { rel }),
        any::<i32>().prop_map(|rel| Inst::Call { rel }),
        (arb_cond(), any::<i32>()).prop_map(|(cond, rel)| Inst::Jcc { cond, rel }),
        (arb_reg(), any::<u64>()).prop_map(|(dst, imm)| Inst::MovImm { dst, imm }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::MovReg { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Add { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Sub { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Xor { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Mul { dst, src }),
        (arb_reg(), arb_reg()).prop_map(|(dst, src)| Inst::Div { dst, src }),
        (arb_reg(), any::<u8>()).prop_map(|(dst, amount)| Inst::ShlImm { dst, amount }),
        (arb_reg(), any::<i32>()).prop_map(|(dst, imm)| Inst::AddImm { dst, imm }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, disp)| Inst::Load {
            dst,
            base,
            disp
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(base, src, disp)| Inst::Store {
            base,
            disp,
            src
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(dst, base, disp)| Inst::LoadByte {
            dst,
            base,
            disp
        }),
        (arb_reg(), arb_reg(), any::<i32>()).prop_map(|(base, src, disp)| Inst::StoreByte {
            base,
            disp,
            src
        }),
        (arb_reg(), arb_reg()).prop_map(|(a, b)| Inst::Cmp { a, b }),
        (arb_reg(), any::<i32>()).prop_map(|(reg, imm)| Inst::CmpImm { reg, imm }),
        arb_reg().prop_map(|src| Inst::Push { src }),
        arb_reg().prop_map(|dst| Inst::Pop { dst }),
        any::<u8>().prop_map(|num| Inst::Sys { num }),
    ]
}

proptest! {
    #[test]
    fn single_inst_roundtrip(inst in arb_inst()) {
        let bytes = inst.encode();
        prop_assert_eq!(bytes.len(), inst.encoded_len());
        let (decoded, len) = Inst::decode(&bytes, 0).unwrap();
        prop_assert_eq!(decoded, inst);
        prop_assert_eq!(len, bytes.len());
    }

    #[test]
    fn stream_roundtrip(insts in prop::collection::vec(arb_inst(), 0..64), base in any::<u32>()) {
        let base = base as u64;
        let mut buf = Vec::new();
        for i in &insts {
            i.encode_into(&mut buf);
        }
        let decoded = disasm::disassemble(&buf, base).unwrap();
        let got: Vec<Inst> = decoded.iter().map(|(_, i)| *i).collect();
        prop_assert_eq!(got, insts.clone());
        // Addresses are strictly increasing and start at base.
        if let Some(&(first, _)) = decoded.first() {
            prop_assert_eq!(first, base);
        }
        for w in decoded.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
    }

    #[test]
    fn trampoline_exact_for_reachable_targets(at in any::<u32>(), delta in any::<i32>()) {
        // Target within ±2 GiB of the jump site, computed without overflow.
        let at = at as u64 + 0x1_0000_0000; // keep away from u64 underflow
        let target = (at as i128 + delta as i128) as u64;
        let mut buf = [0u8; 8];
        if write_jmp_rel32(&mut buf, at, target).is_ok() {
            prop_assert_eq!(read_jmp_target(&buf, at), Some(target));
        } else {
            // rel32_for must agree that it is unreachable.
            prop_assert!(rel32_for(at, target).is_err());
        }
    }

    #[test]
    fn assembler_label_resolution_matches_decode(n_nops in 0usize..200) {
        // jmp over a variable-length pad, then ret.
        let mut a = Assembler::new();
        a.jmp("end");
        for _ in 0..n_nops {
            a.push(Inst::Nop);
        }
        a.label("end");
        a.push(Inst::Ret);
        let code = a.assemble(0x9000).unwrap();
        let insts = disasm::disassemble(&code, 0x9000).unwrap();
        let target = insts[0].1.branch_target(0x9000).unwrap();
        // The target must be the address of the ret.
        let (ret_addr, ret) = *insts.last().unwrap();
        prop_assert_eq!(ret, Inst::Ret);
        prop_assert_eq!(target, ret_addr);
    }
}
