//! The enclave container: private state behind an ECALL door.

/// An enclave instance with private state `S`.
///
/// The state is reachable only through [`Enclave::ecall`] — there is no
/// other accessor, and `Debug` does not print it. This is the simulation
/// counterpart of the EPC access control: host code can *invoke* the
/// enclave but never inspect it.
///
/// # Examples
///
/// ```
/// use kshot_enclave::SgxPlatform;
///
/// let mut platform = SgxPlatform::new(b"entropy");
/// let mut enclave = platform.create_enclave(b"counter-v1", 0u64);
/// let value = enclave.ecall(|state| {
///     *state += 1;
///     *state
/// });
/// assert_eq!(value, 1);
/// ```
pub struct Enclave<S> {
    id: u64,
    measurement: [u8; 32],
    state: S,
    ecalls: u64,
}

impl<S> Enclave<S> {
    pub(crate) fn new_internal(id: u64, measurement: [u8; 32], state: S) -> Self {
        Self {
            id,
            measurement,
            state,
            ecalls: 0,
        }
    }

    /// Enclave id (EID analogue).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// The enclave measurement (MRENCLAVE analogue).
    pub fn measurement(&self) -> [u8; 32] {
        self.measurement
    }

    /// Enter the enclave: run trusted code against the private state.
    ///
    /// Everything the helper application does with patch plaintext or key
    /// material happens inside one of these calls.
    pub fn ecall<R>(&mut self, f: impl FnOnce(&mut S) -> R) -> R {
        self.ecalls += 1;
        f(&mut self.state)
    }

    /// Number of ECALLs performed (for the performance accounting).
    pub fn ecall_count(&self) -> u64 {
        self.ecalls
    }

    /// Destroy the enclave, zeroizing nothing but dropping the state
    /// (EREMOVE analogue). Consumes the enclave so no further ECALLs can
    /// occur.
    pub fn destroy(self) {
        drop(self.state);
    }
}

impl<S> std::fmt::Debug for Enclave<S> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "Enclave(id={}, measurement={:02x}{:02x}…, state=<protected>)",
            self.id, self.measurement[0], self.measurement[1]
        )
    }
}

#[cfg(test)]
mod tests {
    use crate::SgxPlatform;

    #[test]
    fn ecall_is_the_only_door() {
        let mut p = SgxPlatform::new(b"e");
        let mut e = p.create_enclave(b"code", vec![1u8, 2, 3]);
        let sum: u32 = e.ecall(|s| s.iter().map(|&b| b as u32).sum());
        assert_eq!(sum, 6);
        assert_eq!(e.ecall_count(), 1);
        // Debug output never leaks state.
        let dbg = format!("{e:?}");
        assert!(dbg.contains("<protected>"));
        assert!(!dbg.contains("[1, 2, 3]"));
        e.destroy();
    }

    #[test]
    fn state_mutations_persist_across_ecalls() {
        let mut p = SgxPlatform::new(b"e");
        let mut e = p.create_enclave(b"code", String::new());
        e.ecall(|s| s.push_str("key material"));
        let len = e.ecall(|s| s.len());
        assert_eq!(len, 12);
        assert_eq!(e.ecall_count(), 2);
    }
}
