//! An explicit Enclave Page Cache model.
//!
//! Real SGX reserves a region of physical memory (the EPC) that the CPU
//! refuses to read or write for any non-enclave accessor. The typed
//! [`crate::Enclave`] container enforces that structurally; this module
//! additionally provides the *observable* version: a page store whose
//! every access names its [`Accessor`] and faults exactly the way the
//! hardware would, so the security experiments can show a compromised OS
//! bouncing off enclave memory.

use std::fmt;

/// EPC page size (matches SGX's 4 KiB).
pub const EPC_PAGE_SIZE: usize = 4096;

/// Who is touching the EPC.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Accessor {
    /// Code executing inside the named enclave.
    Enclave(u64),
    /// The OS kernel or any other non-enclave software.
    Os,
}

/// EPC faults.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EpcError {
    /// Non-enclave software touched enclave memory, or the wrong enclave
    /// touched another's pages.
    AccessDenied {
        /// The page index.
        page: usize,
        /// Who attempted the access.
        accessor: Accessor,
    },
    /// The page index is beyond the EPC.
    OutOfRange {
        /// The page index.
        page: usize,
    },
    /// The page is not currently allocated to any enclave.
    NotAllocated {
        /// The page index.
        page: usize,
    },
    /// No free pages remain.
    Full,
}

impl fmt::Display for EpcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EpcError::AccessDenied { page, accessor } => {
                write!(f, "EPC access denied: {accessor:?} on page {page}")
            }
            EpcError::OutOfRange { page } => write!(f, "EPC page {page} out of range"),
            EpcError::NotAllocated { page } => write!(f, "EPC page {page} not allocated"),
            EpcError::Full => write!(f, "EPC exhausted"),
        }
    }
}

impl std::error::Error for EpcError {}

struct EpcPage {
    owner: Option<u64>,
    data: Box<[u8; EPC_PAGE_SIZE]>,
}

/// The Enclave Page Cache.
pub struct Epc {
    pages: Vec<EpcPage>,
}

impl fmt::Debug for Epc {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Epc({} pages, {} allocated)",
            self.pages.len(),
            self.pages.iter().filter(|p| p.owner.is_some()).count()
        )
    }
}

impl Epc {
    /// Create an EPC with `pages` 4 KiB pages.
    pub fn new(pages: usize) -> Self {
        Self {
            pages: (0..pages)
                .map(|_| EpcPage {
                    owner: None,
                    data: Box::new([0; EPC_PAGE_SIZE]),
                })
                .collect(),
        }
    }

    /// Total pages.
    pub fn page_count(&self) -> usize {
        self.pages.len()
    }

    /// Pages currently owned by `enclave`.
    pub fn pages_of(&self, enclave: u64) -> usize {
        self.pages
            .iter()
            .filter(|p| p.owner == Some(enclave))
            .count()
    }

    /// Allocate a free page to `enclave` (EADD analogue); returns the
    /// page index.
    ///
    /// # Errors
    ///
    /// [`EpcError::Full`] when no page is free.
    pub fn alloc(&mut self, enclave: u64) -> Result<usize, EpcError> {
        let idx = self
            .pages
            .iter()
            .position(|p| p.owner.is_none())
            .ok_or(EpcError::Full)?;
        self.pages[idx].owner = Some(enclave);
        self.pages[idx].data.fill(0);
        Ok(idx)
    }

    /// Free a page (EREMOVE analogue); contents are scrubbed.
    ///
    /// # Errors
    ///
    /// Denied unless the owning enclave itself frees the page.
    pub fn free(&mut self, page: usize, accessor: Accessor) -> Result<(), EpcError> {
        self.check(page, accessor)?;
        let p = &mut self.pages[page];
        p.data.fill(0);
        p.owner = None;
        Ok(())
    }

    fn check(&self, page: usize, accessor: Accessor) -> Result<(), EpcError> {
        let p = self.pages.get(page).ok_or(EpcError::OutOfRange { page })?;
        let owner = p.owner.ok_or(EpcError::NotAllocated { page })?;
        match accessor {
            Accessor::Enclave(id) if id == owner => Ok(()),
            _ => Err(EpcError::AccessDenied { page, accessor }),
        }
    }

    /// Read bytes from a page.
    ///
    /// # Errors
    ///
    /// [`EpcError::AccessDenied`] for any non-owner accessor (including
    /// the OS — the attack the experiments exercise).
    pub fn read(
        &self,
        page: usize,
        offset: usize,
        out: &mut [u8],
        accessor: Accessor,
    ) -> Result<(), EpcError> {
        self.check(page, accessor)?;
        let end = offset + out.len();
        if end > EPC_PAGE_SIZE {
            return Err(EpcError::OutOfRange { page });
        }
        out.copy_from_slice(&self.pages[page].data[offset..end]);
        Ok(())
    }

    /// Write bytes to a page.
    ///
    /// # Errors
    ///
    /// As [`Epc::read`].
    pub fn write(
        &mut self,
        page: usize,
        offset: usize,
        data: &[u8],
        accessor: Accessor,
    ) -> Result<(), EpcError> {
        self.check(page, accessor)?;
        let end = offset + data.len();
        if end > EPC_PAGE_SIZE {
            return Err(EpcError::OutOfRange { page });
        }
        self.pages[page].data[offset..end].copy_from_slice(data);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enclave_reads_its_own_pages() {
        let mut epc = Epc::new(4);
        let page = epc.alloc(1).unwrap();
        epc.write(page, 0, b"secret", Accessor::Enclave(1)).unwrap();
        let mut out = [0u8; 6];
        epc.read(page, 0, &mut out, Accessor::Enclave(1)).unwrap();
        assert_eq!(&out, b"secret");
    }

    #[test]
    fn os_is_denied() {
        let mut epc = Epc::new(4);
        let page = epc.alloc(1).unwrap();
        epc.write(page, 0, b"key", Accessor::Enclave(1)).unwrap();
        let mut out = [0u8; 3];
        assert_eq!(
            epc.read(page, 0, &mut out, Accessor::Os),
            Err(EpcError::AccessDenied {
                page,
                accessor: Accessor::Os
            })
        );
        assert!(epc.write(page, 0, b"pwn", Accessor::Os).is_err());
        assert_eq!(out, [0; 3], "nothing leaked");
    }

    #[test]
    fn other_enclave_is_denied() {
        let mut epc = Epc::new(4);
        let page = epc.alloc(1).unwrap();
        let mut out = [0u8; 1];
        assert!(matches!(
            epc.read(page, 0, &mut out, Accessor::Enclave(2)),
            Err(EpcError::AccessDenied { .. })
        ));
    }

    #[test]
    fn free_scrubs_contents() {
        let mut epc = Epc::new(2);
        let page = epc.alloc(1).unwrap();
        epc.write(page, 0, &[0xAA; 16], Accessor::Enclave(1))
            .unwrap();
        epc.free(page, Accessor::Enclave(1)).unwrap();
        // Reallocate to another enclave; the old contents must be gone.
        let page2 = epc.alloc(2).unwrap();
        assert_eq!(page2, page);
        let mut out = [0xFFu8; 16];
        epc.read(page2, 0, &mut out, Accessor::Enclave(2)).unwrap();
        assert_eq!(out, [0; 16]);
    }

    #[test]
    fn exhaustion_and_bounds() {
        let mut epc = Epc::new(1);
        let p = epc.alloc(1).unwrap();
        assert_eq!(epc.alloc(2), Err(EpcError::Full));
        let mut out = [0u8; 8];
        assert!(matches!(
            epc.read(p, EPC_PAGE_SIZE - 4, &mut out, Accessor::Enclave(1)),
            Err(EpcError::OutOfRange { .. })
        ));
        assert!(matches!(
            epc.read(9, 0, &mut out, Accessor::Enclave(1)),
            Err(EpcError::OutOfRange { .. })
        ));
    }

    #[test]
    fn unallocated_page_faults() {
        let epc = Epc::new(2);
        let mut out = [0u8; 1];
        assert_eq!(
            epc.read(0, 0, &mut out, Accessor::Enclave(1)),
            Err(EpcError::NotAllocated { page: 0 })
        );
    }

    #[test]
    fn page_accounting() {
        let mut epc = Epc::new(8);
        for _ in 0..3 {
            epc.alloc(7).unwrap();
        }
        assert_eq!(epc.pages_of(7), 3);
        assert_eq!(epc.pages_of(1), 0);
        assert_eq!(epc.page_count(), 8);
        assert!(format!("{epc:?}").contains("3 allocated"));
    }
}
