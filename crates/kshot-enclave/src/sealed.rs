//! Sealing enclave state to untrusted storage.
//!
//! Sealing binds a blob to the enclave measurement and the platform key:
//! only the same enclave identity on the same platform can unseal it.
//! KShot's helper uses this to persist its server-pairing state across
//! restarts without trusting the OS filesystem.

use kshot_crypto::chacha::ChaCha20;
use kshot_crypto::hmac::{hmac_sha256, verify};

use crate::enclave::Enclave;
use crate::platform::SgxPlatform;

/// A sealed blob living in untrusted storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SealedBlob {
    measurement: [u8; 32],
    nonce: [u8; 12],
    ciphertext: Vec<u8>,
    mac: [u8; 32],
}

/// Sealing/unsealing failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SealError {
    /// MAC check failed: tampered blob, wrong enclave, or wrong platform.
    Unsealable,
}

impl std::fmt::Display for SealError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "sealed blob cannot be opened by this enclave/platform")
    }
}

impl std::error::Error for SealError {}

/// Seal `plaintext` for the given enclave. The `nonce_seed` must be
/// unique per seal operation under one enclave identity.
pub fn seal<S>(
    platform: &SgxPlatform,
    enclave: &Enclave<S>,
    plaintext: &[u8],
    nonce_seed: u64,
) -> SealedBlob {
    let measurement = enclave.measurement();
    let key = platform_sealing_key(platform, &measurement);
    let mut nonce = [0u8; 12];
    nonce[..8].copy_from_slice(&nonce_seed.to_le_bytes());
    let mut ciphertext = plaintext.to_vec();
    ChaCha20::new(&key, &nonce).apply(&mut ciphertext);
    let mac = seal_mac(&key, &measurement, &nonce, &ciphertext);
    SealedBlob {
        measurement,
        nonce,
        ciphertext,
        mac,
    }
}

/// Unseal a blob for the given enclave.
///
/// # Errors
///
/// [`SealError::Unsealable`] when the blob was sealed by a different
/// enclave identity, a different platform, or was tampered with.
pub fn unseal<S>(
    platform: &SgxPlatform,
    enclave: &Enclave<S>,
    blob: &SealedBlob,
) -> Result<Vec<u8>, SealError> {
    let measurement = enclave.measurement();
    if blob.measurement != measurement {
        return Err(SealError::Unsealable);
    }
    let key = platform_sealing_key(platform, &measurement);
    let expected = seal_mac(&key, &blob.measurement, &blob.nonce, &blob.ciphertext);
    if !verify(&expected, &blob.mac) {
        return Err(SealError::Unsealable);
    }
    let mut plaintext = blob.ciphertext.clone();
    ChaCha20::new(&key, &blob.nonce).apply(&mut plaintext);
    Ok(plaintext)
}

fn platform_sealing_key(platform: &SgxPlatform, measurement: &[u8; 32]) -> [u8; 32] {
    platform.sealing_key(measurement)
}

fn seal_mac(key: &[u8; 32], measurement: &[u8; 32], nonce: &[u8; 12], ct: &[u8]) -> [u8; 32] {
    let mut msg = Vec::with_capacity(32 + 12 + ct.len());
    msg.extend_from_slice(measurement);
    msg.extend_from_slice(nonce);
    msg.extend_from_slice(ct);
    hmac_sha256(key, &msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seal_unseal_roundtrip() {
        let mut p = SgxPlatform::new(b"fuse");
        let e = p.create_enclave(b"helper", ());
        let blob = seal(&p, &e, b"pairing state", 1);
        assert_eq!(unseal(&p, &e, &blob).unwrap(), b"pairing state");
    }

    #[test]
    fn different_enclave_cannot_unseal() {
        let mut p = SgxPlatform::new(b"fuse");
        let e1 = p.create_enclave(b"helper-v1", ());
        let e2 = p.create_enclave(b"helper-v2", ());
        let blob = seal(&p, &e1, b"secret", 1);
        assert_eq!(unseal(&p, &e2, &blob), Err(SealError::Unsealable));
    }

    #[test]
    fn different_platform_cannot_unseal() {
        let mut p1 = SgxPlatform::new(b"fuse-1");
        let mut p2 = SgxPlatform::new(b"fuse-2");
        let e1 = p1.create_enclave(b"helper", ());
        let e2 = p2.create_enclave(b"helper", ()); // same measurement
        let blob = seal(&p1, &e1, b"secret", 1);
        assert_eq!(unseal(&p2, &e2, &blob), Err(SealError::Unsealable));
    }

    #[test]
    fn tampering_detected() {
        let mut p = SgxPlatform::new(b"fuse");
        let e = p.create_enclave(b"helper", ());
        let mut blob = seal(&p, &e, b"secret", 1);
        blob.ciphertext[0] ^= 1;
        assert_eq!(unseal(&p, &e, &blob), Err(SealError::Unsealable));
    }

    #[test]
    fn ciphertext_hides_plaintext() {
        let mut p = SgxPlatform::new(b"fuse");
        let e = p.create_enclave(b"helper", ());
        let blob = seal(&p, &e, b"visible-secret", 1);
        assert_ne!(blob.ciphertext, b"visible-secret");
        // Distinct nonce seeds give distinct ciphertexts.
        let blob2 = seal(&p, &e, b"visible-secret", 2);
        assert_ne!(blob.ciphertext, blob2.ciphertext);
    }
}
