#![warn(missing_docs)]

//! # kshot-enclave — the Intel SGX simulation
//!
//! KShot runs its patch-preprocessing helper inside an SGX enclave so
//! that a compromised OS can neither read the session keys nor tamper
//! with the decrypted patch before it is re-encrypted for the SMM handler
//! (paper §II-C, §V-B). This crate supplies the SGX substrate:
//!
//! * [`platform`] — the per-machine SGX platform with its sealing
//!   identity, enclave creation, and local-attestation [`Report`]s.
//! * [`enclave`] — [`Enclave<S>`]: private state `S` reachable *only*
//!   through [`Enclave::ecall`], the simulation's EENTER. The state is
//!   structurally unreachable from outside (private field, opaque
//!   `Debug`), mirroring the EPC access-control guarantee.
//! * [`epc`] — an explicit Enclave Page Cache model whose reads/writes
//!   check the accessor, so "the OS tried to read enclave memory and the
//!   CPU said no" is an observable, testable event.
//! * [`sealed`] — sealing/unsealing of enclave state to untrusted
//!   storage, bound to the enclave measurement and platform identity.
//!
//! Side-channel attacks against SGX are out of scope, matching the
//! paper's threat model (§III).

pub mod enclave;
pub mod epc;
pub mod platform;
pub mod sealed;

pub use enclave::Enclave;
pub use epc::{Accessor, Epc, EpcError};
pub use platform::{Report, SgxPlatform};
pub use sealed::SealedBlob;
