//! The SGX platform: enclave creation, measurement, and local attestation.

use kshot_crypto::hmac::{hmac_sha256, verify};
use kshot_crypto::sha256::sha256;

use crate::enclave::Enclave;

/// The per-machine SGX platform. Holds the platform sealing/attestation
/// secret (the role of the hardware-fused keys on real silicon).
pub struct SgxPlatform {
    key: [u8; 32],
    next_id: u64,
}

impl std::fmt::Debug for SgxPlatform {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "SgxPlatform(id_ctr={}, key=<hidden>)", self.next_id)
    }
}

impl SgxPlatform {
    /// Initialise the platform from caller-supplied entropy (the
    /// hardware fuse analogue).
    pub fn new(entropy: &[u8]) -> Self {
        let mut key = [0u8; 32];
        key.copy_from_slice(&sha256(entropy));
        Self { key, next_id: 1 }
    }

    /// Create an enclave from its code identity and initial private
    /// state. The measurement is the SHA-256 of the code identity
    /// (MRENCLAVE analogue).
    pub fn create_enclave<S>(&mut self, code_identity: &[u8], state: S) -> Enclave<S> {
        let id = self.next_id;
        self.next_id += 1;
        Enclave::new_internal(id, sha256(code_identity), state)
    }

    /// Produce a local-attestation report binding `report_data` to the
    /// enclave's measurement under the platform key (EREPORT analogue).
    pub fn report<S>(&self, enclave: &Enclave<S>, report_data: &[u8]) -> Report {
        let mut msg = Vec::new();
        msg.extend_from_slice(&enclave.measurement());
        msg.extend_from_slice(report_data);
        Report {
            measurement: enclave.measurement(),
            report_data: report_data.to_vec(),
            mac: hmac_sha256(&self.key, &msg),
        }
    }

    /// Verify a report produced on *this* platform.
    pub fn verify_report(&self, report: &Report) -> bool {
        let mut msg = Vec::new();
        msg.extend_from_slice(&report.measurement);
        msg.extend_from_slice(&report.report_data);
        verify(&hmac_sha256(&self.key, &msg), &report.mac)
    }

    /// Platform sealing key material bound to a measurement
    /// (EGETKEY analogue — each enclave identity gets a distinct key).
    pub(crate) fn sealing_key(&self, measurement: &[u8; 32]) -> [u8; 32] {
        let mut msg = Vec::with_capacity(64);
        msg.extend_from_slice(b"kshot-sgx-seal-v1");
        msg.extend_from_slice(measurement);
        hmac_sha256(&self.key, &msg)
    }
}

/// A local attestation report.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Report {
    /// The attested enclave's measurement.
    pub measurement: [u8; 32],
    /// Caller-chosen data bound into the report (e.g. a DH public key,
    /// which is how the patch server verifies the enclave's identity and
    /// defeats MITM per paper §V-C).
    pub report_data: Vec<u8>,
    /// Platform MAC.
    pub mac: [u8; 32],
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_is_code_identity_hash() {
        let mut p = SgxPlatform::new(b"fuse entropy");
        let e = p.create_enclave(b"helper-v1", ());
        assert_eq!(e.measurement(), sha256(b"helper-v1"));
        let e2 = p.create_enclave(b"helper-v2", ());
        assert_ne!(e.measurement(), e2.measurement());
        assert_ne!(e.id(), e2.id());
    }

    #[test]
    fn report_verifies_on_same_platform() {
        let mut p = SgxPlatform::new(b"fuse");
        let e = p.create_enclave(b"helper", ());
        let r = p.report(&e, b"dh-public-bytes");
        assert!(p.verify_report(&r));
    }

    #[test]
    fn report_fails_on_other_platform() {
        let mut p1 = SgxPlatform::new(b"fuse-1");
        let p2 = SgxPlatform::new(b"fuse-2");
        let e = p1.create_enclave(b"helper", ());
        let r = p1.report(&e, b"data");
        assert!(!p2.verify_report(&r));
    }

    #[test]
    fn tampered_report_rejected() {
        let mut p = SgxPlatform::new(b"fuse");
        let e = p.create_enclave(b"helper", ());
        let mut r = p.report(&e, b"data");
        r.report_data.push(0);
        assert!(!p.verify_report(&r));
        let mut r2 = p.report(&e, b"data");
        r2.measurement[0] ^= 1;
        assert!(!p.verify_report(&r2));
    }

    #[test]
    fn debug_hides_platform_key() {
        let p = SgxPlatform::new(b"secret entropy");
        assert!(format!("{p:?}").contains("<hidden>"));
    }
}
