//! SGX-based patch preparation (paper §V-B).
//!
//! The helper is an untrusted userspace application hosting a trusted
//! enclave. The *enclave* holds the server session, the decrypted patch
//! bundle, and the enclave↔SMM session key; the *application* only ever
//! moves ciphertext between the network, `mem_RW`, and `mem_W`. The
//! division is visible in the code: everything inside `enclave.ecall`
//! closures is trusted, everything else handles opaque bytes.
//!
//! Stages (timed separately, matching Table II):
//! 1. **Fetching** — receive the encrypted bundle frame from the server.
//! 2. **Pre-processing** — verify bundle integrity, assign `mem_X`
//!    placements, resolve call relocations against assigned addresses,
//!    build the Fig. 3 package.
//! 3. **Passing** — derive the SMM session key (DH public from
//!    `mem_RW`), encrypt the package, and stage it in `mem_W`.

use std::fmt;

use kshot_crypto::dh::{DhError, DhKeyPair, DhParams};
use kshot_crypto::BigUint;
use kshot_enclave::{Enclave, SgxPlatform};
use kshot_machine::{AccessCtx, Machine, MachineError, SimTime};
use kshot_patchserver::bundle::{GlobalOp, PatchBundle, RelocTarget};
use kshot_patchserver::channel::{ChannelError, Frame, SecureChannel};
use kshot_patchserver::wire::WireError;

use crate::package::{PackageOp, PackageRecord, PatchPackage, VerificationAlgorithm};
use crate::reserved::{rw_offsets, ReservedLayout};

/// The enclave code identity (its measurement derives from this).
pub const HELPER_CODE_IDENTITY: &[u8] = b"kshot-helper-enclave-v1";

/// Per-stage SGX timing breakdown (Table II of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SgxTimings {
    /// Fetching the bundle from the remote server.
    pub fetch: SimTime,
    /// Pre-processing (verification, placement, relocation, packaging).
    pub preprocess: SimTime,
    /// Encrypting and staging into shared memory.
    pub pass: SimTime,
}

impl SgxTimings {
    /// Total enclave-side preparation time (does not pause the OS).
    pub fn total(&self) -> SimTime {
        self.fetch + self.preprocess + self.pass
    }
}

/// Helper failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SgxError {
    /// No server session has been established.
    NoSession,
    /// No bundle has been fetched yet.
    NoBundle,
    /// Transport failure (tampering shows up here).
    Channel(ChannelError),
    /// Bundle/package (de)serialization failure.
    Wire(WireError),
    /// Machine fault while touching shared memory.
    Machine(MachineError),
    /// The bundle does not fit the remaining `mem_X` space.
    NoSpace {
        /// Bytes needed.
        need: u64,
        /// Bytes available.
        have: u64,
    },
    /// The staged package exceeds `mem_W`.
    PackageTooLarge {
        /// Ciphertext size.
        size: u64,
        /// `mem_W` capacity.
        capacity: u64,
    },
    /// The SMM public value in `mem_RW` is invalid.
    BadSmmPublic(DhError),
    /// A relocation referenced an unknown new function.
    DanglingReloc(String),
}

impl fmt::Display for SgxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgxError::NoSession => write!(f, "no server session established"),
            SgxError::NoBundle => write!(f, "no patch bundle fetched"),
            SgxError::Channel(e) => write!(f, "transport failure: {e}"),
            SgxError::Wire(e) => write!(f, "serialization failure: {e}"),
            SgxError::Machine(e) => write!(f, "machine fault: {e}"),
            SgxError::NoSpace { need, have } => {
                write!(f, "mem_X exhausted: need {need} bytes, have {have}")
            }
            SgxError::PackageTooLarge { size, capacity } => {
                write!(f, "package of {size} bytes exceeds mem_W ({capacity})")
            }
            SgxError::BadSmmPublic(e) => write!(f, "SMM public value invalid: {e}"),
            SgxError::DanglingReloc(n) => write!(f, "relocation to unknown function `{n}`"),
        }
    }
}

impl std::error::Error for SgxError {}

impl From<MachineError> for SgxError {
    fn from(e: MachineError) -> Self {
        SgxError::Machine(e)
    }
}

/// Enclave-private state. Never leaves [`Enclave::ecall`] closures.
#[derive(Default)]
struct HelperState {
    server_channel: Option<SecureChannel>,
    bundle: Option<PatchBundle>,
}

/// The helper application plus its enclave.
pub struct Helper {
    enclave: Enclave<HelperState>,
}

impl fmt::Debug for Helper {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Helper({:?})", self.enclave)
    }
}

/// What `prepare_and_stage` reports back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StageOutcome {
    /// Pre-processing + passing times (fetch is reported by
    /// [`Helper::fetch_bundle`]).
    pub preprocess: SimTime,
    /// Passing (encrypt + stage) time.
    pub pass: SimTime,
    /// Total plaintext payload bytes.
    pub payload_size: usize,
    /// Ciphertext bytes staged into `mem_W`.
    pub staged_size: usize,
    /// Number of package records.
    pub records: usize,
}

impl Helper {
    /// Create the helper and its enclave on the platform.
    pub fn create(platform: &mut SgxPlatform) -> Helper {
        Helper {
            enclave: platform.create_enclave(HELPER_CODE_IDENTITY, HelperState::default()),
        }
    }

    /// The enclave measurement (the patch server checks this via an
    /// attestation report before releasing patches — MITM defence,
    /// paper §V-C).
    pub fn measurement(&self) -> [u8; 32] {
        self.enclave.measurement()
    }

    /// Produce a local-attestation report binding `data` (typically the
    /// enclave's DH public) to the enclave identity. The patch server
    /// verifies this before releasing patches (paper §V-C: "KShot can
    /// verify the enclave's identity via the trusted patch server and
    /// thus mitigate the MITM attack").
    pub fn attestation(&self, platform: &SgxPlatform, data: &[u8]) -> kshot_enclave::Report {
        platform.report(&self.enclave, data)
    }

    /// Begin a DH session with the patch server; returns the enclave's
    /// public value to send to the server.
    ///
    /// # Errors
    ///
    /// [`SgxError::BadSmmPublic`] style DH failures on bad entropy.
    pub fn begin_server_session(
        &mut self,
        params: &DhParams,
        entropy: &[u8],
    ) -> Result<BigUint, SgxError> {
        let kp = DhKeyPair::from_entropy(params, entropy).map_err(SgxError::BadSmmPublic)?;
        let public = kp.public().clone();
        self.enclave.ecall(move |s| {
            // Stash the keypair via the channel-to-be; completed in
            // finish_server_session.
            s.server_channel = None;
            s.bundle = None;
            PENDING.with(|p| *p.borrow_mut() = Some(kp));
        });
        Ok(public)
    }

    /// Complete the server session with the server's public value.
    ///
    /// # Errors
    ///
    /// DH failures on degenerate publics; `NoSession` if
    /// [`Helper::begin_server_session`] was never called.
    pub fn finish_server_session(
        &mut self,
        params: &DhParams,
        server_public: &BigUint,
    ) -> Result<(), SgxError> {
        let kp = PENDING
            .with(|p| p.borrow_mut().take())
            .ok_or(SgxError::NoSession)?;
        let key = kp
            .agree(params, server_public)
            .map_err(SgxError::BadSmmPublic)?;
        self.enclave.ecall(move |s| {
            s.server_channel = Some(SecureChannel::new(key));
        });
        Ok(())
    }

    /// Stage 1 — receive the encrypted bundle frame from the server.
    ///
    /// Returns the bundle's payload size. Charges Table II "Fetching"
    /// time against the machine clock.
    ///
    /// # Errors
    ///
    /// Channel errors on tampering; wire errors on corruption that
    /// slipped past the MAC (cannot happen in practice, but handled).
    pub fn fetch_bundle(
        &mut self,
        machine: &mut Machine,
        frame: &Frame,
    ) -> Result<(usize, SimTime), SgxError> {
        let t0 = machine.now();
        let mut span = kshot_telemetry::span_at("sgx.fetch", t0.as_ns());
        let cost = machine.cost().sgx_fetch.for_bytes(frame.ciphertext.len());
        machine.charge(cost);
        let result = self.enclave.ecall(|s| {
            let channel = s.server_channel.as_mut().ok_or(SgxError::NoSession)?;
            let plaintext = channel.open(frame).map_err(SgxError::Channel)?;
            let bundle = PatchBundle::decode(&plaintext).map_err(SgxError::Wire)?;
            let size = bundle.payload_size();
            s.bundle = Some(bundle);
            Ok::<usize, SgxError>(size)
        })?;
        span.field("bytes", frame.ciphertext.len());
        span.end_at(machine.now().as_ns());
        Ok((result, machine.now() - t0))
    }

    /// Stages 2+3 — preprocess the fetched bundle and stage the
    /// encrypted package for the SMM handler.
    ///
    /// # Errors
    ///
    /// See [`SgxError`].
    pub fn prepare_and_stage(
        &mut self,
        machine: &mut Machine,
        reserved: &ReservedLayout,
        params: &DhParams,
        algorithm: VerificationAlgorithm,
        entropy: &[u8],
    ) -> Result<StageOutcome, SgxError> {
        let mut stage_span =
            kshot_telemetry::span_at("sgx.prepare_and_stage", machine.now().as_ns());
        // The untrusted application reads the public inputs from mem_RW.
        let next_paddr =
            machine.read_u64(AccessCtx::Kernel, reserved.rw_base + rw_offsets::NEXT_PADDR)?;
        let smm_pub_len =
            machine.read_u64(AccessCtx::Kernel, reserved.rw_base + rw_offsets::SMM_PUB)?;
        if smm_pub_len == 0 || smm_pub_len > rw_offsets::MAX_PUB {
            return Err(SgxError::BadSmmPublic(DhError::InvalidPeerPublic));
        }
        let mut smm_pub_bytes = vec![0u8; smm_pub_len as usize];
        machine.read_bytes(
            AccessCtx::Kernel,
            reserved.rw_base + rw_offsets::SMM_PUB + 8,
            &mut smm_pub_bytes,
        )?;
        let smm_public = BigUint::from_bytes_be(&smm_pub_bytes);
        // Stage 2: preprocess inside the enclave.
        let t_pre = machine.now();
        let mut pre_span = kshot_telemetry::span_at("sgx.preprocess", t_pre.as_ns());
        let x_end = reserved.x_base + reserved.x_size;
        let (package, payload_size) = self.enclave.ecall(|s| {
            let bundle = s.bundle.as_ref().ok_or(SgxError::NoBundle)?;
            build_package(bundle, algorithm, next_paddr, x_end)
        })?;
        let pre_cost = machine.cost().sgx_preprocess.for_bytes(payload_size);
        machine.charge(pre_cost);
        let preprocess = machine.now() - t_pre;
        pre_span.field("payload_size", payload_size);
        pre_span.end_at(machine.now().as_ns());
        // Stage 3: derive the SMM session key and stage ciphertext.
        let t_pass = machine.now();
        let mut pass_span = kshot_telemetry::span_at("sgx.pass", t_pass.as_ns());
        let kp = DhKeyPair::from_entropy(params, entropy).map_err(SgxError::BadSmmPublic)?;
        let helper_public = kp.public().to_bytes_be();
        let (frame_bytes, records) = self.enclave.ecall(|_| {
            let key = kp
                .agree(params, &smm_public)
                .map_err(SgxError::BadSmmPublic)?;
            let mut channel = SecureChannel::new(key);
            let frame = channel.seal(&package.try_encode().map_err(SgxError::Wire)?);
            Ok::<_, SgxError>((frame.encode(), package.records.len()))
        })?;
        if frame_bytes.len() as u64 > reserved.w_size {
            return Err(SgxError::PackageTooLarge {
                size: frame_bytes.len() as u64,
                capacity: reserved.w_size,
            });
        }
        // The untrusted application writes the public value and the
        // ciphertext into shared memory (it can: mem_RW is rw-, mem_W is
        // write-only).
        let pub_base = reserved.rw_base + rw_offsets::HELPER_PUB;
        machine.write_u64(AccessCtx::Kernel, pub_base, helper_public.len() as u64)?;
        machine.write_bytes(AccessCtx::Kernel, pub_base + 8, &helper_public)?;
        machine.write_bytes(AccessCtx::Kernel, reserved.w_base, &frame_bytes)?;
        machine.write_u64(
            AccessCtx::Kernel,
            reserved.rw_base + rw_offsets::STAGED_LEN,
            frame_bytes.len() as u64,
        )?;
        // Progress marker for DOS detection (paper §V-D).
        machine.write_u64(
            AccessCtx::Kernel,
            reserved.rw_base + rw_offsets::PROGRESS,
            1,
        )?;
        let pass_cost = machine.cost().sgx_pass.for_bytes(frame_bytes.len());
        machine.charge(pass_cost);
        let pass = machine.now() - t_pass;
        pass_span.field("staged_size", frame_bytes.len());
        pass_span.end_at(machine.now().as_ns());
        stage_span.field("records", records);
        stage_span.end_at(machine.now().as_ns());
        Ok(StageOutcome {
            preprocess,
            pass,
            payload_size,
            staged_size: frame_bytes.len(),
            records,
        })
    }
}

// The in-flight DH keypair between begin/finish of the server session.
// (An artefact of splitting one logical ECALL into two for testability;
// thread-local keeps it out of the public state.)
thread_local! {
    static PENDING: std::cell::RefCell<Option<DhKeyPair>> = const { std::cell::RefCell::new(None) };
}

/// Pure packaging logic: assign placements, resolve relocations, build
/// the Fig. 3 records. Runs inside the enclave.
///
/// A merged (batched) bundle is packaged segment by segment — each
/// segment's entries, new functions, then global ops, sharing one
/// `mem_X` cursor — so a batched package places the same bodies at the
/// same addresses, in the same order, as k sequential single-CVE
/// builds would. Relocation scope is per segment: a segment's relocs
/// may only reference its own new functions.
fn build_package(
    bundle: &PatchBundle,
    algorithm: VerificationAlgorithm,
    mut next_paddr: u64,
    x_end: u64,
) -> Result<(PatchPackage, usize), SgxError> {
    use kshot_patchserver::bundle::PatchEntry;

    struct SegSlice<'a> {
        id: &'a str,
        entries: &'a [PatchEntry],
        new_functions: &'a [PatchEntry],
        global_ops: &'a [GlobalOp],
    }

    // Assign a placement: 16-byte aligned, in order (p_i.paddr =
    // p_{i-1}.paddr + p_{i-1}.size, paper §V-C).
    fn assign(
        placements: &mut std::collections::BTreeMap<String, u64>,
        name: &str,
        size: usize,
        cursor: &mut u64,
        x_end: u64,
    ) -> Result<u64, SgxError> {
        let aligned = (*cursor + 15) & !15;
        let end = aligned + size as u64;
        if end > x_end {
            return Err(SgxError::NoSpace {
                need: end - aligned,
                have: x_end.saturating_sub(aligned),
            });
        }
        *cursor = end;
        placements.insert(name.to_string(), aligned);
        Ok(aligned)
    }

    let mut seg_slices = Vec::new();
    if bundle.segments.is_empty() {
        seg_slices.push(SegSlice {
            id: &bundle.id,
            entries: &bundle.entries,
            new_functions: &bundle.new_functions,
            global_ops: &bundle.global_ops,
        });
    } else {
        let (mut eo, mut no, mut go) = (0usize, 0usize, 0usize);
        for s in &bundle.segments {
            let e1 = eo + s.entries as usize;
            let n1 = no + s.new_functions as usize;
            let g1 = go + s.global_ops as usize;
            if e1 > bundle.entries.len()
                || n1 > bundle.new_functions.len()
                || g1 > bundle.global_ops.len()
            {
                return Err(SgxError::Wire(WireError::Truncated {
                    what: "bundle segment table",
                }));
            }
            seg_slices.push(SegSlice {
                id: &s.id,
                entries: &bundle.entries[eo..e1],
                new_functions: &bundle.new_functions[no..n1],
                global_ops: &bundle.global_ops[go..g1],
            });
            (eo, no, go) = (e1, n1, g1);
        }
        // The table must cover every record — silently dropping a
        // bundle tail would be a corrupt merge.
        if eo != bundle.entries.len()
            || no != bundle.new_functions.len()
            || go != bundle.global_ops.len()
        {
            return Err(SgxError::Wire(WireError::Truncated {
                what: "bundle segment table",
            }));
        }
    }

    let mut records = Vec::new();
    let mut payload_size = 0usize;
    let mut segments = Vec::new();
    for seg in &seg_slices {
        segments.push(crate::package::PackageSegment {
            id: seg.id.to_string(),
            first_record: records.len() as u32,
        });
        let mut placements = std::collections::BTreeMap::new();
        let mut placed = Vec::new();
        for e in seg.entries.iter().chain(seg.new_functions) {
            let paddr = assign(
                &mut placements,
                &e.name,
                e.body.len(),
                &mut next_paddr,
                x_end,
            )?;
            placed.push((e, paddr));
        }
        // Resolve relocations and build records.
        let n_entries = seg.entries.len();
        for (i, (e, paddr)) in placed.iter().enumerate() {
            let mut body = e.body.clone();
            for r in &e.relocs {
                let target = match &r.target {
                    RelocTarget::Absolute(a) => *a,
                    RelocTarget::NewFunction(n) => *placements
                        .get(n)
                        .ok_or_else(|| SgxError::DanglingReloc(n.clone()))?,
                };
                let at = *paddr + r.offset as u64;
                let rel = kshot_isa::rel32_for(at, target)
                    .map_err(|_| SgxError::DanglingReloc(e.name.clone()))?;
                let o = r.offset as usize;
                body[o + 1..o + 5].copy_from_slice(&rel.to_le_bytes());
            }
            payload_size += body.len();
            let is_new = i >= n_entries;
            let ftrace_skip = if e.ftrace_offset.is_some() {
                kshot_isa::JMP_LEN as u8
            } else {
                0
            };
            records.push(PackageRecord {
                sequence: records.len() as u32,
                op: if is_new {
                    PackageOp::PlaceOnly
                } else {
                    PackageOp::Patch
                },
                ptype: 1,
                taddr: e.taddr,
                paddr: *paddr,
                ftrace_skip,
                payload_hash: algorithm.digest(&body),
                expected_pre_hash: e.expected_pre_hash,
                tsize: e.tsize as u32,
                payload: body,
            });
        }
        for g in seg.global_ops {
            let bytes = match g {
                GlobalOp::SetBytes { bytes, .. } | GlobalOp::InitBytes { bytes, .. } => {
                    bytes.clone()
                }
            };
            payload_size += bytes.len();
            records.push(PackageRecord {
                sequence: records.len() as u32,
                op: PackageOp::GlobalWrite,
                ptype: 3,
                taddr: g.addr(),
                paddr: 0,
                ftrace_skip: 0,
                payload_hash: algorithm.digest(&bytes),
                expected_pre_hash: [0; 32],
                tsize: 0,
                payload: bytes,
            });
        }
    }
    // Only merged bundles carry an explicit table; single-CVE packages
    // keep the classic wire shape (one implicit segment).
    let segments = if bundle.segments.is_empty() {
        Vec::new()
    } else {
        segments
    };
    Ok((
        PatchPackage {
            id: bundle.id.clone(),
            algorithm,
            records,
            segments,
        },
        payload_size,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_patchserver::bundle::PatchEntry;

    fn entry(name: &str, body_len: usize, taddr: u64) -> PatchEntry {
        PatchEntry {
            name: name.into(),
            taddr,
            tsize: 64,
            ftrace_offset: Some(0),
            expected_pre_hash: [1; 32],
            body: vec![0x90; body_len],
            relocs: vec![],
        }
    }

    #[test]
    fn placements_are_sequential_and_aligned() {
        let bundle = PatchBundle {
            id: "CVE".into(),
            kernel_version: "kv".into(),
            entries: vec![entry("a", 30, 0x10_0000), entry("b", 50, 0x10_0100)],
            ..Default::default()
        };
        let (pkg, size) = build_package(
            &bundle,
            VerificationAlgorithm::Sha256,
            0x200_0000,
            0x300_0000,
        )
        .unwrap();
        assert_eq!(size, 80);
        assert_eq!(pkg.records[0].paddr, 0x200_0000);
        // 30 bytes → next aligned slot is +32.
        assert_eq!(pkg.records[1].paddr, 0x200_0020);
        assert_eq!(pkg.records[0].ftrace_skip, 5);
    }

    #[test]
    fn new_function_relocs_resolve_to_placements() {
        let mut caller = entry("caller", 20, 0x10_0000);
        let mut body = vec![0u8; 20];
        body[0] = kshot_isa::opcodes::CALL;
        caller.body = body;
        caller.relocs = vec![kshot_patchserver::bundle::BundleReloc {
            offset: 0,
            target: RelocTarget::NewFunction("fresh".into()),
        }];
        let bundle = PatchBundle {
            id: "CVE".into(),
            kernel_version: "kv".into(),
            entries: vec![caller],
            new_functions: vec![entry("fresh", 10, 0)],
            ..Default::default()
        };
        let (pkg, _) = build_package(
            &bundle,
            VerificationAlgorithm::Sha256,
            0x200_0000,
            0x300_0000,
        )
        .unwrap();
        // fresh placed after caller (20 → aligned 32).
        let fresh_paddr = pkg.records[1].paddr;
        assert_eq!(pkg.records[1].op, PackageOp::PlaceOnly);
        let call_at = pkg.records[0].paddr;
        let rel = i32::from_le_bytes(pkg.records[0].payload[1..5].try_into().unwrap());
        assert_eq!(call_at + 5 + rel as u64, fresh_paddr);
    }

    #[test]
    fn no_space_detected() {
        let bundle = PatchBundle {
            id: "CVE".into(),
            kernel_version: "kv".into(),
            entries: vec![entry("big", 100, 0x10_0000)],
            ..Default::default()
        };
        let err = build_package(
            &bundle,
            VerificationAlgorithm::Sha256,
            0x200_0000,
            0x200_0040,
        )
        .unwrap_err();
        assert!(matches!(err, SgxError::NoSpace { .. }));
    }

    #[test]
    fn dangling_new_function_reloc_detected() {
        let mut caller = entry("caller", 20, 0x10_0000);
        caller.body[0] = kshot_isa::opcodes::CALL;
        caller.relocs = vec![kshot_patchserver::bundle::BundleReloc {
            offset: 0,
            target: RelocTarget::NewFunction("ghost".into()),
        }];
        let bundle = PatchBundle {
            id: "CVE".into(),
            kernel_version: "kv".into(),
            entries: vec![caller],
            ..Default::default()
        };
        assert!(matches!(
            build_package(
                &bundle,
                VerificationAlgorithm::Sha256,
                0x200_0000,
                0x300_0000
            ),
            Err(SgxError::DanglingReloc(_))
        ));
    }

    #[test]
    fn segmented_bundle_packages_per_segment() {
        use kshot_patchserver::bundle::BundleSegment;
        // Two segments: A = {entry a, one global}, B = {entry b}. The
        // record order must interleave per segment (a, g, b) and the
        // package segment table must mark each segment's first record.
        let bundle = PatchBundle {
            id: "BATCH(A+B)".into(),
            kernel_version: "kv".into(),
            entries: vec![entry("a", 30, 0x10_0000), entry("b", 50, 0x10_0100)],
            global_ops: vec![GlobalOp::SetBytes {
                name: "g".into(),
                addr: 0x90_0008,
                bytes: vec![1, 2],
            }],
            segments: vec![
                BundleSegment {
                    id: "A".into(),
                    entries: 1,
                    new_functions: 0,
                    global_ops: 1,
                },
                BundleSegment {
                    id: "B".into(),
                    entries: 1,
                    new_functions: 0,
                    global_ops: 0,
                },
            ],
            ..Default::default()
        };
        let (pkg, _) = build_package(
            &bundle,
            VerificationAlgorithm::Sha256,
            0x200_0000,
            0x300_0000,
        )
        .unwrap();
        assert_eq!(pkg.records.len(), 3);
        assert_eq!(pkg.records[0].op, PackageOp::Patch);
        assert_eq!(pkg.records[1].op, PackageOp::GlobalWrite);
        assert_eq!(pkg.records[2].op, PackageOp::Patch);
        // Placements share one cursor across segments: a at the base,
        // b after a's 30 bytes aligned to 32.
        assert_eq!(pkg.records[0].paddr, 0x200_0000);
        assert_eq!(pkg.records[2].paddr, 0x200_0020);
        let tab = pkg.segment_table();
        assert_eq!(tab.len(), 2);
        assert_eq!((tab[0].id.as_str(), tab[0].first_record), ("A", 0));
        assert_eq!((tab[1].id.as_str(), tab[1].first_record), ("B", 2));
    }

    #[test]
    fn segment_table_must_cover_the_whole_bundle() {
        use kshot_patchserver::bundle::BundleSegment;
        let bundle = PatchBundle {
            id: "BATCH(A)".into(),
            kernel_version: "kv".into(),
            entries: vec![entry("a", 30, 0x10_0000), entry("b", 50, 0x10_0100)],
            segments: vec![BundleSegment {
                id: "A".into(),
                entries: 1,
                new_functions: 0,
                global_ops: 0,
            }],
            ..Default::default()
        };
        assert!(matches!(
            build_package(
                &bundle,
                VerificationAlgorithm::Sha256,
                0x200_0000,
                0x300_0000
            ),
            Err(SgxError::Wire(WireError::Truncated { .. }))
        ));
    }

    #[test]
    fn global_ops_become_globalwrite_records() {
        let bundle = PatchBundle {
            id: "CVE".into(),
            kernel_version: "kv".into(),
            global_ops: vec![GlobalOp::SetBytes {
                name: "g".into(),
                addr: 0x90_0008,
                bytes: vec![1, 2, 3],
            }],
            ..Default::default()
        };
        let (pkg, size) = build_package(
            &bundle,
            VerificationAlgorithm::Sha256,
            0x200_0000,
            0x300_0000,
        )
        .unwrap();
        assert_eq!(size, 3);
        assert_eq!(pkg.records[0].op, PackageOp::GlobalWrite);
        assert_eq!(pkg.records[0].taddr, 0x90_0008);
        assert_eq!(pkg.records[0].ptype, 3);
    }
}
