//! The KShot orchestrator: the full Fig. 2 pipeline.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use kshot_crypto::dh::{DhKeyPair, DhParams};
use kshot_enclave::SgxPlatform;
use kshot_kernel::Kernel;
use kshot_machine::flight::SmiCause;
use kshot_machine::{MachineError, SimTime};
use kshot_patchserver::bundle::PatchBundle;
use kshot_patchserver::channel::SecureChannel;
use kshot_patchserver::{PatchServer, ServerError, SourcePatch};

use crate::introspect::{self, ActiveSite, DosProbe, Violation};
use crate::package::VerificationAlgorithm;
use crate::reserved::ReservedLayout;
use crate::sgx_prep::{Helper, SgxError};
use crate::smm::{DhGroup, Recovery, RollbackOutcome, SegmentOutcome, SmmError, SmmHandler};

pub use crate::sgx_prep::SgxTimings;
pub use crate::smm::SmmTimings;

/// Everything measured about one live patch (feeds Tables II/III and
/// Figures 4/5 of the paper).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PatchReport {
    /// Patch identifier (CVE).
    pub id: String,
    /// SGX-side stage timings (OS keeps running).
    pub sgx: SgxTimings,
    /// SMM-side stage timings (OS paused).
    pub smm: SmmTimings,
    /// Total plaintext payload bytes.
    pub payload_size: usize,
    /// Ciphertext bytes staged in `mem_W`.
    pub staged_size: usize,
    /// Trampolines installed (implicated functions patched).
    pub trampolines: usize,
    /// Global writes performed (Type 3 edits).
    pub global_writes: usize,
    /// Names of the patched functions.
    pub patched_functions: Vec<String>,
    /// Patch type flags (t1, t2, t3).
    pub types: (bool, bool, bool),
    /// Per-CVE sub-reports: one entry per journal segment (trampolines,
    /// global writes, undo slots). A single-CVE patch carries exactly
    /// one segment with its own id; a batch carries one per CVE, in
    /// application order.
    pub segments: Vec<SegmentOutcome>,
}

impl PatchReport {
    /// Total wall time on the target (SGX prep + SMM pause).
    pub fn total(&self) -> SimTime {
        self.sgx.total() + self.smm.total()
    }
}

/// Orchestrator failures.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KShotError {
    /// The patch server refused or failed to build.
    Server(ServerError),
    /// SGX-side preparation failed.
    Sgx(SgxError),
    /// SMM-side application failed (the OS was resumed unpatched).
    Smm(SmmError),
    /// Machine-level fault.
    Machine(MachineError),
    /// The patch server rejected the enclave's attestation.
    AttestationFailed,
    /// Consistency mode: a task is executing inside a target function
    /// and quiescence was not reached within the slice budget.
    TargetBusy {
        /// The busy target function.
        function: String,
    },
    /// Batch mode: two patches in the batch modify the same function
    /// (patched entry or added function).
    BatchOverlap {
        /// The doubly-patched function.
        function: String,
    },
    /// Batch mode: two patches in the batch write overlapping global
    /// data ranges — the merge would silently corrupt whichever lands
    /// first.
    BatchGlobalOverlap {
        /// Symbol name of the second (overlapping) write.
        name: String,
        /// Its address.
        addr: u64,
    },
    /// Batch mode: an empty patch set.
    EmptyBatch,
    /// A rollback stopped partway. `restored` lists the sites already
    /// reverted (their records are deactivated); the remainder is rolled
    /// forward by [`KShot::recover`] on the next SMI.
    RollbackIncomplete {
        /// The underlying SMM failure.
        error: SmmError,
        /// Sites restored before the failure.
        restored: Vec<u64>,
    },
}

impl fmt::Display for KShotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KShotError::Server(e) => write!(f, "patch server: {e}"),
            KShotError::Sgx(e) => write!(f, "SGX preparation: {e}"),
            KShotError::Smm(e) => write!(f, "SMM application: {e}"),
            KShotError::Machine(e) => write!(f, "machine: {e}"),
            KShotError::AttestationFailed => write!(f, "enclave attestation rejected"),
            KShotError::TargetBusy { function } => {
                write!(f, "task executing inside `{function}`; no safe patch point")
            }
            KShotError::BatchOverlap { function } => {
                write!(f, "batch patches `{function}` twice; split the batch")
            }
            KShotError::BatchGlobalOverlap { name, addr } => {
                write!(
                    f,
                    "batch writes global `{name}` at {addr:#x} twice; split the batch"
                )
            }
            KShotError::EmptyBatch => write!(f, "empty patch batch"),
            KShotError::RollbackIncomplete { error, restored } => {
                write!(
                    f,
                    "rollback incomplete after {} site(s): {error}; run recover()",
                    restored.len()
                )
            }
        }
    }
}

impl std::error::Error for KShotError {}

impl From<ServerError> for KShotError {
    fn from(e: ServerError) -> Self {
        KShotError::Server(e)
    }
}

impl From<SgxError> for KShotError {
    fn from(e: SgxError) -> Self {
        KShotError::Sgx(e)
    }
}

impl From<SmmError> for KShotError {
    fn from(e: SmmError) -> Self {
        KShotError::Smm(e)
    }
}

impl From<MachineError> for KShotError {
    fn from(e: MachineError) -> Self {
        KShotError::Machine(e)
    }
}

/// The installed KShot system on a target machine.
pub struct KShot {
    kernel: Kernel,
    platform: SgxPlatform,
    helper: Helper,
    smm: SmmHandler,
    reserved: ReservedLayout,
    params: DhParams,
    algorithm: VerificationAlgorithm,
    rng: StdRng,
    history: Vec<PatchReport>,
}

impl fmt::Debug for KShot {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "KShot(kernel={}, patches={})",
            self.kernel.version(),
            self.history.len()
        )
    }
}

impl KShot {
    /// Install KShot on a booted kernel: claim the reserved region, set
    /// its page attributes, create the helper enclave, and install the
    /// SMM handler via a first SMI.
    ///
    /// # Errors
    ///
    /// Machine/SMM faults during installation.
    pub fn install(kernel: Kernel, seed: u64) -> Result<KShot, KShotError> {
        Self::with_options(
            kernel,
            seed,
            DhGroup::Default,
            VerificationAlgorithm::Sha256,
        )
    }

    /// [`KShot::install`] with an explicit DH group and verification
    /// algorithm (the SDBM ablation uses this).
    ///
    /// # Errors
    ///
    /// Machine/SMM faults during installation.
    pub fn with_options(
        mut kernel: Kernel,
        seed: u64,
        group: DhGroup,
        algorithm: VerificationAlgorithm,
    ) -> Result<KShot, KShotError> {
        let mut rng = StdRng::seed_from_u64(seed);
        let reserved = ReservedLayout::from_machine(kernel.machine());
        reserved.install(kernel.machine_mut())?;
        let mut platform = SgxPlatform::new(&rng.gen::<[u8; 32]>());
        let helper = Helper::create(&mut platform);
        let machine = kernel.machine_mut();
        machine.declare_smi_cause(SmiCause::Install);
        machine.raise_smi()?;
        let smm = SmmHandler::install(machine, &reserved, &rng.gen::<[u8; 32]>(), group)
            .inspect_err(|_| {
                let _ = machine.rsm();
            })?;
        machine.rsm()?;
        let params = match group {
            DhGroup::Default => DhParams::default_group(),
            DhGroup::Modp2048 => DhParams::modp_2048(),
        };
        Ok(KShot {
            kernel,
            platform,
            helper,
            smm,
            reserved,
            params,
            algorithm,
            rng,
            history: Vec::new(),
        })
    }

    /// The running kernel.
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Mutable kernel access (workloads, exploit checks, attackers).
    pub fn kernel_mut(&mut self) -> &mut Kernel {
        &mut self.kernel
    }

    /// Tear the system down, releasing the kernel (and with it the
    /// machine and its pristine boot image) to the caller. Used by
    /// fleet session arenas to recycle boot-image allocations across
    /// the machines a worker drives.
    pub fn into_kernel(self) -> Kernel {
        self.kernel
    }

    /// The reserved-region layout.
    pub fn reserved(&self) -> &ReservedLayout {
        &self.reserved
    }

    /// Extra physical memory KShot consumes (the paper's Table V
    /// "Memory" column: 18 MB).
    pub fn memory_overhead(&self) -> u64 {
        self.reserved.total()
    }

    /// Reports of every applied patch, in order.
    pub fn history(&self) -> &[PatchReport] {
        &self.history
    }

    /// Full live-patch pipeline against a patch server (paper Fig. 2).
    ///
    /// # Errors
    ///
    /// Any [`KShotError`]; on SMM-side failure the OS is resumed
    /// unpatched.
    pub fn live_patch(
        &mut self,
        server: &PatchServer,
        patch: &SourcePatch,
    ) -> Result<PatchReport, KShotError> {
        // 1. OS info → server build (runs on the server's hardware).
        let mut span =
            kshot_telemetry::span_at("kshot.live_patch", self.kernel.machine().now().as_ns());
        span.field("patch", patch.id.as_str());
        let info = self.kernel.info();
        let build = server.build_patch(&info, patch)?;
        let report = self.live_patch_bundle(build.bundle)?;
        span.end_at(self.kernel.machine().now().as_ns());
        Ok(report)
    }

    /// Lower-level entry: apply a pre-built bundle (benchmarks drive
    /// this with synthetic bundles).
    ///
    /// # Errors
    ///
    /// As [`KShot::live_patch`].
    pub fn live_patch_bundle(&mut self, bundle: PatchBundle) -> Result<PatchReport, KShotError> {
        let mut span = kshot_telemetry::span_at(
            "kshot.live_patch_bundle",
            self.kernel.machine().now().as_ns(),
        );
        span.field("patch", bundle.id.as_str());
        let id = bundle.id.clone();
        let types = (bundle.types.t1, bundle.types.t2, bundle.types.t3);
        let patched_functions: Vec<String> =
            bundle.entries.iter().map(|e| e.name.clone()).collect();
        // 2. Secure session: enclave ↔ server, with attestation. Runs on
        // server/enclave hardware, so the simulated machine clock does
        // not advance — the session span is wall-clock only.
        let session_span = kshot_telemetry::span("sgx.session");
        let e_entropy: [u8; 32] = self.rng.gen();
        let s_entropy: [u8; 32] = self.rng.gen();
        let enclave_pub = self.helper.begin_server_session(&self.params, &e_entropy)?;
        // Server side: verify the enclave before answering (MITM gate).
        // `phase.*` spans feed the phase-breakdown profiler
        // (`kshot_telemetry::PhaseProfile`); attestation runs on
        // server/enclave hardware, so this phase is wall-clock only.
        let attest_phase = kshot_telemetry::span("phase.attest");
        let report = self
            .helper
            .attestation(&self.platform, &enclave_pub.to_bytes_be());
        let expected = kshot_crypto::sha256(crate::sgx_prep::HELPER_CODE_IDENTITY);
        if !self.platform.verify_report(&report)
            || report.measurement != expected
            || report.report_data != enclave_pub.to_bytes_be()
        {
            kshot_telemetry::event("sgx.attestation_failed");
            return Err(KShotError::AttestationFailed);
        }
        attest_phase.end();
        let server_kp = DhKeyPair::from_entropy(&self.params, &s_entropy)
            .map_err(|e| KShotError::Sgx(SgxError::BadSmmPublic(e)))?;
        let server_key = server_kp
            .agree(&self.params, &enclave_pub)
            .map_err(|e| KShotError::Sgx(SgxError::BadSmmPublic(e)))?;
        let mut server_channel = SecureChannel::new(server_key);
        self.helper
            .finish_server_session(&self.params, server_kp.public())?;
        session_span.end();
        // 3. Server seals the bundle; enclave fetches it.
        let encoded = bundle
            .try_encode()
            .map_err(|e| KShotError::Sgx(SgxError::Wire(e)))?;
        let frame = server_channel.seal(&encoded);
        let machine = self.kernel.machine_mut();
        let (_, fetch_time) = self.helper.fetch_bundle(machine, &frame)?;
        // 4. Preprocess + stage.
        let smm_entropy: [u8; 32] = self.rng.gen();
        let stage = self.helper.prepare_and_stage(
            machine,
            &self.reserved,
            &self.params,
            self.algorithm,
            &smm_entropy,
        )?;
        // 5. SMI → SMM handler → RSM. Always resume the OS. The window
        // span covers the full OS pause: SMM entry through RSM.
        let fresh: [u8; 32] = self.rng.gen();
        let smm_window = kshot_telemetry::span_at("smm.window", machine.now().as_ns());
        machine.declare_smi_cause(SmiCause::Patch);
        machine.raise_smi()?;
        let outcome = self.smm.handle_patch(machine, &self.reserved, &fresh);
        let resume_phase = kshot_telemetry::span_at("phase.resume", machine.now().as_ns());
        machine.rsm()?;
        resume_phase.end_at(machine.now().as_ns());
        smm_window.end_at(machine.now().as_ns());
        let end_sim_ns = machine.now().as_ns();
        let outcome = outcome?;
        kshot_telemetry::counter("kshot.patches_applied", 1);
        span.field("trampolines", outcome.trampolines as u64);
        span.field("global_writes", outcome.global_writes as u64);
        span.end_at(end_sim_ns);
        let report = PatchReport {
            id,
            sgx: SgxTimings {
                fetch: fetch_time,
                preprocess: stage.preprocess,
                pass: stage.pass,
            },
            smm: outcome.timings,
            payload_size: stage.payload_size,
            staged_size: stage.staged_size,
            trampolines: outcome.trampolines,
            global_writes: outcome.global_writes,
            patched_functions,
            types,
            segments: outcome.segments,
        };
        self.history.push(report.clone());
        Ok(report)
    }

    /// Apply several CVE patches in **one** SMM round trip.
    ///
    /// The paper's patch set `P = {p1 … pn}` already carries multiple
    /// functions per SMI; batching extends this across CVEs so the
    /// fixed pause costs (switching + key generation, ≈40 µs) are paid
    /// once for the whole set — the natural "patch Tuesday" deployment.
    ///
    /// Bundles are built through the server's decode-once memo
    /// ([`PatchServer::build_patch_cached`]), so a fleet of machines
    /// batching the same catalogue compiles each patch exactly once.
    ///
    /// # Errors
    ///
    /// As [`KShot::live_patch_batch_bundles`], plus server build
    /// failures.
    pub fn live_patch_batch(
        &mut self,
        server: &PatchServer,
        patches: &[SourcePatch],
    ) -> Result<PatchReport, KShotError> {
        let info = self.kernel.info();
        let mut bundles = Vec::with_capacity(patches.len());
        for patch in patches {
            bundles.push((*server.build_patch_cached(&info, patch)?).clone());
        }
        self.live_patch_batch_bundles(bundles)
    }

    /// Merge pre-built bundles into one batched bundle and apply it in
    /// a single SMI. The merged bundle carries a per-CVE segment table,
    /// so the SMM handler journals each CVE as its own
    /// crash-consistency unit: [`KShot::rollback_last`] pops one CVE,
    /// [`KShot::recover`] after a mid-batch fault preserves completed
    /// CVEs and unwinds only the interrupted one, and the returned
    /// [`PatchReport::segments`] itemizes each CVE's contribution.
    ///
    /// # Errors
    ///
    /// * [`KShotError::EmptyBatch`] for an empty set.
    /// * [`KShotError::BatchOverlap`] when two patches touch the same
    ///   function — patched entry *or* added function (their target
    ///   pre-hashes / placements cannot both hold).
    /// * [`KShotError::BatchGlobalOverlap`] when two patches write
    ///   overlapping global data ranges.
    /// * Any [`KShot::live_patch`] error otherwise.
    pub fn live_patch_batch_bundles(
        &mut self,
        bundles: Vec<PatchBundle>,
    ) -> Result<PatchReport, KShotError> {
        if bundles.is_empty() {
            return Err(KShotError::EmptyBatch);
        }
        let info = self.kernel.info();
        let mut merged = PatchBundle {
            id: String::from("BATCH"),
            kernel_version: info.version.clone(),
            ..Default::default()
        };
        let mut seen_functions = std::collections::BTreeSet::new();
        let mut global_ranges: Vec<(u64, u64)> = Vec::new();
        let mut ids = Vec::new();
        for bundle in bundles {
            // Two patches redirecting (or defining) the same function
            // cannot both hold; catch entries AND new functions.
            for e in bundle.entries.iter().chain(&bundle.new_functions) {
                if !seen_functions.insert(e.name.clone()) {
                    return Err(KShotError::BatchOverlap {
                        function: e.name.clone(),
                    });
                }
            }
            for g in &bundle.global_ops {
                let name = match g {
                    kshot_patchserver::bundle::GlobalOp::SetBytes { name, .. }
                    | kshot_patchserver::bundle::GlobalOp::InitBytes { name, .. } => name.clone(),
                };
                let (lo, hi) = (g.addr(), g.addr() + g.bytes().len() as u64);
                if global_ranges.iter().any(|(a, b)| lo < *b && *a < hi) {
                    return Err(KShotError::BatchGlobalOverlap {
                        name,
                        addr: g.addr(),
                    });
                }
                global_ranges.push((lo, hi));
            }
            ids.push(bundle.id.clone());
            merged
                .segments
                .push(kshot_patchserver::bundle::BundleSegment {
                    id: bundle.id.clone(),
                    entries: bundle.entries.len() as u32,
                    new_functions: bundle.new_functions.len() as u32,
                    global_ops: bundle.global_ops.len() as u32,
                });
            merged.entries.extend(bundle.entries);
            merged.new_functions.extend(bundle.new_functions);
            merged.global_ops.extend(bundle.global_ops);
            merged.types.t1 |= bundle.types.t1;
            merged.types.t2 |= bundle.types.t2;
            merged.types.t3 |= bundle.types.t3;
        }
        merged.id = format!("BATCH({})", ids.join("+"));
        self.live_patch_bundle(merged)
    }

    /// Consistency-aware live patch (the paper's §VIII future work:
    /// "construct a consistency model and safely choose patch tasks").
    ///
    /// KShot's trampolines take effect on the *next invocation*, so a
    /// task currently executing a target function keeps running the old
    /// code to completion. For patches whose old/new versions must not
    /// mix (cross-function lock-order or protocol changes), this variant
    /// refuses to fire the SMI while any ready task's saved PC lies
    /// inside a target function, optionally running scheduler slices
    /// (up to `max_slices` of `slice_fuel` instructions) to reach a safe
    /// point first.
    ///
    /// # Errors
    ///
    /// [`KShotError::TargetBusy`] if quiescence is not reached; all
    /// [`KShot::live_patch`] errors otherwise.
    pub fn live_patch_consistent(
        &mut self,
        server: &PatchServer,
        patch: &SourcePatch,
        max_slices: u32,
        slice_fuel: u64,
    ) -> Result<PatchReport, KShotError> {
        let info = self.kernel.info();
        let build = server.build_patch(&info, patch)?;
        let ranges: Vec<(String, u64, u64)> = build
            .bundle
            .entries
            .iter()
            .map(|e| (e.name.clone(), e.taddr, e.taddr + e.tsize))
            .collect();
        let mut slices_left = max_slices;
        loop {
            match self.busy_target(&ranges) {
                None => break,
                Some(function) => {
                    if slices_left == 0 {
                        return Err(KShotError::TargetBusy { function });
                    }
                    slices_left -= 1;
                    // Drive every ready task one slice toward a safe
                    // point (an operator would simply wait; the effect
                    // is the same).
                    for id in self.kernel.task_ids() {
                        let _ = self.kernel.run_task_slice(id, slice_fuel);
                    }
                }
            }
        }
        self.live_patch_bundle(build.bundle)
    }

    /// The first target function with a ready task parked inside it.
    fn busy_target(&self, ranges: &[(String, u64, u64)]) -> Option<String> {
        for id in self.kernel.task_ids() {
            let task = self.kernel.task(id).expect("listed id");
            if !matches!(task.state, kshot_kernel::TaskState::Ready) {
                continue;
            }
            let pc = task.cpu.pc;
            for (name, lo, hi) in ranges {
                if pc >= *lo && pc < *hi {
                    return Some(name.clone());
                }
            }
        }
        None
    }

    /// Roll back the most recent patch (paper §V-C "Patch
    /// Rollback/Update"): restores the original entry bytes of every
    /// function the last package trampolined.
    ///
    /// Batched applies journal per CVE, so after
    /// [`KShot::live_patch_batch`] this pops exactly the **last CVE**
    /// of the batch (call repeatedly to unwind the whole batch),
    /// not the batch as a single unit.
    ///
    /// # Contract
    ///
    /// The returned [`RollbackOutcome`] distinguishes sites whose
    /// original bytes were restored ([`RollbackOutcome::restored`]) from
    /// `NOT_REVERTIBLE` data writes that could only be *deactivated*
    /// ([`RollbackOutcome::skipped`]). A non-empty `skipped` means the
    /// kernel still carries those data edits — the rollback of the
    /// code paths succeeded, but reaching a fully consistent
    /// configuration requires re-patching. Each skipped site bumps the
    /// `kshot.rollback_skipped` telemetry counter.
    ///
    /// # Errors
    ///
    /// * [`KShotError::Smm`] with [`SmmError::RollbackEmpty`] when no
    ///   patch is active (nothing was touched).
    /// * [`KShotError::RollbackIncomplete`] when the rollback stopped
    ///   after restoring some sites; [`KShot::recover`] rolls the
    ///   remainder forward.
    pub fn rollback_last(&mut self) -> Result<RollbackOutcome, KShotError> {
        let machine = self.kernel.machine_mut();
        let mut span = kshot_telemetry::span_at("kshot.rollback", machine.now().as_ns());
        machine.declare_smi_cause(SmiCause::Rollback);
        machine.raise_smi()?;
        let result = self.smm.handle_rollback(machine);
        machine.rsm()?;
        span.set_sim_end(machine.now().as_ns());
        let outcome = result.map_err(|f| {
            if f.restored.is_empty() {
                // Nothing was reverted: surface the plain error.
                KShotError::Smm(f.error)
            } else {
                KShotError::RollbackIncomplete {
                    error: f.error,
                    restored: f.restored,
                }
            }
        })?;
        kshot_telemetry::counter("kshot.rollbacks", 1);
        if !outcome.skipped.is_empty() {
            kshot_telemetry::counter("kshot.rollback_skipped", outcome.skipped.len() as u64);
        }
        span.field("restored", outcome.restored.len());
        span.field("skipped", outcome.skipped.len());
        Ok(outcome)
    }

    /// Recover from a patch or rollback interrupted mid-SMM-window
    /// (power loss, machine fault): raises an SMI and lets the handler
    /// replay or unwind the SMRAM journal. Safe to call any time —
    /// returns [`Recovery::Clean`] when nothing was interrupted.
    ///
    /// Until this runs, a pending journal makes `live_patch` /
    /// `rollback_last` refuse with [`SmmError::RecoveryPending`].
    ///
    /// # Errors
    ///
    /// Machine faults during recovery (the journal stays open; call
    /// again).
    pub fn recover(&mut self) -> Result<Recovery, KShotError> {
        let machine = self.kernel.machine_mut();
        let mut span = kshot_telemetry::span_at("kshot.recover", machine.now().as_ns());
        machine.declare_smi_cause(SmiCause::Recover);
        machine.raise_smi()?;
        let result = self.smm.recover(machine, &self.reserved);
        machine.rsm()?;
        span.set_sim_end(machine.now().as_ns());
        let recovery = result?;
        if !matches!(recovery, Recovery::Clean) {
            kshot_telemetry::counter("kshot.recoveries", 1);
        }
        Ok(recovery)
    }

    /// SMM-based introspection sweep (paper §V-D): detect reverted
    /// trampolines and corrupted `mem_X` bodies.
    ///
    /// # Errors
    ///
    /// Machine faults during the sweep.
    pub fn introspect(&mut self) -> Result<Vec<Violation>, KShotError> {
        let machine = self.kernel.machine_mut();
        let mut span = kshot_telemetry::span_at("kshot.introspect", machine.now().as_ns());
        machine.declare_smi_cause(SmiCause::Introspect);
        machine.raise_smi()?;
        let result = introspect::check(machine, &self.smm);
        machine.rsm()?;
        span.set_sim_end(machine.now().as_ns());
        let violations = result?;
        span.field("violations", violations.len());
        Ok(violations)
    }

    /// Inventory of active trampoline sites from SMRAM ground truth
    /// (the crash-consistency tests compare this against the kernel
    /// text).
    ///
    /// # Errors
    ///
    /// Machine faults during the sweep.
    pub fn active_sites(&mut self) -> Result<Vec<ActiveSite>, KShotError> {
        let machine = self.kernel.machine_mut();
        machine.declare_smi_cause(SmiCause::Inventory);
        machine.raise_smi()?;
        let result = introspect::active_trampolines(machine, &self.smm);
        machine.rsm()?;
        Ok(result?)
    }

    /// Repair reverted trampolines; returns how many were re-installed.
    ///
    /// # Errors
    ///
    /// Machine faults during the sweep.
    pub fn repair(&mut self) -> Result<usize, KShotError> {
        let machine = self.kernel.machine_mut();
        let mut span = kshot_telemetry::span_at("kshot.repair", machine.now().as_ns());
        machine.declare_smi_cause(SmiCause::Repair);
        machine.raise_smi()?;
        let result = introspect::repair(machine, &self.smm);
        machine.rsm()?;
        span.set_sim_end(machine.now().as_ns());
        let repaired = result?;
        span.field("repaired", repaired);
        Ok(repaired)
    }

    /// DOS-detection probe on behalf of the remote server.
    ///
    /// # Errors
    ///
    /// Machine faults during the probe.
    pub fn dos_probe(&mut self) -> Result<DosProbe, KShotError> {
        let machine = self.kernel.machine_mut();
        machine.declare_smi_cause(SmiCause::Probe);
        machine.raise_smi()?;
        let result = introspect::dos_probe(machine, &self.reserved);
        machine.rsm()?;
        Ok(result?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_kcc::ir::{CondExpr, Expr, Function, Global, InlineHint, Program, Stmt};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_machine::MemLayout;

    /// A tiny "kernel" with one vulnerable function: `lookup(idx)`
    /// writes to a 2-word buffer without a bounds check; index 2 hits
    /// the `sentinel` global (the exploit's observable).
    fn vulnerable_tree() -> Program {
        let mut p = Program::new();
        p.add_global(Global::buffer("table", 2));
        p.add_global(Global::word("sentinel", 0xAAAA));
        p.add_function(
            Function::new("lookup_store", 2, 0)
                .with_inline(InlineHint::Never)
                .with_body(vec![
                    Stmt::Store {
                        addr: Expr::global_addr("table").add(Expr::param(0).mul(Expr::c(8))),
                        value: Expr::param(1),
                    },
                    Stmt::Return(Expr::c(0)),
                ]),
        );
        p
    }

    fn fixed_tree() -> SourcePatch {
        SourcePatch::new("CVE-SIM-0001").replacing(
            Function::new("lookup_store", 2, 0)
                .with_inline(InlineHint::Never)
                .with_body(vec![
                    Stmt::if_then(
                        CondExpr::new(Expr::param(0), kshot_isa::Cond::Ae, Expr::c(2)),
                        vec![Stmt::Return(Expr::c(u64::MAX))],
                    ),
                    Stmt::Store {
                        addr: Expr::global_addr("table").add(Expr::param(0).mul(Expr::c(8))),
                        value: Expr::param(1),
                    },
                    Stmt::Return(Expr::c(0)),
                ]),
        )
    }

    fn boot() -> (Kernel, PatchServer) {
        let tree = vulnerable_tree();
        tree.validate().unwrap();
        let layout = MemLayout::standard();
        let image = link(
            &tree,
            &CodegenOptions::default(),
            layout.kernel_text_base,
            layout.kernel_data_base,
        )
        .unwrap();
        let kernel = Kernel::boot(image, "kv-4.4", layout).unwrap();
        let mut server = PatchServer::new();
        server.register_tree("kv-4.4", tree);
        (kernel, server)
    }

    #[test]
    fn end_to_end_live_patch_fixes_the_exploit() {
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 1).unwrap();
        // Exploit works pre-patch: index 2 corrupts the sentinel.
        kshot
            .kernel_mut()
            .call_function("lookup_store", &[2, 0xDEAD])
            .unwrap();
        assert_eq!(kshot.kernel_mut().read_global("sentinel").unwrap(), 0xDEAD);
        kshot.kernel_mut().write_global("sentinel", 0xAAAA).unwrap();
        // Live patch.
        let report = kshot.live_patch(&server, &fixed_tree()).unwrap();
        assert_eq!(report.trampolines, 1);
        assert_eq!(report.patched_functions, vec!["lookup_store".to_string()]);
        assert!(report.smm.total() > SimTime::ZERO);
        assert!(report.sgx.total() > report.smm.total(), "prep dominates");
        // Exploit is dead: out-of-bounds index is refused.
        let rv = kshot
            .kernel_mut()
            .call_function("lookup_store", &[2, 0xBEEF])
            .unwrap();
        assert_eq!(rv, u64::MAX);
        assert_eq!(kshot.kernel_mut().read_global("sentinel").unwrap(), 0xAAAA);
        // Legitimate use still works.
        kshot
            .kernel_mut()
            .call_function("lookup_store", &[1, 77])
            .unwrap();
        assert_eq!(kshot.kernel_mut().read_global_word("table", 1).unwrap(), 77);
    }

    #[test]
    fn rollback_restores_vulnerable_behaviour() {
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 2).unwrap();
        kshot.live_patch(&server, &fixed_tree()).unwrap();
        assert_eq!(
            kshot
                .kernel_mut()
                .call_function("lookup_store", &[2, 1])
                .unwrap(),
            u64::MAX
        );
        let restored = kshot.rollback_last().unwrap();
        assert_eq!(restored.restored.len(), 1);
        assert!(restored.skipped.is_empty());
        // Vulnerable again (proving the original bytes came back).
        assert_eq!(
            kshot
                .kernel_mut()
                .call_function("lookup_store", &[2, 0x5555])
                .unwrap(),
            0
        );
        assert_eq!(kshot.kernel_mut().read_global("sentinel").unwrap(), 0x5555);
        // Nothing left to roll back.
        assert!(matches!(
            kshot.rollback_last(),
            Err(KShotError::Smm(SmmError::RollbackEmpty))
        ));
    }

    #[test]
    fn repeated_patches_stack_in_mem_x() {
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 3).unwrap();
        let r1 = kshot.live_patch(&server, &fixed_tree()).unwrap();
        // Roll back and re-patch: mem_X cursor advances, both succeed.
        kshot.rollback_last().unwrap();
        let mut patch2 = fixed_tree();
        patch2.id = "CVE-SIM-0002".into();
        let r2 = kshot.live_patch(&server, &patch2).unwrap();
        assert_eq!(kshot.history().len(), 2);
        assert_eq!(r1.trampolines, 1);
        assert_eq!(r2.trampolines, 1);
        // Patched behaviour active after the second patch.
        assert_eq!(
            kshot
                .kernel_mut()
                .call_function("lookup_store", &[5, 1])
                .unwrap(),
            u64::MAX
        );
    }

    #[test]
    fn introspection_detects_and_repairs_reversion() {
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 4).unwrap();
        kshot.live_patch(&server, &fixed_tree()).unwrap();
        assert!(kshot.introspect().unwrap().is_empty());
        // Rootkit: remap text RW and revert the entry (the trampoline
        // sits after the 5-byte ftrace pad).
        let taddr = kshot.kernel().function_addr("lookup_store").unwrap();
        let site = taddr + 5;
        let page = site & !0xFFF;
        let m = kshot.kernel_mut().machine_mut();
        m.set_page_attrs(page, 0x2000, kshot_machine::PageAttrs::RWX)
            .unwrap();
        m.write_bytes(kshot_machine::AccessCtx::Kernel, site, &[0x90; 5])
            .unwrap();
        let violations = kshot.introspect().unwrap();
        assert_eq!(violations.len(), 1);
        assert_eq!(kshot.repair().unwrap(), 1);
        assert!(kshot.introspect().unwrap().is_empty());
        // The patch protects again.
        assert_eq!(
            kshot
                .kernel_mut()
                .call_function("lookup_store", &[2, 9])
                .unwrap(),
            u64::MAX
        );
    }

    #[test]
    fn dos_probe_sees_progress() {
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 5).unwrap();
        let before = kshot.dos_probe().unwrap();
        assert!(!before.staged);
        assert_eq!(before.epoch, 0);
        kshot.live_patch(&server, &fixed_tree()).unwrap();
        let after = kshot.dos_probe().unwrap();
        assert!(after.staged);
        assert_eq!(after.epoch, 1, "epoch bump proves the SMI ran");
    }

    #[test]
    fn consistent_mode_waits_for_busy_targets() {
        // A task parked mid-way through `lookup_store` blocks the
        // consistency-aware patch until it completes.
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 8).unwrap();
        let id = kshot
            .kernel_mut()
            .spawn("inflight", "lookup_store", &[0, 1])
            .unwrap();
        kshot.kernel_mut().run_task_slice(id, 2).unwrap(); // parked inside
                                                           // Zero slice budget: refused.
        match kshot.live_patch_consistent(&server, &fixed_tree(), 0, 0) {
            Err(KShotError::TargetBusy { function }) => {
                assert_eq!(function, "lookup_store");
            }
            other => panic!("expected TargetBusy, got {other:?}"),
        }
        // With a slice budget the task drains and the patch lands.
        let report = kshot
            .live_patch_consistent(&server, &fixed_tree(), 10, 10_000)
            .unwrap();
        assert_eq!(report.trampolines, 1);
        assert!(matches!(
            kshot.kernel().task(id).unwrap().state,
            kshot_kernel::TaskState::Exited(_)
        ));
        // Patched semantics active.
        assert_eq!(
            kshot
                .kernel_mut()
                .call_function("lookup_store", &[2, 5])
                .unwrap(),
            u64::MAX
        );
    }

    #[test]
    fn consistent_mode_ignores_finished_and_unrelated_tasks() {
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 9).unwrap();
        // A finished task inside nothing, and no ready tasks: patches
        // immediately with zero slice budget.
        let id = kshot
            .kernel_mut()
            .spawn("done", "lookup_store", &[0, 1])
            .unwrap();
        while kshot.kernel_mut().run_task_slice(id, 10_000).unwrap()
            == kshot_kernel::SliceOutcome::Preempted
        {}
        let report = kshot
            .live_patch_consistent(&server, &fixed_tree(), 0, 0)
            .unwrap();
        assert_eq!(report.trampolines, 1);
    }

    #[test]
    fn memory_overhead_is_18mb() {
        let (kernel, _) = boot();
        let kshot = KShot::install(kernel, 6).unwrap();
        assert_eq!(kshot.memory_overhead(), 18 * 1024 * 1024);
    }

    #[test]
    fn smm_pause_time_matches_paper_magnitude() {
        let (kernel, server) = boot();
        let mut kshot = KShot::install(kernel, 7).unwrap();
        let report = kshot.live_patch(&server, &fixed_tree()).unwrap();
        let pause_us = report.smm.total().as_us_f64();
        // Paper: ~50µs for small patches (34.6µs switching + keygen +
        // work). Accept a generous band.
        assert!((30.0..200.0).contains(&pause_us), "pause was {pause_us}µs");
    }
}
