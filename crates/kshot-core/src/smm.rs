//! The SMM-resident live-patching handler (paper §V-C).
//!
//! Everything the handler persists — its DH key seed, the patch epoch,
//! the `mem_X` allocation cursor, and the rollback store — lives in the
//! SMRAM scratch area as real bytes written under SMM privilege. Nothing
//! is cached in host-side Rust state, so the security property "patch
//! state survives arbitrary kernel compromise because SMRAM is locked"
//! holds by construction and is exercised by the tests.
//!
//! Workflow per patch (paper's numbered steps):
//! 1. key generation (fresh per patch — replay defence),
//! 2. fetch + decrypt the staged package from `mem_W`,
//! 3. verify payload hashes (and the target's current bytes),
//! 4. apply global edits, place bodies in `mem_X`, install trampolines
//!    honouring the 5-byte ftrace pads,
//! 5. publish a fresh DH public for the next patch and `RSM`.
//!
//! # Crash consistency
//!
//! The paper's dependability claim (§V-C "Patch Rollback/Update") is
//! that a patch either takes effect completely or the original kernel
//! is restored. A fault mid-window — machine check, NMI-in-SMM, power
//! loss — must not leave kernel text half-patched. Both mutating entry
//! points are therefore journaled two-phase operations over a reserved
//! SMRAM journal region:
//!
//! * [`SmmHandler::handle_patch`] writes an **undo record** (original
//!   bytes) into the journal *before* every kernel-visible write, and
//!   commits (journal → idle) only after the last write. An interrupted
//!   apply is **unwound** by [`SmmHandler::recover`]: journaled
//!   originals are restored in reverse, and the record table and
//!   `mem_X` cursor snap back to their pre-op values.
//! * [`SmmHandler::handle_rollback`] journals the **intent** (the
//!   package id being rolled back); the per-site originals already live
//!   in the SMRAM record table, and each record is deactivated only
//!   *after* its restore write succeeds. An interrupted rollback is
//!   **rolled forward** by [`SmmHandler::recover`]: every still-active
//!   record of the journaled id is restored and deactivated.
//!
//! While a journal entry is pending, both entry points refuse with
//! [`SmmError::RecoveryPending`] — the orchestrator must run
//! [`SmmHandler::recover`] (on the next SMI) first. The fault-injection
//! sweep in `tests/fault_sweep.rs` drives every interruption point of
//! both operations and asserts the all-or-nothing invariant.

use std::fmt;

use kshot_crypto::dh::{DhKeyPair, DhParams};
use kshot_machine::flight::{fnv1a, JournalOp};
use kshot_machine::{AccessCtx, CpuMode, Machine, MachineError, SimTime};
use kshot_patchserver::channel::{ChannelError, Frame, SecureChannel};
use kshot_patchserver::wire::WireError;

use crate::package::{PackageOp, PatchPackage, VerificationAlgorithm};
use crate::reserved::{rw_offsets, ReservedLayout};

/// Per-stage SMM timing breakdown (Table III of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SmmTimings {
    /// Switching into SMM (charged by the SMI itself).
    pub switch_in: SimTime,
    /// Session-key generation.
    pub keygen: SimTime,
    /// Reading and decrypting the staged package.
    pub decrypt: SimTime,
    /// Hash verification (payloads + patch targets).
    pub verify: SimTime,
    /// Global edits, body placement, trampoline installation.
    pub apply: SimTime,
    /// Resuming from SMM.
    pub switch_out: SimTime,
}

impl SmmTimings {
    /// Total OS pause time.
    pub fn total(&self) -> SimTime {
        self.switch_in + self.keygen + self.decrypt + self.verify + self.apply + self.switch_out
    }
}

/// Per-CVE sub-report of one (possibly batched) SMM apply: what each
/// journal segment installed and how many undo slots it consumed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentOutcome {
    /// The segment's own patch id (the real CVE, not the `BATCH(...)`
    /// envelope).
    pub id: String,
    /// Trampolines this segment installed.
    pub trampolines: usize,
    /// Global data writes this segment performed.
    pub global_writes: usize,
    /// Undo-journal slots this segment consumed.
    pub journal_slots: u64,
}

/// Result of applying one package in SMM.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmmPatchOutcome {
    /// Timing breakdown.
    pub timings: SmmTimings,
    /// Total payload bytes processed.
    pub payload_size: usize,
    /// Number of trampolines installed.
    pub trampolines: usize,
    /// Number of global writes performed.
    pub global_writes: usize,
    /// Per-CVE segment sub-reports, in application order. A single
    /// (non-batched) package yields exactly one segment carrying its
    /// own id.
    pub segments: Vec<SegmentOutcome>,
}

/// SMM handler failures. Any `Err` leaves the target kernel unpatched
/// (records are applied only after *all* verification passes).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SmmError {
    /// Handler invoked while the CPU is not in SMM.
    NotInSmm,
    /// SMRAM scratch does not carry the handler's magic (not installed).
    NotInstalled,
    /// The staged frame failed authentication or decryption.
    Channel(ChannelError),
    /// The decrypted package failed to parse.
    Package(WireError),
    /// A payload hash mismatched.
    PayloadHashMismatch {
        /// Record sequence number.
        sequence: u32,
    },
    /// The running kernel's bytes at the target do not match what the
    /// patch was built against.
    TargetMismatch {
        /// Record sequence number.
        sequence: u32,
        /// Target address.
        taddr: u64,
    },
    /// A record's `paddr` is outside `mem_X` or overlaps prior patches.
    BadPlacement {
        /// Record sequence number.
        sequence: u32,
        /// Offending placement.
        paddr: u64,
    },
    /// The target function is too small to hold a trampoline.
    TargetTooSmall {
        /// Target address.
        taddr: u64,
    },
    /// The rollback store is full.
    StoreFull,
    /// Nothing to roll back.
    RollbackEmpty,
    /// Machine-level fault.
    Machine(MachineError),
    /// The staged ciphertext length in `mem_RW` is implausible.
    BadStagedLength(u64),
    /// The package needs more undo-journal slots than the SMRAM journal
    /// region holds (raised during verification, before any write).
    JournalFull {
        /// Slots the package would need.
        needed: u64,
        /// Slots available.
        capacity: u64,
    },
    /// A previous patch or rollback was interrupted mid-window and its
    /// journal entry is still pending; run [`SmmHandler::recover`]
    /// before any new operation.
    RecoveryPending,
    /// A journal undo slot carries an implausible length (zero or larger
    /// than [`JENTRY_ORIG`]). The journal region is SMM-only, so this
    /// means SMRAM corruption — recovery must fail loudly rather than
    /// silently restore a clamped prefix of the original bytes.
    JournalCorrupt {
        /// Journal slot index carrying the bad length.
        slot: u64,
        /// The implausible length as read.
        len: u32,
    },
    /// The package's segment table is malformed (out-of-order or
    /// out-of-range record indices, or more segments than the SMRAM
    /// segment table holds). Rejected during verification, before any
    /// kernel write.
    BadSegmentTable {
        /// Index of the offending segment.
        segment: u32,
    },
}

impl fmt::Display for SmmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SmmError::NotInSmm => write!(f, "SMM handler invoked outside SMM"),
            SmmError::NotInstalled => write!(f, "SMM handler not installed in SMRAM"),
            SmmError::Channel(e) => write!(f, "staged package rejected: {e}"),
            SmmError::Package(e) => write!(f, "package malformed: {e}"),
            SmmError::PayloadHashMismatch { sequence } => {
                write!(f, "payload hash mismatch in record {sequence}")
            }
            SmmError::TargetMismatch { sequence, taddr } => write!(
                f,
                "record {sequence}: target {taddr:#x} does not match expected pre-patch bytes"
            ),
            SmmError::BadPlacement { sequence, paddr } => {
                write!(f, "record {sequence}: bad mem_X placement {paddr:#x}")
            }
            SmmError::TargetTooSmall { taddr } => {
                write!(f, "target {taddr:#x} too small for a trampoline")
            }
            SmmError::StoreFull => write!(f, "SMRAM rollback store full"),
            SmmError::RollbackEmpty => write!(f, "no patch to roll back"),
            SmmError::Machine(e) => write!(f, "machine fault: {e}"),
            SmmError::BadStagedLength(n) => write!(f, "implausible staged length {n}"),
            SmmError::JournalFull { needed, capacity } => {
                write!(
                    f,
                    "SMRAM journal too small: {needed} slots needed, {capacity} available"
                )
            }
            SmmError::RecoveryPending => {
                write!(
                    f,
                    "interrupted operation pending in SMRAM journal; recover first"
                )
            }
            SmmError::JournalCorrupt { slot, len } => {
                write!(
                    f,
                    "SMRAM journal corrupt: slot {slot} carries implausible length {len}"
                )
            }
            SmmError::BadSegmentTable { segment } => {
                write!(f, "package segment table malformed at segment {segment}")
            }
        }
    }
}

impl std::error::Error for SmmError {}

impl From<MachineError> for SmmError {
    fn from(e: MachineError) -> Self {
        SmmError::Machine(e)
    }
}

// ---- SMRAM scratch layout -------------------------------------------------

const MAGIC: u64 = 0x4B53_484F_545F_534D; // "KSHOT_SM"
const OFF_MAGIC: u64 = 0;
const OFF_EPOCH: u64 = 8;
const OFF_NEXT_PADDR: u64 = 16;
const OFF_DH_SEED: u64 = 24; // 32 bytes
const OFF_RECORDS: u64 = 0x100;
/// Fixed size of one rollback/introspection record in SMRAM.
pub(crate) const RECORD_LEN: u64 = 128;
/// Maximum records the scratch area holds.
pub(crate) const RECORD_CAP: u32 = 512;

// ---- SMRAM journal layout -------------------------------------------------
//
// The journal sits above the record store (records end at
// OFF_RECORDS + 8 + RECORD_CAP * RECORD_LEN = 0x10108) in the same
// SMM-only scratch area, so it inherits the SMRAM isolation argument:
// a compromised kernel can neither forge nor erase recovery state.
//
// Header (offsets relative to scratch + OFF_JOURNAL):
//   +0   STATE        u64   0 = idle, 1 = apply in progress,
//                            2 = rollback in progress
//   +8   ENTRY_COUNT  u64   undo entries valid so far
//   +16  INIT_RECORDS u64   record count when the op began
//   +24  INIT_PADDR   u64   mem_X cursor when the op began
//   +32  ID           len u8 + up to 55 bytes (package id)
//   +0x80 entries, JENTRY_LEN bytes each:
//        addr u64 | len u32 | orig bytes (JENTRY_ORIG max) | pad
//
// Write ordering is the consistency argument: an entry's bytes are
// written before ENTRY_COUNT acknowledges it, and ENTRY_COUNT is
// bumped before the kernel write the entry protects — so at every
// interruption point the counted prefix of the journal is exactly the
// set of kernel writes that may have landed. STATE is written last on
// begin and first on commit for the same reason.

const OFF_JOURNAL: u64 = 0x11000;
const JOFF_STATE: u64 = OFF_JOURNAL;
const JOFF_ENTRY_COUNT: u64 = OFF_JOURNAL + 8;
const JOFF_INIT_RECORDS: u64 = OFF_JOURNAL + 16;
const JOFF_INIT_PADDR: u64 = OFF_JOURNAL + 24;
const JOFF_ID: u64 = OFF_JOURNAL + 32;
/// Segments the open apply window has *started* (marker written).
const JOFF_SEG_COUNT: u64 = OFF_JOURNAL + 88;
/// Segments whose protected writes have all landed (committed prefix).
const JOFF_SEG_COMMITTED: u64 = OFF_JOURNAL + 96;
const JOFF_ENTRIES: u64 = OFF_JOURNAL + 0x80;
/// Fixed size of one undo-journal entry.
const JENTRY_LEN: u64 = 80;
/// Original bytes captured per undo entry; longer writes chain entries.
pub(crate) const JENTRY_ORIG: usize = 64;
/// Undo entries the journal region holds.
pub(crate) const JENTRY_CAP: u64 = 256;

// ---- SMRAM segment table --------------------------------------------------
//
// A batched package journals each CVE as its own *segment*: before any
// of segment i's journal entries or kernel writes, a marker is written
// at slot i of the segment table (where the segment starts — first
// journal entry index, record count, mem_X cursor — plus the real CVE
// id) and SEG_COUNT acknowledges it; after the segment's last protected
// write lands, SEG_COMMITTED advances. At every interruption point the
// committed prefix of segments is therefore fully applied and at most
// one segment (the SEG_COUNT'th) is torn — recovery replays only the
// journal suffix from that segment's marker and snaps the record count
// and cursor back to the marker's values, preserving every completed
// CVE. Sits above the journal entries (which end at 0x16080) in the
// same SMM-only scratch area.

const OFF_SEGTAB: u64 = 0x16100;
/// Scratch offset of the sealed handler image (above the segment
/// table, which ends at 0x17500; SMRAM is 1 MB so there is ample room).
const OFF_HANDLER_IMAGE: u64 = 0x18000;
/// Size of the sealed handler image.
pub(crate) const HANDLER_IMAGE_LEN: usize = 1024;

/// The handler image installed into SMRAM and sealed at install time —
/// a fixed pseudo-random blob standing in for the handler's code+rodata
/// (the same "binary" ships to every machine, so one expected
/// measurement covers the whole fleet, as with a real signed handler).
pub(crate) fn handler_image() -> [u8; HANDLER_IMAGE_LEN] {
    let mut img = [0u8; HANDLER_IMAGE_LEN];
    let mut x: u64 = 0x4B53_484F_545F_494D; // "KSHOT_IM"
    for b in img.iter_mut() {
        // splitmix64 step: deterministic, dependency-free.
        x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        *b = (z ^ (z >> 31)) as u8;
    }
    img
}

/// The FNV-1a measurement every untampered SMI entry must report for
/// the sealed handler image; integrity policies pin this value.
pub fn expected_handler_measurement() -> u64 {
    fnv1a(&handler_image())
}
/// Fixed size of one segment marker:
/// first_entry u64 | init_records u64 | init_paddr u64 | id len u8 +
/// up to 55 bytes.
const SEG_LEN: u64 = 80;
/// Segments one batched apply may carry.
pub(crate) const SEG_CAP: u64 = 64;

/// One segment marker, SMRAM-serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SegMarker {
    /// Journal entry count when the segment opened.
    first_entry: u64,
    /// Record count when the segment opened.
    init_records: u64,
    /// `mem_X` cursor when the segment opened.
    init_paddr: u64,
    /// The segment's own patch id (truncated to 55 bytes).
    id: String,
}

impl SegMarker {
    fn encode(&self) -> [u8; SEG_LEN as usize] {
        let mut b = [0u8; SEG_LEN as usize];
        b[0..8].copy_from_slice(&self.first_entry.to_le_bytes());
        b[8..16].copy_from_slice(&self.init_records.to_le_bytes());
        b[16..24].copy_from_slice(&self.init_paddr.to_le_bytes());
        let id = self.id.as_bytes();
        let n = id.len().min(55);
        b[24] = n as u8;
        b[25..25 + n].copy_from_slice(&id[..n]);
        b
    }

    fn decode(b: &[u8]) -> SegMarker {
        let n = (b[24] as usize).min(55);
        SegMarker {
            first_entry: u64::from_le_bytes(b[0..8].try_into().expect("8")),
            init_records: u64::from_le_bytes(b[8..16].try_into().expect("8")),
            init_paddr: u64::from_le_bytes(b[16..24].try_into().expect("8")),
            id: String::from_utf8_lossy(&b[25..25 + n]).into_owned(),
        }
    }
}

/// Journal state tags (`STATE` field values).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum JournalState {
    /// No operation in flight; nothing to recover.
    Idle,
    /// A `handle_patch` was interrupted; recovery unwinds it.
    ApplyInProgress,
    /// A `handle_rollback` was interrupted; recovery completes it.
    RollbackInProgress,
}

const JSTATE_IDLE: u64 = 0;
const JSTATE_APPLY: u64 = 1;
const JSTATE_ROLLBACK: u64 = 2;

/// What [`SmmHandler::recover`] found and did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Recovery {
    /// The journal was idle; nothing was interrupted.
    Clean,
    /// An interrupted patch apply was unwound: every journaled original
    /// byte range was restored and the record table / `mem_X` cursor
    /// reset, so the kernel is byte-identical to its pre-patch state.
    UnwoundApply {
        /// Package id of the unwound patch. For an interrupted *batched*
        /// apply this is the interrupted segment's own CVE id, not the
        /// `BATCH(...)` envelope.
        id: String,
        /// Undo entries replayed (in reverse).
        writes_undone: usize,
        /// Completed per-CVE segments the unwind preserved: only the
        /// journal suffix belonging to the interrupted segment was
        /// replayed; the first `segments_preserved` segments remain
        /// fully applied. Zero for non-batched applies.
        segments_preserved: usize,
    },
    /// An interrupted rollback was rolled forward to completion: every
    /// still-active record of the journaled package id was restored and
    /// deactivated.
    CompletedRollback {
        /// Package id of the completed rollback.
        id: String,
        /// Target addresses restored during recovery.
        restored: Vec<u64>,
        /// Non-revertible data-write targets skipped (operator must
        /// re-patch; see [`SmmHandler::handle_rollback`]).
        skipped: Vec<u64>,
    },
}

/// Result of a completed rollback.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct RollbackOutcome {
    /// Target addresses whose original bytes were restored.
    pub restored: Vec<u64>,
    /// Targets of `NOT_REVERTIBLE` data writes: deactivated but *not*
    /// restored. A non-empty list means the kernel still carries those
    /// data edits and the operator must re-patch to reach a consistent
    /// configuration.
    pub skipped: Vec<u64>,
}

/// A rollback that stopped partway: `error` says why, `restored` lists
/// the sites already reverted (their records are already deactivated,
/// so a later retry or [`SmmHandler::recover`] continues from here —
/// nothing is double-restored and nothing is forgotten).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RollbackFailure {
    /// The underlying failure.
    pub error: SmmError,
    /// Sites restored before the failure.
    pub restored: Vec<u64>,
}

impl fmt::Display for RollbackFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rollback interrupted after {} site(s): {}",
            self.restored.len(),
            self.error
        )
    }
}

impl std::error::Error for RollbackFailure {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        Some(&self.error)
    }
}

/// What a record undoes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum RecordKind {
    /// A trampoline installed at `taddr + skip`; `orig` holds the 5
    /// overwritten bytes; `paddr`/`size`/`memx_hash` describe the placed
    /// body for introspection.
    Trampoline,
    /// A Type 3 data write at `taddr`; `orig` holds up to 16 original
    /// bytes so rollback can restore them. Writes longer than 16 bytes
    /// are recorded with `orig_len == NOT_REVERTIBLE` and skipped on
    /// rollback (surfaced to the operator).
    DataWrite,
}

/// Marker for data writes too large to be captured for rollback.
pub(crate) const NOT_REVERTIBLE: u8 = 0xFF;

/// Maximum original bytes captured per data write.
pub(crate) const MAX_ORIG: usize = 16;

/// One rollback / introspection record, SMRAM-serialized.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct SmramRecord {
    pub active: bool,
    pub kind: RecordKind,
    /// Target address (function entry or data address).
    pub taddr: u64,
    /// Ftrace skip applied when the trampoline was installed.
    pub skip: u8,
    /// Number of valid bytes in `orig` (or [`NOT_REVERTIBLE`]).
    pub orig_len: u8,
    /// Original bytes the write overwrote.
    pub orig: [u8; MAX_ORIG],
    /// Placement of the patched body (trampolines only).
    pub paddr: u64,
    /// Patched body / written data size.
    pub size: u32,
    /// SHA-256 of the placed body (for `mem_X` integrity introspection).
    pub memx_hash: [u8; 32],
    /// Patch identifier (truncated to 55 bytes).
    pub id: String,
}

impl SmramRecord {
    fn encode(&self) -> [u8; RECORD_LEN as usize] {
        let mut b = [0u8; RECORD_LEN as usize];
        b[0] = self.active as u8;
        b[1] = match self.kind {
            RecordKind::Trampoline => 0,
            RecordKind::DataWrite => 1,
        };
        b[2..10].copy_from_slice(&self.taddr.to_le_bytes());
        b[10] = self.skip;
        b[11] = self.orig_len;
        b[12..28].copy_from_slice(&self.orig);
        b[28..36].copy_from_slice(&self.paddr.to_le_bytes());
        b[36..40].copy_from_slice(&self.size.to_le_bytes());
        b[40..72].copy_from_slice(&self.memx_hash);
        let id = self.id.as_bytes();
        let n = id.len().min(55);
        b[72] = n as u8;
        b[73..73 + n].copy_from_slice(&id[..n]);
        b
    }

    fn decode(b: &[u8]) -> SmramRecord {
        let n = (b[72] as usize).min(55);
        SmramRecord {
            active: b[0] != 0,
            kind: if b[1] == 0 {
                RecordKind::Trampoline
            } else {
                RecordKind::DataWrite
            },
            taddr: u64::from_le_bytes(b[2..10].try_into().expect("8")),
            skip: b[10],
            orig_len: b[11],
            orig: b[12..28].try_into().expect("16"),
            paddr: u64::from_le_bytes(b[28..36].try_into().expect("8")),
            size: u32::from_le_bytes(b[36..40].try_into().expect("4")),
            memx_hash: b[40..72].try_into().expect("32"),
            id: String::from_utf8_lossy(&b[73..73 + n]).into_owned(),
        }
    }
}

/// The SMM handler. Carries no host-side state beyond the scratch base;
/// see the module docs.
#[derive(Debug, Clone, Copy)]
pub struct SmmHandler {
    scratch: u64,
    params_id: DhGroup,
}

/// Which DH group the handler uses (a small tag; the group itself is
/// reconstructed on demand).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DhGroup {
    /// The fast 512-bit default group.
    Default,
    /// RFC 3526 MODP-2048.
    Modp2048,
}

impl DhGroup {
    fn params(self) -> DhParams {
        match self {
            DhGroup::Default => DhParams::default_group(),
            DhGroup::Modp2048 => DhParams::modp_2048(),
        }
    }
}

impl SmmHandler {
    /// Install the handler: requires the CPU to be in SMM (the firmware
    /// installs it from the first SMI). Initializes the SMRAM state,
    /// generates the initial DH key pair from `entropy`, and publishes
    /// the public value and `mem_X` cursor in `mem_RW`.
    ///
    /// # Errors
    ///
    /// [`SmmError::NotInSmm`] outside SMM; machine faults otherwise.
    pub fn install(
        machine: &mut Machine,
        reserved: &ReservedLayout,
        entropy: &[u8; 32],
        group: DhGroup,
    ) -> Result<SmmHandler, SmmError> {
        if machine.mode() != CpuMode::Smm {
            return Err(SmmError::NotInSmm);
        }
        let h = SmmHandler {
            scratch: machine.smram_scratch_base(),
            params_id: group,
        };
        h.write_u64(machine, OFF_MAGIC, MAGIC)?;
        h.write_u64(machine, OFF_EPOCH, 0)?;
        h.write_u64(machine, OFF_NEXT_PADDR, reserved.x_base)?;
        machine.write_bytes(AccessCtx::Smm, h.scratch + OFF_DH_SEED, entropy)?;
        h.set_record_count(machine, 0)?;
        h.write_u64(machine, JOFF_STATE, JSTATE_IDLE)?;
        h.write_u64(machine, JOFF_ENTRY_COUNT, 0)?;
        h.write_u64(machine, JOFF_SEG_COUNT, 0)?;
        h.write_u64(machine, JOFF_SEG_COMMITTED, 0)?;
        h.publish_public(machine, reserved)?;
        h.publish_cursor(machine, reserved)?;
        // Install and seal the handler image: every later SMI entry
        // measures this region into its flight record, so tampering
        // between SMIs is detectable by the detached monitor.
        let image = handler_image();
        machine.write_bytes(AccessCtx::Smm, h.scratch + OFF_HANDLER_IMAGE, &image)?;
        machine.seal_handler_image(h.scratch + OFF_HANDLER_IMAGE, image.len() as u64);
        Ok(h)
    }

    /// Re-attach to an already-installed handler (e.g. after the
    /// orchestrator was rebuilt). Verifies the SMRAM magic.
    ///
    /// # Errors
    ///
    /// [`SmmError::NotInstalled`] when the magic is absent.
    pub fn attach(machine: &mut Machine, group: DhGroup) -> Result<SmmHandler, SmmError> {
        if machine.mode() != CpuMode::Smm {
            return Err(SmmError::NotInSmm);
        }
        let h = SmmHandler {
            scratch: machine.smram_scratch_base(),
            params_id: group,
        };
        if h.read_u64(machine, OFF_MAGIC)? != MAGIC {
            return Err(SmmError::NotInstalled);
        }
        Ok(h)
    }

    // ---- scratch primitives ------------------------------------------

    fn read_u64(&self, machine: &mut Machine, off: u64) -> Result<u64, SmmError> {
        Ok(machine.read_u64(AccessCtx::Smm, self.scratch + off)?)
    }

    fn write_u64(&self, machine: &mut Machine, off: u64, v: u64) -> Result<(), SmmError> {
        Ok(machine.write_u64(AccessCtx::Smm, self.scratch + off, v)?)
    }

    pub(crate) fn record_count(&self, machine: &mut Machine) -> Result<u32, SmmError> {
        Ok(self.read_u64(machine, OFF_RECORDS)? as u32)
    }

    fn set_record_count(&self, machine: &mut Machine, n: u32) -> Result<(), SmmError> {
        self.write_u64(machine, OFF_RECORDS, n as u64)
    }

    pub(crate) fn read_record(
        &self,
        machine: &mut Machine,
        idx: u32,
    ) -> Result<SmramRecord, SmmError> {
        let mut buf = [0u8; RECORD_LEN as usize];
        let addr = self.scratch + OFF_RECORDS + 8 + idx as u64 * RECORD_LEN;
        machine.read_bytes(AccessCtx::Smm, addr, &mut buf)?;
        Ok(SmramRecord::decode(&buf))
    }

    pub(crate) fn write_record(
        &self,
        machine: &mut Machine,
        idx: u32,
        rec: &SmramRecord,
    ) -> Result<(), SmmError> {
        let addr = self.scratch + OFF_RECORDS + 8 + idx as u64 * RECORD_LEN;
        Ok(machine.write_bytes(AccessCtx::Smm, addr, &rec.encode())?)
    }

    /// Append a record chronologically; when the store fills, compact it
    /// (drop rolled-back records, preserving order). Long-running hosts
    /// cycle through thousands of patch/rollback events (the §VI-C3
    /// 1,000-patch experiment), so the store must reclaim.
    fn append_record(&self, machine: &mut Machine, rec: &SmramRecord) -> Result<(), SmmError> {
        let mut count = self.record_count(machine)?;
        if count >= RECORD_CAP {
            let mut keep = Vec::new();
            for i in 0..count {
                let r = self.read_record(machine, i)?;
                if r.active {
                    keep.push(r);
                }
            }
            if keep.len() as u32 >= RECORD_CAP {
                return Err(SmmError::StoreFull);
            }
            for (i, r) in keep.iter().enumerate() {
                self.write_record(machine, i as u32, r)?;
            }
            count = keep.len() as u32;
            self.set_record_count(machine, count)?;
        }
        self.write_record(machine, count, rec)?;
        self.set_record_count(machine, count + 1)
    }

    /// Make room for `needed` more records *before* the journaled window
    /// opens, compacting inactive records if required. Compaction moves
    /// records and is therefore not crash-atomic — running it outside
    /// the journal window keeps the window itself append-only (undone by
    /// resetting the count). A crash mid-compaction can at worst leave a
    /// duplicated *active* record below the old count, which is benign:
    /// both copies restore the same original bytes.
    fn ensure_record_capacity(&self, machine: &mut Machine, needed: u32) -> Result<(), SmmError> {
        let count = self.record_count(machine)?;
        if count.saturating_add(needed) <= RECORD_CAP {
            return Ok(());
        }
        let mut keep = Vec::new();
        for i in 0..count {
            let r = self.read_record(machine, i)?;
            if r.active {
                keep.push(r);
            }
        }
        if keep.len() as u32 + needed > RECORD_CAP {
            return Err(SmmError::StoreFull);
        }
        for (i, r) in keep.iter().enumerate() {
            self.write_record(machine, i as u32, r)?;
        }
        self.set_record_count(machine, keep.len() as u32)
    }

    // ---- journal primitives ------------------------------------------

    /// Read the journal state tag. Unknown tags (corrupted SMRAM would
    /// require an SMM-level compromise, but be defensive) map to the
    /// in-progress state that forces recovery.
    pub(crate) fn journal_state(&self, machine: &mut Machine) -> Result<JournalState, SmmError> {
        Ok(match self.read_u64(machine, JOFF_STATE)? {
            JSTATE_IDLE => JournalState::Idle,
            JSTATE_ROLLBACK => JournalState::RollbackInProgress,
            _ => JournalState::ApplyInProgress,
        })
    }

    /// Open the journal window: init the header fields, then write STATE
    /// *last* so a crash mid-begin leaves the journal idle (nothing has
    /// been applied yet at that point).
    fn journal_begin(&self, machine: &mut Machine, state: u64, id: &str) -> Result<(), SmmError> {
        self.write_u64(machine, JOFF_ENTRY_COUNT, 0)?;
        let records = self.record_count(machine)? as u64;
        self.write_u64(machine, JOFF_INIT_RECORDS, records)?;
        let paddr = self.read_u64(machine, OFF_NEXT_PADDR)?;
        self.write_u64(machine, JOFF_INIT_PADDR, paddr)?;
        let id_bytes = id.as_bytes();
        let n = id_bytes.len().min(55);
        let mut idbuf = [0u8; 56];
        idbuf[0] = n as u8;
        idbuf[1..1 + n].copy_from_slice(&id_bytes[..n]);
        machine.write_bytes(AccessCtx::Smm, self.scratch + JOFF_ID, &idbuf)?;
        // Segment fields start zeroed (non-segmented until the first
        // marker lands) — before STATE, like every other header field.
        self.write_u64(machine, JOFF_SEG_COUNT, 0)?;
        self.write_u64(machine, JOFF_SEG_COMMITTED, 0)?;
        self.write_u64(machine, JOFF_STATE, state)?;
        machine.flight_note_journal(JournalOp::Begin {
            rollback: state == JSTATE_ROLLBACK,
        });
        Ok(())
    }

    /// Close the journal window: STATE goes back to idle *first*; the
    /// stale header/entries behind it are ignored once idle.
    fn journal_commit(&self, machine: &mut Machine) -> Result<(), SmmError> {
        self.write_u64(machine, JOFF_STATE, JSTATE_IDLE)?;
        self.write_u64(machine, JOFF_ENTRY_COUNT, 0)?;
        self.write_u64(machine, JOFF_SEG_COUNT, 0)?;
        self.write_u64(machine, JOFF_SEG_COMMITTED, 0)?;
        machine.flight_note_journal(JournalOp::Commit);
        kshot_telemetry::counter("smm.journal_commit", 1);
        Ok(())
    }

    fn journal_read_id(&self, machine: &mut Machine) -> Result<String, SmmError> {
        let mut idbuf = [0u8; 56];
        machine.read_bytes(AccessCtx::Smm, self.scratch + JOFF_ID, &mut idbuf)?;
        let n = (idbuf[0] as usize).min(55);
        Ok(String::from_utf8_lossy(&idbuf[1..1 + n]).into_owned())
    }

    /// Capture the current bytes at `addr..addr + len` into fresh undo
    /// entries (chained in [`JENTRY_ORIG`]-byte chunks). Each entry's
    /// bytes land *before* `ENTRY_COUNT` acknowledges it, and the caller
    /// performs the protected kernel write only after this returns — so
    /// the counted journal prefix always covers every write that may
    /// have landed.
    fn journal_log_orig(
        &self,
        machine: &mut Machine,
        addr: u64,
        len: usize,
    ) -> Result<(), SmmError> {
        let mut count = self.read_u64(machine, JOFF_ENTRY_COUNT)?;
        let mut off = 0usize;
        while off < len {
            let chunk = (len - off).min(JENTRY_ORIG);
            if count >= JENTRY_CAP {
                return Err(SmmError::JournalFull {
                    needed: count + 1,
                    capacity: JENTRY_CAP,
                });
            }
            let mut buf = [0u8; JENTRY_LEN as usize];
            buf[..8].copy_from_slice(&(addr + off as u64).to_le_bytes());
            buf[8..12].copy_from_slice(&(chunk as u32).to_le_bytes());
            machine.read_bytes(AccessCtx::Smm, addr + off as u64, &mut buf[12..12 + chunk])?;
            let slot = self.scratch + JOFF_ENTRIES + count * JENTRY_LEN;
            machine.write_bytes(AccessCtx::Smm, slot, &buf)?;
            count += 1;
            self.write_u64(machine, JOFF_ENTRY_COUNT, count)?;
            machine.flight_note_journal(JournalOp::Entries { count: 1 });
            off += chunk;
        }
        Ok(())
    }

    fn journal_entry(
        &self,
        machine: &mut Machine,
        idx: u64,
    ) -> Result<(u64, usize, [u8; JENTRY_ORIG]), SmmError> {
        let mut buf = [0u8; JENTRY_LEN as usize];
        let slot = self.scratch + JOFF_ENTRIES + idx * JENTRY_LEN;
        machine.read_bytes(AccessCtx::Smm, slot, &mut buf)?;
        let addr = u64::from_le_bytes(buf[..8].try_into().expect("8"));
        let len = u32::from_le_bytes(buf[8..12].try_into().expect("4"));
        // A slot length outside (0, JENTRY_ORIG] cannot have been
        // written by journal_log_orig — the journal is corrupt. Fail
        // loudly instead of silently restoring a clamped prefix.
        if len == 0 || len as usize > JENTRY_ORIG {
            return Err(SmmError::JournalCorrupt { slot: idx, len });
        }
        let len = len as usize;
        let mut orig = [0u8; JENTRY_ORIG];
        orig.copy_from_slice(&buf[12..12 + JENTRY_ORIG]);
        Ok((addr, len, orig))
    }

    /// Write segment marker `idx` into the SMRAM segment table. The
    /// caller acknowledges it by bumping SEG_COUNT *after* the marker's
    /// bytes land (same ordering discipline as journal entries).
    fn write_segment_marker(
        &self,
        machine: &mut Machine,
        idx: u64,
        marker: &SegMarker,
    ) -> Result<(), SmmError> {
        let addr = self.scratch + OFF_SEGTAB + idx * SEG_LEN;
        machine.write_bytes(AccessCtx::Smm, addr, &marker.encode())?;
        machine.flight_note_journal(JournalOp::Segment {
            index: idx,
            id_hash: fnv1a(marker.id.as_bytes()),
        });
        Ok(())
    }

    fn read_segment_marker(&self, machine: &mut Machine, idx: u64) -> Result<SegMarker, SmmError> {
        let mut buf = [0u8; SEG_LEN as usize];
        let addr = self.scratch + OFF_SEGTAB + idx * SEG_LEN;
        machine.read_bytes(AccessCtx::Smm, addr, &mut buf)?;
        Ok(SegMarker::decode(&buf))
    }

    fn current_keypair(&self, machine: &mut Machine) -> Result<DhKeyPair, SmmError> {
        let mut seed = [0u8; 32];
        machine.read_bytes(AccessCtx::Smm, self.scratch + OFF_DH_SEED, &mut seed)?;
        DhKeyPair::from_entropy(&self.params_id.params(), &seed)
            .map_err(|e| SmmError::Channel(ChannelError::Dh(e)))
    }

    /// Publish the current DH public value into `mem_RW` so the enclave
    /// can derive the session key for the *next* patch.
    fn publish_public(
        &self,
        machine: &mut Machine,
        reserved: &ReservedLayout,
    ) -> Result<(), SmmError> {
        let kp = self.current_keypair(machine)?;
        let pub_bytes = kp.public().to_bytes_be();
        let base = reserved.rw_base + rw_offsets::SMM_PUB;
        machine.write_u64(AccessCtx::Smm, base, pub_bytes.len() as u64)?;
        machine.write_bytes(AccessCtx::Smm, base + 8, &pub_bytes)?;
        let epoch = self.read_u64(machine, OFF_EPOCH)?;
        machine.write_u64(AccessCtx::Smm, reserved.rw_base + rw_offsets::EPOCH, epoch)?;
        Ok(())
    }

    fn publish_cursor(
        &self,
        machine: &mut Machine,
        reserved: &ReservedLayout,
    ) -> Result<(), SmmError> {
        let next = self.read_u64(machine, OFF_NEXT_PADDR)?;
        machine.write_u64(
            AccessCtx::Smm,
            reserved.rw_base + rw_offsets::NEXT_PADDR,
            next,
        )?;
        Ok(())
    }

    /// Rotate the DH key: new seed, bumped epoch, re-published public.
    fn rotate_key(
        &self,
        machine: &mut Machine,
        reserved: &ReservedLayout,
        entropy: &[u8; 32],
    ) -> Result<(), SmmError> {
        machine.write_bytes(AccessCtx::Smm, self.scratch + OFF_DH_SEED, entropy)?;
        let epoch = self.read_u64(machine, OFF_EPOCH)? + 1;
        self.write_u64(machine, OFF_EPOCH, epoch)?;
        self.publish_public(machine, reserved)
    }

    // ---- the patch path ----------------------------------------------

    /// Apply the package staged in `mem_W`.
    ///
    /// `fresh_entropy` seeds the *next* patch's DH key (rotation).
    ///
    /// # Errors
    ///
    /// Any [`SmmError`]; verification failures abort before any byte of
    /// kernel state is modified.
    pub fn handle_patch(
        &self,
        machine: &mut Machine,
        reserved: &ReservedLayout,
        fresh_entropy: &[u8; 32],
    ) -> Result<SmmPatchOutcome, SmmError> {
        if machine.mode() != CpuMode::Smm {
            return Err(SmmError::NotInSmm);
        }
        if self.journal_state(machine)? != JournalState::Idle {
            return Err(SmmError::RecoveryPending);
        }
        let mut timings = SmmTimings {
            switch_in: machine.cost().smm_entry,
            switch_out: machine.cost().smm_exit,
            ..Default::default()
        };
        let mut hp_span = kshot_telemetry::span_at("smm.handle_patch", machine.now().as_ns());
        // 1. Key generation.
        let t0 = machine.now();
        let keygen_span = kshot_telemetry::span_at("smm.keygen", t0.as_ns());
        // Each SMM stage also emits a `phase.*` span for the
        // phase-breakdown profiler (`kshot_telemetry::PhaseProfile`),
        // nested inside the stage's own span.
        let kx_phase = kshot_telemetry::span_at("phase.key_exchange", t0.as_ns());
        let kp = self.current_keypair(machine)?;
        let helper_pub = read_public(machine, reserved.rw_base + rw_offsets::HELPER_PUB)?;
        let key = kp
            .agree(&self.params_id.params(), &helper_pub)
            .map_err(|e| SmmError::Channel(ChannelError::Dh(e)))?;
        let keygen_cost = machine.cost().smm_keygen;
        machine.charge(keygen_cost);
        timings.keygen = machine.now() - t0;
        kx_phase.end_at(machine.now().as_ns());
        keygen_span.end_at(machine.now().as_ns());
        // 2. Fetch + decrypt.
        let t1 = machine.now();
        let mut decrypt_span = kshot_telemetry::span_at("smm.decrypt", t1.as_ns());
        let decrypt_phase = kshot_telemetry::span_at("phase.decrypt", t1.as_ns());
        let staged_len =
            machine.read_u64(AccessCtx::Smm, reserved.rw_base + rw_offsets::STAGED_LEN)?;
        if staged_len == 0 || staged_len > reserved.w_size {
            return Err(SmmError::BadStagedLength(staged_len));
        }
        let mut ciphertext = vec![0u8; staged_len as usize];
        machine.read_bytes(AccessCtx::Smm, reserved.w_base, &mut ciphertext)?;
        let decrypt_cost = machine.cost().smm_decrypt.for_bytes(ciphertext.len());
        machine.charge(decrypt_cost);
        let frame = Frame::decode(&ciphertext).map_err(SmmError::Package)?;
        let mut channel = SecureChannel::new(key);
        let plaintext = channel.open(&frame).map_err(SmmError::Channel)?;
        let package = PatchPackage::decode(&plaintext).map_err(SmmError::Package)?;
        timings.decrypt = machine.now() - t1;
        decrypt_phase.end_at(machine.now().as_ns());
        decrypt_span.field("bytes", staged_len);
        decrypt_span.end_at(machine.now().as_ns());
        // 3. Verify everything before touching kernel state.
        let t2 = machine.now();
        let mut verify_span = kshot_telemetry::span_at("smm.verify", t2.as_ns());
        let verify_phase = kshot_telemetry::span_at("phase.verify", t2.as_ns());
        let mut verify_bytes = 0usize;
        // Placement validation walks a virtual cursor so records within
        // one package cannot overlap each other either — the enclave's
        // assignment is re-checked, not trusted.
        let mut virtual_next = self.read_u64(machine, OFF_NEXT_PADDR)?;
        // Undo-journal slots this package will need: one per trampoline
        // site, ceil(len / JENTRY_ORIG) per global write. Checked here,
        // before any byte of kernel state changes, so JournalFull can
        // never strike mid-apply.
        let mut journal_slots = 0u64;
        let mut new_records = 0u32;
        for rec in &package.records {
            verify_bytes += rec.payload.len();
            match rec.op {
                PackageOp::GlobalWrite => {
                    journal_slots += (rec.payload.len() as u64).div_ceil(JENTRY_ORIG as u64);
                    new_records += 1;
                }
                PackageOp::Patch => {
                    journal_slots += 1;
                    new_records += 1;
                }
                PackageOp::PlaceOnly => {}
            }
            if !rec.verify_payload(package.algorithm) {
                return Err(SmmError::PayloadHashMismatch {
                    sequence: rec.sequence,
                });
            }
            if rec.op == PackageOp::Patch {
                // Check the running kernel matches the build the patch
                // was prepared against.
                let mut cur = vec![0u8; rec.tsize as usize];
                machine.read_bytes(AccessCtx::Smm, rec.taddr, &mut cur)?;
                verify_bytes += cur.len();
                if VerificationAlgorithm::Sha256.digest(&cur) != rec.expected_pre_hash {
                    return Err(SmmError::TargetMismatch {
                        sequence: rec.sequence,
                        taddr: rec.taddr,
                    });
                }
                if (rec.tsize as usize) < rec.ftrace_skip as usize + kshot_isa::JMP_LEN {
                    return Err(SmmError::TargetTooSmall { taddr: rec.taddr });
                }
            }
            // Placement validation against the virtual cursor, so later
            // records in the same package cannot claim bytes an earlier
            // record already placed.
            if matches!(rec.op, PackageOp::Patch | PackageOp::PlaceOnly) {
                let end = rec.paddr.checked_add(rec.payload.len() as u64);
                let in_range = rec.paddr >= virtual_next
                    && end.is_some_and(|e| e <= reserved.x_base + reserved.x_size);
                if !in_range {
                    return Err(SmmError::BadPlacement {
                        sequence: rec.sequence,
                        paddr: rec.paddr,
                    });
                }
                virtual_next = end.expect("checked above");
            }
        }
        if journal_slots > JENTRY_CAP {
            return Err(SmmError::JournalFull {
                needed: journal_slots,
                capacity: JENTRY_CAP,
            });
        }
        // Segment-table validation: the table partitions `records` in
        // order (first segment starts at 0, starts strictly increase and
        // stay in range) and fits the SMRAM segment table. The enclave's
        // table is re-checked, not trusted.
        let segtab = package.segment_table();
        if segtab.len() as u64 > SEG_CAP {
            return Err(SmmError::BadSegmentTable {
                segment: SEG_CAP as u32,
            });
        }
        for (si, seg) in segtab.iter().enumerate() {
            let bad = if si == 0 {
                seg.first_record != 0
            } else {
                seg.first_record <= segtab[si - 1].first_record
                    || seg.first_record as usize >= package.records.len()
            };
            if bad {
                return Err(SmmError::BadSegmentTable { segment: si as u32 });
            }
        }
        let verify_cost = machine.cost().smm_verify.for_bytes(verify_bytes);
        let verify_cost = match package.algorithm {
            VerificationAlgorithm::Sha256 => verify_cost,
            VerificationAlgorithm::Sdbm => machine.cost().smm_verify_sdbm.for_bytes(verify_bytes),
        };
        machine.charge(verify_cost);
        timings.verify = machine.now() - t2;
        verify_phase.end_at(machine.now().as_ns());
        verify_span.field("bytes", verify_bytes);
        verify_span.end_at(machine.now().as_ns());
        // 4. Apply, under an open undo-journal window. Record-store
        // compaction (if due) happens first so the journaled window
        // itself only ever *appends* records — undone by resetting the
        // count to INIT_RECORDS.
        let t3 = machine.now();
        let mut apply_span = kshot_telemetry::span_at("smm.apply", t3.as_ns());
        let apply_phase = kshot_telemetry::span_at("phase.apply", t3.as_ns());
        self.ensure_record_capacity(machine, new_records)?;
        self.journal_begin(machine, JSTATE_APPLY, &package.id)?;
        let mut trampolines = 0usize;
        let mut global_writes = 0usize;
        let mut applied_bytes = 0usize;
        let mut segments = Vec::with_capacity(segtab.len());
        // Each segment is its own crash-consistency unit: marker +
        // SEG_COUNT land before any of the segment's journal entries or
        // kernel writes, SEG_COMMITTED advances only after its last
        // protected write — so recovery preserves the committed prefix
        // and unwinds at most the one torn segment.
        for (si, seg) in segtab.iter().enumerate() {
            let rec_start = seg.first_record as usize;
            let rec_end = segtab
                .get(si + 1)
                .map_or(package.records.len(), |s| s.first_record as usize);
            let first_entry = self.read_u64(machine, JOFF_ENTRY_COUNT)?;
            let marker = SegMarker {
                first_entry,
                init_records: self.record_count(machine)? as u64,
                init_paddr: self.read_u64(machine, OFF_NEXT_PADDR)?,
                id: seg.id.clone(),
            };
            self.write_segment_marker(machine, si as u64, &marker)?;
            self.write_u64(machine, JOFF_SEG_COUNT, si as u64 + 1)?;
            let mut seg_trampolines = 0usize;
            let mut seg_global_writes = 0usize;
            for rec in &package.records[rec_start..rec_end] {
                match rec.op {
                    PackageOp::GlobalWrite => {
                        // Capture the original bytes for rollback (up to
                        // MAX_ORIG; longer writes are not revertible).
                        let mut orig = [0u8; MAX_ORIG];
                        let orig_len = if rec.payload.len() <= MAX_ORIG {
                            machine.read_bytes(
                                AccessCtx::Smm,
                                rec.taddr,
                                &mut orig[..rec.payload.len()],
                            )?;
                            rec.payload.len() as u8
                        } else {
                            NOT_REVERTIBLE
                        };
                        // The undo journal captures the *full* original
                        // (chunked), so even writes too long for the record
                        // store are unwound if this apply is interrupted.
                        self.journal_log_orig(machine, rec.taddr, rec.payload.len())?;
                        machine.write_bytes(AccessCtx::Smm, rec.taddr, &rec.payload)?;
                        self.append_record(
                            machine,
                            &SmramRecord {
                                active: true,
                                kind: RecordKind::DataWrite,
                                taddr: rec.taddr,
                                skip: 0,
                                orig_len,
                                orig,
                                paddr: 0,
                                size: rec.payload.len() as u32,
                                memx_hash: [0; 32],
                                id: seg.id.clone(),
                            },
                        )?;
                        seg_global_writes += 1;
                        applied_bytes += rec.payload.len();
                    }
                    PackageOp::PlaceOnly | PackageOp::Patch => {
                        machine.write_bytes(AccessCtx::Smm, rec.paddr, &rec.payload)?;
                        applied_bytes += rec.payload.len();
                        let end = rec.paddr + rec.payload.len() as u64;
                        let next = self.read_u64(machine, OFF_NEXT_PADDR)?;
                        if end > next {
                            self.write_u64(machine, OFF_NEXT_PADDR, end)?;
                        }
                        if rec.op == PackageOp::Patch {
                            let site = rec.taddr + rec.skip_u64();
                            let mut orig = [0u8; 5];
                            machine.read_bytes(AccessCtx::Smm, site, &mut orig)?;
                            let mut jmp = [0u8; 5];
                            kshot_isa::write_jmp_rel32(&mut jmp, site, rec.paddr).map_err(
                                |_| SmmError::BadPlacement {
                                    sequence: rec.sequence,
                                    paddr: rec.paddr,
                                },
                            )?;
                            self.journal_log_orig(machine, site, jmp.len())?;
                            machine.write_bytes(AccessCtx::Smm, site, &jmp)?;
                            applied_bytes += jmp.len();
                            seg_trampolines += 1;
                            kshot_telemetry::event_with(
                                "smm.trampoline",
                                Some(machine.now().as_ns()),
                                |f| {
                                    f.push(("site", site.into()));
                                    f.push(("target", rec.paddr.into()));
                                },
                            );
                            // Record for rollback + introspection. The
                            // record carries the *segment's* id so
                            // rollback pops one CVE, not the envelope.
                            let mut orig16 = [0u8; MAX_ORIG];
                            orig16[..5].copy_from_slice(&orig);
                            self.append_record(
                                machine,
                                &SmramRecord {
                                    active: true,
                                    kind: RecordKind::Trampoline,
                                    taddr: rec.taddr,
                                    skip: rec.ftrace_skip,
                                    orig_len: 5,
                                    orig: orig16,
                                    paddr: rec.paddr,
                                    size: rec.payload.len() as u32,
                                    memx_hash: kshot_crypto::sha256(&rec.payload),
                                    id: seg.id.clone(),
                                },
                            )?;
                        }
                    }
                }
            }
            self.write_u64(machine, JOFF_SEG_COMMITTED, si as u64 + 1)?;
            let entries_now = self.read_u64(machine, JOFF_ENTRY_COUNT)?;
            segments.push(SegmentOutcome {
                id: seg.id.clone(),
                trampolines: seg_trampolines,
                global_writes: seg_global_writes,
                journal_slots: entries_now - first_entry,
            });
            trampolines += seg_trampolines;
            global_writes += seg_global_writes;
        }
        let apply_cost = machine.cost().smm_apply.for_bytes(applied_bytes);
        machine.charge(apply_cost);
        timings.apply = machine.now() - t3;
        apply_phase.end_at(machine.now().as_ns());
        apply_span.field("bytes", applied_bytes);
        apply_span.end_at(machine.now().as_ns());
        // 5. Commit: every protected write has landed, so close the
        // journal window. A fault from here on leaves a *fully applied*
        // patch (the all-or-nothing invariant holds); only key rotation
        // and cursor publication may need to be repeated.
        self.journal_commit(machine)?;
        // 6. Rotate the key for the next patch and publish the cursor.
        self.rotate_key(machine, reserved, fresh_entropy)?;
        self.publish_cursor(machine, reserved)?;
        // Clear the staged length so a re-trigger cannot re-apply.
        machine.write_u64(AccessCtx::Smm, reserved.rw_base + rw_offsets::STAGED_LEN, 0)?;
        hp_span.field("trampolines", trampolines);
        hp_span.field("global_writes", global_writes);
        hp_span.end_at(machine.now().as_ns());
        Ok(SmmPatchOutcome {
            timings,
            payload_size: package.payload_size(),
            trampolines,
            global_writes,
            segments,
        })
    }

    /// Roll back the most recent patch (all trampolines installed under
    /// its package id), restoring the original entry bytes (paper §V-C,
    /// "Patch Rollback/Update").
    ///
    /// Each record is deactivated only *after* its restore write
    /// succeeds, so the set of active records is always exactly the set
    /// of sites still carrying patched bytes. `NOT_REVERTIBLE` data
    /// writes cannot be restored; they are deactivated and surfaced in
    /// [`RollbackOutcome::skipped`] — the kernel still carries those
    /// edits and the operator must re-patch.
    ///
    /// # Errors
    ///
    /// [`RollbackFailure`] carrying the underlying [`SmmError`]
    /// ([`SmmError::RollbackEmpty`] when nothing is active) plus the
    /// sites already restored before the failure. A mid-loop failure
    /// leaves the journal open; [`SmmHandler::recover`] rolls the
    /// remainder forward.
    pub fn handle_rollback(
        &self,
        machine: &mut Machine,
    ) -> Result<RollbackOutcome, RollbackFailure> {
        fn fail(error: SmmError) -> RollbackFailure {
            RollbackFailure {
                error,
                restored: Vec::new(),
            }
        }
        if machine.mode() != CpuMode::Smm {
            return Err(fail(SmmError::NotInSmm));
        }
        match self.journal_state(machine).map_err(fail)? {
            JournalState::Idle => {}
            _ => return Err(fail(SmmError::RecoveryPending)),
        }
        let count = self.record_count(machine).map_err(fail)?;
        // Find the last active record; its package id is the rollback
        // target.
        let mut target = None;
        for i in (0..count).rev() {
            let r = self.read_record(machine, i).map_err(fail)?;
            if r.active {
                target = Some(r.id);
                break;
            }
        }
        let Some(id) = target else {
            return Err(fail(SmmError::RollbackEmpty));
        };
        // Journal the intent (package id) before the first restore; the
        // per-site originals already live in the record table, so the
        // journal needs no undo entries — recovery rolls *forward*.
        self.journal_begin(machine, JSTATE_ROLLBACK, &id)
            .map_err(fail)?;
        let mut restored = Vec::new();
        let mut skipped = Vec::new();
        if let Err(error) = self.restore_run(machine, &id, &mut restored, &mut skipped) {
            return Err(RollbackFailure { error, restored });
        }
        if let Err(error) = self.journal_commit(machine) {
            return Err(RollbackFailure { error, restored });
        }
        Ok(RollbackOutcome { restored, skipped })
    }

    /// Restore and deactivate the topmost contiguous run of active
    /// records carrying package `id`, newest first. Shared by
    /// [`SmmHandler::handle_rollback`] and the roll-forward path of
    /// [`SmmHandler::recover`]; because deactivation follows each
    /// restore, re-running after an interruption resumes exactly where
    /// the previous attempt stopped (re-restoring an already-restored
    /// site is idempotent).
    fn restore_run(
        &self,
        machine: &mut Machine,
        id: &str,
        restored: &mut Vec<u64>,
        skipped: &mut Vec<u64>,
    ) -> Result<(), SmmError> {
        let count = self.record_count(machine)?;
        let mut last_active = None;
        for i in (0..count).rev() {
            let r = self.read_record(machine, i)?;
            if r.active {
                last_active = Some((i, r.id));
                break;
            }
        }
        // Nothing active, or a different package on top: the run for
        // `id` is already fully restored.
        let Some((last, lid)) = last_active else {
            return Ok(());
        };
        if lid != id {
            return Ok(());
        }
        for i in (0..=last).rev() {
            let mut r = self.read_record(machine, i)?;
            if !r.active || r.id != id {
                break;
            }
            match r.kind {
                RecordKind::Trampoline => {
                    let site = r.taddr + r.skip as u64;
                    machine.write_bytes(AccessCtx::Smm, site, &r.orig[..5])?;
                    restored.push(r.taddr);
                }
                RecordKind::DataWrite => {
                    if r.orig_len != NOT_REVERTIBLE {
                        machine.write_bytes(
                            AccessCtx::Smm,
                            r.taddr,
                            &r.orig[..r.orig_len as usize],
                        )?;
                        restored.push(r.taddr);
                    } else {
                        // Non-revertible data writes are deactivated but
                        // not restored; surfaced so the operator knows
                        // the kernel still carries them.
                        skipped.push(r.taddr);
                    }
                }
            }
            // Deactivate only after the restore landed: active records
            // remain an exact inventory of still-patched sites.
            r.active = false;
            self.write_record(machine, i, &r)?;
        }
        Ok(())
    }

    /// Recover from an operation interrupted mid-SMM-window (power loss,
    /// injected fault): called from the next SMI before any new patch or
    /// rollback is accepted.
    ///
    /// * An interrupted **apply** is unwound — the journaled original
    ///   bytes are replayed newest-first, the record count and `mem_X`
    ///   cursor are reset to their pre-patch values, and the staged
    ///   ciphertext is discarded.
    /// * An interrupted **rollback** is rolled forward — every
    ///   still-active record of the journaled package id is restored and
    ///   deactivated.
    ///
    /// Recovery is idempotent: if it is itself interrupted the journal
    /// stays open and a later call resumes (replayed undo writes and
    /// re-restored sites write the same bytes again).
    ///
    /// In every case — including a clean (already-committed) journal —
    /// recovery re-derives the published `mem_RW` view from SMRAM: the
    /// DH public value, the key epoch, and the `mem_X` cursor. A fault
    /// *after* the commit point (during key rotation or cursor
    /// publication) leaves the kernel fully patched but the published
    /// key material stale, which would wedge the next session; the
    /// republish heals it.
    ///
    /// # Errors
    ///
    /// [`SmmError::NotInSmm`] outside SMM; machine faults otherwise (the
    /// journal window stays open so recovery can be retried).
    pub fn recover(
        &self,
        machine: &mut Machine,
        reserved: &ReservedLayout,
    ) -> Result<Recovery, SmmError> {
        if machine.mode() != CpuMode::Smm {
            return Err(SmmError::NotInSmm);
        }
        let outcome: Recovery = match self.journal_state(machine)? {
            JournalState::Idle => Recovery::Clean,
            JournalState::ApplyInProgress => {
                let n = self.read_u64(machine, JOFF_ENTRY_COUNT)?;
                let seg_count = self.read_u64(machine, JOFF_SEG_COUNT)?;
                let committed = self.read_u64(machine, JOFF_SEG_COMMITTED)?;
                // Three cases: a pre-segmentation window (no marker
                // landed — unwind everything from the journal header's
                // snapshot), a fully-committed window (every started
                // segment's writes landed before the fault — preserve
                // them all, unwind nothing), or a torn segment (unwind
                // only the journal suffix from the interrupted
                // segment's marker).
                let (id, first_entry, init_records, init_paddr, preserved) = if seg_count == 0 {
                    (
                        self.journal_read_id(machine)?,
                        0u64,
                        self.read_u64(machine, JOFF_INIT_RECORDS)?,
                        self.read_u64(machine, JOFF_INIT_PADDR)?,
                        0usize,
                    )
                } else if committed >= seg_count {
                    let records = self.record_count(machine)? as u64;
                    let paddr = self.read_u64(machine, OFF_NEXT_PADDR)?;
                    (
                        self.journal_read_id(machine)?,
                        n,
                        records,
                        paddr,
                        committed as usize,
                    )
                } else {
                    let m = self.read_segment_marker(machine, committed)?;
                    (
                        m.id,
                        m.first_entry,
                        m.init_records,
                        m.init_paddr,
                        committed as usize,
                    )
                };
                for i in (first_entry..n).rev() {
                    let (addr, len, orig) = self.journal_entry(machine, i)?;
                    machine.write_bytes(AccessCtx::Smm, addr, &orig[..len])?;
                }
                self.set_record_count(machine, init_records as u32)?;
                self.write_u64(machine, OFF_NEXT_PADDR, init_paddr)?;
                self.publish_cursor(machine, reserved)?;
                // Discard the staged ciphertext: the interrupted package
                // must be re-staged (and re-examined) to be retried.
                machine.write_u64(AccessCtx::Smm, reserved.rw_base + rw_offsets::STAGED_LEN, 0)?;
                self.journal_commit(machine)?;
                kshot_telemetry::counter("smm.recover_unwound_apply", 1);
                Recovery::UnwoundApply {
                    id,
                    writes_undone: (n - first_entry) as usize,
                    segments_preserved: preserved,
                }
            }
            JournalState::RollbackInProgress => {
                let id = self.journal_read_id(machine)?;
                let mut restored = Vec::new();
                let mut skipped = Vec::new();
                self.restore_run(machine, &id, &mut restored, &mut skipped)?;
                self.journal_commit(machine)?;
                kshot_telemetry::counter("smm.recover_completed_rollback", 1);
                Recovery::CompletedRollback {
                    id,
                    restored,
                    skipped,
                }
            }
        };
        // Heal the published view unconditionally (idempotent): a fault
        // after the journal commit can leave mem_RW stale even though
        // the journal reads Idle.
        self.publish_public(machine, reserved)?;
        self.publish_cursor(machine, reserved)?;
        Ok(outcome)
    }
}

impl crate::package::PackageRecord {
    fn skip_u64(&self) -> u64 {
        self.ftrace_skip as u64
    }
}

/// Read a length-prefixed DH public value from `mem_RW`.
pub(crate) fn read_public(
    machine: &mut Machine,
    base: u64,
) -> Result<kshot_crypto::BigUint, SmmError> {
    let len = machine.read_u64(AccessCtx::Smm, base)?;
    if len > rw_offsets::MAX_PUB {
        return Err(SmmError::BadStagedLength(len));
    }
    let mut bytes = vec![0u8; len as usize];
    machine.read_bytes(AccessCtx::Smm, base + 8, &mut bytes)?;
    Ok(kshot_crypto::BigUint::from_bytes_be(&bytes))
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_machine::MemLayout;

    fn setup() -> (Machine, ReservedLayout, SmmHandler) {
        let mut m = Machine::new(MemLayout::standard()).unwrap();
        let r = ReservedLayout::from_machine(&m);
        r.install(&mut m).unwrap();
        m.raise_smi().unwrap();
        let h = SmmHandler::install(&mut m, &r, &[7u8; 32], DhGroup::Default).unwrap();
        m.rsm().unwrap();
        (m, r, h)
    }

    #[test]
    fn install_publishes_public_and_cursor() {
        let (mut m, r, _) = setup();
        // The kernel (and thus the helper) can read mem_RW.
        let len = m
            .read_u64(AccessCtx::Kernel, r.rw_base + rw_offsets::SMM_PUB)
            .unwrap();
        assert!(len > 0 && len < 200);
        let cursor = m
            .read_u64(AccessCtx::Kernel, r.rw_base + rw_offsets::NEXT_PADDR)
            .unwrap();
        assert_eq!(cursor, r.x_base);
        let epoch = m
            .read_u64(AccessCtx::Kernel, r.rw_base + rw_offsets::EPOCH)
            .unwrap();
        assert_eq!(epoch, 0);
    }

    #[test]
    fn install_requires_smm() {
        let mut m = Machine::new(MemLayout::standard()).unwrap();
        let r = ReservedLayout::from_machine(&m);
        r.install(&mut m).unwrap();
        assert!(matches!(
            SmmHandler::install(&mut m, &r, &[0u8; 32], DhGroup::Default),
            Err(SmmError::NotInSmm)
        ));
    }

    #[test]
    fn attach_checks_magic() {
        let (mut m, _, _) = setup();
        m.raise_smi().unwrap();
        SmmHandler::attach(&mut m, DhGroup::Default).unwrap();
        m.rsm().unwrap();
        // A fresh machine has no magic.
        let mut m2 = Machine::new(MemLayout::standard()).unwrap();
        m2.raise_smi().unwrap();
        assert!(matches!(
            SmmHandler::attach(&mut m2, DhGroup::Default),
            Err(SmmError::NotInstalled)
        ));
    }

    #[test]
    fn record_roundtrip_in_smram() {
        let (mut m, _, h) = setup();
        m.raise_smi().unwrap();
        let mut orig = [0u8; MAX_ORIG];
        orig[..5].copy_from_slice(&[1, 2, 3, 4, 5]);
        let rec = SmramRecord {
            active: true,
            kind: RecordKind::Trampoline,
            taddr: 0x10_0040,
            skip: 5,
            orig_len: 5,
            orig,
            paddr: 0x0200_0000,
            size: 99,
            memx_hash: [0xAB; 32],
            id: "CVE-2016-5195".into(),
        };
        h.write_record(&mut m, 0, &rec).unwrap();
        assert_eq!(h.read_record(&mut m, 0).unwrap(), rec);
        m.rsm().unwrap();
    }

    #[test]
    fn record_long_id_truncates() {
        let (mut m, _, h) = setup();
        m.raise_smi().unwrap();
        let rec = SmramRecord {
            active: false,
            kind: RecordKind::DataWrite,
            taddr: 0,
            skip: 0,
            orig_len: 0,
            orig: [0; MAX_ORIG],
            paddr: 0,
            size: 0,
            memx_hash: [0; 32],
            id: "X".repeat(100),
        };
        h.write_record(&mut m, 1, &rec).unwrap();
        let back = h.read_record(&mut m, 1).unwrap();
        assert_eq!(back.id.len(), 55);
        m.rsm().unwrap();
    }

    #[test]
    fn record_store_compacts_when_full() {
        // Fill the store beyond capacity with mostly-inactive records
        // (the patch/rollback churn of a long-lived host): compaction
        // must reclaim the inactive slots and preserve active ones in
        // order.
        let (mut m, _, h) = setup();
        m.raise_smi().unwrap();
        let mk = |i: u32, active: bool| SmramRecord {
            active,
            kind: RecordKind::Trampoline,
            taddr: 0x10_0000 + i as u64,
            skip: 5,
            orig_len: 5,
            orig: [0; MAX_ORIG],
            paddr: 0x200_0000 + i as u64,
            size: 1,
            memx_hash: [0; 32],
            id: format!("CVE-{i}"),
        };
        // Fill to capacity; every third record stays active.
        for i in 0..RECORD_CAP {
            h.append_record(&mut m, &mk(i, i % 3 == 0)).unwrap();
        }
        assert_eq!(h.record_count(&mut m).unwrap(), RECORD_CAP);
        // The next append triggers compaction.
        h.append_record(&mut m, &mk(9999, true)).unwrap();
        let count = h.record_count(&mut m).unwrap();
        let expected_active = RECORD_CAP.div_ceil(3) + 1;
        assert_eq!(count, expected_active);
        // Order preserved: taddrs strictly increase.
        let mut prev = 0;
        for i in 0..count {
            let r = h.read_record(&mut m, i).unwrap();
            assert!(r.active);
            assert!(r.taddr > prev || i == 0);
            prev = r.taddr;
        }
        let last = h.read_record(&mut m, count - 1).unwrap();
        assert_eq!(last.taddr, 0x10_0000 + 9999);
        m.rsm().unwrap();
    }

    #[test]
    fn record_store_full_of_active_records_errors() {
        let (mut m, _, h) = setup();
        m.raise_smi().unwrap();
        let mk = |i: u32| SmramRecord {
            active: true,
            kind: RecordKind::Trampoline,
            taddr: i as u64,
            skip: 0,
            orig_len: 5,
            orig: [0; MAX_ORIG],
            paddr: 0,
            size: 1,
            memx_hash: [0; 32],
            id: "CVE".into(),
        };
        for i in 0..RECORD_CAP {
            h.append_record(&mut m, &mk(i)).unwrap();
        }
        assert!(matches!(
            h.append_record(&mut m, &mk(RECORD_CAP)),
            Err(SmmError::StoreFull)
        ));
        m.rsm().unwrap();
    }

    #[test]
    fn rollback_on_empty_store_fails() {
        let (mut m, _, h) = setup();
        m.raise_smi().unwrap();
        assert!(matches!(
            h.handle_rollback(&mut m),
            Err(RollbackFailure {
                error: SmmError::RollbackEmpty,
                ..
            })
        ));
        m.rsm().unwrap();
    }

    #[test]
    fn journal_begin_then_recover_on_clean_state_is_a_noop() {
        let (mut m, r, h) = setup();
        m.raise_smi().unwrap();
        assert_eq!(h.journal_state(&mut m).unwrap(), JournalState::Idle);
        assert_eq!(h.recover(&mut m, &r).unwrap(), Recovery::Clean);
        m.rsm().unwrap();
    }

    #[test]
    fn open_apply_journal_blocks_new_operations() {
        let (mut m, r, h) = setup();
        m.raise_smi().unwrap();
        h.journal_begin(&mut m, JSTATE_APPLY, "stuck").unwrap();
        assert!(matches!(
            h.handle_patch(&mut m, &r, &[7u8; 32]),
            Err(SmmError::RecoveryPending)
        ));
        assert!(matches!(
            h.handle_rollback(&mut m),
            Err(RollbackFailure {
                error: SmmError::RecoveryPending,
                ..
            })
        ));
        // Recovery (here: unwinding zero journaled writes) clears it.
        assert_eq!(
            h.recover(&mut m, &r).unwrap(),
            Recovery::UnwoundApply {
                id: "stuck".into(),
                writes_undone: 0,
                segments_preserved: 0
            }
        );
        assert_eq!(h.journal_state(&mut m).unwrap(), JournalState::Idle);
        m.rsm().unwrap();
    }

    #[test]
    fn journal_log_orig_chunks_and_unwinds_long_writes() {
        let (mut m, r, h) = setup();
        let data = m.layout().kernel_data_base;
        let original: Vec<u8> = (0..150u8).collect();
        m.write_bytes(AccessCtx::Kernel, data, &original).unwrap();
        m.raise_smi().unwrap();
        h.journal_begin(&mut m, JSTATE_APPLY, "long").unwrap();
        // 150 bytes chain ceil(150/64) = 3 entries.
        h.journal_log_orig(&mut m, data, 150).unwrap();
        assert_eq!(h.read_u64(&mut m, JOFF_ENTRY_COUNT).unwrap(), 3);
        machine_scribble(&mut m, data, 150);
        let rec = h.recover(&mut m, &r).unwrap();
        assert_eq!(
            rec,
            Recovery::UnwoundApply {
                id: "long".into(),
                writes_undone: 3,
                segments_preserved: 0
            }
        );
        let mut back = vec![0u8; 150];
        m.read_bytes(AccessCtx::Smm, data, &mut back).unwrap();
        assert_eq!(back, original);
        m.rsm().unwrap();
    }

    fn machine_scribble(m: &mut Machine, addr: u64, len: usize) {
        m.write_bytes(AccessCtx::Smm, addr, &vec![0xEE; len])
            .unwrap();
    }

    #[test]
    fn corrupted_journal_slot_length_fails_loudly() {
        // A journal slot whose length field is implausible (0 or > 64)
        // must abort recovery with JournalCorrupt, not silently restore
        // a clamped prefix.
        let (mut m, r, h) = setup();
        let data = m.layout().kernel_data_base;
        m.raise_smi().unwrap();
        h.journal_begin(&mut m, JSTATE_APPLY, "corrupt").unwrap();
        h.journal_log_orig(&mut m, data, 8).unwrap();
        let len_field = m.smram_scratch_base() + JOFF_ENTRIES + 8;
        m.write_bytes(AccessCtx::Smm, len_field, &65u32.to_le_bytes())
            .unwrap();
        assert_eq!(
            h.recover(&mut m, &r).unwrap_err(),
            SmmError::JournalCorrupt { slot: 0, len: 65 }
        );
        m.write_bytes(AccessCtx::Smm, len_field, &0u32.to_le_bytes())
            .unwrap();
        assert_eq!(
            h.recover(&mut m, &r).unwrap_err(),
            SmmError::JournalCorrupt { slot: 0, len: 0 }
        );
        m.rsm().unwrap();
    }

    #[test]
    fn segment_marker_roundtrips_in_smram() {
        let (mut m, _, h) = setup();
        m.raise_smi().unwrap();
        let marker = SegMarker {
            first_entry: 17,
            init_records: 3,
            init_paddr: 0x0200_0040,
            id: "CVE-2016-5195".into(),
        };
        h.write_segment_marker(&mut m, 5, &marker).unwrap();
        assert_eq!(h.read_segment_marker(&mut m, 5).unwrap(), marker);
        m.rsm().unwrap();
    }

    #[test]
    fn segmented_recovery_preserves_committed_segments() {
        // Build an interrupted two-segment window by hand: segment 0
        // fully committed, segment 1 torn after one journaled write.
        // Recovery must unwind only segment 1's write and report the
        // interrupted segment's own id.
        let (mut m, r, h) = setup();
        let data = m.layout().kernel_data_base;
        let original: Vec<u8> = (0..16u8).collect();
        m.write_bytes(AccessCtx::Kernel, data, &original).unwrap();
        m.raise_smi().unwrap();
        h.journal_begin(&mut m, JSTATE_APPLY, "BATCH(CVE-A+CVE-B)")
            .unwrap();
        // Segment 0: one journaled+applied 8-byte write, committed.
        let marker0 = SegMarker {
            first_entry: 0,
            init_records: 0,
            init_paddr: r.x_base,
            id: "CVE-A".into(),
        };
        h.write_segment_marker(&mut m, 0, &marker0).unwrap();
        h.write_u64(&mut m, JOFF_SEG_COUNT, 1).unwrap();
        h.journal_log_orig(&mut m, data, 8).unwrap();
        machine_scribble(&mut m, data, 8);
        h.write_u64(&mut m, JOFF_SEG_COMMITTED, 1).unwrap();
        // Segment 1: one journaled+applied write, then "power loss".
        let marker1 = SegMarker {
            first_entry: 1,
            init_records: 0,
            init_paddr: r.x_base,
            id: "CVE-B".into(),
        };
        h.write_segment_marker(&mut m, 1, &marker1).unwrap();
        h.write_u64(&mut m, JOFF_SEG_COUNT, 2).unwrap();
        h.journal_log_orig(&mut m, data + 8, 8).unwrap();
        machine_scribble(&mut m, data + 8, 8);
        let rec = h.recover(&mut m, &r).unwrap();
        assert_eq!(
            rec,
            Recovery::UnwoundApply {
                id: "CVE-B".into(),
                writes_undone: 1,
                segments_preserved: 1
            }
        );
        // Segment 0's scribble survives; segment 1's bytes restored.
        let mut back = vec![0u8; 16];
        m.read_bytes(AccessCtx::Smm, data, &mut back).unwrap();
        assert_eq!(&back[..8], &[0xEE; 8]);
        assert_eq!(&back[8..], &original[8..]);
        m.rsm().unwrap();
    }

    #[test]
    fn fully_committed_window_recovers_without_unwinding() {
        // All started segments committed before the fault (the window
        // just never reached journal_commit): recovery preserves every
        // write and reports zero undone.
        let (mut m, r, h) = setup();
        let data = m.layout().kernel_data_base;
        m.raise_smi().unwrap();
        h.journal_begin(&mut m, JSTATE_APPLY, "BATCH(CVE-A)")
            .unwrap();
        let marker = SegMarker {
            first_entry: 0,
            init_records: 0,
            init_paddr: r.x_base,
            id: "CVE-A".into(),
        };
        h.write_segment_marker(&mut m, 0, &marker).unwrap();
        h.write_u64(&mut m, JOFF_SEG_COUNT, 1).unwrap();
        h.journal_log_orig(&mut m, data, 8).unwrap();
        machine_scribble(&mut m, data, 8);
        h.write_u64(&mut m, JOFF_SEG_COMMITTED, 1).unwrap();
        let rec = h.recover(&mut m, &r).unwrap();
        assert_eq!(
            rec,
            Recovery::UnwoundApply {
                id: "BATCH(CVE-A)".into(),
                writes_undone: 0,
                segments_preserved: 1
            }
        );
        let mut back = vec![0u8; 8];
        m.read_bytes(AccessCtx::Smm, data, &mut back).unwrap();
        assert_eq!(back, [0xEE; 8]);
        m.rsm().unwrap();
    }

    #[test]
    fn handle_patch_requires_smm_mode() {
        let (mut m, r, h) = setup();
        assert!(matches!(
            h.handle_patch(&mut m, &r, &[1u8; 32]),
            Err(SmmError::NotInSmm)
        ));
    }

    #[test]
    fn staged_garbage_is_rejected() {
        let (mut m, r, h) = setup();
        // Kernel stages nonsense (it can write mem_W and mem_RW).
        m.write_bytes(AccessCtx::Kernel, r.w_base, &[0xFF; 64])
            .unwrap();
        m.write_u64(AccessCtx::Kernel, r.rw_base + rw_offsets::STAGED_LEN, 64)
            .unwrap();
        // Also stage a "helper public" so keygen succeeds.
        let params = DhParams::default_group();
        let kp = DhKeyPair::from_entropy(&params, &[9u8; 32]).unwrap();
        let pb = kp.public().to_bytes_be();
        m.write_u64(
            AccessCtx::Kernel,
            r.rw_base + rw_offsets::HELPER_PUB,
            pb.len() as u64,
        )
        .unwrap();
        m.write_bytes(
            AccessCtx::Kernel,
            r.rw_base + rw_offsets::HELPER_PUB + 8,
            &pb,
        )
        .unwrap();
        m.raise_smi().unwrap();
        let err = h.handle_patch(&mut m, &r, &[2u8; 32]).unwrap_err();
        assert!(
            matches!(err, SmmError::Package(_) | SmmError::Channel(_)),
            "{err:?}"
        );
        m.rsm().unwrap();
    }

    #[test]
    fn zero_staged_length_rejected() {
        let (mut m, r, h) = setup();
        m.raise_smi().unwrap();
        // Provide a valid helper public but no staged data.
        let params = DhParams::default_group();
        let kp = DhKeyPair::from_entropy(&params, &[9u8; 32]).unwrap();
        let pb = kp.public().to_bytes_be();
        m.write_u64(
            AccessCtx::Smm,
            r.rw_base + rw_offsets::HELPER_PUB,
            pb.len() as u64,
        )
        .unwrap();
        m.write_bytes(AccessCtx::Smm, r.rw_base + rw_offsets::HELPER_PUB + 8, &pb)
            .unwrap();
        assert!(matches!(
            h.handle_patch(&mut m, &r, &[2u8; 32]),
            Err(SmmError::BadStagedLength(0))
        ));
        m.rsm().unwrap();
    }
}
