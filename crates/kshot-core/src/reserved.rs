//! The boot-reserved KShot memory region.
//!
//! Paper §V-B: "We first configure the boot loader (e.g., grub) to
//! reserve a suitable kernel memory allocation space (18MB for our
//! prototype implementation). We also add page attribute operation code
//! to the paging_init function to provide the appropriate access
//! limitations… The reserved memory includes three logical parts:
//! mem_RW, mem_W, and mem_X."
//!
//! * `mem_RW` — small read/write window for Diffie–Hellman key exchange
//!   and control flags.
//! * `mem_W` — write-only window where the untrusted helper deposits the
//!   encrypted patch package (the kernel can write it but never read it
//!   back, so a compromised kernel cannot even observe ciphertext
//!   layout).
//! * `mem_X` — execute-only window holding decrypted patched function
//!   bodies as kernel text ("Read and write access to those instructions
//!   is prohibited … to maintain integrity").
//!
//! Only the SMM handler, with its hardware privilege, can read and write
//! everywhere (enforced by `kshot-machine`).

use kshot_machine::{Machine, MachineError, PageAttrs, PAGE_SIZE};

/// Sub-layout of the reserved region.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReservedLayout {
    /// Base of `mem_RW`.
    pub rw_base: u64,
    /// Size of `mem_RW`.
    pub rw_size: u64,
    /// Base of `mem_W`.
    pub w_base: u64,
    /// Size of `mem_W`.
    pub w_size: u64,
    /// Base of `mem_X`.
    pub x_base: u64,
    /// Size of `mem_X`.
    pub x_size: u64,
}

/// `mem_RW` control offsets (fixed word slots within the window).
pub mod rw_offsets {
    /// SMM's current DH public value: length u32 at +0, bytes at +8.
    pub const SMM_PUB: u64 = 0;
    /// Helper's DH public value: length u32 at +0x400, bytes at +0x408.
    pub const HELPER_PUB: u64 = 0x400;
    /// Monotonic patch epoch (u64) maintained by the SMM handler; bound
    /// into key derivation so every patch uses a fresh key.
    pub const EPOCH: u64 = 0x800;
    /// Progress marker the enclave sets after staging a patch; the
    /// remote server's DOS detection checks it via SMM introspection.
    pub const PROGRESS: u64 = 0x808;
    /// Length (u32) of the staged ciphertext in `mem_W`.
    pub const STAGED_LEN: u64 = 0x810;
    /// Next free placement address in `mem_X`, published by the SMM
    /// handler so the enclave can assign `paddr`s (validated again in
    /// SMM — a lying helper is caught).
    pub const NEXT_PADDR: u64 = 0x818;
    /// Maximum serialized DH public size.
    pub const MAX_PUB: u64 = 0x3F0;
}

impl ReservedLayout {
    /// Carve the machine's boot-reserved region into the three windows:
    /// 64 KiB `mem_RW`, then 1/3 of the remainder as `mem_W`, the rest
    /// as `mem_X`.
    pub fn from_machine(machine: &Machine) -> ReservedLayout {
        let base = machine.layout().reserved_base;
        let size = machine.layout().reserved_size;
        let rw_size = 16 * PAGE_SIZE; // 64 KiB
        let rest = size - rw_size;
        let w_size = (rest / 3 / PAGE_SIZE) * PAGE_SIZE;
        let x_size = rest - w_size;
        ReservedLayout {
            rw_base: base,
            rw_size,
            w_base: base + rw_size,
            w_size,
            x_base: base + rw_size + w_size,
            x_size,
        }
    }

    /// Apply the page attributes (the `paging_init` hook from the paper).
    ///
    /// # Errors
    ///
    /// Propagates machine faults for out-of-range windows.
    pub fn install(&self, machine: &mut Machine) -> Result<(), MachineError> {
        machine.set_page_attrs(self.rw_base, self.rw_size, PageAttrs::RW)?;
        machine.set_page_attrs(self.w_base, self.w_size, PageAttrs::W)?;
        machine.set_page_attrs(self.x_base, self.x_size, PageAttrs::X)?;
        Ok(())
    }

    /// Total reserved bytes (should be the paper's 18 MB on the standard
    /// layout).
    pub fn total(&self) -> u64 {
        self.rw_size + self.w_size + self.x_size
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use kshot_machine::{AccessCtx, MemLayout};

    fn installed() -> (Machine, ReservedLayout) {
        let mut m = Machine::new(MemLayout::standard()).unwrap();
        let r = ReservedLayout::from_machine(&m);
        r.install(&mut m).unwrap();
        (m, r)
    }

    #[test]
    fn layout_covers_whole_region() {
        let (m, r) = installed();
        assert_eq!(r.total(), m.layout().reserved_size);
        assert_eq!(r.total(), 18 * 1024 * 1024, "the paper's 18MB");
        assert_eq!(r.rw_base, m.layout().reserved_base);
        assert_eq!(r.w_base, r.rw_base + r.rw_size);
        assert_eq!(r.x_base + r.x_size, r.rw_base + r.total());
        assert_eq!(r.rw_base % PAGE_SIZE, 0);
        assert_eq!(r.w_base % PAGE_SIZE, 0);
        assert_eq!(r.x_base % PAGE_SIZE, 0);
    }

    #[test]
    fn mem_rw_is_read_write() {
        let (mut m, r) = installed();
        m.write_bytes(AccessCtx::Kernel, r.rw_base, &[1, 2])
            .unwrap();
        let mut out = [0u8; 2];
        m.read_bytes(AccessCtx::Kernel, r.rw_base, &mut out)
            .unwrap();
        assert_eq!(out, [1, 2]);
        assert!(m.fetch(AccessCtx::Kernel, r.rw_base).is_err());
    }

    #[test]
    fn mem_w_is_write_only() {
        let (mut m, r) = installed();
        m.write_bytes(AccessCtx::Kernel, r.w_base, &[9]).unwrap();
        let mut out = [0u8; 1];
        // The kernel cannot read back what it wrote.
        assert!(m.read_bytes(AccessCtx::Kernel, r.w_base, &mut out).is_err());
        assert!(m.fetch(AccessCtx::Kernel, r.w_base).is_err());
    }

    #[test]
    fn mem_x_is_execute_only() {
        let (mut m, r) = installed();
        // Firmware plants a ret; the kernel can execute it…
        m.write_bytes(AccessCtx::Firmware, r.x_base, &[0xC3])
            .unwrap();
        let (inst, _) = m.fetch(AccessCtx::Kernel, r.x_base).unwrap();
        assert_eq!(inst, kshot_isa::Inst::Ret);
        // …but can neither read nor write it.
        let mut out = [0u8; 1];
        assert!(m.read_bytes(AccessCtx::Kernel, r.x_base, &mut out).is_err());
        assert!(m.write_bytes(AccessCtx::Kernel, r.x_base, &[0]).is_err());
    }

    #[test]
    fn smm_reads_and_writes_everywhere() {
        let (mut m, r) = installed();
        m.raise_smi().unwrap();
        for addr in [r.rw_base, r.w_base, r.x_base] {
            m.write_bytes(AccessCtx::Smm, addr, &[0x5A]).unwrap();
            let mut out = [0u8; 1];
            m.read_bytes(AccessCtx::Smm, addr, &mut out).unwrap();
            assert_eq!(out, [0x5A]);
        }
        m.rsm().unwrap();
    }

    #[test]
    fn rw_offsets_fit_in_window() {
        let (_, r) = installed();
        assert!(rw_offsets::STAGED_LEN + 8 < r.rw_size);
        const { assert!(rw_offsets::HELPER_PUB + 8 + rw_offsets::MAX_PUB < rw_offsets::EPOCH) };
    }
}
