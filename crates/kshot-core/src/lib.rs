#![warn(missing_docs)]

//! # kshot-core — the KShot live kernel patching system
//!
//! The paper's primary contribution (§IV/§V): live-patch a running,
//! possibly compromised kernel using two hardware TEEs —
//!
//! * an **SGX enclave** in a userspace helper prepares patches (fetch
//!   from the remote server, integrity check, `mem_X` placement and call
//!   relocation, packaging, encryption), and
//! * an **SMM handler** applies them while the OS is paused by an SMI
//!   (key generation, decryption, verification, Type 3 global edits,
//!   body placement, trampoline installation), with hardware
//!   save/restore standing in for checkpointing.
//!
//! Module map:
//!
//! * [`reserved`] — the boot-reserved 18 MB region split into `mem_RW`
//!   (key exchange), `mem_W` (write-only encrypted staging) and `mem_X`
//!   (execute-only patched code), paper §V-B.
//! * [`package`] — the Fig. 3 patch package (42-byte header per record)
//!   that crosses the enclave→SMM shared memory.
//! * [`sgx_prep`] — the helper application and its enclave.
//! * [`smm`] — the SMM-resident patch handler, including the SMRAM-
//!   serialized rollback store and key state.
//! * [`introspect`] — SMM-based protection: trampoline/`mem_X` integrity
//!   checking, malicious-reversion repair, DOS detection (paper §V-D).
//! * [`kshot`] — the [`KShot`] orchestrator tying the pipeline together
//!   and producing per-stage timing reports (the paper's Tables II/III).
//!
//! ```no_run
//! use kshot_core::KShot;
//! # fn get_kernel() -> kshot_kernel::Kernel { unimplemented!() }
//! # fn get_server() -> kshot_patchserver::PatchServer { unimplemented!() }
//! # fn get_patch() -> kshot_patchserver::SourcePatch { unimplemented!() }
//! let kernel = get_kernel();
//! let mut kshot = KShot::install(kernel, 42).unwrap();
//! let report = kshot.live_patch(&get_server(), &get_patch()).unwrap();
//! println!("paused the OS for {}", report.smm.total());
//! ```

pub mod introspect;
pub mod kshot;
pub mod package;
pub mod reserved;
pub mod sgx_prep;
pub mod smm;

pub use introspect::ActiveSite;
pub use kshot::{KShot, KShotError, PatchReport, SgxTimings, SmmTimings};
pub use package::{PatchPackage, VerificationAlgorithm};
pub use reserved::ReservedLayout;
pub use smm::{
    expected_handler_measurement, JournalState, Recovery, RollbackFailure, RollbackOutcome,
    SegmentOutcome,
};
