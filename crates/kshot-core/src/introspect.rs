//! SMM-based patching protection (paper §V-D).
//!
//! A compromised kernel controls its own page tables (modelled by
//! `Machine::set_page_attrs` being reachable from kernel-privileged
//! code), so it *can* re-map its text writable and revert a trampoline —
//! the "Malicious Patch Reversion" attack. What it cannot do is touch
//! SMRAM, where the SMM handler keeps the ground truth: every installed
//! trampoline site and the hash of every placed `mem_X` body. This
//! module walks that ground truth under SMM privilege, reports
//! violations, and re-installs clobbered trampolines.
//!
//! It also implements the DOS-detection handshake: the enclave sets a
//! progress marker in `mem_RW` after staging; the remote server can ask
//! the SMM handler whether staging/application actually happened
//! ("This approach cannot prevent DOS attacks but can detect them").

use kshot_machine::{AccessCtx, CpuMode, Machine};

use crate::reserved::{rw_offsets, ReservedLayout};
use crate::smm::{SmmError, SmmHandler};

/// A protection violation discovered by introspection.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Violation {
    /// The trampoline at a patched function's entry was overwritten
    /// (e.g. restored to the vulnerable original by a rootkit).
    TrampolineReverted {
        /// The patched function's entry address.
        taddr: u64,
        /// Bytes found at the trampoline site.
        found: [u8; 5],
        /// The trampoline bytes that should be there.
        expected: [u8; 5],
    },
    /// A placed patch body in `mem_X` no longer matches its hash.
    MemXCorrupted {
        /// Placement address.
        paddr: u64,
        /// Body size.
        size: u32,
    },
}

/// Result of the DOS-detection probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DosProbe {
    /// The enclave reported staging a package.
    pub staged: bool,
    /// The SMM handler's patch epoch (increments on every applied
    /// patch). A server that saw `staged == true` but no epoch bump
    /// concludes the SMI was suppressed.
    pub epoch: u64,
}

/// Expected trampoline bytes for a record.
fn expected_jmp(taddr: u64, skip: u8, paddr: u64) -> Result<[u8; 5], SmmError> {
    let site = taddr + skip as u64;
    let mut jmp = [0u8; 5];
    kshot_isa::write_jmp_rel32(&mut jmp, site, paddr)
        .map_err(|_| SmmError::BadPlacement { sequence: 0, paddr })?;
    Ok(jmp)
}

/// Walk every active record and report violations. Must run in SMM.
///
/// # Errors
///
/// [`SmmError::NotInSmm`] outside SMM; machine faults otherwise.
pub fn check(machine: &mut Machine, handler: &SmmHandler) -> Result<Vec<Violation>, SmmError> {
    if machine.mode() != CpuMode::Smm {
        return Err(SmmError::NotInSmm);
    }
    let mut violations = Vec::new();
    let count = handler.record_count(machine)?;
    for i in 0..count {
        let rec = handler.read_record(machine, i)?;
        if !rec.active || rec.kind != crate::smm::RecordKind::Trampoline {
            continue;
        }
        let site = rec.taddr + rec.skip as u64;
        let mut found = [0u8; 5];
        machine.read_bytes(AccessCtx::Smm, site, &mut found)?;
        let expected = expected_jmp(rec.taddr, rec.skip, rec.paddr)?;
        if found != expected {
            kshot_telemetry::counter("introspect.violations", 1);
            kshot_telemetry::event_with("introspect.violation", Some(machine.now().as_ns()), |f| {
                f.push(("kind", "trampoline_reverted".into()));
                f.push(("taddr", rec.taddr.into()));
            });
            violations.push(Violation::TrampolineReverted {
                taddr: rec.taddr,
                found,
                expected,
            });
        }
        let mut body = vec![0u8; rec.size as usize];
        machine.read_bytes(AccessCtx::Smm, rec.paddr, &mut body)?;
        if kshot_crypto::sha256(&body) != rec.memx_hash {
            kshot_telemetry::counter("introspect.violations", 1);
            kshot_telemetry::event_with("introspect.violation", Some(machine.now().as_ns()), |f| {
                f.push(("kind", "memx_corrupted".into()));
                f.push(("paddr", rec.paddr.into()));
                f.push(("size", rec.size.into()));
            });
            violations.push(Violation::MemXCorrupted {
                paddr: rec.paddr,
                size: rec.size,
            });
        }
    }
    Ok(violations)
}

/// One active trampoline site, as recorded in SMRAM ground truth. The
/// crash-consistency tests use this inventory to assert the record table
/// agrees with the kernel text after a fault + recovery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ActiveSite {
    /// Patched function entry address.
    pub taddr: u64,
    /// Bytes skipped before the trampoline (ftrace pad).
    pub skip: u8,
    /// `mem_X` placement address of the patched body.
    pub paddr: u64,
    /// Body size in bytes.
    pub size: u32,
    /// Package id that installed the site.
    pub id: String,
}

/// List every active trampoline record. Must run in SMM.
///
/// # Errors
///
/// [`SmmError::NotInSmm`] outside SMM; machine faults otherwise.
pub fn active_trampolines(
    machine: &mut Machine,
    handler: &SmmHandler,
) -> Result<Vec<ActiveSite>, SmmError> {
    if machine.mode() != CpuMode::Smm {
        return Err(SmmError::NotInSmm);
    }
    let mut sites = Vec::new();
    let count = handler.record_count(machine)?;
    for i in 0..count {
        let rec = handler.read_record(machine, i)?;
        if !rec.active || rec.kind != crate::smm::RecordKind::Trampoline {
            continue;
        }
        sites.push(ActiveSite {
            taddr: rec.taddr,
            skip: rec.skip,
            paddr: rec.paddr,
            size: rec.size,
            id: rec.id,
        });
    }
    Ok(sites)
}

/// Re-install every reverted trampoline; returns how many were repaired.
/// `mem_X` corruption is *reported* by [`check`] but cannot be repaired
/// from SMRAM alone (the body is not retained there) — the orchestrator
/// re-applies the patch in that case.
///
/// # Errors
///
/// [`SmmError::NotInSmm`] outside SMM; machine faults otherwise.
pub fn repair(machine: &mut Machine, handler: &SmmHandler) -> Result<usize, SmmError> {
    if machine.mode() != CpuMode::Smm {
        return Err(SmmError::NotInSmm);
    }
    let mut repaired = 0;
    let count = handler.record_count(machine)?;
    for i in 0..count {
        let rec = handler.read_record(machine, i)?;
        if !rec.active || rec.kind != crate::smm::RecordKind::Trampoline {
            continue;
        }
        let site = rec.taddr + rec.skip as u64;
        let expected = expected_jmp(rec.taddr, rec.skip, rec.paddr)?;
        let mut found = [0u8; 5];
        machine.read_bytes(AccessCtx::Smm, site, &mut found)?;
        if found != expected {
            machine.write_bytes(AccessCtx::Smm, site, &expected)?;
            repaired += 1;
        }
    }
    Ok(repaired)
}

/// DOS-detection probe: read the progress marker and patch epoch under
/// SMM privilege (the remote server triggers this via its own SMI).
///
/// # Errors
///
/// [`SmmError::NotInSmm`] outside SMM; machine faults otherwise.
pub fn dos_probe(machine: &mut Machine, reserved: &ReservedLayout) -> Result<DosProbe, SmmError> {
    if machine.mode() != CpuMode::Smm {
        return Err(SmmError::NotInSmm);
    }
    let staged = machine.read_u64(AccessCtx::Smm, reserved.rw_base + rw_offsets::PROGRESS)? != 0;
    let epoch = machine.read_u64(AccessCtx::Smm, reserved.rw_base + rw_offsets::EPOCH)?;
    Ok(DosProbe { staged, epoch })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::smm::DhGroup;
    use kshot_machine::MemLayout;

    fn setup() -> (Machine, ReservedLayout, SmmHandler) {
        let mut m = Machine::new(MemLayout::standard()).unwrap();
        let r = ReservedLayout::from_machine(&m);
        r.install(&mut m).unwrap();
        m.raise_smi().unwrap();
        let h = SmmHandler::install(&mut m, &r, &[7u8; 32], DhGroup::Default).unwrap();
        m.rsm().unwrap();
        (m, r, h)
    }

    /// Plant a fake active record + matching memory so introspection has
    /// something to verify.
    fn plant_patch(m: &mut Machine, h: &SmmHandler, r: &ReservedLayout) -> (u64, u64) {
        let taddr = m.layout().kernel_text_base + 0x100;
        let paddr = r.x_base + 0x40;
        let body = vec![0x90u8, 0xC3];
        m.raise_smi().unwrap();
        m.write_bytes(AccessCtx::Smm, paddr, &body).unwrap();
        let mut jmp = [0u8; 5];
        kshot_isa::write_jmp_rel32(&mut jmp, taddr + 5, paddr).unwrap();
        m.write_bytes(AccessCtx::Smm, taddr + 5, &jmp).unwrap();
        let rec = crate::smm::SmramRecord {
            active: true,
            kind: crate::smm::RecordKind::Trampoline,
            taddr,
            skip: 5,
            orig_len: 5,
            orig: [0; crate::smm::MAX_ORIG],
            paddr,
            size: body.len() as u32,
            memx_hash: kshot_crypto::sha256(&body),
            id: "CVE-PLANT".into(),
        };
        h.write_record(m, 0, &rec).unwrap();
        // Bump the SMRAM record count via a second record write pattern:
        // install() zeroed it; write count = 1 by re-using the handler's
        // private path through a real record append is not exposed, so
        // we poke the counter directly in SMRAM.
        let scratch = m.smram_scratch_base();
        m.write_u64(AccessCtx::Smm, scratch + 0x100, 1).unwrap();
        m.rsm().unwrap();
        (taddr, paddr)
    }

    #[test]
    fn clean_state_reports_no_violations() {
        let (mut m, _r, h) = setup();
        m.raise_smi().unwrap();
        assert!(check(&mut m, &h).unwrap().is_empty());
        m.rsm().unwrap();
    }

    #[test]
    fn reverted_trampoline_detected_and_repaired() {
        let (mut m, r, h) = setup();
        let (taddr, _) = plant_patch(&mut m, &h, &r);
        // The rootkit remaps text writable and restores "original" bytes
        // — kernel-privileged operations, both.
        m.set_page_attrs(taddr & !0xFFF, 0x1000, kshot_machine::PageAttrs::RWX)
            .unwrap();
        m.write_bytes(AccessCtx::Kernel, taddr + 5, &[0x90; 5])
            .unwrap();
        m.raise_smi().unwrap();
        let v = check(&mut m, &h).unwrap();
        assert_eq!(v.len(), 1);
        assert!(matches!(v[0], Violation::TrampolineReverted { taddr: t, .. } if t == taddr));
        // Repair re-installs the jump.
        assert_eq!(repair(&mut m, &h).unwrap(), 1);
        assert!(check(&mut m, &h).unwrap().is_empty());
        m.rsm().unwrap();
    }

    #[test]
    fn memx_corruption_detected() {
        let (mut m, r, h) = setup();
        let (_, paddr) = plant_patch(&mut m, &h, &r);
        // Corrupt the placed body via firmware privilege (the kernel
        // cannot write mem_X; this models a hypothetical DMA attack).
        m.write_bytes(AccessCtx::Firmware, paddr, &[0xFF]).unwrap();
        m.raise_smi().unwrap();
        let v = check(&mut m, &h).unwrap();
        assert!(v
            .iter()
            .any(|v| matches!(v, Violation::MemXCorrupted { paddr: p, .. } if *p == paddr)));
        // Repair cannot fix mem_X (body not in SMRAM); it only fixes
        // trampolines.
        assert_eq!(repair(&mut m, &h).unwrap(), 0);
        m.rsm().unwrap();
    }

    #[test]
    fn dos_probe_reads_progress_and_epoch() {
        let (mut m, r, _h) = setup();
        m.raise_smi().unwrap();
        let p = dos_probe(&mut m, &r).unwrap();
        assert!(!p.staged);
        assert_eq!(p.epoch, 0);
        m.rsm().unwrap();
        // The enclave stages → marker set.
        m.write_u64(AccessCtx::Kernel, r.rw_base + rw_offsets::PROGRESS, 1)
            .unwrap();
        m.raise_smi().unwrap();
        assert!(dos_probe(&mut m, &r).unwrap().staged);
        m.rsm().unwrap();
    }

    #[test]
    fn introspection_requires_smm() {
        let (mut m, r, h) = setup();
        assert!(matches!(check(&mut m, &h), Err(SmmError::NotInSmm)));
        assert!(matches!(repair(&mut m, &h), Err(SmmError::NotInSmm)));
        assert!(matches!(dos_probe(&mut m, &r), Err(SmmError::NotInSmm)));
    }
}
