//! The SGX→SMM patch package (paper Fig. 3).
//!
//! Each record carries a fixed 42-byte header — `{sequence, opt, type,
//! taddr, paddr, size, …}` exactly as Fig. 3 sketches (§VI-C3 confirms
//! "each function requires 42 bytes of header data in the transmitted
//! patch package") — followed by the payload hash, the expected hash of
//! the *target's current bytes* (so SMM can refuse to patch a diverged
//! kernel), and the payload itself.

use kshot_crypto::sdbm::sdbm;
use kshot_crypto::sha256::{sha256, DIGEST_LEN};
use kshot_patchserver::wire::{Reader, WireError, Writer};

/// Fixed header length per record (paper §VI-C3).
pub const HEADER_LEN: usize = 42;

/// The operation a record requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PackageOp {
    /// Place `payload` at `paddr` in `mem_X` and install a trampoline at
    /// `taddr` (+ ftrace skip).
    Patch = 0,
    /// Write `payload` at `taddr` in the kernel data segment (Type 3
    /// global edit).
    GlobalWrite = 1,
    /// Place `payload` at `paddr` with **no** trampoline (a function
    /// newly added by the patch).
    PlaceOnly = 2,
}

impl PackageOp {
    fn from_u8(v: u8) -> Option<PackageOp> {
        match v {
            0 => Some(PackageOp::Patch),
            1 => Some(PackageOp::GlobalWrite),
            2 => Some(PackageOp::PlaceOnly),
            _ => None,
        }
    }
}

/// Which hash verifies payloads — SHA-256 per the paper, or the cheaper
/// SDBM the paper suggests as an optimisation (§VI-C2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum VerificationAlgorithm {
    /// SHA-256 (default; collision resistant).
    #[default]
    Sha256 = 0,
    /// SDBM (fast, *not* collision resistant — opt-in ablation only).
    Sdbm = 1,
}

impl VerificationAlgorithm {
    fn from_u8(v: u8) -> Option<Self> {
        match v {
            0 => Some(VerificationAlgorithm::Sha256),
            1 => Some(VerificationAlgorithm::Sdbm),
            _ => None,
        }
    }

    /// Hash `data` into a 32-byte field (SDBM fills the first 8 bytes).
    pub fn digest(self, data: &[u8]) -> [u8; DIGEST_LEN] {
        match self {
            VerificationAlgorithm::Sha256 => sha256(data),
            VerificationAlgorithm::Sdbm => {
                let mut out = [0u8; DIGEST_LEN];
                out[..8].copy_from_slice(&sdbm(data).to_le_bytes());
                out
            }
        }
    }
}

/// One record of the package.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageRecord {
    /// Position in the package (the paper's `sequence`).
    pub sequence: u32,
    /// Operation.
    pub op: PackageOp,
    /// Patch type tag (1/2/3) for logging.
    pub ptype: u8,
    /// Target address: function entry (Patch), data address
    /// (GlobalWrite), unused (PlaceOnly).
    pub taddr: u64,
    /// Placement address in `mem_X` (Patch/PlaceOnly).
    pub paddr: u64,
    /// Bytes to skip at `taddr` before the trampoline — 5 when the
    /// target has an ftrace pad, 0 otherwise (paper §V-A).
    pub ftrace_skip: u8,
    /// Hash of `payload` under the package's verification algorithm.
    pub payload_hash: [u8; DIGEST_LEN],
    /// Expected hash of the target's *current* bytes (`tsize` bytes at
    /// `taddr`); all-zero to skip the check (GlobalWrite/PlaceOnly).
    pub expected_pre_hash: [u8; DIGEST_LEN],
    /// Size of the target's current body (for the pre-hash check).
    pub tsize: u32,
    /// The patch body or data bytes.
    pub payload: Vec<u8>,
}

impl PackageRecord {
    /// Verify the payload hash.
    pub fn verify_payload(&self, alg: VerificationAlgorithm) -> bool {
        alg.digest(&self.payload) == self.payload_hash
    }
}

/// One per-CVE segment of a (possibly batched) package: the patch id
/// and the index of its first record. Segments partition `records` in
/// order; segment `i` covers `first_record..next.first_record` (the
/// last runs to the end). The SMM handler journals each segment as its
/// own crash-consistency unit, so recovery after a mid-batch fault
/// preserves completed segments and unwinds only the interrupted one.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PackageSegment {
    /// Patch identifier of this segment (the real CVE id, not the
    /// merged `BATCH(...)` envelope id).
    pub id: String,
    /// Index into `records` of this segment's first record.
    pub first_record: u32,
}

/// A complete package: records plus the verification algorithm tag.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PatchPackage {
    /// Patch identifier (CVE string).
    pub id: String,
    /// Hash algorithm for payload verification.
    pub algorithm: VerificationAlgorithm,
    /// Records in application order.
    pub records: Vec<PackageRecord>,
    /// Per-CVE segment table for batched packages. Empty means the
    /// package is one implicit segment carrying `id` — the single-patch
    /// wire shape every pre-batching package has.
    pub segments: Vec<PackageSegment>,
}

impl PatchPackage {
    /// Total payload bytes (the "patch size" of Tables II/III).
    pub fn payload_size(&self) -> usize {
        self.records.iter().map(|r| r.payload.len()).sum()
    }

    /// The effective segment table: the explicit one for batched
    /// packages, or one implicit segment covering every record for the
    /// classic single-patch shape.
    pub fn segment_table(&self) -> Vec<PackageSegment> {
        if self.segments.is_empty() {
            vec![PackageSegment {
                id: self.id.clone(),
                first_record: 0,
            }]
        } else {
            self.segments.clone()
        }
    }

    /// Total on-wire size.
    pub fn wire_size(&self) -> usize {
        self.encode().len()
    }

    /// Serialize.
    ///
    /// # Panics
    ///
    /// If a field exceeds the `u32` length-prefix range — see
    /// [`PatchPackage::try_encode`] for the fallible form.
    pub fn encode(&self) -> Vec<u8> {
        self.try_encode()
            .expect("package fields fit the wire format")
    }

    /// Serialize, rejecting fields too large for the wire format
    /// instead of truncating their length prefixes.
    pub fn try_encode(&self) -> Result<Vec<u8>, WireError> {
        let mut w = Writer::new();
        w.put_str(&self.id);
        w.put_u8(self.algorithm as u8);
        w.put_u32(self.records.len() as u32);
        for r in &self.records {
            // 42-byte fixed header.
            let mut header = [0u8; HEADER_LEN];
            header[0..4].copy_from_slice(&r.sequence.to_le_bytes());
            header[4] = r.op as u8;
            header[5] = r.ptype;
            header[6..14].copy_from_slice(&r.taddr.to_le_bytes());
            header[14..22].copy_from_slice(&r.paddr.to_le_bytes());
            // The payload length lives in a fixed u32 header slot, not a
            // writer-managed prefix, so the same oversize check applies
            // here by hand.
            let payload_len = u32::try_from(r.payload.len()).map_err(|_| WireError::Oversize {
                len: r.payload.len(),
            })?;
            header[22..26].copy_from_slice(&payload_len.to_le_bytes());
            header[26] = r.ftrace_skip;
            header[27..31].copy_from_slice(&r.tsize.to_le_bytes());
            // header[31..42] reserved.
            w.put_raw(&header);
            w.put_raw(&r.payload_hash);
            w.put_raw(&r.expected_pre_hash);
            w.put_raw(&r.payload);
        }
        // Segment table (count 0 for the implicit single-segment shape).
        w.put_u32(self.segments.len() as u32);
        for s in &self.segments {
            w.put_str(&s.id);
            w.put_u32(s.first_record);
        }
        w.into_bytes()
    }

    /// Deserialize.
    ///
    /// # Errors
    ///
    /// [`WireError`] on malformed bytes.
    pub fn decode(bytes: &[u8]) -> Result<Self, WireError> {
        let mut r = Reader::new(bytes);
        let id = r.get_str("package id")?;
        let algorithm =
            VerificationAlgorithm::from_u8(r.get_u8("algorithm")?).ok_or(WireError::BadTag {
                what: "algorithm",
                tag: 255,
            })?;
        // Minimum record footprint: fixed header plus the two digests.
        let count = r.get_count("record count", HEADER_LEN + 2 * DIGEST_LEN)?;
        let mut records = Vec::with_capacity(count);
        for _ in 0..count {
            let header = r.get_raw(HEADER_LEN, "record header")?;
            let sequence = u32::from_le_bytes(header[0..4].try_into().expect("4"));
            let op = PackageOp::from_u8(header[4]).ok_or(WireError::BadTag {
                what: "package op",
                tag: header[4],
            })?;
            let ptype = header[5];
            let taddr = u64::from_le_bytes(header[6..14].try_into().expect("8"));
            let paddr = u64::from_le_bytes(header[14..22].try_into().expect("8"));
            let size = u32::from_le_bytes(header[22..26].try_into().expect("4"));
            let ftrace_skip = header[26];
            let tsize = u32::from_le_bytes(header[27..31].try_into().expect("4"));
            let mut payload_hash = [0u8; DIGEST_LEN];
            payload_hash.copy_from_slice(r.get_raw(DIGEST_LEN, "payload hash")?);
            let mut expected_pre_hash = [0u8; DIGEST_LEN];
            expected_pre_hash.copy_from_slice(r.get_raw(DIGEST_LEN, "pre hash")?);
            let payload = r.get_raw(size as usize, "payload")?.to_vec();
            records.push(PackageRecord {
                sequence,
                op,
                ptype,
                taddr,
                paddr,
                ftrace_skip,
                payload_hash,
                expected_pre_hash,
                tsize,
                payload,
            });
        }
        // Minimum segment footprint: id prefix + first_record.
        let n = r.get_count("segment count", 4 + 4)?;
        let mut segments = Vec::with_capacity(n);
        for _ in 0..n {
            let id = r.get_str("segment id")?;
            let first_record = r.get_u32("segment first record")?;
            segments.push(PackageSegment { id, first_record });
        }
        r.finish()?;
        Ok(Self {
            id,
            algorithm,
            records,
            segments,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(seq: u32, op: PackageOp, payload: Vec<u8>) -> PackageRecord {
        let alg = VerificationAlgorithm::Sha256;
        PackageRecord {
            sequence: seq,
            op,
            ptype: 1,
            taddr: 0x10_0040,
            paddr: 0x0200_0000,
            ftrace_skip: 5,
            payload_hash: alg.digest(&payload),
            expected_pre_hash: sha256(b"pre"),
            tsize: 77,
            payload,
        }
    }

    fn package() -> PatchPackage {
        PatchPackage {
            id: "CVE-2016-5195".into(),
            algorithm: VerificationAlgorithm::Sha256,
            records: vec![
                record(0, PackageOp::Patch, vec![1, 2, 3, 4]),
                record(1, PackageOp::GlobalWrite, vec![9; 16]),
                record(2, PackageOp::PlaceOnly, vec![0xC3]),
            ],
            segments: vec![],
        }
    }

    #[test]
    fn header_is_42_bytes() {
        assert_eq!(HEADER_LEN, 42, "paper §VI-C3");
    }

    #[test]
    fn roundtrip() {
        let p = package();
        let bytes = p.encode();
        assert_eq!(PatchPackage::decode(&bytes).unwrap(), p);
    }

    #[test]
    fn payload_and_wire_sizes() {
        let p = package();
        assert_eq!(p.payload_size(), 4 + 16 + 1);
        // wire = id-prefix + id + alg + count + 3*(42+32+32) + payloads
        //        + segment count
        assert_eq!(
            p.wire_size(),
            4 + 13 + 1 + 4 + 3 * (42 + 32 + 32) + p.payload_size() + 4
        );
    }

    #[test]
    fn segmented_package_roundtrips() {
        let mut p = package();
        p.id = "BATCH(CVE-A+CVE-B)".into();
        p.segments = vec![
            PackageSegment {
                id: "CVE-A".into(),
                first_record: 0,
            },
            PackageSegment {
                id: "CVE-B".into(),
                first_record: 2,
            },
        ];
        let back = PatchPackage::decode(&p.encode()).unwrap();
        assert_eq!(back, p);
        assert_eq!(back.segment_table(), p.segments);
    }

    #[test]
    fn implicit_segment_table_covers_the_whole_package() {
        let p = package();
        let tab = p.segment_table();
        assert_eq!(tab.len(), 1);
        assert_eq!(tab[0].id, p.id);
        assert_eq!(tab[0].first_record, 0);
    }

    #[test]
    fn payload_verification_sha256() {
        let p = package();
        for r in &p.records {
            assert!(r.verify_payload(VerificationAlgorithm::Sha256));
            assert!(!r.verify_payload(VerificationAlgorithm::Sdbm));
        }
        let mut bad = p.records[0].clone();
        bad.payload[0] ^= 1;
        assert!(!bad.verify_payload(VerificationAlgorithm::Sha256));
    }

    #[test]
    fn payload_verification_sdbm() {
        let alg = VerificationAlgorithm::Sdbm;
        let payload = vec![5u8; 100];
        let r = PackageRecord {
            payload_hash: alg.digest(&payload),
            ..record(0, PackageOp::Patch, payload)
        };
        assert!(r.verify_payload(alg));
    }

    #[test]
    fn truncation_and_bad_tags_detected() {
        let bytes = package().encode();
        assert!(PatchPackage::decode(&bytes[..bytes.len() - 2]).is_err());
        assert!(PatchPackage::decode(&bytes[..8]).is_err());
        // Corrupt the op byte of record 0 to an invalid tag.
        let mut corrupt = bytes.clone();
        // id(4+13) + alg(1) + count(4) → header starts at 22; op at +4.
        corrupt[22 + 4] = 9;
        assert!(matches!(
            PatchPackage::decode(&corrupt),
            Err(WireError::BadTag {
                what: "package op",
                ..
            })
        ));
    }

    #[test]
    fn empty_package_roundtrips() {
        let p = PatchPackage {
            id: "x".into(),
            ..Default::default()
        };
        assert_eq!(PatchPackage::decode(&p.encode()).unwrap(), p);
        assert_eq!(p.payload_size(), 0);
    }
}
