//! Attacks staged by a *compromised helper* that owns a valid session
//! key: the SMM handler must still validate every placement itself —
//! the enclave's `paddr` assignment is defence-in-depth, not trust.

use kshot_core::package::{PackageOp, PackageRecord, PatchPackage, VerificationAlgorithm};
use kshot_core::reserved::{rw_offsets, ReservedLayout};
use kshot_core::smm::{DhGroup, SmmError, SmmHandler};
use kshot_crypto::dh::{DhKeyPair, DhParams};
use kshot_machine::{AccessCtx, Machine, MemLayout};
use kshot_patchserver::channel::SecureChannel;

struct Rig {
    machine: Machine,
    reserved: ReservedLayout,
    handler: SmmHandler,
    channel: SecureChannel,
}

/// Build a machine + installed handler, and a channel keyed exactly as a
/// (malicious) helper in possession of the session key would be.
fn rig() -> Rig {
    let mut machine = Machine::new(MemLayout::standard()).unwrap();
    let reserved = ReservedLayout::from_machine(&machine);
    reserved.install(&mut machine).unwrap();
    machine.raise_smi().unwrap();
    let handler =
        SmmHandler::install(&mut machine, &reserved, &[11u8; 32], DhGroup::Default).unwrap();
    machine.rsm().unwrap();
    // Read the SMM public from mem_RW, agree as the helper.
    let params = DhParams::default_group();
    let len = machine
        .read_u64(AccessCtx::Kernel, reserved.rw_base + rw_offsets::SMM_PUB)
        .unwrap();
    let mut pub_bytes = vec![0u8; len as usize];
    machine
        .read_bytes(
            AccessCtx::Kernel,
            reserved.rw_base + rw_offsets::SMM_PUB + 8,
            &mut pub_bytes,
        )
        .unwrap();
    let smm_public = kshot_crypto::BigUint::from_bytes_be(&pub_bytes);
    let helper = DhKeyPair::from_entropy(&params, &[13u8; 32]).unwrap();
    let key = helper.agree(&params, &smm_public).unwrap();
    // Publish the helper public so the handler derives the same key.
    let hp = helper.public().to_bytes_be();
    let base = reserved.rw_base + rw_offsets::HELPER_PUB;
    machine
        .write_u64(AccessCtx::Kernel, base, hp.len() as u64)
        .unwrap();
    machine
        .write_bytes(AccessCtx::Kernel, base + 8, &hp)
        .unwrap();
    Rig {
        machine,
        reserved,
        handler,
        channel: SecureChannel::new(key),
    }
}

fn stage(rig: &mut Rig, package: &PatchPackage) {
    let frame = rig.channel.seal(&package.encode()).encode();
    rig.machine
        .write_bytes(AccessCtx::Kernel, rig.reserved.w_base, &frame)
        .unwrap();
    rig.machine
        .write_u64(
            AccessCtx::Kernel,
            rig.reserved.rw_base + rw_offsets::STAGED_LEN,
            frame.len() as u64,
        )
        .unwrap();
}

fn place_record(seq: u32, paddr: u64, body: Vec<u8>) -> PackageRecord {
    PackageRecord {
        sequence: seq,
        op: PackageOp::PlaceOnly,
        ptype: 1,
        taddr: 0,
        paddr,
        ftrace_skip: 0,
        payload_hash: VerificationAlgorithm::Sha256.digest(&body),
        expected_pre_hash: [0; 32],
        tsize: 0,
        payload: body,
    }
}

#[test]
fn overlapping_placements_within_one_package_are_rejected() {
    let mut rig = rig();
    let x = rig.reserved.x_base;
    // Two records claiming overlapping mem_X space.
    let package = PatchPackage {
        id: "CVE-FORGED".into(),
        algorithm: VerificationAlgorithm::Sha256,
        segments: vec![],
        records: vec![
            place_record(0, x, vec![0x90; 64]),
            place_record(1, x + 16, vec![0xC3; 16]), // overlaps record 0
        ],
    };
    stage(&mut rig, &package);
    rig.machine.raise_smi().unwrap();
    let err = rig
        .handler
        .handle_patch(&mut rig.machine, &rig.reserved, &[14u8; 32])
        .unwrap_err();
    rig.machine.rsm().unwrap();
    assert!(
        matches!(err, SmmError::BadPlacement { sequence: 1, .. }),
        "{err:?}"
    );
    // Nothing was written: the first 64 mem_X bytes are untouched zeros.
    rig.machine.raise_smi().unwrap();
    let mut probe = [0xAAu8; 64];
    rig.machine
        .read_bytes(AccessCtx::Smm, x, &mut probe)
        .unwrap();
    rig.machine.rsm().unwrap();
    assert_eq!(probe, [0u8; 64], "verification must precede application");
}

#[test]
fn placement_below_the_cursor_is_rejected() {
    let mut rig = rig();
    let x = rig.reserved.x_base;
    let package = PatchPackage {
        id: "CVE-LOW".into(),
        algorithm: VerificationAlgorithm::Sha256,
        segments: vec![],
        records: vec![place_record(0, x - 4096, vec![0x90; 8])],
    };
    stage(&mut rig, &package);
    rig.machine.raise_smi().unwrap();
    let err = rig
        .handler
        .handle_patch(&mut rig.machine, &rig.reserved, &[15u8; 32])
        .unwrap_err();
    rig.machine.rsm().unwrap();
    assert!(matches!(err, SmmError::BadPlacement { sequence: 0, .. }));
}

#[test]
fn placement_past_mem_x_end_is_rejected() {
    let mut rig = rig();
    let end = rig.reserved.x_base + rig.reserved.x_size;
    let package = PatchPackage {
        id: "CVE-HIGH".into(),
        algorithm: VerificationAlgorithm::Sha256,
        segments: vec![],
        records: vec![place_record(0, end - 4, vec![0x90; 8])],
    };
    stage(&mut rig, &package);
    rig.machine.raise_smi().unwrap();
    let err = rig
        .handler
        .handle_patch(&mut rig.machine, &rig.reserved, &[16u8; 32])
        .unwrap_err();
    rig.machine.rsm().unwrap();
    assert!(matches!(err, SmmError::BadPlacement { sequence: 0, .. }));
}

#[test]
fn wrapping_placement_is_rejected() {
    let mut rig = rig();
    let package = PatchPackage {
        id: "CVE-WRAP".into(),
        algorithm: VerificationAlgorithm::Sha256,
        segments: vec![],
        records: vec![place_record(0, u64::MAX - 3, vec![0x90; 8])],
    };
    stage(&mut rig, &package);
    rig.machine.raise_smi().unwrap();
    let err = rig
        .handler
        .handle_patch(&mut rig.machine, &rig.reserved, &[17u8; 32])
        .unwrap_err();
    rig.machine.rsm().unwrap();
    assert!(matches!(err, SmmError::BadPlacement { .. }));
}

#[test]
fn honest_disjoint_placements_still_apply() {
    let mut rig = rig();
    let x = rig.reserved.x_base;
    let package = PatchPackage {
        id: "CVE-OK".into(),
        algorithm: VerificationAlgorithm::Sha256,
        segments: vec![],
        records: vec![
            place_record(0, x, vec![0x90; 32]),
            place_record(1, x + 32, vec![0xC3; 8]),
        ],
    };
    stage(&mut rig, &package);
    rig.machine.raise_smi().unwrap();
    let outcome = rig
        .handler
        .handle_patch(&mut rig.machine, &rig.reserved, &[18u8; 32])
        .unwrap();
    rig.machine.rsm().unwrap();
    assert_eq!(outcome.payload_size, 40);
    assert_eq!(outcome.trampolines, 0, "PlaceOnly installs no trampolines");
}
