//! Property tests over KShot's core data paths: the Fig. 3 package
//! format, trampoline arithmetic under arbitrary placements, and the
//! byte-exactness of rollback across random patch sequences.

use kshot_core::package::{PackageOp, PackageRecord, PatchPackage, VerificationAlgorithm};
use kshot_crypto::sha256::sha256;
use proptest::prelude::*;

fn arb_op() -> impl Strategy<Value = PackageOp> {
    prop_oneof![
        Just(PackageOp::Patch),
        Just(PackageOp::GlobalWrite),
        Just(PackageOp::PlaceOnly),
    ]
}

fn arb_alg() -> impl Strategy<Value = VerificationAlgorithm> {
    prop_oneof![
        Just(VerificationAlgorithm::Sha256),
        Just(VerificationAlgorithm::Sdbm),
    ]
}

prop_compose! {
    fn arb_record()(
        sequence in any::<u32>(),
        op in arb_op(),
        ptype in 1u8..4,
        taddr in any::<u64>(),
        paddr in any::<u64>(),
        ftrace_skip in prop_oneof![Just(0u8), Just(5u8)],
        tsize in any::<u32>(),
        payload in prop::collection::vec(any::<u8>(), 0..300),
        alg in arb_alg(),
    ) -> PackageRecord {
        PackageRecord {
            sequence,
            op,
            ptype,
            taddr,
            paddr,
            ftrace_skip,
            payload_hash: alg.digest(&payload),
            expected_pre_hash: sha256(&payload),
            tsize,
            payload,
        }
    }
}

proptest! {
    #[test]
    fn package_roundtrips(
        id in "[A-Za-z0-9-]{1,40}",
        alg in arb_alg(),
        records in prop::collection::vec(arb_record(), 0..8),
    ) {
        let pkg = PatchPackage { id, algorithm: alg, records, segments: vec![] };
        let bytes = pkg.encode();
        let back = PatchPackage::decode(&bytes).unwrap();
        prop_assert_eq!(back, pkg);
    }

    #[test]
    fn truncated_packages_never_panic(
        records in prop::collection::vec(arb_record(), 1..4),
        cut in any::<prop::sample::Index>(),
    ) {
        let pkg = PatchPackage {
            id: "CVE-PROP".into(),
            algorithm: VerificationAlgorithm::Sha256,
            segments: vec![],
            records,
        };
        let bytes = pkg.encode();
        let k = cut.index(bytes.len());
        // Any prefix must either decode to the same package (only when
        // complete) or produce a clean error — never panic.
        if let Ok(p) = PatchPackage::decode(&bytes[..k]) {
            prop_assert_eq!(p, pkg);
        }
    }

    #[test]
    fn single_flipped_bit_is_never_silently_accepted(
        record in arb_record(),
        byte in any::<prop::sample::Index>(),
        bit in 0u8..8,
    ) {
        // Flipping any payload bit must break payload verification.
        prop_assume!(!record.payload.is_empty());
        let alg = VerificationAlgorithm::Sha256;
        let mut r = record;
        r.payload_hash = alg.digest(&r.payload);
        prop_assert!(r.verify_payload(alg));
        let i = byte.index(r.payload.len());
        r.payload[i] ^= 1 << bit;
        prop_assert!(!r.verify_payload(alg));
    }

    #[test]
    fn digest_algorithms_disagree_on_nonempty_payloads(
        payload in prop::collection::vec(any::<u8>(), 1..200),
    ) {
        // SDBM's 8-byte digest padded to 32 never collides with the
        // SHA-256 digest of the same payload (would be a 2^-192 event).
        let a = VerificationAlgorithm::Sha256.digest(&payload);
        let b = VerificationAlgorithm::Sdbm.digest(&payload);
        prop_assert_ne!(a, b);
    }
}

mod rollback_exactness {
    use kshot_core::KShot;
    use kshot_kcc::ir::{CondExpr, Expr, Function, Global, InlineHint, Program, Stmt};
    use kshot_kcc::{link, CodegenOptions};
    use kshot_kernel::Kernel;
    use kshot_machine::{AccessCtx, MemLayout};
    use kshot_patchserver::{PatchServer, SourcePatch};
    use proptest::prelude::*;

    fn tree(n_funcs: usize) -> Program {
        let mut p = Program::new();
        p.add_global(Global::word("limit", 10));
        for i in 0..n_funcs {
            p.add_function(
                Function::new(format!("fn{i}"), 1, 0)
                    .with_inline(InlineHint::Never)
                    .returning(Expr::param(0).add(Expr::c(i as u64))),
            );
        }
        p
    }

    fn patch_of(i: usize, round: u64) -> SourcePatch {
        SourcePatch::new(format!("CVE-SEQ-{i}-{round}")).replacing(
            Function::new(format!("fn{i}"), 1, 0)
                .with_inline(InlineHint::Never)
                .with_body(vec![
                    Stmt::if_then(
                        CondExpr::new(Expr::param(0), kshot_isa::Cond::A, Expr::c(round + 50)),
                        vec![Stmt::Return(Expr::c(u64::MAX))],
                    ),
                    Stmt::Return(Expr::param(0).add(Expr::c(1000 + round))),
                ]),
        )
    }

    fn text_snapshot(kernel: &mut Kernel) -> Vec<u8> {
        let base = kernel.machine().layout().kernel_text_base;
        let len = kernel.image().text_size() as usize;
        let mut buf = vec![0u8; len];
        kernel
            .machine_mut()
            .read_bytes(AccessCtx::Kernel, base, &mut buf)
            .unwrap();
        buf
    }

    proptest! {
        #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

        /// Any sequence of patches, fully rolled back in LIFO order,
        /// restores the kernel text to its exact boot bytes.
        #[test]
        fn full_rollback_restores_exact_text(
            seq in prop::collection::vec(0usize..4, 1..6),
            seed in any::<u64>(),
        ) {
            let p = tree(4);
            let layout = MemLayout::standard();
            let image = link(
                &p,
                &CodegenOptions::default(),
                layout.kernel_text_base,
                layout.kernel_data_base,
            ).unwrap();
            let mut kernel = Kernel::boot(image, "kv-4.4", layout).unwrap();
            let boot_text = text_snapshot(&mut kernel);
            let mut server = PatchServer::new();
            server.register_tree("kv-4.4", p);
            let mut system = KShot::install(kernel, seed).unwrap();
            // Apply the random patch sequence. Re-patching an already
            // patched function is refused by the pre-hash check (the
            // target diverged) — skip those, exactly as an operator would.
            let mut applied = 0usize;
            let mut patched = std::collections::BTreeSet::new();
            for (round, &i) in seq.iter().enumerate() {
                if !patched.insert(i) {
                    continue;
                }
                system
                    .live_patch(&server, &patch_of(i, round as u64))
                    .unwrap();
                applied += 1;
            }
            prop_assume!(applied > 0);
            for _ in 0..applied {
                system.rollback_last().unwrap();
            }
            let final_text = text_snapshot(system.kernel_mut());
            prop_assert_eq!(final_text, boot_text, "text must be byte-identical");
            // And behaviour is the boot behaviour.
            for i in 0..4 {
                let rv = system
                    .kernel_mut()
                    .call_function(&format!("fn{i}"), &[7])
                    .unwrap();
                prop_assert_eq!(rv, 7 + i as u64);
            }
        }
    }
}
