//! Golden-file test for the Chrome `trace_event` exporter.
//!
//! Builds a fixed set of records (deterministic ids, threads and
//! timestamps), renders them with [`kshot_telemetry::export::chrome_trace`]
//! and compares byte-for-byte against `tests/golden/chrome_trace.json`.
//! A minimal recursive-descent JSON parser (no external crates) then
//! checks the output is well-formed JSON with the envelope Perfetto and
//! `chrome://tracing` expect.
//!
//! Regenerate the golden after an intentional format change with
//! `KSHOT_UPDATE_GOLDEN=1 cargo test -p kshot-telemetry --test chrome_golden`.

use kshot_telemetry::export::chrome_trace;
use kshot_telemetry::{EventRecord, Record, SpanRecord, Value};

fn fixture() -> Vec<Record> {
    vec![
        Record::Span(SpanRecord {
            id: 1,
            parent: None,
            name: "kshot.live_patch",
            thread: 0,
            wall_start_ns: 10_000,
            wall_dur_ns: 900_000,
            sim_start_ns: Some(1_000),
            sim_end_ns: Some(61_000),
            fields: vec![("patch", Value::Str("CVE-2017-7184".to_string()))],
        }),
        Record::Span(SpanRecord {
            id: 2,
            parent: Some(1),
            name: "smm.window",
            thread: 0,
            wall_start_ns: 200_000,
            wall_dur_ns: 80_000,
            sim_start_ns: Some(5_500),
            sim_end_ns: Some(48_750),
            fields: vec![],
        }),
        Record::Span(SpanRecord {
            id: 3,
            parent: Some(2),
            name: "smm.decrypt",
            thread: 0,
            wall_start_ns: 220_000,
            wall_dur_ns: 10_000,
            sim_start_ns: Some(6_000),
            sim_end_ns: Some(18_123),
            fields: vec![("bytes", Value::U64(4096))],
        }),
        // Wall-only span (e.g. sgx.session): exporter falls back to wall
        // timestamps when sim endpoints are absent.
        Record::Span(SpanRecord {
            id: 4,
            parent: Some(1),
            name: "sgx.session",
            thread: 1,
            wall_start_ns: 50_000,
            wall_dur_ns: 120_000,
            sim_start_ns: None,
            sim_end_ns: None,
            fields: vec![("escaped", Value::Str("a\"b\\c\nd".to_string()))],
        }),
        Record::Event(EventRecord {
            parent: Some(3),
            name: "smm.trampoline",
            thread: 0,
            wall_ns: 225_000,
            sim_ns: Some(17_000),
            fields: vec![
                ("site", Value::U64(0x40_0100)),
                ("target", Value::U64(0x7300_0040)),
            ],
        }),
    ]
}

#[test]
fn chrome_trace_matches_golden() {
    let rendered = chrome_trace(&fixture());
    let golden_path = concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/tests/golden/chrome_trace.json"
    );
    if std::env::var_os("KSHOT_UPDATE_GOLDEN").is_some() {
        std::fs::write(golden_path, &rendered).expect("write golden");
        return;
    }
    let golden = std::fs::read_to_string(golden_path)
        .expect("golden file missing — run with KSHOT_UPDATE_GOLDEN=1 to create it");
    assert_eq!(
        rendered, golden,
        "chrome_trace output drifted from tests/golden/chrome_trace.json \
         (KSHOT_UPDATE_GOLDEN=1 regenerates after an intentional change)"
    );
}

#[test]
fn chrome_trace_is_valid_json_with_expected_envelope() {
    let rendered = chrome_trace(&fixture());
    let value = json::parse(&rendered).expect("exporter must emit valid JSON");

    let obj = match &value {
        json::Value::Object(o) => o,
        other => panic!("top level must be an object, got {other:?}"),
    };
    assert_eq!(
        obj.iter()
            .find(|(k, _)| k == "displayTimeUnit")
            .map(|(_, v)| v),
        Some(&json::Value::String("ns".to_string()))
    );
    let events = match obj.iter().find(|(k, _)| k == "traceEvents").map(|(_, v)| v) {
        Some(json::Value::Array(a)) => a,
        other => panic!("traceEvents must be an array, got {other:?}"),
    };
    assert_eq!(events.len(), fixture().len());

    // Every entry has the mandatory trace_event keys; spans are "X"
    // (complete) with a duration, instants are "i".
    for ev in events {
        let e = match ev {
            json::Value::Object(o) => o,
            other => panic!("event must be an object, got {other:?}"),
        };
        let get = |k: &str| e.iter().find(|(n, _)| n == k).map(|(_, v)| v);
        let ph = match get("ph") {
            Some(json::Value::String(s)) => s.as_str(),
            other => panic!("ph must be a string, got {other:?}"),
        };
        assert!(matches!(get("name"), Some(json::Value::String(_))));
        assert!(matches!(get("ts"), Some(json::Value::Number(_))));
        assert!(matches!(get("pid"), Some(json::Value::Number(_))));
        assert!(matches!(get("tid"), Some(json::Value::Number(_))));
        match ph {
            "X" => assert!(matches!(get("dur"), Some(json::Value::Number(_)))),
            "i" => assert!(get("dur").is_none()),
            other => panic!("unexpected phase {other:?}"),
        }
    }
}

/// Minimal JSON parser — just enough to validate exporter output without
/// pulling in serde. Numbers are parsed as f64; no unicode-escape
/// decoding beyond pass-through (the validator only needs structure).
mod json {
    #[derive(Debug, PartialEq)]
    pub enum Value {
        Null,
        Bool(bool),
        Number(f64),
        String(String),
        Array(Vec<Value>),
        Object(Vec<(String, Value)>),
    }

    pub fn parse(input: &str) -> Result<Value, String> {
        let mut p = Parser {
            bytes: input.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing data at byte {}", p.pos));
        }
        Ok(v)
    }

    struct Parser<'a> {
        bytes: &'a [u8],
        pos: usize,
    }

    impl Parser<'_> {
        fn peek(&self) -> Option<u8> {
            self.bytes.get(self.pos).copied()
        }

        fn skip_ws(&mut self) {
            while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
                self.pos += 1;
            }
        }

        fn expect(&mut self, b: u8) -> Result<(), String> {
            if self.peek() == Some(b) {
                self.pos += 1;
                Ok(())
            } else {
                Err(format!(
                    "expected {:?} at byte {}, found {:?}",
                    b as char,
                    self.pos,
                    self.peek().map(|c| c as char)
                ))
            }
        }

        fn value(&mut self) -> Result<Value, String> {
            match self.peek() {
                Some(b'{') => self.object(),
                Some(b'[') => self.array(),
                Some(b'"') => Ok(Value::String(self.string()?)),
                Some(b't') => self.literal("true", Value::Bool(true)),
                Some(b'f') => self.literal("false", Value::Bool(false)),
                Some(b'n') => self.literal("null", Value::Null),
                Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
                other => Err(format!("unexpected {other:?} at byte {}", self.pos)),
            }
        }

        fn literal(&mut self, lit: &str, v: Value) -> Result<Value, String> {
            if self.bytes[self.pos..].starts_with(lit.as_bytes()) {
                self.pos += lit.len();
                Ok(v)
            } else {
                Err(format!("bad literal at byte {}", self.pos))
            }
        }

        fn number(&mut self) -> Result<Value, String> {
            let start = self.pos;
            if self.peek() == Some(b'-') {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit() || c == b'.' || c == b'e' || c == b'E' || c == b'+' || c == b'-')
            {
                self.pos += 1;
            }
            std::str::from_utf8(&self.bytes[start..self.pos])
                .map_err(|e| e.to_string())?
                .parse::<f64>()
                .map(Value::Number)
                .map_err(|e| format!("bad number at byte {start}: {e}"))
        }

        fn string(&mut self) -> Result<String, String> {
            self.expect(b'"')?;
            let mut out = String::new();
            loop {
                match self.peek() {
                    None => return Err("unterminated string".to_string()),
                    Some(b'"') => {
                        self.pos += 1;
                        return Ok(out);
                    }
                    Some(b'\\') => {
                        self.pos += 1;
                        let esc = self.peek().ok_or("unterminated escape")?;
                        self.pos += 1;
                        match esc {
                            b'"' => out.push('"'),
                            b'\\' => out.push('\\'),
                            b'/' => out.push('/'),
                            b'n' => out.push('\n'),
                            b'r' => out.push('\r'),
                            b't' => out.push('\t'),
                            b'b' => out.push('\u{8}'),
                            b'f' => out.push('\u{c}'),
                            b'u' => {
                                if self.pos + 4 > self.bytes.len() {
                                    return Err("truncated \\u escape".to_string());
                                }
                                let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                    .map_err(|e| e.to_string())?;
                                let code = u32::from_str_radix(hex, 16)
                                    .map_err(|e| format!("bad \\u escape: {e}"))?;
                                out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                                self.pos += 4;
                            }
                            other => return Err(format!("bad escape {:?}", other as char)),
                        }
                    }
                    Some(c) if c < 0x20 => {
                        return Err(format!("raw control byte {c:#04x} in string"))
                    }
                    Some(_) => {
                        // Consume one UTF-8 scalar (input is a &str, so
                        // boundaries are valid).
                        let s = std::str::from_utf8(&self.bytes[self.pos..])
                            .map_err(|e| e.to_string())?;
                        let ch = s.chars().next().ok_or("empty")?;
                        out.push(ch);
                        self.pos += ch.len_utf8();
                    }
                }
            }
        }

        fn array(&mut self) -> Result<Value, String> {
            self.expect(b'[')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b']') {
                self.pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                self.skip_ws();
                items.push(self.value()?);
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b']') => {
                        self.pos += 1;
                        return Ok(Value::Array(items));
                    }
                    other => return Err(format!("expected , or ] got {other:?}")),
                }
            }
        }

        fn object(&mut self) -> Result<Value, String> {
            self.expect(b'{')?;
            let mut items = Vec::new();
            self.skip_ws();
            if self.peek() == Some(b'}') {
                self.pos += 1;
                return Ok(Value::Object(items));
            }
            loop {
                self.skip_ws();
                let key = self.string()?;
                self.skip_ws();
                self.expect(b':')?;
                self.skip_ws();
                let val = self.value()?;
                items.push((key, val));
                self.skip_ws();
                match self.peek() {
                    Some(b',') => self.pos += 1,
                    Some(b'}') => {
                        self.pos += 1;
                        return Ok(Value::Object(items));
                    }
                    other => return Err(format!("expected , or }} got {other:?}")),
                }
            }
        }
    }
}
