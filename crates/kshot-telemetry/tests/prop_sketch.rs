//! Property: over randomized u64 distributions — uniform, log-uniform
//! across octaves, constant, two-point saturation edges, and
//! zero-heavy — every sketch quantile stays within the documented
//! relative-error bound of the *exact* nearest-rank quantile of the
//! sorted samples, never undershoots it, and the sketch's merge is
//! order-independent (tree == sequential == one-shot, byte-identical
//! serialized state).

use kshot_telemetry::QuantileSketch;
use proptest::prelude::*;

/// splitmix64 — the same deterministic expander the fleet uses for
/// per-machine seeds.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// One randomized sample set. `kind` picks the distribution family so
/// every family gets exercised across cases, including the edges the
/// bucket table must get right (zeros, u64::MAX saturation).
fn samples(kind: usize, seed: u64, n: usize) -> Vec<u64> {
    (0..n as u64)
        .map(|i| {
            let r = splitmix64(seed.wrapping_add(i));
            match kind {
                // Uniform over the full u64 range.
                0 => r,
                // Log-uniform: uniform mantissa shifted into a random
                // octave, covering every bucket scale.
                1 => r >> (splitmix64(r) % 64),
                // Constant — quantiles must be *exact* here.
                2 => 1_000_000_007,
                // Two-point mass on the extreme representable values.
                3 => {
                    if r.is_multiple_of(2) {
                        1
                    } else {
                        u64::MAX
                    }
                }
                // Zero-heavy small counts (ring drops, retry tallies).
                _ => r % 5,
            }
        })
        .collect()
}

/// The sketch's own nearest-rank formula, applied to the exact sorted
/// samples — the reference the estimate is judged against.
fn exact_quantile(sorted: &[u64], q: u64) -> u64 {
    let count = sorted.len() as u64;
    let rank = ((count / 1000) * q + ((count % 1000) * q).div_ceil(1000)).max(1);
    sorted[(rank - 1) as usize]
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 96, ..ProptestConfig::default() })]

    #[test]
    fn quantiles_stay_within_the_documented_error_bound(
        kind in 0usize..5,
        seed in any::<u64>(),
        n in 1usize..2000,
    ) {
        let values = samples(kind, seed, n);
        let mut sketch = QuantileSketch::new();
        for &v in &values {
            sketch.observe(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();

        prop_assert_eq!(sketch.count(), n as u64);
        prop_assert_eq!(sketch.min(), sorted[0]);
        prop_assert_eq!(sketch.max(), *sorted.last().unwrap());

        for q in [1u64, 10, 50, 100, 250, 500, 750, 900, 950, 990, 999, 1000] {
            let exact = exact_quantile(&sorted, q);
            let est = sketch.quantile_per_mille(q);
            // Never undershoots the exact ranked sample...
            prop_assert!(
                est >= exact,
                "kind {} q {}: estimate {} under exact {}",
                kind, q, est, exact
            );
            // ...and overshoots by at most the documented γ−1 relative
            // error (22‰, +1‰ and +1 absolute slack for the integer
            // bucket-bound rounding).
            let bound = u128::from(exact)
                * (1000 + u128::from(QuantileSketch::MAX_RELATIVE_ERROR_PER_MILLE) + 1)
                / 1000
                + 1;
            prop_assert!(
                u128::from(est) <= bound,
                "kind {} q {}: estimate {} over bound {} (exact {})",
                kind, q, est, bound, exact
            );
        }
    }

    #[test]
    fn merge_is_order_independent_for_random_shard_splits(
        kind in 0usize..5,
        seed in any::<u64>(),
        n in 1usize..1200,
        shards in 2usize..9,
    ) {
        let values = samples(kind, seed, n);
        // One-shot reference.
        let mut reference = QuantileSketch::new();
        for &v in &values {
            reference.observe(v);
        }
        // Shard round-robin, then fold sequentially, reversed, and as a
        // pairwise tree — all three must serialize byte-identically.
        let mut parts = vec![QuantileSketch::new(); shards];
        for (i, &v) in values.iter().enumerate() {
            parts[i % shards].observe(v);
        }
        let mut sequential = QuantileSketch::new();
        for p in &parts {
            sequential.merge_from(p);
        }
        let mut reversed = QuantileSketch::new();
        for p in parts.iter().rev() {
            reversed.merge_from(p);
        }
        let mut level = parts;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut it = level.into_iter();
            while let Some(mut a) = it.next() {
                if let Some(b) = it.next() {
                    a.merge_from(&b);
                }
                next.push(a);
            }
            level = next;
        }
        let tree = level.pop().unwrap();

        let want = reference.to_json_line("s");
        prop_assert_eq!(&sequential.to_json_line("s"), &want);
        prop_assert_eq!(&reversed.to_json_line("s"), &want);
        prop_assert_eq!(&tree.to_json_line("s"), &want);
    }
}
