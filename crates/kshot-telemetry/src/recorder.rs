//! The bounded ring-buffer recorder and its pluggable sinks.

use std::collections::VecDeque;
use std::sync::{Arc, Mutex};
use std::time::Instant;

use crate::metrics::{MetricsRegistry, MetricsSnapshot};
use crate::record::Record;

/// Default ring capacity: enough for several thousand live-patch runs'
/// worth of spans without unbounded growth in long soak tests.
pub const DEFAULT_CAPACITY: usize = 65_536;

/// Receives every record as it is appended, before ring eviction.
/// Implementations must be cheap — they run inline on the emitting
/// thread while the ring lock is held.
pub trait Sink: Send {
    fn on_record(&mut self, record: &Record);

    /// Push any buffered output to its destination. Called by
    /// [`Recorder::flush_sinks`]; the default is a no-op for sinks with
    /// no buffer.
    fn flush(&mut self) {}
}

struct Ring {
    records: VecDeque<Record>,
    dropped: u64,
}

/// Collects spans, events, and metrics for one observation session.
///
/// Records land in a bounded ring (oldest evicted first, with a drop
/// counter) and are simultaneously fanned out to any attached [`Sink`]s.
/// Install one globally with [`crate::install`] to switch the
/// instrumentation on.
pub struct Recorder {
    epoch: Instant,
    capacity: usize,
    ring: Mutex<Ring>,
    sinks: Mutex<Vec<Box<dyn Sink>>>,
    metrics: MetricsRegistry,
}

impl Recorder {
    /// A recorder with the default ring capacity.
    pub fn new() -> Arc<Recorder> {
        Recorder::with_capacity(DEFAULT_CAPACITY)
    }

    /// A recorder holding at most `capacity` records.
    pub fn with_capacity(capacity: usize) -> Arc<Recorder> {
        assert!(capacity > 0, "recorder capacity must be non-zero");
        Arc::new(Recorder {
            epoch: Instant::now(),
            capacity,
            ring: Mutex::new(Ring {
                records: VecDeque::with_capacity(capacity.min(1024)),
                dropped: 0,
            }),
            sinks: Mutex::new(Vec::new()),
            metrics: MetricsRegistry::new(),
        })
    }

    /// Nanoseconds of wall clock since this recorder was created.
    pub fn wall_ns_now(&self) -> u64 {
        self.epoch.elapsed().as_nanos() as u64
    }

    /// Attach a streaming sink.
    pub fn add_sink(&self, sink: Box<dyn Sink>) {
        self.sinks.lock().unwrap().push(sink);
    }

    /// Append one record: fan out to sinks, then retain in the ring,
    /// evicting the oldest when full.
    pub fn append(&self, record: Record) {
        {
            let mut sinks = self.sinks.lock().unwrap();
            for sink in sinks.iter_mut() {
                sink.on_record(&record);
            }
        }
        let mut ring = self.ring.lock().unwrap();
        if ring.records.len() == self.capacity {
            ring.records.pop_front();
            ring.dropped += 1;
        }
        ring.records.push_back(record);
    }

    /// Snapshot the retained records, oldest first.
    pub fn records(&self) -> Vec<Record> {
        self.ring.lock().unwrap().records.iter().cloned().collect()
    }

    /// How many records the ring has evicted so far.
    pub fn dropped(&self) -> u64 {
        self.ring.lock().unwrap().dropped
    }

    /// Number of records currently retained.
    pub fn len(&self) -> usize {
        self.ring.lock().unwrap().records.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The metrics store.
    pub fn metrics(&self) -> &MetricsRegistry {
        &self.metrics
    }

    /// Fold another recorder's retained records and metrics into this
    /// one. Records are appended in `other`'s retained order (fanned
    /// out to this recorder's sinks and subject to this ring's
    /// capacity); metrics merge per [`MetricsRegistry::merge_from`],
    /// and `other`'s ring-overflow drop count accumulates into this
    /// recorder's, so loss that already happened on a shard is never
    /// silently erased by the merge. `other` is left untouched, so a
    /// fleet campaign can both keep per-machine recorders and publish
    /// one merged report.
    ///
    /// Wall timestamps inside the copied records remain relative to
    /// `other`'s epoch.
    pub fn merge_from(&self, other: &Recorder) {
        assert!(
            !std::ptr::eq(self, other),
            "cannot merge a recorder into itself"
        );
        let other_dropped = other.dropped();
        for record in other.records() {
            self.append(record);
        }
        let mut ring = self.ring.lock().unwrap();
        ring.dropped = ring.dropped.saturating_add(other_dropped);
        drop(ring);
        self.metrics.merge_from(&other.metrics);
    }

    /// Flush every attached sink (buffered stream sinks push their
    /// pending lines to disk).
    pub fn flush_sinks(&self) {
        let mut sinks = self.sinks.lock().unwrap();
        for sink in sinks.iter_mut() {
            sink.flush();
        }
    }

    /// Snapshot of all metrics.
    pub fn metrics_snapshot(&self) -> MetricsSnapshot {
        self.metrics.snapshot()
    }

    /// Export retained records as JSON lines (see
    /// [`crate::export::json_lines`]).
    pub fn export_json_lines(&self) -> String {
        crate::export::json_lines(&self.records(), &self.metrics_snapshot())
    }

    /// Export retained records in Chrome `trace_event` format (see
    /// [`crate::export::chrome_trace`]).
    pub fn export_chrome_trace(&self) -> String {
        crate::export::chrome_trace(&self.records())
    }

    /// Export a plain-text summary table (see
    /// [`crate::export::summary`]).
    pub fn export_summary(&self) -> String {
        crate::export::summary(&self.records(), &self.metrics_snapshot())
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder")
            .field("capacity", &self.capacity)
            .field("len", &self.len())
            .field("dropped", &self.dropped())
            .finish()
    }
}
