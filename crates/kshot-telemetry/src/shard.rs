//! Shard re-aggregation: read streamed JSON-lines files back into
//! mergeable aggregates.
//!
//! A fleet campaign streams each worker's telemetry to its own
//! `worker-<N>.jsonl` (see [`crate::StreamSink`]). A [`ShardData`]
//! parses one such file — validating the per-line schema version — and
//! accumulates:
//!
//! - a [`PhaseProfile`] from `phase.*` spans,
//! - counter totals (adding across repeated lines, e.g. one metrics
//!   block per machine),
//! - gauges (last writer wins, matching the registry semantics),
//! - histogram totals (bucket-merged via
//!   [`HistogramSnapshot::merge_from`], the same arithmetic the live
//!   registry merge uses),
//! - quantile-sketch totals ([`QuantileSketch::merge_from`] —
//!   merge-order-independent by construction),
//! - every other typed object (e.g. a fleet's `"type":"machine"`
//!   outcome lines) verbatim in [`ShardData::other`], so higher layers
//!   can extend the shard format without this crate knowing about it.
//!
//! Because the per-line arithmetic is identical to the in-memory merge
//! path, parsing all shards and [`merging`](ShardData::merge_from) them
//! yields totals equal to the single merged recorder's — the lossless
//! round-trip the observe report asserts. For fleet-scale aggregation,
//! [`ShardData::merge_tree`] folds per-worker partial aggregates
//! hierarchically (pairwise reduction) with results identical to a
//! sequential left fold.

use std::collections::BTreeMap;
use std::fmt;
use std::path::{Path, PathBuf};

use crate::json::{self, Value};
use crate::merkle::{self, DigestTree, FrontierNode};
use crate::metrics::{HistogramSnapshot, MetricsSnapshot};
use crate::phase::{PhaseProfile, PHASE_PREFIX};
use crate::sketch::QuantileSketch;

/// Why a shard read failed. [`ShardData::tail_file`] distinguishes
/// truncation/rotation from plain I/O and parse failures so a live
/// monitor can halt loudly on the one case where resuming would
/// misparse: the file shrank below the resume offset.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ShardError {
    /// Opening, reading, or seeking the shard file failed.
    Io { path: PathBuf, error: String },
    /// The file is shorter than the resume offset — it was truncated or
    /// rotated under the tailer, so the saved offset no longer names a
    /// record boundary and resuming would read garbage.
    Truncated {
        path: PathBuf,
        offset: u64,
        len: u64,
    },
    /// A committed line failed to parse (malformed JSON, schema drift,
    /// or invalid UTF-8).
    Parse { path: PathBuf, error: String },
}

impl fmt::Display for ShardError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ShardError::Io { path, error } => write!(f, "{}: {error}", path.display()),
            ShardError::Truncated { path, offset, len } => write!(
                f,
                "{}: tail offset {offset} beyond file length {len} (truncated or rotated?)",
                path.display()
            ),
            ShardError::Parse { path, error } => write!(f, "{}: {error}", path.display()),
        }
    }
}

impl std::error::Error for ShardError {}

/// One worker's Merkle digest roll-up, parsed back from a
/// `{"type":"rollup",...}` shard line. Because the line carries the
/// tree's O(log n) *frontier* — not just the bagged root, which is not
/// mergeable — an offline reader can re-merge adjacent worker roll-ups
/// into the campaign root without any per-machine digests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DigestRollup {
    /// First machine index the worker's contiguous range covers.
    pub start: u64,
    /// Machines in the range.
    pub machines: u64,
    /// The worker-range Merkle root (also recomputable from `tree`).
    pub root: merkle::Digest,
    /// The reconstructed accumulator, ready for [`DigestTree::merge`].
    pub tree: DigestTree,
}

/// Aggregates parsed back from one or more JSON-lines shards.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ShardData {
    /// Counter totals, summed across all parsed lines (saturating).
    pub counters: BTreeMap<String, u64>,
    /// Gauge values, last writer wins.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram totals, bucket-merged across all parsed lines.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
    /// Quantile-sketch totals, merged across all parsed lines.
    pub sketches: BTreeMap<String, QuantileSketch>,
    /// Phase profile from `phase.*` span lines.
    pub phases: PhaseProfile,
    /// Span lines seen (phase or otherwise).
    pub spans: u64,
    /// Event lines seen.
    pub events: u64,
    /// Objects of any other `"type"` (e.g. fleet `machine` outcome
    /// lines), in stream order.
    pub other: Vec<Value>,
}

fn field_u64(v: &Value, key: &str, lineno: usize) -> Result<u64, String> {
    v.get(key)
        .and_then(Value::as_u64)
        .ok_or_else(|| format!("line {lineno}: missing/invalid {key:?}"))
}

fn field_str<'a>(v: &'a Value, key: &str, lineno: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {lineno}: missing/invalid {key:?}"))
}

fn u64_array(v: &Value, key: &str, lineno: usize) -> Result<Vec<u64>, String> {
    match v.get(key) {
        Some(Value::Array(items)) => items
            .iter()
            .map(|x| {
                x.as_u64()
                    .ok_or_else(|| format!("line {lineno}: non-integer in {key:?}"))
            })
            .collect(),
        _ => Err(format!("line {lineno}: missing/invalid {key:?}")),
    }
}

impl ShardData {
    /// An empty aggregate.
    pub fn new() -> ShardData {
        ShardData::default()
    }

    /// Parse one shard's JSON-lines text, folding every line into this
    /// aggregate. Call repeatedly to fold several shards into one, or
    /// parse each shard separately and [`merge_from`](Self::merge_from).
    ///
    /// # Errors
    ///
    /// Any line that is not a JSON object, lacks a `"type"`, or carries
    /// a `"v"` different from [`crate::SCHEMA_VERSION`]. Format drift
    /// must fail loudly — a silently-empty aggregate would make the
    /// equivalence gate vacuous.
    pub fn parse_into(&mut self, text: &str) -> Result<(), String> {
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {lineno}: {e}"))?;
            let ver = v.get("v").and_then(Value::as_u64);
            if ver != Some(u64::from(crate::SCHEMA_VERSION)) {
                return Err(format!(
                    "line {lineno}: schema version {ver:?}, expected {}",
                    crate::SCHEMA_VERSION
                ));
            }
            match field_str(&v, "type", lineno)? {
                "span" => {
                    self.spans += 1;
                    let name = field_str(&v, "name", lineno)?;
                    if let Some(phase) = name.strip_prefix(PHASE_PREFIX) {
                        let wall = field_u64(&v, "wall_dur_ns", lineno)?;
                        let sim = match (
                            v.get("sim_start_ns").and_then(Value::as_u64),
                            v.get("sim_end_ns").and_then(Value::as_u64),
                        ) {
                            (Some(s), Some(e)) => Some(e.saturating_sub(s)),
                            _ => None,
                        };
                        self.phases.add_sample(phase, wall, sim);
                    }
                }
                "event" => self.events += 1,
                "counter" => {
                    let name = field_str(&v, "name", lineno)?;
                    let value = field_u64(&v, "value", lineno)?;
                    let slot = self.counters.entry(name.to_string()).or_insert(0);
                    *slot = slot.saturating_add(value);
                }
                "gauge" => {
                    let name = field_str(&v, "name", lineno)?;
                    let value = v
                        .get("value")
                        .and_then(Value::as_i64)
                        .ok_or_else(|| format!("line {lineno}: missing/invalid \"value\""))?;
                    self.gauges.insert(name.to_string(), value);
                }
                "histogram" => {
                    let name = field_str(&v, "name", lineno)?;
                    let snap = HistogramSnapshot {
                        bounds: u64_array(&v, "bounds", lineno)?,
                        counts: u64_array(&v, "counts", lineno)?,
                        count: field_u64(&v, "count", lineno)?,
                        sum: field_u64(&v, "sum", lineno)?,
                        min: field_u64(&v, "min", lineno)?,
                        max: field_u64(&v, "max", lineno)?,
                    };
                    if snap.counts.len() != snap.bounds.len() + 1 {
                        return Err(format!("line {lineno}: histogram bucket shape mismatch"));
                    }
                    match self.histograms.get_mut(name) {
                        Some(existing) => existing.merge_from(&snap),
                        None => {
                            self.histograms.insert(name.to_string(), snap);
                        }
                    }
                }
                "sketch" => {
                    let name = field_str(&v, "name", lineno)?;
                    let sketch = QuantileSketch::from_json_value(&v, lineno)?;
                    self.sketches
                        .entry(name.to_string())
                        .or_default()
                        .merge_from(&sketch);
                }
                _ => self.other.push(v),
            }
        }
        Ok(())
    }

    /// Parse a shard from text into a fresh aggregate.
    pub fn parse(text: &str) -> Result<ShardData, String> {
        let mut shard = ShardData::new();
        shard.parse_into(text)?;
        Ok(shard)
    }

    /// Read and parse one shard file.
    ///
    /// # Errors
    ///
    /// I/O errors reading the file, or any parse error (prefixed with
    /// the path).
    pub fn parse_file(path: impl AsRef<Path>) -> Result<ShardData, String> {
        let path = path.as_ref();
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        ShardData::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
    }

    /// Incrementally fold the *complete* lines of `text` into this
    /// aggregate, returning how many bytes were consumed.
    ///
    /// Only lines terminated by `\n` are parsed; a torn final line (a
    /// record the writer is still appending) is left unconsumed, so the
    /// caller re-reads it — whole — on the next call. This is the
    /// building block for [`tail_file`](Self::tail_file).
    ///
    /// # Errors
    ///
    /// Any *complete* line that fails to parse (malformed JSON, missing
    /// `"type"`, schema drift) — torn-line tolerance never excuses a
    /// corrupt committed line.
    pub fn tail_text(&mut self, text: &str) -> Result<usize, String> {
        let complete = match text.rfind('\n') {
            Some(i) => i + 1,
            None => 0,
        };
        self.parse_into(&text[..complete])?;
        Ok(complete)
    }

    /// Resume parsing a shard file from byte `offset`, tolerating a
    /// torn final line, and return the new offset to resume from next
    /// time.
    ///
    /// This is the live-tailing primitive: an operator dashboard calls
    /// it in a loop while a campaign is still streaming, folding each
    /// new batch of complete lines into a running aggregate. The final
    /// line is only consumed once its `\n` lands, so a record caught
    /// mid-write (even mid-UTF-8-sequence) is skipped this round and
    /// parsed whole on the next. When nothing new and complete has
    /// appeared, the returned offset equals the one passed in.
    ///
    /// # Errors
    ///
    /// [`ShardError::Io`] on I/O failures, [`ShardError::Truncated`]
    /// when `offset` is beyond the current file length (the file was
    /// truncated or rotated under the tailer — resuming would misparse,
    /// so it fails loudly), [`ShardError::Parse`] for invalid UTF-8 in
    /// *committed* lines or any parse error from the committed lines.
    pub fn tail_file(&mut self, path: impl AsRef<Path>, offset: u64) -> Result<u64, ShardError> {
        use std::io::{Read, Seek, SeekFrom};
        let path = path.as_ref();
        let io = |e: std::io::Error| ShardError::Io {
            path: path.to_path_buf(),
            error: e.to_string(),
        };
        let mut file = std::fs::File::open(path).map_err(io)?;
        let len = file.metadata().map_err(io)?.len();
        if offset > len {
            return Err(ShardError::Truncated {
                path: path.to_path_buf(),
                offset,
                len,
            });
        }
        file.seek(SeekFrom::Start(offset)).map_err(io)?;
        let mut bytes = Vec::new();
        file.read_to_end(&mut bytes).map_err(io)?;
        let complete = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let parse = |e: String| ShardError::Parse {
            path: path.to_path_buf(),
            error: e,
        };
        let text = std::str::from_utf8(&bytes[..complete])
            .map_err(|e| parse(format!("invalid UTF-8 in committed lines: {e}")))?;
        self.parse_into(text).map_err(parse)?;
        Ok(offset + complete as u64)
    }

    /// Fold another aggregate into this one with the registry-merge
    /// semantics: counters add, gauges last-writer-wins, histograms
    /// bucket-merge, phases merge sample-wise, `other` lines append.
    pub fn merge_from(&mut self, other: &ShardData) {
        for (name, v) in &other.counters {
            let slot = self.counters.entry(name.clone()).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &other.gauges {
            self.gauges.insert(name.clone(), *v);
        }
        for (name, h) in &other.histograms {
            match self.histograms.get_mut(name) {
                Some(existing) => existing.merge_from(h),
                None => {
                    self.histograms.insert(name.clone(), h.clone());
                }
            }
        }
        for (name, s) in &other.sketches {
            self.sketches.entry(name.clone()).or_default().merge_from(s);
        }
        self.phases.merge_from(&other.phases);
        self.spans += other.spans;
        self.events += other.events;
        self.other.extend(other.other.iter().cloned());
    }

    /// Hierarchically fold per-worker partial aggregates into one: a
    /// pairwise tree reduction (`⌈n/2⌉` aggregates per round) instead of
    /// a left-to-right fold over every line. Adjacent shards are merged
    /// each round, which preserves shard order for the order-*dependent*
    /// pieces (gauge last-writer-wins, `other` line order), so the
    /// result equals the sequential `merge_from` fold over `shards` in
    /// the given order — while the merge *depth* drops from O(n) to
    /// O(log n), the shape the million-machine roll-up needs.
    pub fn merge_tree(shards: Vec<ShardData>) -> ShardData {
        let mut level = shards;
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len().div_ceil(2));
            let mut iter = level.into_iter();
            while let Some(mut left) = iter.next() {
                if let Some(right) = iter.next() {
                    left.merge_from(&right);
                }
                next.push(left);
            }
            level = next;
        }
        level.into_iter().next().unwrap_or_default()
    }

    /// Counter total by name (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Histogram total by name.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms.get(name)
    }

    /// Quantile-sketch total by name.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches.get(name)
    }

    /// Objects of the given non-telemetry `"type"` (e.g. `"machine"`).
    pub fn other_of_type<'a>(&'a self, ty: &'a str) -> impl Iterator<Item = &'a Value> {
        self.other
            .iter()
            .filter(move |v| v.get("type").and_then(Value::as_str) == Some(ty))
    }

    /// Parse every `"rollup"` line into a typed [`DigestRollup`], in
    /// stream order. Each frontier is validated to tile its declared
    /// range and to reproduce the line's stated root, so a corrupt
    /// roll-up fails here rather than producing a silently-wrong merged
    /// campaign root.
    ///
    /// # Errors
    ///
    /// A description of the first malformed roll-up line.
    pub fn digest_rollups(&self) -> Result<Vec<DigestRollup>, String> {
        let mut out = Vec::new();
        for v in self.other_of_type("rollup") {
            let start = v
                .get("start")
                .and_then(Value::as_u64)
                .ok_or("rollup: missing/invalid \"start\"")?;
            let machines = v
                .get("machines")
                .and_then(Value::as_u64)
                .ok_or("rollup: missing/invalid \"machines\"")?;
            let root = v
                .get("root")
                .and_then(Value::as_str)
                .and_then(merkle::digest_from_hex)
                .ok_or("rollup: missing/invalid \"root\"")?;
            let nodes = match v.get("frontier") {
                Some(Value::Array(items)) => items
                    .iter()
                    .map(|item| match item {
                        Value::Array(parts) if parts.len() == 3 => {
                            let level = parts[0]
                                .as_u64()
                                .filter(|&l| l <= 63)
                                .ok_or("rollup: invalid frontier level")?;
                            let index =
                                parts[1].as_u64().ok_or("rollup: invalid frontier index")?;
                            let hash = parts[2]
                                .as_str()
                                .and_then(merkle::digest_from_hex)
                                .ok_or("rollup: invalid frontier hash")?;
                            Ok(FrontierNode {
                                level: level as u32,
                                index,
                                hash,
                            })
                        }
                        _ => Err("rollup: frontier node is not [level,index,hash]".to_string()),
                    })
                    .collect::<Result<Vec<FrontierNode>, String>>()?,
                _ => return Err("rollup: missing/invalid \"frontier\"".to_string()),
            };
            let tree = DigestTree::from_frontier(start, machines, nodes)
                .map_err(|e| format!("rollup: {e}"))?;
            if tree.root() != root {
                return Err(format!(
                    "rollup: stated root does not match its frontier (machines {start}..{})",
                    start + machines
                ));
            }
            out.push(DigestRollup {
                start,
                machines,
                root,
                tree,
            });
        }
        Ok(out)
    }

    /// Check this aggregate's metric totals against an in-memory
    /// snapshot, field by field. `Ok(())` means every counter, gauge,
    /// and histogram matches exactly in both directions — the lossless
    /// streaming proof for metrics.
    ///
    /// # Errors
    ///
    /// A description of the first mismatch found.
    pub fn assert_metrics_match(&self, snap: &MetricsSnapshot) -> Result<(), String> {
        for (name, v) in &snap.counters {
            if self.counter(name) != *v {
                return Err(format!(
                    "counter {name:?}: shards={} in-memory={v}",
                    self.counter(name)
                ));
            }
        }
        if self.counters.len() != snap.counters.len() {
            let extra: Vec<&String> = self
                .counters
                .keys()
                .filter(|k| !snap.counters.iter().any(|(n, _)| *n == k.as_str()))
                .collect();
            return Err(format!("counters only in shards: {extra:?}"));
        }
        for (name, v) in &snap.gauges {
            if self.gauges.get(*name) != Some(v) {
                return Err(format!(
                    "gauge {name:?}: shards={:?} in-memory={v}",
                    self.gauges.get(*name)
                ));
            }
        }
        if self.gauges.len() != snap.gauges.len() {
            return Err("gauge present only in shards".to_string());
        }
        for (name, h) in &snap.histograms {
            match self.histogram(name) {
                Some(mine) if mine == h => {}
                Some(mine) => {
                    return Err(format!(
                        "histogram {name:?}: shards={mine:?} in-memory={h:?}"
                    ))
                }
                None => return Err(format!("histogram {name:?} missing from shards")),
            }
        }
        if self.histograms.len() != snap.histograms.len() {
            return Err("histogram present only in shards".to_string());
        }
        for (name, s) in &snap.sketches {
            match self.sketches.get(*name) {
                Some(mine) if mine == s => {}
                Some(mine) => {
                    return Err(format!("sketch {name:?}: shards={mine:?} in-memory={s:?}"))
                }
                None => return Err(format!("sketch {name:?} missing from shards")),
            }
        }
        if self.sketches.len() != snap.sketches.len() {
            return Err("sketch present only in shards".to_string());
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::metrics_json_lines;
    use crate::metrics::MetricsRegistry;

    #[test]
    fn parses_metric_lines_and_sums_across_blocks() {
        // Two machines' metrics blocks into one shard: counters add,
        // histograms bucket-merge, exactly like a registry merge.
        let m1 = MetricsRegistry::new();
        m1.counter_add("fleet.machines_patched", 1);
        m1.observe("smm.dwell", 45_000);
        let m2 = MetricsRegistry::new();
        m2.counter_add("fleet.machines_patched", 1);
        m2.observe("smm.dwell", 47_000);
        let text = format!(
            "{}{}",
            metrics_json_lines(&m1.snapshot()),
            metrics_json_lines(&m2.snapshot())
        );
        let shard = ShardData::parse(&text).unwrap();
        assert_eq!(shard.counter("fleet.machines_patched"), 2);
        let h = shard.histogram("smm.dwell").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 92_000);

        // And the merged in-memory registry agrees.
        let merged = MetricsRegistry::new();
        merged.merge_from(&m1);
        merged.merge_from(&m2);
        shard.assert_metrics_match(&merged.snapshot()).unwrap();
    }

    #[test]
    fn full_recorder_roundtrip_matches_in_memory() {
        let rec = crate::Recorder::new();
        crate::with_recorder(rec.clone(), || {
            let span = crate::span_at("phase.decrypt", 1_000);
            span.end_at(23_000);
            crate::event("machine.smi");
            crate::counter("kshot.patches", 1);
            crate::observe("kshot.latency", 5_000);
        });
        let text = rec.export_json_lines();
        let shard = ShardData::parse(&text).unwrap();
        assert_eq!(shard.spans, 1);
        assert_eq!(shard.events, 1);
        assert_eq!(shard.counter("kshot.patches"), 1);
        shard.assert_metrics_match(&rec.metrics_snapshot()).unwrap();
        let profile = crate::PhaseProfile::from_recorder(&rec);
        assert_eq!(shard.phases, profile);
        assert_eq!(shard.phases.get("decrypt").unwrap().sim_max_ns(), 22_000);
    }

    #[test]
    fn preserves_unknown_typed_lines_for_higher_layers() {
        let text = "{\"type\":\"machine\",\"v\":1,\"machine\":3,\"patched\":true}\n\
                    {\"type\":\"counter\",\"v\":1,\"name\":\"c\",\"value\":1}\n";
        let shard = ShardData::parse(text).unwrap();
        assert_eq!(shard.other.len(), 1);
        let m: Vec<_> = shard.other_of_type("machine").collect();
        assert_eq!(m.len(), 1);
        assert_eq!(m[0].get("machine").and_then(Value::as_u64), Some(3));
        assert_eq!(shard.other_of_type("nothing").count(), 0);
    }

    #[test]
    fn rejects_version_drift_and_malformed_lines() {
        let drift = "{\"type\":\"counter\",\"v\":2,\"name\":\"c\",\"value\":1}";
        assert!(ShardData::parse(drift)
            .unwrap_err()
            .contains("schema version"));
        assert!(ShardData::parse("{\"no\":\"type\"}").is_err());
        assert!(ShardData::parse("garbage").is_err());
        let bad_hist = "{\"type\":\"histogram\",\"v\":1,\"name\":\"h\",\"count\":1,\
                        \"sum\":1,\"min\":1,\"max\":1,\"bounds\":[10],\"counts\":[1]}";
        assert!(ShardData::parse(bad_hist)
            .unwrap_err()
            .contains("bucket shape"));
    }

    #[test]
    fn merge_from_equals_parse_into_same_aggregate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 5);
        reg.observe("h", 100);
        let block = metrics_json_lines(&reg.snapshot());

        let mut folded = ShardData::new();
        folded.parse_into(&block).unwrap();
        folded.parse_into(&block).unwrap();

        let one = ShardData::parse(&block).unwrap();
        let mut merged = one.clone();
        merged.merge_from(&one);

        assert_eq!(folded, merged);
        assert_eq!(merged.counter("c"), 10);
    }

    #[test]
    fn tail_text_leaves_torn_final_line_unconsumed() {
        let mut shard = ShardData::new();
        let text = "{\"type\":\"counter\",\"v\":1,\"name\":\"c\",\"value\":1}\n\
                    {\"type\":\"counter\",\"v\":1,\"name\":\"c\",\"va";
        let consumed = shard.tail_text(text).unwrap();
        assert_eq!(consumed, text.rfind('\n').unwrap() + 1);
        assert_eq!(shard.counter("c"), 1, "only the complete line parsed");
        // No newline at all: nothing consumed, nothing parsed.
        let mut empty = ShardData::new();
        assert_eq!(empty.tail_text("{\"type\":\"coun").unwrap(), 0);
        assert_eq!(empty, ShardData::new());
        // A *committed* bad line still fails loudly.
        assert!(ShardData::new().tail_text("garbage\n").is_err());
    }

    /// The live-tailing scenario: a writer appends a block, is caught
    /// mid-record, then finishes the record and appends more. Tailing
    /// across those snapshots must converge to exactly the full-file
    /// parse, with the torn record parsed once (whole), never twice.
    #[test]
    fn tail_file_resumes_mid_record_and_matches_full_parse() {
        use std::io::Write;
        let reg1 = MetricsRegistry::new();
        reg1.counter_add("tail.machines", 1);
        reg1.observe("tail.latency", 40_000);
        let block1 = metrics_json_lines(&reg1.snapshot());
        let reg2 = MetricsRegistry::new();
        reg2.counter_add("tail.machines", 1);
        reg2.observe("tail.latency", 44_000);
        let block2 = metrics_json_lines(&reg2.snapshot());

        let dir = std::env::temp_dir().join(format!("kshot-tail-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("worker-0.jsonl");

        // First snapshot: all of block1 plus a torn prefix of block2's
        // first record (cut mid-line, no newline).
        let torn = &block2[..block2.find('\n').unwrap() / 2];
        std::fs::write(&path, format!("{block1}{torn}")).unwrap();

        let mut tail = ShardData::new();
        let off1 = tail.tail_file(&path, 0).unwrap();
        assert_eq!(off1, block1.len() as u64, "torn record not consumed");
        assert_eq!(tail.counter("tail.machines"), 1);

        // Re-tailing with no new complete data is a no-op.
        let again = tail.clone();
        assert_eq!(tail.tail_file(&path, off1).unwrap(), off1);
        assert_eq!(tail, again);

        // Writer finishes the record and appends the rest of block2.
        let mut f = std::fs::OpenOptions::new()
            .append(true)
            .open(&path)
            .unwrap();
        f.write_all(&block2.as_bytes()[torn.len()..]).unwrap();
        drop(f);

        let off2 = tail.tail_file(&path, off1).unwrap();
        assert_eq!(off2, (block1.len() + block2.len()) as u64);
        assert_eq!(tail.counter("tail.machines"), 2);
        let h = tail.histogram("tail.latency").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 84_000);

        // The incremental aggregate equals the one-shot full parse.
        assert_eq!(tail, ShardData::parse_file(&path).unwrap());

        // An offset past EOF (rotation/truncation) fails loudly.
        let err = ShardData::new().tail_file(&path, off2 + 1).unwrap_err();
        assert!(err.to_string().contains("beyond file length"), "{err}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Truncation guard: a tailer resumes from a saved offset, but the
    /// file was rotated (recreated shorter) in between. The tail must
    /// return a typed [`ShardError::Truncated`] — never silently read
    /// from a stale offset into the new file's bytes.
    #[test]
    fn tail_file_flags_truncation_under_a_live_tailer() {
        let reg = MetricsRegistry::new();
        reg.counter_add("rot.machines", 1);
        let block = metrics_json_lines(&reg.snapshot());

        let dir = std::env::temp_dir().join(format!("kshot-rotate-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("worker-0.jsonl");
        std::fs::write(&path, format!("{block}{block}{block}")).unwrap();

        let mut tail = ShardData::new();
        let off = tail.tail_file(&path, 0).unwrap();
        assert_eq!(off, 3 * block.len() as u64);

        // Rotation: the writer recreates the file with fresh content
        // shorter than the tailer's resume offset.
        std::fs::write(&path, &block).unwrap();
        let before = tail.clone();
        let err = tail.tail_file(&path, off).unwrap_err();
        match &err {
            ShardError::Truncated {
                path: p,
                offset,
                len,
            } => {
                assert_eq!(p, &path);
                assert_eq!(*offset, off);
                assert_eq!(*len, block.len() as u64);
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
        // The error is loud and self-describing...
        assert!(err.to_string().contains("truncated or rotated"), "{err}");
        // ...and the aggregate is untouched: no garbage was folded in.
        assert_eq!(tail, before);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    /// Sketch lines round-trip through a shard and merge across blocks
    /// exactly like the in-memory registry merge.
    #[test]
    fn parses_and_merges_sketch_lines() {
        let m1 = MetricsRegistry::new();
        m1.sketch_observe("machine.smm_dwell_ns", 45_000);
        m1.sketch_observe("machine.smm_dwell_ns", 61_000);
        let m2 = MetricsRegistry::new();
        m2.sketch_observe("machine.smm_dwell_ns", 47_000);
        let text = format!(
            "{}{}",
            metrics_json_lines(&m1.snapshot()),
            metrics_json_lines(&m2.snapshot())
        );
        let shard = ShardData::parse(&text).unwrap();
        let s = shard.sketch("machine.smm_dwell_ns").unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 153_000);

        let merged = MetricsRegistry::new();
        merged.merge_from(&m1);
        merged.merge_from(&m2);
        shard.assert_metrics_match(&merged.snapshot()).unwrap();

        // A sketch mismatch (or absence) is reported specifically.
        let drifted = MetricsRegistry::new();
        drifted.sketch_observe("machine.smm_dwell_ns", 1);
        let err = shard.assert_metrics_match(&drifted.snapshot()).unwrap_err();
        assert!(err.contains("sketch"), "{err}");
    }

    /// Tree-merging per-worker aggregates equals the sequential fold —
    /// including the order-dependent pieces (gauges, `other` order).
    #[test]
    fn merge_tree_equals_sequential_fold() {
        let mut shards = Vec::new();
        for w in 0..5u64 {
            let reg = MetricsRegistry::new();
            reg.counter_add("t.machines", w + 1);
            reg.gauge_set("t.last_worker", w as i64);
            reg.observe("t.lat", 10_000 * (w + 1));
            reg.sketch_observe("t.dwell", 40_000 + w);
            let mut text = metrics_json_lines(&reg.snapshot());
            text.push_str(&format!(
                "{{\"type\":\"machine\",\"v\":1,\"machine\":{w},\"ok\":true}}\n"
            ));
            shards.push(ShardData::parse(&text).unwrap());
        }

        let mut sequential = ShardData::new();
        for s in &shards {
            sequential.merge_from(s);
        }
        let tree = ShardData::merge_tree(shards);
        assert_eq!(tree, sequential);
        assert_eq!(tree.counter("t.machines"), 1 + 2 + 3 + 4 + 5);
        assert_eq!(tree.gauges.get("t.last_worker"), Some(&4));
        let order: Vec<u64> = tree
            .other_of_type("machine")
            .map(|m| m.get("machine").and_then(Value::as_u64).unwrap())
            .collect();
        assert_eq!(order, vec![0, 1, 2, 3, 4], "shard order preserved");
        // Degenerate shapes.
        assert_eq!(ShardData::merge_tree(Vec::new()), ShardData::new());
        let one = sequential.clone();
        assert_eq!(ShardData::merge_tree(vec![one.clone()]), one);
    }

    /// Worker roll-up lines reconstruct per-worker trees whose merge
    /// equals the tree built over all digests sequentially — the
    /// offline half of the million-machine digest proof.
    #[test]
    fn digest_rollups_reconstruct_and_merge_to_the_campaign_root() {
        use crate::merkle::digest_hex;
        let digests: Vec<[u8; 32]> = (0..23u64)
            .map(|i| {
                let mut d = [0u8; 32];
                d[..8].copy_from_slice(&i.to_le_bytes());
                d
            })
            .collect();
        let reference = DigestTree::from_leaves(&digests);
        // Two workers over contiguous ranges [0,10) and [10,23).
        let mut lines = String::new();
        for (start, end) in [(0usize, 10usize), (10, 23)] {
            let mut tree = DigestTree::starting_at(start as u64);
            digests[start..end].iter().for_each(|d| tree.append(*d));
            let frontier: Vec<String> = tree
                .frontier()
                .iter()
                .map(|n| format!("[{},{},\"{}\"]", n.level, n.index, digest_hex(&n.hash)))
                .collect();
            lines.push_str(&format!(
                "{{\"type\":\"rollup\",\"v\":1,\"start\":{},\"machines\":{},\"root\":\"{}\",\"frontier\":[{}]}}\n",
                start,
                end - start,
                digest_hex(&tree.root()),
                frontier.join(",")
            ));
        }
        let shard = ShardData::parse(&lines).unwrap();
        let rollups = shard.digest_rollups().unwrap();
        assert_eq!(rollups.len(), 2);
        let mut merged = rollups[0].tree.clone();
        merged.merge(&rollups[1].tree).unwrap();
        assert_eq!(merged.root(), reference.root());
        assert_eq!(rollups[0].root, rollups[0].tree.root());

        // A corrupted stated root fails loudly, not silently.
        let mut tampered = lines.clone();
        let first_root_at = tampered.find("\"root\":\"").unwrap() + 8;
        let replacement = if &tampered[first_root_at..first_root_at + 1] == "0" {
            "1"
        } else {
            "0"
        };
        tampered.replace_range(first_root_at..first_root_at + 1, replacement);
        let err = ShardData::parse(&tampered)
            .unwrap()
            .digest_rollups()
            .unwrap_err();
        assert!(err.contains("does not match"), "{err}");
    }

    #[test]
    fn mismatch_reports_are_specific() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 5);
        let shard = ShardData::parse(&metrics_json_lines(&reg.snapshot())).unwrap();
        let other = MetricsRegistry::new();
        other.counter_add("c", 6);
        let err = shard.assert_metrics_match(&other.snapshot()).unwrap_err();
        assert!(err.contains("counter \"c\""), "{err}");
    }
}
