//! Counters, gauges, fixed-bucket histograms, and mergeable quantile
//! sketches.

use std::collections::BTreeMap;
use std::sync::Mutex;

use crate::sketch::QuantileSketch;

/// Default histogram bucket upper bounds in nanoseconds: 1µs to ~1s in
/// roughly decade steps with a 1-2-5 pattern, plus a +Inf overflow
/// bucket implied at the end. Chosen to resolve both SMM stage times
/// (tens of µs) and whole live-patch runs (ms to s).
pub const DEFAULT_BOUNDS_NS: [u64; 16] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// One histogram: fixed bounds, counts per bucket (+ overflow), and the
/// usual scalar aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Nearest-rank percentile estimated from the buckets: the upper
    /// bound of the bucket holding the `pct`-th ranked observation,
    /// clamped into `[min, max]` so degenerate histograms behave
    /// exactly — an all-equal (or single-sample) histogram returns the
    /// observed value at every percentile, and an empty one returns 0.
    pub fn percentile(&self, pct: u8) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let pct = u64::from(pct.min(100));
        // ceil(count * pct / 100), computed without overflow for counts
        // near u64::MAX by splitting the product.
        let rank = (self.count / 100).saturating_mul(pct)
            + ((self.count % 100).saturating_mul(pct)).div_ceil(100);
        let rank = rank.max(1);
        let mut seen = 0u64;
        for (i, &n) in self.counts.iter().enumerate() {
            seen = seen.saturating_add(n);
            if seen >= rank {
                let bound = self.bounds.get(i).copied().unwrap_or(self.max);
                return bound.clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Fold another snapshot into this one, exactly as the live
    /// registry merge does: identical bounds merge bucket-for-bucket,
    /// differing bounds re-bucket by upper bound, and every aggregate
    /// saturates at the `u64` range. This is how streamed shard files
    /// are re-aggregated into campaign totals.
    pub fn merge_from(&mut self, other: &HistogramSnapshot) {
        // A merged-in empty snapshot must not drag `min` to 0 (the
        // snapshot encoding of "no samples").
        merge_counts(&self.bounds, &mut self.counts, &other.bounds, &other.counts);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = if self.count == 0 {
                other.min
            } else {
                self.min.min(other.min)
            };
            self.max = self.max.max(other.max);
        }
        self.count = self.count.saturating_add(other.count);
    }
}

/// Bucket-merge `other` into `(bounds, counts)`: identical bounds add
/// element-wise; differing bounds re-bucket each of `other`'s buckets by
/// its upper bound (overflow lands in overflow). All additions saturate.
fn merge_counts(bounds: &[u64], counts: &mut [u64], other_bounds: &[u64], other_counts: &[u64]) {
    if bounds == other_bounds {
        for (mine, theirs) in counts.iter_mut().zip(other_counts) {
            *mine = mine.saturating_add(*theirs);
        }
    } else {
        for (i, &n) in other_counts.iter().enumerate() {
            let representative = other_bounds.get(i).copied().unwrap_or(u64::MAX);
            let idx = bounds.partition_point(|&b| b < representative);
            counts[idx] = counts[idx].saturating_add(n);
        }
    }
}

#[derive(Debug)]
struct Histogram {
    // Owned (not `&'static`) so a registry can also adopt buckets from
    // another registry's histograms during [`MetricsRegistry::merge_from`].
    bounds: Vec<u64>,
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &[u64]) -> Self {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    /// Fold `other` into `self`. Identical bounds merge bucket-for-
    /// bucket; differing bounds re-bucket each of `other`'s buckets by
    /// its upper bound (overflow lands in overflow), preserving totals.
    fn merge(&mut self, other: &Histogram) {
        merge_counts(&self.bounds, &mut self.counts, &other.bounds, &other.counts);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        if other.count > 0 {
            self.min = self.min.min(other.min);
            self.max = self.max.max(other.max);
        }
    }

    fn observe(&mut self, value: u64) {
        // partition_point returns the count of bounds strictly below the
        // value, i.e. the index of the first bucket whose (inclusive)
        // upper bound admits it; past the last bound it lands on the
        // overflow slot.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.clone(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
    sketches: BTreeMap<&'static str, QuantileSketch>,
}

/// A point-in-time copy of every metric, name-sorted for deterministic
/// export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, i64)>,
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
    pub sketches: Vec<(&'static str, QuantileSketch)>,
}

impl MetricsSnapshot {
    /// Value of a counter, zero when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Histogram by name, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }

    /// Quantile sketch by name, if any observations were recorded.
    pub fn sketch(&self, name: &str) -> Option<&QuantileSketch> {
        self.sketches
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, s)| s)
    }
}

/// The metrics store attached to a [`Recorder`](crate::Recorder).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        self.inner.lock().unwrap().gauges.insert(name, value);
    }

    /// Record one observation in the named histogram (default bounds).
    pub fn observe(&self, name: &'static str, value: u64) {
        self.observe_with_bounds(name, value, &DEFAULT_BOUNDS_NS);
    }

    /// Record one observation using explicit bucket bounds. The bounds
    /// are fixed on first use; later calls with different bounds keep
    /// the original buckets.
    pub fn observe_with_bounds(&self, name: &'static str, value: u64, bounds: &[u64]) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Record one observation in the named quantile sketch. Unlike
    /// [`MetricsRegistry::observe`], the aggregate is a log-bucket
    /// [`QuantileSketch`] — mergeable in any order with byte-identical
    /// results, and queryable at arbitrary per-mille quantiles. This is
    /// the aggregation-path signal for fleet latency percentiles.
    pub fn sketch_observe(&self, name: &'static str, value: u64) {
        self.inner
            .lock()
            .unwrap()
            .sketches
            .entry(name)
            .or_default()
            .observe(value);
    }

    /// Fold every metric of `other` into this registry: counters add,
    /// gauges take `other`'s value (last writer wins, as with
    /// [`MetricsRegistry::gauge_set`]), histograms merge bucket-wise
    /// (re-bucketing by upper bound when the bounds differ).
    ///
    /// This is how a fleet campaign folds per-machine registries into
    /// one report; `other` is left untouched.
    pub fn merge_from(&self, other: &MetricsRegistry) {
        // Two locks are held briefly, always in (self, other) order at
        // this single call site shape; merging a registry into itself
        // would deadlock, so reject it.
        assert!(
            !std::ptr::eq(self, other),
            "cannot merge a registry into itself"
        );
        let mut mine = self.inner.lock().unwrap();
        let theirs = other.inner.lock().unwrap();
        for (name, v) in &theirs.counters {
            let slot = mine.counters.entry(*name).or_insert(0);
            *slot = slot.saturating_add(*v);
        }
        for (name, v) in &theirs.gauges {
            mine.gauges.insert(*name, *v);
        }
        for (name, h) in &theirs.histograms {
            match mine.histograms.entry(*name) {
                std::collections::btree_map::Entry::Occupied(mut e) => e.get_mut().merge(h),
                std::collections::btree_map::Entry::Vacant(e) => {
                    let mut fresh = Histogram::new(&h.bounds);
                    fresh.merge(h);
                    e.insert(fresh);
                }
            }
        }
        for (name, s) in &theirs.sketches {
            mine.sketches.entry(*name).or_default().merge_from(s);
        }
    }

    /// Copy out every metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (*k, h.snapshot()))
                .collect(),
            sketches: inner
                .sketches
                .iter()
                .map(|(k, s)| (*k, s.clone()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 2);
        reg.counter_add("c", 3);
        reg.counter_add("lim", u64::MAX);
        reg.counter_add("lim", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.counter("lim"), u64::MAX);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.snapshot().gauge("g"), None);
        reg.gauge_set("g", 7);
        reg.gauge_set("g", -3);
        assert_eq!(reg.snapshot().gauge("g"), Some(-3));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        static BOUNDS: [u64; 3] = [10, 100, 1000];
        let reg = MetricsRegistry::new();
        // One per region: <=10, ==10 (same bucket), 11 (next), ==1000,
        // 1001 (overflow).
        for v in [3, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            reg.observe_with_bounds("h", v, &BOUNDS);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![10, 100, 1000]);
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn merge_from_folds_counters_gauges_histograms() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.counter_add("c", 1);
        b.counter_add("c", 2);
        b.counter_add("only_b", 7);
        a.gauge_set("g", 1);
        b.gauge_set("g", 9);
        a.observe("h", 1_500);
        b.observe("h", 3_000);
        b.observe("h2", 50);
        a.merge_from(&b);
        let snap = a.snapshot();
        assert_eq!(snap.counter("c"), 3);
        assert_eq!(snap.counter("only_b"), 7);
        assert_eq!(snap.gauge("g"), Some(9));
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 4_500);
        assert_eq!(h.min, 1_500);
        assert_eq!(h.max, 3_000);
        assert_eq!(snap.histogram("h2").unwrap().count, 1);
        // Bucket counts merged element-wise (identical default bounds).
        assert_eq!(h.counts.iter().sum::<u64>(), 2);
    }

    #[test]
    fn merge_rebuckets_when_bounds_differ() {
        static A_BOUNDS: [u64; 2] = [10, 100];
        static B_BOUNDS: [u64; 2] = [50, 500];
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.observe_with_bounds("h", 5, &A_BOUNDS);
        b.observe_with_bounds("h", 40, &B_BOUNDS); // bucket ≤50
        b.observe_with_bounds("h", 400, &B_BOUNDS); // bucket ≤500
        b.observe_with_bounds("h", 9_000, &B_BOUNDS); // overflow
        a.merge_from(&b);
        let snap = a.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![10, 100]);
        assert_eq!(h.count, 4);
        // b's ≤50 bucket re-buckets under a's ≤100; ≤500 and overflow
        // both land in a's overflow slot.
        assert_eq!(h.counts, vec![1, 1, 2]);
        assert_eq!(h.max, 9_000);
    }

    /// Companion to the PR-3 `SimTime` saturating-arithmetic fixes: a
    /// fleet merge tree can fold arbitrarily many shards, so every
    /// histogram aggregate must pin at `u64::MAX` instead of wrapping
    /// (release) or panicking (debug).
    #[test]
    fn histogram_merge_saturates_at_u64_boundaries() {
        // `sum` saturation: two near-MAX observations merged together.
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.observe("h", u64::MAX - 10);
        b.observe("h", u64::MAX);
        a.merge_from(&b);
        let h = a.snapshot().histogram("h").cloned().unwrap();
        assert_eq!(h.sum, u64::MAX);
        assert_eq!(h.count, 2);
        assert_eq!(h.min, u64::MAX - 10);
        assert_eq!(h.max, u64::MAX);

        // `count` and bucket-count saturation: ping-pong merging doubles
        // the counts each round, crossing the u64 boundary in < 130
        // rounds. Exercised on snapshots (the same merge arithmetic the
        // shard re-aggregation path uses).
        let mut x = h.clone();
        let mut y = h;
        for _ in 0..130 {
            x.merge_from(&y);
            y.merge_from(&x);
        }
        assert_eq!(x.count, u64::MAX);
        assert_eq!(y.count, u64::MAX);
        assert_eq!(x.sum, u64::MAX);
        // Every observation sat in the overflow bucket (values near
        // u64::MAX), so that bucket count saturated too.
        assert_eq!(*x.counts.last().unwrap(), u64::MAX);
        // Percentiles on a saturated histogram stay well-defined.
        assert_eq!(x.percentile(50), u64::MAX);
        // And the registry-level merge agrees: merging the saturated
        // registry into a fresh one keeps the pinned values.
        let c = MetricsRegistry::new();
        c.observe("h", 1);
        for _ in 0..130 {
            a.merge_from(&b);
            b.merge_from(&a);
        }
        c.merge_from(&a);
        let merged = c.snapshot().histogram("h").cloned().unwrap();
        assert_eq!(merged.count, u64::MAX);
        assert_eq!(merged.min, 1);
    }

    #[test]
    fn sketches_observe_merge_and_snapshot() {
        let a = MetricsRegistry::new();
        let b = MetricsRegistry::new();
        a.sketch_observe("s", 1_000);
        a.sketch_observe("s", 3_000);
        b.sketch_observe("s", 2_000);
        b.sketch_observe("only_b", 7);
        a.merge_from(&b);
        let snap = a.snapshot();
        let s = snap.sketch("s").unwrap();
        assert_eq!(s.count(), 3);
        assert_eq!(s.sum(), 6_000);
        assert_eq!(s.min(), 1_000);
        assert_eq!(s.max(), 3_000);
        assert_eq!(snap.sketch("only_b").unwrap().count(), 1);
        assert!(snap.sketch("missing").is_none());
        // Merge equals direct observation of the union, regardless of
        // which registry each sample passed through.
        let direct = MetricsRegistry::new();
        for v in [1_000, 3_000, 2_000] {
            direct.sketch_observe("s", v);
        }
        assert_eq!(direct.snapshot().sketch("s"), Some(s));
    }

    #[test]
    fn percentile_nearest_rank_over_buckets() {
        static BOUNDS: [u64; 4] = [10, 20, 30, 40];
        let reg = MetricsRegistry::new();
        for v in [5, 15, 25, 35] {
            reg.observe_with_bounds("h", v, &BOUNDS);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        // Ranks: p25→1st bucket, p50→2nd, p75→3rd, p100→4th; the
        // estimate is the bucket upper bound, clamped into [min, max].
        assert_eq!(h.percentile(25), 10);
        assert_eq!(h.percentile(50), 20);
        assert_eq!(h.percentile(75), 30);
        assert_eq!(h.percentile(100), 35); // clamped to max
        assert_eq!(h.percentile(1), 10);
        // Empty snapshot: every percentile is 0.
        let empty = HistogramSnapshot {
            bounds: vec![10],
            counts: vec![0, 0],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        assert_eq!(empty.percentile(50), 0);
        // Merging an empty snapshot is a no-op (min not dragged to 0).
        let mut h2 = h.clone();
        h2.merge_from(&empty);
        assert_eq!(&h2, h);
    }

    #[test]
    fn histogram_mean_and_empty_defaults() {
        let reg = MetricsRegistry::new();
        reg.observe("lat", 100);
        reg.observe("lat", 300);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("lat").unwrap().mean(), 200);
        let empty = HistogramSnapshot {
            bounds: vec![],
            counts: vec![0],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        assert_eq!(empty.mean(), 0);
    }
}
