//! Counters, gauges, and fixed-bucket histograms.

use std::collections::BTreeMap;
use std::sync::Mutex;

/// Default histogram bucket upper bounds in nanoseconds: 1µs to ~1s in
/// roughly decade steps with a 1-2-5 pattern, plus a +Inf overflow
/// bucket implied at the end. Chosen to resolve both SMM stage times
/// (tens of µs) and whole live-patch runs (ms to s).
pub const DEFAULT_BOUNDS_NS: [u64; 16] = [
    1_000,
    2_000,
    5_000,
    10_000,
    20_000,
    50_000,
    100_000,
    200_000,
    500_000,
    1_000_000,
    5_000_000,
    10_000_000,
    50_000_000,
    100_000_000,
    500_000_000,
    1_000_000_000,
];

/// One histogram: fixed bounds, counts per bucket (+ overflow), and the
/// usual scalar aggregates.
#[derive(Debug, Clone, PartialEq)]
pub struct HistogramSnapshot {
    /// Bucket upper bounds (inclusive), ascending.
    pub bounds: Vec<u64>,
    /// `bounds.len() + 1` counts; the last is the overflow bucket.
    pub counts: Vec<u64>,
    pub count: u64,
    pub sum: u64,
    pub min: u64,
    pub max: u64,
}

impl HistogramSnapshot {
    /// Mean observed value, zero when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }
}

#[derive(Debug)]
struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }

    fn observe(&mut self, value: u64) {
        // partition_point returns the count of bounds strictly below the
        // value, i.e. the index of the first bucket whose (inclusive)
        // upper bound admits it; past the last bound it lands on the
        // overflow slot.
        let idx = self.bounds.partition_point(|&b| b < value);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            bounds: self.bounds.to_vec(),
            counts: self.counts.clone(),
            count: self.count,
            sum: self.sum,
            min: if self.count == 0 { 0 } else { self.min },
            max: self.max,
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, i64>,
    histograms: BTreeMap<&'static str, Histogram>,
}

/// A point-in-time copy of every metric, name-sorted for deterministic
/// export.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub gauges: Vec<(&'static str, i64)>,
    pub histograms: Vec<(&'static str, HistogramSnapshot)>,
}

impl MetricsSnapshot {
    /// Value of a counter, zero when never touched.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
            .unwrap_or(0)
    }

    /// Value of a gauge, if ever set.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| *v)
    }

    /// Histogram by name, if any observations were recorded.
    pub fn histogram(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.histograms
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, h)| h)
    }
}

/// The metrics store attached to a [`Recorder`](crate::Recorder).
#[derive(Debug, Default)]
pub struct MetricsRegistry {
    inner: Mutex<RegistryInner>,
}

impl MetricsRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add `delta` to the named counter (created at zero on first use).
    pub fn counter_add(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().unwrap();
        let slot = inner.counters.entry(name).or_insert(0);
        *slot = slot.saturating_add(delta);
    }

    /// Set the named gauge.
    pub fn gauge_set(&self, name: &'static str, value: i64) {
        self.inner.lock().unwrap().gauges.insert(name, value);
    }

    /// Record one observation in the named histogram (default bounds).
    pub fn observe(&self, name: &'static str, value: u64) {
        self.observe_with_bounds(name, value, &DEFAULT_BOUNDS_NS);
    }

    /// Record one observation using explicit bucket bounds. The bounds
    /// are fixed on first use; later calls with different bounds keep
    /// the original buckets.
    pub fn observe_with_bounds(&self, name: &'static str, value: u64, bounds: &'static [u64]) {
        let mut inner = self.inner.lock().unwrap();
        inner
            .histograms
            .entry(name)
            .or_insert_with(|| Histogram::new(bounds))
            .observe(value);
    }

    /// Copy out every metric, name-sorted.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap();
        MetricsSnapshot {
            counters: inner.counters.iter().map(|(k, v)| (*k, *v)).collect(),
            gauges: inner.gauges.iter().map(|(k, v)| (*k, *v)).collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, h)| (*k, h.snapshot()))
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_saturate() {
        let reg = MetricsRegistry::new();
        reg.counter_add("c", 2);
        reg.counter_add("c", 3);
        reg.counter_add("lim", u64::MAX);
        reg.counter_add("lim", 1);
        let snap = reg.snapshot();
        assert_eq!(snap.counter("c"), 5);
        assert_eq!(snap.counter("lim"), u64::MAX);
        assert_eq!(snap.counter("missing"), 0);
    }

    #[test]
    fn gauges_overwrite() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.snapshot().gauge("g"), None);
        reg.gauge_set("g", 7);
        reg.gauge_set("g", -3);
        assert_eq!(reg.snapshot().gauge("g"), Some(-3));
    }

    #[test]
    fn histogram_bucket_boundaries_are_inclusive() {
        static BOUNDS: [u64; 3] = [10, 100, 1000];
        let reg = MetricsRegistry::new();
        // One per region: <=10, ==10 (same bucket), 11 (next), ==1000,
        // 1001 (overflow).
        for v in [3, 10, 11, 100, 101, 1000, 1001, u64::MAX] {
            reg.observe_with_bounds("h", v, &BOUNDS);
        }
        let snap = reg.snapshot();
        let h = snap.histogram("h").unwrap();
        assert_eq!(h.bounds, vec![10, 100, 1000]);
        assert_eq!(h.counts, vec![2, 2, 2, 2]);
        assert_eq!(h.count, 8);
        assert_eq!(h.min, 3);
        assert_eq!(h.max, u64::MAX);
    }

    #[test]
    fn histogram_mean_and_empty_defaults() {
        let reg = MetricsRegistry::new();
        reg.observe("lat", 100);
        reg.observe("lat", 300);
        let snap = reg.snapshot();
        assert_eq!(snap.histogram("lat").unwrap().mean(), 200);
        let empty = HistogramSnapshot {
            bounds: vec![],
            counts: vec![0],
            count: 0,
            sum: 0,
            min: 0,
            max: 0,
        };
        assert_eq!(empty.mean(), 0);
    }
}
