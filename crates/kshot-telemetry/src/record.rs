//! The record types captured by the recorder.

/// A structured field value attached to a span or event.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    U64(u64),
    I64(i64),
    F64(f64),
    Bool(bool),
    Str(String),
}

impl Value {
    /// Render as a JSON value fragment.
    pub fn to_json(&self) -> String {
        match self {
            Value::U64(v) => v.to_string(),
            Value::I64(v) => v.to_string(),
            Value::F64(v) => {
                if v.is_finite() {
                    format!("{v}")
                } else {
                    "null".to_string()
                }
            }
            Value::Bool(v) => v.to_string(),
            Value::Str(s) => json_escape(s),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Self {
        Value::U64(v)
    }
}

impl From<usize> for Value {
    fn from(v: usize) -> Self {
        Value::U64(v as u64)
    }
}

impl From<u32> for Value {
    fn from(v: u32) -> Self {
        Value::U64(v as u64)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::I64(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::Str(v.to_string())
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::Str(v)
    }
}

/// A key/value pair on a span or event.
pub type Field = (&'static str, Value);

/// A completed span: a named interval with dual timestamps.
///
/// Wall-clock nanoseconds are measured from the recorder's epoch
/// (`Instant` deltas, so monotonic). Simulated nanoseconds come from the
/// machine's [`SimTime`]-style cost model and are present only when the
/// instrumentation site passed them in.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Unique id within the process (monotonically assigned).
    pub id: u64,
    /// Enclosing span id on the same thread, if any.
    pub parent: Option<u64>,
    /// Static span name, e.g. `"smm.decrypt"`.
    pub name: &'static str,
    /// Small per-thread ordinal (not the OS tid).
    pub thread: u64,
    /// Wall-clock start, ns since the recorder epoch.
    pub wall_start_ns: u64,
    /// Wall-clock duration in ns.
    pub wall_dur_ns: u64,
    /// Simulated-clock start in ns, when supplied.
    pub sim_start_ns: Option<u64>,
    /// Simulated-clock end in ns, when supplied.
    pub sim_end_ns: Option<u64>,
    /// Structured fields attached while the span was open.
    pub fields: Vec<Field>,
}

impl SpanRecord {
    /// Simulated duration in ns, when both endpoints were supplied.
    pub fn sim_dur_ns(&self) -> Option<u64> {
        match (self.sim_start_ns, self.sim_end_ns) {
            (Some(s), Some(e)) => Some(e.saturating_sub(s)),
            _ => None,
        }
    }
}

/// A point-in-time occurrence (fault, violation, trampoline write, ...).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Enclosing span id on the emitting thread, if any.
    pub parent: Option<u64>,
    /// Static event name, e.g. `"machine.smram_lock_fault"`.
    pub name: &'static str,
    /// Small per-thread ordinal (not the OS tid).
    pub thread: u64,
    /// Wall-clock timestamp, ns since the recorder epoch.
    pub wall_ns: u64,
    /// Simulated-clock timestamp in ns, when supplied.
    pub sim_ns: Option<u64>,
    /// Structured fields.
    pub fields: Vec<Field>,
}

/// Anything the recorder retains.
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    Span(SpanRecord),
    Event(EventRecord),
}

impl Record {
    /// The record's name, whichever variant it is.
    pub fn name(&self) -> &'static str {
        match self {
            Record::Span(s) => s.name,
            Record::Event(e) => e.name,
        }
    }
}

/// Escape `s` as a JSON string literal, including the quotes.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_plain() {
        assert_eq!(json_escape("abc"), "\"abc\"");
    }

    #[test]
    fn escape_specials() {
        assert_eq!(json_escape("a\"b\\c"), r#""a\"b\\c""#);
        assert_eq!(json_escape("line1\nline2\t."), r#""line1\nline2\t.""#);
        assert_eq!(json_escape("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn sim_duration_requires_both_endpoints() {
        let mut r = SpanRecord {
            id: 1,
            parent: None,
            name: "x",
            thread: 0,
            wall_start_ns: 0,
            wall_dur_ns: 10,
            sim_start_ns: Some(100),
            sim_end_ns: None,
            fields: Vec::new(),
        };
        assert_eq!(r.sim_dur_ns(), None);
        r.sim_end_ns = Some(250);
        assert_eq!(r.sim_dur_ns(), Some(150));
    }
}
