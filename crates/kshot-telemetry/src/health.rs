//! Live campaign health plane: windowed signals, declarative verdicts,
//! and an incremental shard tailer.
//!
//! A [`HealthMonitor`] follows the per-worker `worker-<N>.jsonl` shards
//! *while a campaign is still running* — no completion barrier — via
//! [`ShardData::tail_file`]. Lines are grouped into per-machine
//! **parcels** (each worker flushes one machine's records, metrics
//! block, and `"type":"machine"` outcome line contiguously), and
//! parcels are folded into fixed-size **windows of machine indices**:
//! window `k` covers machines `[k·W, min((k+1)·W, machines))`. A window
//! is emitted as soon as every machine in its range has reported,
//! regardless of which worker ran it or when — which is what makes the
//! emitted [`HealthSnapshot`] sequence *byte-identical* across worker
//! counts and pipeline depths for a fixed seed, even though arrival
//! order is wildly different.
//!
//! Each snapshot carries a monotonically increasing `seq`, the window's
//! [`SignalStats`] (success/failure/retry rates in per-mille, faults,
//! SMM over-budget counts, record-drop counters, and dwell/latency
//! percentiles from the mergeable [`QuantileSketch`]), the running
//! campaign totals, and a [`HealthVerdict`] computed from a declarative
//! [`HealthPolicy`]. Verdicts are the interface the future staged-
//! rollout orchestrator consumes: `Healthy` keeps going, `Degraded`
//! names its reasons (canary warning), `Halt` demands a stop.
//!
//! Everything in a snapshot is integer-valued and derived purely from
//! shard contents — wall-clock never leaks into the emitted JSON, so
//! `health.jsonl` is as deterministic as the shards themselves.

use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use crate::json::Value;
use crate::shard::{ShardData, ShardError};
use crate::sketch::QuantileSketch;
use crate::stream::StreamSink;

/// The sketch-backed SMM dwell signal consumed by the monitor; emitted
/// by `kshot-machine` on every SMM exit via
/// [`crate::sketch_observe`].
pub const SMM_DWELL_METRIC: &str = "machine.smm_dwell_ns";

/// Declarative health thresholds. All rates are per-mille (so 50 means
/// 5%); the dwell check compares the window's sketch p99 against
/// `budget × margin / 1000`. A threshold of `u64::MAX` (or a `None`
/// budget) disables that check.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthPolicy {
    /// Window failure rate above this degrades the campaign.
    pub degrade_failure_per_mille: u64,
    /// Window failure rate above this demands a halt.
    pub halt_failure_per_mille: u64,
    /// Window retry rate (retries per attempt-machine) above this
    /// degrades — the early-warning signal a fault storm trips first.
    pub degrade_retry_per_mille: u64,
    /// SMM dwell budget in ns; `None` disables the dwell check.
    pub dwell_budget_ns: Option<u64>,
    /// Allowed dwell p99 as per-mille of the budget (1000 = exactly the
    /// budget, 1500 = 1.5× headroom).
    pub dwell_margin_per_mille: u64,
    /// Windows smaller than this many machines never degrade or halt —
    /// rate estimates over one or two machines are too noisy to act on.
    pub min_window_machines: u64,
}

impl Default for HealthPolicy {
    fn default() -> Self {
        HealthPolicy {
            degrade_failure_per_mille: 50,
            halt_failure_per_mille: 300,
            degrade_retry_per_mille: 250,
            dwell_budget_ns: None,
            dwell_margin_per_mille: 1000,
            min_window_machines: 1,
        }
    }
}

impl HealthPolicy {
    pub fn new() -> HealthPolicy {
        HealthPolicy::default()
    }

    /// Degrade above `degrade`‰ window failures, halt above `halt`‰.
    pub fn with_failure_per_mille(mut self, degrade: u64, halt: u64) -> Self {
        self.degrade_failure_per_mille = degrade;
        self.halt_failure_per_mille = halt;
        self
    }

    /// Degrade above `ceiling`‰ window retries.
    pub fn with_retry_ceiling_per_mille(mut self, ceiling: u64) -> Self {
        self.degrade_retry_per_mille = ceiling;
        self
    }

    /// Degrade when the window's dwell p99 exceeds
    /// `budget_ns × margin_per_mille / 1000`.
    pub fn with_dwell_budget(mut self, budget_ns: u64, margin_per_mille: u64) -> Self {
        self.dwell_budget_ns = Some(budget_ns);
        self.dwell_margin_per_mille = margin_per_mille;
        self
    }

    /// Suppress verdict escalation for windows smaller than `machines`.
    pub fn with_min_window_machines(mut self, machines: u64) -> Self {
        self.min_window_machines = machines;
        self
    }

    /// Evaluate one window's signals against the policy.
    fn evaluate(&self, w: &SignalStats) -> HealthVerdict {
        let mut halt = Vec::new();
        let mut degraded = Vec::new();
        if w.machines >= self.min_window_machines {
            if w.failure_per_mille > self.halt_failure_per_mille {
                halt.push(format!(
                    "failure rate {} per-mille exceeds halt ceiling {}",
                    w.failure_per_mille, self.halt_failure_per_mille
                ));
            } else if w.failure_per_mille > self.degrade_failure_per_mille {
                degraded.push(format!(
                    "failure rate {} per-mille exceeds degrade ceiling {}",
                    w.failure_per_mille, self.degrade_failure_per_mille
                ));
            }
            if w.retry_per_mille > self.degrade_retry_per_mille {
                degraded.push(format!(
                    "retry rate {} per-mille exceeds ceiling {}",
                    w.retry_per_mille, self.degrade_retry_per_mille
                ));
            }
        }
        if let (Some(budget), true) = (self.dwell_budget_ns, w.dwell_samples > 0) {
            let allowed = (u128::from(budget) * u128::from(self.dwell_margin_per_mille)) / 1000;
            if u128::from(w.dwell_p99_ns) > allowed {
                degraded.push(format!(
                    "dwell p99 {}ns exceeds budget {}ns x {} per-mille margin",
                    w.dwell_p99_ns, budget, self.dwell_margin_per_mille
                ));
            }
        }
        if !halt.is_empty() {
            HealthVerdict::Halt { reasons: halt }
        } else if !degraded.is_empty() {
            HealthVerdict::Degraded { reasons: degraded }
        } else {
            HealthVerdict::Healthy
        }
    }
}

/// The tri-state outcome a rollout orchestrator consumes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HealthVerdict {
    Healthy,
    /// Something crossed a warning threshold; reasons are
    /// human-readable and policy-derived.
    Degraded {
        reasons: Vec<String>,
    },
    /// A stop-the-campaign threshold was crossed.
    Halt {
        reasons: Vec<String>,
    },
}

impl HealthVerdict {
    /// 0 = healthy, 1 = degraded, 2 = halt — for "worst verdict" folds.
    pub fn severity(&self) -> u8 {
        match self {
            HealthVerdict::Healthy => 0,
            HealthVerdict::Degraded { .. } => 1,
            HealthVerdict::Halt { .. } => 2,
        }
    }

    /// Stable lowercase label used in JSON and tables.
    pub fn label(&self) -> &'static str {
        match self {
            HealthVerdict::Healthy => "healthy",
            HealthVerdict::Degraded { .. } => "degraded",
            HealthVerdict::Halt { .. } => "halt",
        }
    }

    /// The policy-derived reason strings (empty when healthy).
    pub fn reasons(&self) -> &[String] {
        match self {
            HealthVerdict::Healthy => &[],
            HealthVerdict::Degraded { reasons } | HealthVerdict::Halt { reasons } => reasons,
        }
    }
}

/// One cohort's (or the running total's) integer-valued signals.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SignalStats {
    /// Machines that have reported an outcome.
    pub machines: u64,
    pub ok: u64,
    pub failed: u64,
    pub retries: u64,
    pub faults_injected: u64,
    /// Over-budget SMIs flagged by the dwell watchdog.
    pub smm_overbudget: u64,
    /// Telemetry records lost to ring eviction or sink backpressure.
    pub records_dropped: u64,
    /// `failed / machines` in per-mille.
    pub failure_per_mille: u64,
    /// `retries / machines` in per-mille.
    pub retry_per_mille: u64,
    /// Dwell-sketch observations backing the percentiles below.
    pub dwell_samples: u64,
    pub dwell_p50_ns: u64,
    pub dwell_p95_ns: u64,
    pub dwell_p99_ns: u64,
    pub dwell_max_ns: u64,
    /// End-to-end per-machine patch latency (simulated clock).
    pub latency_p50_ns: u64,
    pub latency_p95_ns: u64,
}

impl SignalStats {
    fn json(&self) -> String {
        format!(
            concat!(
                "{{\"machines\":{},\"ok\":{},\"failed\":{},\"retries\":{},",
                "\"faults_injected\":{},\"smm_overbudget\":{},\"records_dropped\":{},",
                "\"failure_per_mille\":{},\"retry_per_mille\":{},\"dwell_samples\":{},",
                "\"dwell_p50_ns\":{},\"dwell_p95_ns\":{},\"dwell_p99_ns\":{},",
                "\"dwell_max_ns\":{},\"latency_p50_ns\":{},\"latency_p95_ns\":{}}}"
            ),
            self.machines,
            self.ok,
            self.failed,
            self.retries,
            self.faults_injected,
            self.smm_overbudget,
            self.records_dropped,
            self.failure_per_mille,
            self.retry_per_mille,
            self.dwell_samples,
            self.dwell_p50_ns,
            self.dwell_p95_ns,
            self.dwell_p99_ns,
            self.dwell_max_ns,
            self.latency_p50_ns,
            self.latency_p95_ns,
        )
    }
}

/// One emitted window: schema-versioned, sequence-numbered, fully
/// integer-valued, and derived only from shard contents — identical
/// across schedulers for a fixed seed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HealthSnapshot {
    /// Monotonic window sequence, starting at 0.
    pub seq: u64,
    /// First machine index in the window (inclusive).
    pub window_start: u64,
    /// Last machine index in the window (exclusive).
    pub window_end: u64,
    /// Rollout wave this window belongs to, when the monitor was armed
    /// with wave boundaries ([`HealthMonitor::with_wave_boundaries`]).
    /// `None` for plain (non-rollout) campaigns — the JSON shape is
    /// unchanged for them.
    pub wave: Option<u64>,
    /// This window's signals.
    pub window: SignalStats,
    /// Running totals over all windows emitted so far (this one
    /// included).
    pub total: SignalStats,
    /// Policy verdict for this window.
    pub verdict: HealthVerdict,
}

impl HealthSnapshot {
    /// One `{"type":"health",...}` JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        let mut reasons = String::new();
        for (i, r) in self.verdict.reasons().iter().enumerate() {
            if i > 0 {
                reasons.push(',');
            }
            reasons.push_str(&crate::record::json_escape(r));
        }
        let wave = match self.wave {
            Some(w) => format!("\"wave\":{w},"),
            None => String::new(),
        };
        format!(
            concat!(
                "{{\"type\":\"health\",\"v\":{},\"seq\":{},{}",
                "\"window_start\":{},\"window_end\":{},",
                "\"window\":{},\"total\":{},\"verdict\":\"{}\",\"reasons\":[{}]}}"
            ),
            crate::SCHEMA_VERSION,
            self.seq,
            wave,
            self.window_start,
            self.window_end,
            self.window.json(),
            self.total.json(),
            self.verdict.label(),
            reasons,
        )
    }
}

/// Everything accumulated for one machine-range (a parcel, a window, or
/// the campaign totals): outcome tallies plus the mergeable sketches.
#[derive(Debug, Clone, Default)]
struct Agg {
    machines: u64,
    ok: u64,
    failed: u64,
    retries: u64,
    faults_injected: u64,
    smm_overbudget: u64,
    records_dropped: u64,
    dwell: QuantileSketch,
    latency: QuantileSketch,
}

impl Agg {
    fn merge_from(&mut self, other: &Agg) {
        self.machines = self.machines.saturating_add(other.machines);
        self.ok = self.ok.saturating_add(other.ok);
        self.failed = self.failed.saturating_add(other.failed);
        self.retries = self.retries.saturating_add(other.retries);
        self.faults_injected = self.faults_injected.saturating_add(other.faults_injected);
        self.smm_overbudget = self.smm_overbudget.saturating_add(other.smm_overbudget);
        self.records_dropped = self.records_dropped.saturating_add(other.records_dropped);
        self.dwell.merge_from(&other.dwell);
        self.latency.merge_from(&other.latency);
    }

    fn stats(&self) -> SignalStats {
        let per_mille = |n: u64| {
            if self.machines == 0 {
                0
            } else {
                // n ≤ machines·small, machines ≥ 1: u128 avoids overflow.
                u64::try_from(u128::from(n) * 1000 / u128::from(self.machines)).unwrap_or(u64::MAX)
            }
        };
        SignalStats {
            machines: self.machines,
            ok: self.ok,
            failed: self.failed,
            retries: self.retries,
            faults_injected: self.faults_injected,
            smm_overbudget: self.smm_overbudget,
            records_dropped: self.records_dropped,
            failure_per_mille: per_mille(self.failed),
            retry_per_mille: per_mille(self.retries),
            dwell_samples: self.dwell.count(),
            dwell_p50_ns: self.dwell.quantile_per_mille(500),
            dwell_p95_ns: self.dwell.quantile_per_mille(950),
            dwell_p99_ns: self.dwell.quantile_per_mille(990),
            dwell_max_ns: self.dwell.max(),
            latency_p50_ns: self.latency.quantile_per_mille(500),
            latency_p95_ns: self.latency.quantile_per_mille(950),
        }
    }
}

/// Per-worker tail state: resume offset plus the lines of the machine
/// parcel currently being assembled.
struct WorkerTail {
    path: PathBuf,
    offset: u64,
    pending: String,
}

/// Final monitor output, consumed by `CampaignReport`.
#[derive(Debug, Clone, PartialEq)]
pub struct HealthReport {
    /// Every emitted snapshot, in sequence order.
    pub snapshots: Vec<HealthSnapshot>,
    /// Campaign-total signals (equal to the last snapshot's `total`
    /// when every window was emitted).
    pub total: SignalStats,
    /// Machines whose parcels the monitor consumed (windowed or not).
    pub machines_seen: u64,
    /// Shard lines folded by the tailer.
    pub lines_consumed: u64,
    /// Resident bytes of the campaign-total dwell + latency sketches —
    /// the O(1)-per-signal memory the aggregation path holds.
    pub resident_sketch_bytes: u64,
    /// Wall time spent inside `poll` (aggregation only, not sleeps).
    pub agg_wall: Duration,
    /// Summary of the attached integrity monitor, when
    /// [`HealthMonitor::with_integrity`] was used.
    pub integrity: Option<crate::integrity::IntegrityReport>,
}

impl HealthReport {
    /// Worst verdict across all snapshots; `Healthy` when none emitted.
    pub fn final_verdict(&self) -> HealthVerdict {
        self.snapshots
            .iter()
            .map(|s| &s.verdict)
            .max_by_key(|v| v.severity())
            .cloned()
            .unwrap_or(HealthVerdict::Healthy)
    }

    /// Largest window failure rate seen (per-mille).
    pub fn max_failure_per_mille(&self) -> u64 {
        self.snapshots
            .iter()
            .map(|s| s.window.failure_per_mille)
            .max()
            .unwrap_or(0)
    }

    /// Largest window retry rate seen (per-mille).
    pub fn max_retry_per_mille(&self) -> u64 {
        self.snapshots
            .iter()
            .map(|s| s.window.retry_per_mille)
            .max()
            .unwrap_or(0)
    }

    /// Largest window dwell p99 seen (ns).
    pub fn max_dwell_p99_ns(&self) -> u64 {
        self.snapshots
            .iter()
            .map(|s| s.window.dwell_p99_ns)
            .max()
            .unwrap_or(0)
    }
}

/// Incremental health monitor over a campaign's worker shards.
///
/// Drive it with [`poll`](Self::poll) while the campaign runs (each
/// call tails every shard and emits any windows that completed), then
/// [`finish`](Self::finish) after the final flush to collect the
/// [`HealthReport`].
pub struct HealthMonitor {
    policy: HealthPolicy,
    window: u64,
    machines: u64,
    /// Exclusive machine-index end of each rollout wave, ascending.
    /// Empty for plain campaigns; when set, every emitted snapshot is
    /// tagged with the wave its window falls in.
    wave_ends: Vec<u64>,
    tails: Vec<WorkerTail>,
    /// Completed parcels not yet absorbed into a window, by machine.
    parcels: std::collections::BTreeMap<u64, Agg>,
    /// First machine index of the next window to emit.
    next_window_start: u64,
    total: Agg,
    snapshots: Vec<HealthSnapshot>,
    sink: Option<StreamSink>,
    lines_consumed: u64,
    agg_wall: Duration,
    /// Detached SMM integrity monitor fed with the parcels' `smi.*`
    /// flight lines, when attached.
    integrity: Option<crate::integrity::IntegrityMonitor>,
    /// Integrity violations awaiting their machine's window, so the
    /// window's verdict escalates to Halt. Drained at window emit —
    /// bounded by the in-flight machine count, like `parcels`.
    integrity_flags: std::collections::BTreeMap<u64, Vec<String>>,
}

impl HealthMonitor {
    /// A monitor over `machines` total machines whose shards live at
    /// `shard_paths`, windowing by `window` machine indices (clamped to
    /// ≥ 1). Shard files need not exist yet — workers create them
    /// lazily; missing files are simply "no data yet".
    pub fn new(
        policy: HealthPolicy,
        window: usize,
        machines: usize,
        shard_paths: Vec<PathBuf>,
    ) -> HealthMonitor {
        HealthMonitor {
            policy,
            window: (window.max(1)) as u64,
            machines: machines as u64,
            wave_ends: Vec::new(),
            tails: shard_paths
                .into_iter()
                .map(|path| WorkerTail {
                    path,
                    offset: 0,
                    pending: String::new(),
                })
                .collect(),
            parcels: std::collections::BTreeMap::new(),
            next_window_start: 0,
            total: Agg::default(),
            snapshots: Vec::new(),
            sink: None,
            lines_consumed: 0,
            agg_wall: Duration::ZERO,
            integrity: None,
            integrity_flags: std::collections::BTreeMap::new(),
        }
    }

    /// Attach a detached SMM integrity monitor: every `smi.*` flight
    /// line in the tailed parcels is replayed against `policy`, and a
    /// window containing a violating machine escalates its verdict to
    /// [`HealthVerdict::Halt`] carrying the violation reasons — which
    /// drives the rollout controller's auto-rollback exactly like a
    /// health Halt.
    pub fn with_integrity(mut self, policy: crate::integrity::IntegrityPolicy) -> HealthMonitor {
        self.integrity = Some(crate::integrity::IntegrityMonitor::new(policy));
        self
    }

    /// The attached integrity monitor, if any.
    pub fn integrity(&self) -> Option<&crate::integrity::IntegrityMonitor> {
        self.integrity.as_ref()
    }

    /// Tag every emitted snapshot with the rollout wave its window
    /// falls in. `ends` are the exclusive machine-index ends of the
    /// waves, ascending (wave `k` covers `[ends[k-1], ends[k])`).
    /// Windows must not straddle wave boundaries — rollout planners
    /// guarantee this by sizing the monitor window to the canary cohort.
    pub fn with_wave_boundaries(mut self, ends: Vec<u64>) -> HealthMonitor {
        self.wave_ends = ends;
        self
    }

    /// Re-arm the dwell check mid-flight: windows judged from now on
    /// compare their dwell p99 against `budget_ns × margin / 1000`.
    /// This is the verdict→action plumbing behind canary dwell-budget
    /// auto-calibration — the rollout controller measures the canary
    /// cohort's own p99 and arms it (with headroom) for the ramp waves.
    /// Already-emitted snapshots are not re-judged.
    pub fn arm_dwell_budget(&mut self, budget_ns: u64, margin_per_mille: u64) {
        self.policy = self
            .policy
            .clone()
            .with_dwell_budget(budget_ns, margin_per_mille);
    }

    /// The policy windows are currently judged against (reflects any
    /// mid-flight [`arm_dwell_budget`](Self::arm_dwell_budget)).
    pub fn policy(&self) -> &HealthPolicy {
        &self.policy
    }

    /// Also stream every emitted snapshot to `path` as JSON lines
    /// (`health.jsonl`), flushed per snapshot so an external process
    /// can tail the monitor itself.
    ///
    /// # Errors
    ///
    /// Opening the sink file.
    pub fn with_snapshot_path(mut self, path: impl AsRef<Path>) -> Result<HealthMonitor, String> {
        let path = path.as_ref();
        let sink = StreamSink::to_path(path).map_err(|e| format!("{}: {e}", path.display()))?;
        self.sink = Some(sink);
        Ok(self)
    }

    /// Tail every shard once, absorb completed machine parcels, emit
    /// any windows that completed, and return how many new snapshots
    /// were emitted.
    ///
    /// # Errors
    ///
    /// A [`ShardError`] from any shard (truncation fails loudly), or a
    /// snapshot-sink write failure (as `Io`).
    pub fn poll(&mut self) -> Result<usize, ShardError> {
        let t0 = Instant::now();
        let before = self.snapshots.len();
        for i in 0..self.tails.len() {
            // A worker that hasn't started yet has no file — no data.
            if !self.tails[i].path.exists() {
                continue;
            }
            let mut fresh = ShardData::new();
            let path = self.tails[i].path.clone();
            let offset = self.tails[i].offset;
            // Probe tail only for offset advance; the real parse happens
            // per-parcel below, on line-accurate boundaries.
            let new_offset = fresh.tail_file(&path, offset)?;
            if new_offset == offset {
                continue;
            }
            let chunk = read_span(&path, offset, new_offset)?;
            self.tails[i].offset = new_offset;
            let pending = std::mem::take(&mut self.tails[i].pending);
            let mut buf = pending;
            buf.push_str(&chunk);
            self.absorb_worker_lines(i, buf)?;
        }
        self.emit_ready_windows();
        self.agg_wall += t0.elapsed();
        Ok(self.snapshots.len() - before)
    }

    /// Split a worker's committed lines into machine parcels: every
    /// `"type":"machine"` line closes the parcel containing it. Lines
    /// after the last machine line stay pending for the next poll.
    fn absorb_worker_lines(&mut self, worker: usize, text: String) -> Result<(), ShardError> {
        let path = self.tails[worker].path.clone();
        let parse_err = |e: String| ShardError::Parse {
            path: path.clone(),
            error: e,
        };
        let mut parcel_lines = String::new();
        for line in text.lines() {
            if line.trim().is_empty() {
                continue;
            }
            parcel_lines.push_str(line);
            parcel_lines.push('\n');
            if line.contains("\"type\":\"machine\"") {
                let shard = ShardData::parse(&parcel_lines).map_err(&parse_err)?;
                self.lines_consumed += parcel_lines.lines().count() as u64;
                let (machine, agg) = parcel_from_shard(&shard).map_err(&parse_err)?;
                if let Some(integrity) = self.integrity.as_mut() {
                    for smi in shard.other_of_type("smi") {
                        if let crate::integrity::IntegrityVerdict::Violation { reasons } =
                            integrity.check_value(smi)
                        {
                            let flags = self.integrity_flags.entry(machine).or_default();
                            // Bounded: a machine's flagged reasons stop
                            // accumulating past what a Halt needs.
                            let room = 16usize.saturating_sub(flags.len());
                            flags.extend(reasons.into_iter().take(room));
                        }
                    }
                }
                self.parcels.insert(machine, agg);
                parcel_lines.clear();
            }
        }
        self.tails[worker].pending = parcel_lines;
        Ok(())
    }

    /// Emit every window whose full machine range has parcels.
    fn emit_ready_windows(&mut self) {
        loop {
            let start = self.next_window_start;
            if start >= self.machines {
                return;
            }
            let end = (start + self.window).min(self.machines);
            if !(start..end).all(|m| self.parcels.contains_key(&m)) {
                return;
            }
            let mut wagg = Agg::default();
            for m in start..end {
                let parcel = self.parcels.remove(&m).expect("checked above");
                wagg.merge_from(&parcel);
            }
            self.total.merge_from(&wagg);
            let window = wagg.stats();
            let mut verdict = self.policy.evaluate(&window);
            // Integrity violations trump health thresholds: a window
            // containing a violating machine halts, carrying both the
            // health reasons (if any) and the violation reasons.
            let mut integrity_reasons = Vec::new();
            for m in start..end {
                if let Some(flags) = self.integrity_flags.remove(&m) {
                    integrity_reasons.extend(flags);
                }
            }
            if !integrity_reasons.is_empty() {
                let mut reasons = verdict.reasons().to_vec();
                reasons.extend(integrity_reasons);
                verdict = HealthVerdict::Halt { reasons };
            }
            let wave = self
                .wave_ends
                .iter()
                .position(|&we| start < we)
                .map(|w| w as u64);
            let snap = HealthSnapshot {
                seq: self.snapshots.len() as u64,
                window_start: start,
                window_end: end,
                wave,
                window,
                total: self.total.stats(),
                verdict,
            };
            if let Some(sink) = &self.sink {
                sink.write_raw_line(&snap.to_json_line());
                sink.flush();
            }
            self.snapshots.push(snap);
            self.next_window_start = end;
        }
    }

    /// Snapshots emitted so far, in sequence order.
    pub fn snapshots(&self) -> &[HealthSnapshot] {
        &self.snapshots
    }

    /// Shard lines folded so far.
    pub fn lines_consumed(&self) -> u64 {
        self.lines_consumed
    }

    /// Machines whose parcels have been consumed (windowed or pending).
    pub fn machines_seen(&self) -> u64 {
        self.next_window_start.min(self.machines) + self.parcels.len() as u64
    }

    /// Approximate bytes of *per-machine* state currently resident:
    /// parcels awaiting their window, pending integrity flags, and the
    /// campaign-total sketches. This is the number the million-machine
    /// scaling argument rests on — windows retire their machines'
    /// parcels as they close, so the figure is bounded by (workers ×
    /// window straggle + one window), not by the fleet size. The 10k
    /// regression test pins it.
    pub fn resident_state_bytes(&self) -> u64 {
        let agg_fixed = std::mem::size_of::<Agg>() as u64;
        let parcel_bytes: u64 = self
            .parcels
            .values()
            .map(|a| agg_fixed + a.dwell.resident_bytes() + a.latency.resident_bytes())
            .sum();
        let flag_bytes: u64 = self
            .integrity_flags
            .values()
            .map(|flags| flags.iter().map(|f| f.len() as u64 + 24).sum::<u64>())
            .sum();
        parcel_bytes
            + flag_bytes
            + agg_fixed
            + self.total.dwell.resident_bytes()
            + self.total.latency.resident_bytes()
    }

    /// Plain-text dashboard: one row per emitted window plus a totals
    /// row — what the live example prints while the campaign runs.
    pub fn render_table(&self) -> String {
        use crate::export::fmt_ns;
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:>4} {:>11} {:>4} {:>5} {:>6} {:>6} {:>5} {:>10} {:>10} {:>10}  verdict",
            "seq",
            "window",
            "ok",
            "fail",
            "retry",
            "fault",
            "drop",
            "dwell p50",
            "dwell p99",
            "lat p50"
        );
        let _ = writeln!(out, "{}", "-".repeat(100));
        for s in &self.snapshots {
            let _ = writeln!(
                out,
                "{:>4} {:>11} {:>4} {:>5} {:>6} {:>6} {:>5} {:>10} {:>10} {:>10}  {}",
                s.seq,
                format!("{}..{}", s.window_start, s.window_end),
                s.window.ok,
                s.window.failed,
                s.window.retries,
                s.window.faults_injected,
                s.window.records_dropped,
                fmt_ns(s.window.dwell_p50_ns),
                fmt_ns(s.window.dwell_p99_ns),
                fmt_ns(s.window.latency_p50_ns),
                s.verdict.label(),
            );
        }
        let t = self.total.stats();
        let _ = writeln!(out, "{}", "-".repeat(100));
        let _ = writeln!(
            out,
            "{:>4} {:>11} {:>4} {:>5} {:>6} {:>6} {:>5} {:>10} {:>10} {:>10}  {}",
            "all",
            format!("0..{}", self.next_window_start),
            t.ok,
            t.failed,
            t.retries,
            t.faults_injected,
            t.records_dropped,
            fmt_ns(t.dwell_p50_ns),
            fmt_ns(t.dwell_p99_ns),
            fmt_ns(t.latency_p50_ns),
            self.snapshots
                .iter()
                .map(|s| &s.verdict)
                .max_by_key(|v| v.severity())
                .map_or("healthy", |v| v.label()),
        );
        out
    }

    /// Final poll plus report assembly. Consumes the monitor.
    ///
    /// # Errors
    ///
    /// Same as [`poll`](Self::poll).
    pub fn finish(mut self) -> Result<HealthReport, ShardError> {
        self.poll()?;
        let total = self.total.stats();
        Ok(HealthReport {
            machines_seen: self.machines_seen(),
            lines_consumed: self.lines_consumed,
            resident_sketch_bytes: self.total.dwell.resident_bytes()
                + self.total.latency.resident_bytes(),
            agg_wall: self.agg_wall,
            integrity: self.integrity.as_ref().map(|m| m.report()),
            snapshots: self.snapshots,
            total,
        })
    }
}

/// Read bytes `[from, to)` of `path` as UTF-8 (both offsets are known
/// committed-line boundaries from a prior tail).
fn read_span(path: &Path, from: u64, to: u64) -> Result<String, ShardError> {
    use std::io::{Read, Seek, SeekFrom};
    let io = |e: String| ShardError::Io {
        path: path.to_path_buf(),
        error: e,
    };
    let mut file = std::fs::File::open(path).map_err(|e| io(e.to_string()))?;
    file.seek(SeekFrom::Start(from))
        .map_err(|e| io(e.to_string()))?;
    let mut bytes = vec![0u8; (to - from) as usize];
    file.read_exact(&mut bytes).map_err(|e| io(e.to_string()))?;
    String::from_utf8(bytes).map_err(|e| ShardError::Parse {
        path: path.to_path_buf(),
        error: format!("invalid UTF-8 in committed lines: {e}"),
    })
}

/// Convert one machine parcel (records + metrics block + outcome line)
/// into its aggregate. The outcome line carries the authoritative
/// tallies; the metrics block carries the sketches and drop counter.
fn parcel_from_shard(shard: &ShardData) -> Result<(u64, Agg), String> {
    let outcome = shard
        .other_of_type("machine")
        .last()
        .ok_or("machine parcel without outcome line")?;
    let field = |key: &str| {
        outcome
            .get(key)
            .and_then(Value::as_u64)
            .ok_or_else(|| format!("machine line missing {key:?}"))
    };
    let machine = field("machine")?;
    let ok = outcome.get("ok").and_then(Value::as_bool).unwrap_or(false);
    let mut agg = Agg {
        machines: 1,
        ok: u64::from(ok),
        failed: u64::from(!ok),
        retries: field("retries")?,
        faults_injected: field("faults_injected")?,
        smm_overbudget: field("smm_overbudget")?,
        records_dropped: shard.counter("fleet.records_dropped"),
        dwell: shard.sketch(SMM_DWELL_METRIC).cloned().unwrap_or_default(),
        latency: QuantileSketch::default(),
    };
    if let Some(lat) = outcome.get("latency_ns").and_then(Value::as_u64) {
        agg.latency.observe(lat);
    }
    Ok((machine, agg))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::export::metrics_json_lines;
    use crate::metrics::MetricsRegistry;
    use std::fs::OpenOptions;
    use std::io::Write as _;

    fn machine_parcel(machine: u64, ok: bool, retries: u64, dwell_ns: &[u64]) -> String {
        let reg = MetricsRegistry::new();
        for &d in dwell_ns {
            reg.sketch_observe(SMM_DWELL_METRIC, d);
        }
        reg.counter_add("machine.smi", dwell_ns.len() as u64);
        let mut out = metrics_json_lines(&reg.snapshot());
        out.push_str(&format!(
            "{{\"type\":\"machine\",\"v\":1,\"machine\":{machine},\"ok\":{ok},\
             \"attempts\":{},\"retries\":{retries},\"faults_injected\":{retries},\
             \"sim_clock_ns\":1000,\"smm_overbudget\":0,\"max_smm_dwell_ns\":{},\
             \"latency_ns\":{}}}\n",
            retries + 1,
            dwell_ns.iter().copied().max().unwrap_or(0),
            50_000 + machine * 1_000,
        ));
        out
    }

    fn scratch(case: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("kshot-health-{}-{case}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    /// The verdict reason strings are an interface: the rollout plane
    /// surfaces them verbatim in `halt_reasons` and operators grep
    /// them. Pin the exact text of every policy-derived sentence, and
    /// the invariant that a non-healthy verdict always names at least
    /// one reason.
    #[test]
    fn verdict_reason_strings_are_golden() {
        let policy = HealthPolicy::new()
            .with_failure_per_mille(50, 300)
            .with_retry_ceiling_per_mille(250)
            .with_dwell_budget(1_000_000, 1500);

        let halt = policy.evaluate(&SignalStats {
            machines: 4,
            failure_per_mille: 500,
            ..Default::default()
        });
        assert_eq!(halt.label(), "halt");
        assert_eq!(
            halt.reasons(),
            ["failure rate 500 per-mille exceeds halt ceiling 300"]
        );

        // Every tripped degrade check contributes its own exact
        // sentence, in check order.
        let degraded = policy.evaluate(&SignalStats {
            machines: 4,
            failure_per_mille: 100,
            retry_per_mille: 400,
            dwell_samples: 9,
            dwell_p99_ns: 2_000_000,
            ..Default::default()
        });
        assert_eq!(degraded.label(), "degraded");
        assert_eq!(
            degraded.reasons(),
            [
                "failure rate 100 per-mille exceeds degrade ceiling 50",
                "retry rate 400 per-mille exceeds ceiling 250",
                "dwell p99 2000000ns exceeds budget 1000000ns x 1500 per-mille margin",
            ]
        );

        // A Halt (or Degraded) with no reasons would be unactionable:
        // severity > 0 if and only if at least one reason names why.
        for failure in [0, 51, 100, 301, 500, 1000] {
            let v = policy.evaluate(&SignalStats {
                machines: 4,
                failure_per_mille: failure,
                ..Default::default()
            });
            assert_eq!(
                v.severity() > 0,
                !v.reasons().is_empty(),
                "failure {failure}: {v:?}"
            );
        }
        assert!(HealthVerdict::Healthy.reasons().is_empty());
    }

    #[test]
    fn windows_emit_in_machine_order_despite_arrival_order() {
        let dir = scratch("order");
        let shard = dir.join("worker-0.jsonl");
        // Machines arrive out of order: 2, 0, 3, 1. Window size 2 must
        // still emit [0,2) then [2,4), each only once complete.
        std::fs::write(&shard, machine_parcel(2, true, 0, &[40_000])).unwrap();
        let mut mon = HealthMonitor::new(HealthPolicy::new(), 2, 4, vec![shard.clone()]);
        assert_eq!(mon.poll().unwrap(), 0, "window 0 incomplete");

        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(machine_parcel(0, true, 0, &[41_000]).as_bytes())
            .unwrap();
        f.write_all(machine_parcel(3, true, 0, &[42_000]).as_bytes())
            .unwrap();
        drop(f);
        assert_eq!(mon.poll().unwrap(), 0, "machine 1 still missing");
        assert_eq!(mon.machines_seen(), 3);

        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(machine_parcel(1, true, 0, &[43_000]).as_bytes())
            .unwrap();
        drop(f);
        assert_eq!(mon.poll().unwrap(), 2, "both windows complete at once");

        let snaps = mon.snapshots();
        assert_eq!(snaps.len(), 2);
        assert_eq!((snaps[0].window_start, snaps[0].window_end), (0, 2));
        assert_eq!((snaps[1].window_start, snaps[1].window_end), (2, 4));
        assert_eq!(snaps[0].seq, 0);
        assert_eq!(snaps[1].seq, 1);
        assert_eq!(snaps[0].window.ok, 2);
        assert_eq!(snaps[1].total.machines, 4);
        assert_eq!(snaps[1].total.dwell_samples, 4);
        assert_eq!(snaps[1].verdict, HealthVerdict::Healthy);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Regression for the million-machine path: window state for
    /// retired machines must actually be dropped as windows close. A
    /// 10k-machine monitored run, polled incrementally the way the
    /// in-campaign monitor thread does, must keep per-machine resident
    /// state bounded by the straggle (one chunk of parcels), never
    /// O(machines) — and end with only the campaign-total sketches
    /// resident.
    #[test]
    fn ten_k_machine_run_retires_window_state() {
        let dir = scratch("retire10k");
        let shard = dir.join("worker-0.jsonl");
        std::fs::write(&shard, "").unwrap();
        let mut mon = HealthMonitor::new(HealthPolicy::new(), 8, 10_000, vec![shard.clone()]);
        let mut peak = 0u64;
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        for chunk in 0..20u64 {
            for m in chunk * 500..(chunk + 1) * 500 {
                f.write_all(machine_parcel(m, true, 0, &[40_000 + m % 64]).as_bytes())
                    .unwrap();
            }
            f.flush().unwrap();
            mon.poll().unwrap();
            peak = peak.max(mon.resident_state_bytes());
        }
        drop(f);
        assert_eq!(mon.machines_seen(), 10_000);
        assert_eq!(mon.snapshots().len(), 10_000 / 8);
        // Chunks arrive window-aligned, so every poll drains all its
        // parcels: the observed resident stays around the fixed totals,
        // nowhere near the ~2 MB that retaining 10k Aggs would cost.
        assert!(peak < 16 * 1024, "peak resident {peak} bytes");
        assert!(
            mon.resident_state_bytes() < 8 * 1024,
            "final resident {} bytes",
            mon.resident_state_bytes()
        );
        let report = mon.finish().unwrap();
        assert_eq!(report.total.machines, 10_000);
        assert_eq!(report.total.ok, 10_000);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// A withheld machine blocks its window, so parcels past it pile up
    /// until it lands — resident state tracks the straggle and then
    /// collapses when the hole fills. This is the bound the accessor
    /// exists to expose.
    #[test]
    fn resident_state_tracks_straggle_and_collapses() {
        let dir = scratch("straggle");
        let shard = dir.join("worker-0.jsonl");
        std::fs::write(&shard, "").unwrap();
        let mut mon = HealthMonitor::new(HealthPolicy::new(), 8, 256, vec![shard.clone()]);
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        // Machines 1..256 arrive; machine 0 never does (yet), so no
        // window can emit and every parcel stays resident.
        for m in 1..256u64 {
            f.write_all(machine_parcel(m, true, 0, &[40_000]).as_bytes())
                .unwrap();
        }
        f.flush().unwrap();
        mon.poll().unwrap();
        let stalled = mon.resident_state_bytes();
        assert_eq!(mon.snapshots().len(), 0);
        assert!(stalled > 255 * 64, "straggle not visible: {stalled} bytes");
        // The hole fills: every window emits at once and the parcel
        // state collapses to the campaign totals.
        f.write_all(machine_parcel(0, true, 0, &[40_000]).as_bytes())
            .unwrap();
        f.flush().unwrap();
        drop(f);
        mon.poll().unwrap();
        assert_eq!(mon.snapshots().len(), 256 / 8);
        let drained = mon.resident_state_bytes();
        assert!(
            drained * 16 < stalled,
            "windows closed but state kept: {drained} vs {stalled}"
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn policy_degrades_and_halts_on_thresholds() {
        let policy = HealthPolicy::new()
            .with_failure_per_mille(50, 300)
            .with_retry_ceiling_per_mille(250)
            .with_dwell_budget(100_000, 1000);
        // Healthy window.
        let healthy = Agg {
            machines: 8,
            ok: 8,
            ..Agg::default()
        };
        assert_eq!(policy.evaluate(&healthy.stats()), HealthVerdict::Healthy);
        // One failure in 8 machines = 125 per-mille -> degraded.
        let one_fail = Agg {
            machines: 8,
            ok: 7,
            failed: 1,
            ..Agg::default()
        };
        let v = policy.evaluate(&one_fail.stats());
        assert_eq!(v.label(), "degraded");
        assert!(v.reasons()[0].contains("failure rate 125"), "{v:?}");
        // 3 of 8 failed = 375 per-mille -> halt.
        let many_fail = Agg {
            machines: 8,
            ok: 5,
            failed: 3,
            ..Agg::default()
        };
        let v = policy.evaluate(&many_fail.stats());
        assert_eq!(v.label(), "halt");
        assert_eq!(v.severity(), 2);
        // Retry storm without failures -> degraded.
        let retries = Agg {
            machines: 8,
            ok: 8,
            retries: 3,
            ..Agg::default()
        };
        assert_eq!(policy.evaluate(&retries.stats()).label(), "degraded");
        // Dwell p99 over budget -> degraded, even with perfect outcomes.
        let mut slow = Agg {
            machines: 8,
            ok: 8,
            ..Agg::default()
        };
        for _ in 0..8 {
            slow.dwell.observe(450_000);
        }
        let v = policy.evaluate(&slow.stats());
        assert_eq!(v.label(), "degraded");
        assert!(v.reasons()[0].contains("dwell p99"), "{v:?}");
        // Tiny windows never escalate when the policy demands mass.
        let gated = HealthPolicy::new()
            .with_failure_per_mille(50, 300)
            .with_min_window_machines(4);
        let tiny = Agg {
            machines: 1,
            failed: 1,
            ..Agg::default()
        };
        assert_eq!(gated.evaluate(&tiny.stats()), HealthVerdict::Healthy);
    }

    #[test]
    fn snapshot_json_lines_stream_and_reload() {
        let dir = scratch("jsonl");
        let shard = dir.join("worker-0.jsonl");
        let mut text = String::new();
        for m in 0..4 {
            text.push_str(&machine_parcel(m, m != 1, u64::from(m == 1), &[45_000]));
        }
        std::fs::write(&shard, text).unwrap();
        let policy = HealthPolicy::new().with_failure_per_mille(50, 900);
        let health_path = dir.join("health.jsonl");
        let mut mon = HealthMonitor::new(policy, 2, 4, vec![shard])
            .with_snapshot_path(&health_path)
            .unwrap();
        mon.poll().unwrap();
        let report = mon.finish().unwrap();
        assert_eq!(report.snapshots.len(), 2);
        assert_eq!(report.final_verdict().label(), "degraded");
        assert_eq!(report.max_failure_per_mille(), 500);
        assert_eq!(report.total.machines, 4);
        assert!(report.resident_sketch_bytes > 0);

        // The streamed file carries exactly the emitted snapshots, and
        // every line parses under the schema (as an `other` type).
        let streamed = std::fs::read_to_string(&health_path).unwrap();
        let lines: Vec<&str> = streamed.lines().collect();
        assert_eq!(lines.len(), 2);
        for (line, snap) in lines.iter().zip(&report.snapshots) {
            assert_eq!(*line, snap.to_json_line());
        }
        let parsed = ShardData::parse(&streamed).unwrap();
        assert_eq!(parsed.other_of_type("health").count(), 2);
        let first = parsed.other_of_type("health").next().unwrap();
        assert_eq!(first.get("seq").and_then(Value::as_u64), Some(0));
        assert_eq!(
            first
                .get("window")
                .and_then(|w| w.get("machines"))
                .and_then(Value::as_u64),
            Some(2)
        );
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn render_table_lists_every_window_and_totals() {
        let dir = scratch("table");
        let shard = dir.join("worker-0.jsonl");
        let mut text = String::new();
        for m in 0..4 {
            text.push_str(&machine_parcel(m, true, 0, &[45_000, 47_000]));
        }
        std::fs::write(&shard, text).unwrap();
        let mut mon = HealthMonitor::new(HealthPolicy::new(), 2, 4, vec![shard]);
        mon.poll().unwrap();
        let table = mon.render_table();
        assert!(table.contains("0..2"), "{table}");
        assert!(table.contains("2..4"), "{table}");
        assert!(table.contains("healthy"), "{table}");
        assert!(table.lines().count() >= 5, "{table}");
    }

    #[test]
    fn wave_boundaries_tag_snapshots_and_plain_monitors_stay_untagged() {
        let dir = scratch("waves");
        let shard = dir.join("worker-0.jsonl");
        let mut text = String::new();
        for m in 0..6 {
            text.push_str(&machine_parcel(m, true, 0, &[45_000]));
        }
        std::fs::write(&shard, text).unwrap();
        // Waves [0,2) and [2,6); window = 2 (the canary size) so no
        // window straddles a wave boundary.
        let mut mon = HealthMonitor::new(HealthPolicy::new(), 2, 6, vec![shard.clone()])
            .with_wave_boundaries(vec![2, 6]);
        mon.poll().unwrap();
        let waves: Vec<Option<u64>> = mon.snapshots().iter().map(|s| s.wave).collect();
        assert_eq!(waves, vec![Some(0), Some(1), Some(1)]);
        assert!(mon.snapshots()[0].to_json_line().contains("\"wave\":0,"));
        // A plain monitor over the same shard emits no wave field at
        // all — the rollout tag is strictly additive.
        let mut plain = HealthMonitor::new(HealthPolicy::new(), 2, 6, vec![shard]);
        plain.poll().unwrap();
        assert!(plain.snapshots().iter().all(|s| s.wave.is_none()));
        assert!(!plain.snapshots()[0].to_json_line().contains("\"wave\""));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn arm_dwell_budget_rejudges_only_later_windows() {
        let dir = scratch("rearm");
        let shard = dir.join("worker-0.jsonl");
        // Window 0: dwell 40µs, judged before the budget lands.
        std::fs::write(
            &shard,
            machine_parcel(0, true, 0, &[40_000]) + &machine_parcel(1, true, 0, &[40_000]),
        )
        .unwrap();
        let mut mon = HealthMonitor::new(HealthPolicy::new(), 2, 4, vec![shard.clone()]);
        mon.poll().unwrap();
        assert_eq!(mon.snapshots()[0].verdict.label(), "healthy");
        assert!(mon.policy().dwell_budget_ns.is_none());
        // Calibrate: budget 10µs × 1000‰ margin — the same 40µs dwell
        // now degrades the next window.
        mon.arm_dwell_budget(10_000, 1000);
        assert_eq!(mon.policy().dwell_budget_ns, Some(10_000));
        let mut f = OpenOptions::new().append(true).open(&shard).unwrap();
        f.write_all(machine_parcel(2, true, 0, &[40_000]).as_bytes())
            .unwrap();
        f.write_all(machine_parcel(3, true, 0, &[40_000]).as_bytes())
            .unwrap();
        drop(f);
        mon.poll().unwrap();
        assert_eq!(mon.snapshots()[0].verdict.label(), "healthy");
        assert_eq!(mon.snapshots()[1].verdict.label(), "degraded");
        assert!(mon.snapshots()[1].verdict.reasons()[0].contains("dwell p99"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn missing_shard_files_mean_no_data_not_errors() {
        let dir = scratch("missing");
        let mut mon = HealthMonitor::new(
            HealthPolicy::new(),
            2,
            4,
            vec![dir.join("worker-0.jsonl"), dir.join("worker-1.jsonl")],
        );
        assert_eq!(mon.poll().unwrap(), 0);
        assert_eq!(mon.machines_seen(), 0);
        let report = mon.finish().unwrap();
        assert!(report.snapshots.is_empty());
        assert_eq!(report.final_verdict(), HealthVerdict::Healthy);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
