//! Phase-breakdown profiler: reconstructs per-phase timing for the
//! live-patch pipeline from span records.
//!
//! The patch path emits one span per pipeline phase, named
//! `phase.<name>` with `<name>` drawn from [`PHASES`]:
//!
//! | phase          | where it runs       | clocks    |
//! |----------------|---------------------|-----------|
//! | `attest`       | SGX session driver  | wall only |
//! | `key_exchange` | SMM handler         | sim+wall  |
//! | `decrypt`      | SMM handler         | sim+wall  |
//! | `verify`       | SMM handler         | sim+wall  |
//! | `apply`        | SMM handler         | sim+wall  |
//! | `resume`       | session driver (RSM)| sim+wall  |
//!
//! A [`PhaseProfile`] aggregates those spans from any source — a live
//! [`Recorder`](crate::Recorder), a record slice, or a streamed
//! JSON-lines shard file — into per-phase sample sets with nearest-rank
//! percentiles over the *raw* samples (not histogram buckets), so two
//! profiles built from the same spans via different paths compare equal.
//! That equality is the streaming pipeline's lossless-export proof: the
//! profile parsed back from per-worker shard files must `==` the profile
//! taken from the in-memory merged recorder.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::export::fmt_ns;
use crate::json::{self, Value};
use crate::record::Record;
use crate::recorder::Recorder;

/// The canonical pipeline phase names, in execution order.
pub const PHASES: [&str; 6] = [
    "attest",
    "key_exchange",
    "decrypt",
    "verify",
    "apply",
    "resume",
];

/// Span-name prefix marking a phase span.
pub const PHASE_PREFIX: &str = "phase.";

/// Timing samples for one phase. Sample vectors are kept sorted, so the
/// derived equality is order-independent: profiles built from the same
/// spans observed in different orders (e.g. different worker
/// interleavings) compare equal.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseStats {
    wall_ns: Vec<u64>,
    sim_ns: Vec<u64>,
}

fn sorted_insert(v: &mut Vec<u64>, x: u64) {
    let idx = v.partition_point(|&y| y <= x);
    v.insert(idx, x);
}

/// Nearest-rank percentile over a sorted sample vector.
fn percentile_sorted(sorted: &[u64], pct: u8) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    let pct = u64::from(pct.min(100));
    let n = sorted.len() as u64;
    let rank = ((n * pct).div_ceil(100)).max(1);
    sorted[(rank - 1) as usize]
}

impl PhaseStats {
    /// Number of samples (spans seen for this phase).
    pub fn count(&self) -> u64 {
        self.wall_ns.len() as u64
    }

    /// Number of samples carrying simulated time.
    pub fn sim_count(&self) -> u64 {
        self.sim_ns.len() as u64
    }

    /// Total wall-clock ns across samples (saturating).
    pub fn wall_total_ns(&self) -> u64 {
        self.wall_ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Total simulated ns across samples (saturating).
    pub fn sim_total_ns(&self) -> u64 {
        self.sim_ns.iter().fold(0u64, |a, &b| a.saturating_add(b))
    }

    /// Nearest-rank wall-clock percentile (0 when no samples).
    pub fn wall_percentile(&self, pct: u8) -> u64 {
        percentile_sorted(&self.wall_ns, pct)
    }

    /// Nearest-rank simulated-clock percentile (0 when no samples).
    pub fn sim_percentile(&self, pct: u8) -> u64 {
        percentile_sorted(&self.sim_ns, pct)
    }

    /// Largest wall-clock sample (0 when empty).
    pub fn wall_max_ns(&self) -> u64 {
        self.wall_ns.last().copied().unwrap_or(0)
    }

    /// Largest simulated-clock sample (0 when empty).
    pub fn sim_max_ns(&self) -> u64 {
        self.sim_ns.last().copied().unwrap_or(0)
    }

    fn add_sample(&mut self, wall_ns: u64, sim_ns: Option<u64>) {
        sorted_insert(&mut self.wall_ns, wall_ns);
        if let Some(sim) = sim_ns {
            sorted_insert(&mut self.sim_ns, sim);
        }
    }

    fn merge_from(&mut self, other: &PhaseStats) {
        for &w in &other.wall_ns {
            sorted_insert(&mut self.wall_ns, w);
        }
        for &s in &other.sim_ns {
            sorted_insert(&mut self.sim_ns, s);
        }
    }
}

/// Per-phase timing reconstructed from `phase.*` spans.
///
/// Keys are the phase names with the `phase.` prefix stripped. Phases
/// that never appeared have no entry. Equality is structural and
/// order-independent (see [`PhaseStats`]).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PhaseProfile {
    phases: BTreeMap<String, PhaseStats>,
}

impl PhaseProfile {
    /// An empty profile.
    pub fn new() -> PhaseProfile {
        PhaseProfile::default()
    }

    /// Build from a record slice: every span named `phase.*` contributes
    /// one sample; everything else is ignored.
    pub fn from_records(records: &[Record]) -> PhaseProfile {
        let mut profile = PhaseProfile::new();
        for rec in records {
            if let Record::Span(s) = rec {
                if let Some(name) = s.name.strip_prefix(PHASE_PREFIX) {
                    profile
                        .phases
                        .entry(name.to_string())
                        .or_default()
                        .add_sample(s.wall_dur_ns, s.sim_dur_ns());
                }
            }
        }
        profile
    }

    /// Build from a live recorder's retained records.
    pub fn from_recorder(recorder: &Recorder) -> PhaseProfile {
        PhaseProfile::from_records(&recorder.records())
    }

    /// Build from streamed JSON-lines text (e.g. a per-worker shard
    /// file). Only `"type":"span"` lines with a `phase.`-prefixed name
    /// contribute; other line types pass through untouched.
    ///
    /// # Errors
    ///
    /// A line that is not valid JSON, or a span line whose `"v"` does not
    /// match [`crate::SCHEMA_VERSION`] (format drift must be loud, not a
    /// silently empty profile).
    pub fn from_json_lines(text: &str) -> Result<PhaseProfile, String> {
        let mut profile = PhaseProfile::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let v = json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
            if v.get("type").and_then(Value::as_str) != Some("span") {
                continue;
            }
            let ver = v.get("v").and_then(Value::as_u64);
            if ver != Some(u64::from(crate::SCHEMA_VERSION)) {
                return Err(format!(
                    "line {}: schema version {ver:?}, expected {}",
                    lineno + 1,
                    crate::SCHEMA_VERSION
                ));
            }
            let Some(name) = v
                .get("name")
                .and_then(Value::as_str)
                .and_then(|n| n.strip_prefix(PHASE_PREFIX))
            else {
                continue;
            };
            let wall = v
                .get("wall_dur_ns")
                .and_then(Value::as_u64)
                .ok_or_else(|| format!("line {}: span without wall_dur_ns", lineno + 1))?;
            let sim = match (
                v.get("sim_start_ns").and_then(Value::as_u64),
                v.get("sim_end_ns").and_then(Value::as_u64),
            ) {
                (Some(s), Some(e)) => Some(e.saturating_sub(s)),
                _ => None,
            };
            profile
                .phases
                .entry(name.to_string())
                .or_default()
                .add_sample(wall, sim);
        }
        Ok(profile)
    }

    /// Add one sample directly (phase name without the `phase.`
    /// prefix). This is the primitive the record/JSON constructors and
    /// [`crate::shard`] re-aggregation build on.
    pub fn add_sample(&mut self, phase: &str, wall_ns: u64, sim_ns: Option<u64>) {
        self.phases
            .entry(phase.to_string())
            .or_default()
            .add_sample(wall_ns, sim_ns);
    }

    /// Fold another profile's samples into this one.
    pub fn merge_from(&mut self, other: &PhaseProfile) {
        for (name, stats) in &other.phases {
            self.phases
                .entry(name.clone())
                .or_default()
                .merge_from(stats);
        }
    }

    /// Stats for one phase (name without the `phase.` prefix).
    pub fn get(&self, phase: &str) -> Option<&PhaseStats> {
        self.phases.get(phase)
    }

    /// True when no phase spans were seen.
    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total samples across all phases.
    pub fn total_samples(&self) -> u64 {
        self.phases.values().map(PhaseStats::count).sum()
    }

    /// Phase names present, canonical phases first (pipeline order),
    /// then any extras alphabetically.
    pub fn phase_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = PHASES
            .iter()
            .copied()
            .filter(|p| self.phases.contains_key(*p))
            .collect();
        for name in self.phases.keys() {
            if !PHASES.contains(&name.as_str()) {
                names.push(name);
            }
        }
        names
    }

    /// Render a plain-text phase table: count, sim p50/p95/max, wall
    /// p50/p95/max per phase, in pipeline order.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<14} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
            "phase", "count", "sim p50", "sim p95", "sim max", "wall p50", "wall p95", "wall max"
        );
        let _ = writeln!(out, "{}", "-".repeat(94));
        for name in self.phase_names() {
            let s = &self.phases[name];
            let sim = |v: u64| {
                if s.sim_count() == 0 {
                    "-".to_string()
                } else {
                    fmt_ns(v)
                }
            };
            let _ = writeln!(
                out,
                "{:<14} {:>7} {:>11} {:>11} {:>11} {:>11} {:>11} {:>11}",
                name,
                s.count(),
                sim(s.sim_percentile(50)),
                sim(s.sim_percentile(95)),
                sim(s.sim_max_ns()),
                fmt_ns(s.wall_percentile(50)),
                fmt_ns(s.wall_percentile(95)),
                fmt_ns(s.wall_max_ns()),
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::SpanRecord;

    fn phase_span(name: &'static str, wall: u64, sim: Option<(u64, u64)>) -> Record {
        Record::Span(SpanRecord {
            id: 1,
            parent: None,
            name,
            thread: 0,
            wall_start_ns: 0,
            wall_dur_ns: wall,
            sim_start_ns: sim.map(|(s, _)| s),
            sim_end_ns: sim.map(|(_, e)| e),
            fields: Vec::new(),
        })
    }

    #[test]
    fn builds_from_records_and_ignores_non_phase_spans() {
        let records = vec![
            phase_span("phase.decrypt", 100, Some((0, 1_000))),
            phase_span("phase.decrypt", 300, Some((0, 3_000))),
            phase_span("phase.attest", 50, None),
            phase_span("smm.window", 999, Some((0, 9_999))),
        ];
        let p = PhaseProfile::from_records(&records);
        assert_eq!(p.total_samples(), 3);
        let d = p.get("decrypt").unwrap();
        assert_eq!(d.count(), 2);
        assert_eq!(d.sim_percentile(50), 1_000);
        assert_eq!(d.sim_max_ns(), 3_000);
        assert_eq!(d.wall_total_ns(), 400);
        let a = p.get("attest").unwrap();
        assert_eq!(a.sim_count(), 0);
        assert_eq!(a.wall_percentile(95), 50);
        assert!(p.get("window").is_none());
    }

    #[test]
    fn json_roundtrip_equals_in_memory_profile() {
        let records = vec![
            phase_span("phase.verify", 10, Some((100, 600))),
            phase_span("phase.verify", 30, Some((700, 2_200))),
            phase_span("phase.apply", 5, Some((0, 50))),
        ];
        let direct = PhaseProfile::from_records(&records);
        let mut text = String::new();
        // Reverse order: equality must not depend on stream order.
        for rec in records.iter().rev() {
            text.push_str(&crate::export::record_json_line(rec));
            text.push('\n');
        }
        text.push_str("{\"type\":\"counter\",\"v\":1,\"name\":\"x\",\"value\":3}\n");
        let parsed = PhaseProfile::from_json_lines(&text).unwrap();
        assert_eq!(parsed, direct);
    }

    #[test]
    fn json_lines_reject_drifted_schema_and_garbage() {
        let bad_version =
            "{\"type\":\"span\",\"v\":999,\"name\":\"phase.apply\",\"wall_dur_ns\":1}";
        assert!(PhaseProfile::from_json_lines(bad_version)
            .unwrap_err()
            .contains("schema version"));
        assert!(PhaseProfile::from_json_lines("not json").is_err());
    }

    #[test]
    fn merge_is_order_independent() {
        let a = PhaseProfile::from_records(&[
            phase_span("phase.decrypt", 10, Some((0, 10))),
            phase_span("phase.resume", 7, None),
        ]);
        let b = PhaseProfile::from_records(&[phase_span("phase.decrypt", 20, Some((0, 20)))]);
        let mut ab = a.clone();
        ab.merge_from(&b);
        let mut ba = b.clone();
        ba.merge_from(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.get("decrypt").unwrap().count(), 2);
    }

    #[test]
    fn table_lists_phases_in_pipeline_order() {
        let p = PhaseProfile::from_records(&[
            phase_span("phase.resume", 5, None),
            phase_span("phase.attest", 5, None),
            phase_span("phase.custom_extra", 5, None),
        ]);
        assert_eq!(p.phase_names(), vec!["attest", "resume", "custom_extra"]);
        let table = p.render_table();
        let attest_at = table.find("attest").unwrap();
        let resume_at = table.find("resume").unwrap();
        assert!(attest_at < resume_at, "{table}");
    }

    #[test]
    fn percentiles_nearest_rank_over_raw_samples() {
        let mut s = PhaseStats::default();
        for v in [40, 10, 30, 20] {
            s.add_sample(v, None);
        }
        assert_eq!(s.wall_percentile(25), 10);
        assert_eq!(s.wall_percentile(50), 20);
        assert_eq!(s.wall_percentile(75), 30);
        assert_eq!(s.wall_percentile(100), 40);
        assert_eq!(s.wall_percentile(1), 10);
        assert_eq!(PhaseStats::default().wall_percentile(50), 0);
    }
}
