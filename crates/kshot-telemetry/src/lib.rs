//! # kshot-telemetry
//!
//! Zero-dependency tracing, metrics, and trace export for the KShot
//! patch pipeline. Pure safe Rust over `std` only — like
//! `kshot-crypto`, everything is hand-rolled because the build
//! environment resolves no external crates.
//!
//! ## Model
//!
//! - **Spans** measure intervals (`sgx.prepare_and_stage`,
//!   `smm.decrypt`, ...) with *dual timestamps*: wall-clock nanoseconds
//!   from a monotonic [`std::time::Instant`], and optionally the
//!   machine's simulated clock (plain `u64` ns supplied by the caller,
//!   since this crate sits below `kshot-machine` in the dependency
//!   graph and cannot name `SimTime`).
//! - **Events** mark instants (SMRAM lock faults, trampoline writes,
//!   introspection violations) with structured fields.
//! - **Metrics** are counters, gauges, and fixed-bucket histograms on a
//!   registry attached to the recorder.
//! - The **recorder** is a bounded ring buffer with pluggable streaming
//!   [`Sink`]s and three exporters: JSON lines, Chrome `trace_event`
//!   (Perfetto-loadable), and a plain-text summary table.
//!
//! ## Cost when disabled
//!
//! Instrumentation is compiled in unconditionally but gated on a global
//! `AtomicBool`. With no recorder installed, every emit function
//! early-returns after one relaxed atomic load, and [`span`] hands back
//! an inert guard — no heap allocation anywhere on the hot path. This
//! is load-bearing for the overhead experiments: the instrumented
//! binary must behave like the uninstrumented one when tracing is off.
//!
//! ## Usage
//!
//! ```
//! let recorder = kshot_telemetry::Recorder::with_capacity(1024);
//! kshot_telemetry::install(recorder.clone());
//!
//! {
//!     let mut span = kshot_telemetry::span_at("smm.decrypt", 1_000);
//!     span.field("bytes", 4096u64);
//!     kshot_telemetry::counter("machine.smi", 1);
//!     span.end_at(21_000);
//! }
//!
//! kshot_telemetry::uninstall();
//! let trace = recorder.export_chrome_trace();
//! assert!(trace.contains("smm.decrypt"));
//! ```

#![forbid(unsafe_code)]

/// Version stamped as `"v"` on every JSON-lines object this crate
/// emits (records and metric lines alike). Bumped on any change that
/// would make old parsers misread new lines; [`shard::ShardData`] and
/// [`PhaseProfile::from_json_lines`] reject mismatched versions so
/// format drift fails loudly instead of producing empty aggregates.
pub const SCHEMA_VERSION: u32 = 1;

pub mod export;
pub mod health;
pub mod integrity;
pub mod json;
pub mod merkle;
mod metrics;
mod phase;
mod record;
mod recorder;
pub mod shard;
mod sketch;
mod span;
mod stream;

pub use health::{
    HealthMonitor, HealthPolicy, HealthReport, HealthSnapshot, HealthVerdict, SignalStats,
    SMM_DWELL_METRIC,
};
pub use integrity::{IntegrityMonitor, IntegrityPolicy, IntegrityReport, IntegrityVerdict};
pub use merkle::{DigestTree, FrontierNode, FullDigestTree, MerkleError};
pub use metrics::{HistogramSnapshot, MetricsRegistry, MetricsSnapshot, DEFAULT_BOUNDS_NS};
pub use phase::{PhaseProfile, PhaseStats, PHASES, PHASE_PREFIX};
pub use record::{json_escape, EventRecord, Field, Record, SpanRecord, Value};
pub use recorder::{Recorder, Sink, DEFAULT_CAPACITY};
pub use shard::{DigestRollup, ShardData, ShardError};
pub use sketch::QuantileSketch;
pub use span::SpanGuard;
pub use stream::{StreamSink, DEFAULT_FLUSH_EVERY};

use std::cell::{Cell, RefCell};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, RwLock};

/// Fast gate checked by every emit path before anything else.
static ENABLED: AtomicBool = AtomicBool::new(false);
static RECORDER: RwLock<Option<Arc<Recorder>>> = RwLock::new(None);

thread_local! {
    /// Per-thread recorder override (see [`with_recorder`]). Shadows
    /// the global recorder on this thread only, so concurrent fleet
    /// workers can record into disjoint recorders without contending
    /// on — or corrupting — the process-global slot.
    static LOCAL_RECORDER: RefCell<Option<Arc<Recorder>>> = const { RefCell::new(None) };
    /// Fast flag mirroring `LOCAL_RECORDER.is_some()`, so the disabled
    /// path stays one branch + one load, allocation-free.
    static LOCAL_ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Install `recorder` as the process-global collector and enable all
/// instrumentation. Replaces any previous recorder.
pub fn install(recorder: Arc<Recorder>) {
    *RECORDER.write().unwrap() = Some(recorder);
    ENABLED.store(true, Ordering::Release);
}

/// Disable instrumentation and detach the recorder, returning it so the
/// caller can export what was collected.
pub fn uninstall() -> Option<Arc<Recorder>> {
    ENABLED.store(false, Ordering::Release);
    RECORDER.write().unwrap().take()
}

/// Run `f` with `recorder` as *this thread's* collector, restoring the
/// previous state (including nesting) afterwards — even on unwind.
///
/// While active, every emit on this thread lands in `recorder`,
/// regardless of (and without touching) the process-global recorder;
/// other threads are unaffected. This is the fleet-campaign primitive:
/// each worker wraps a machine's session in `with_recorder` so N
/// concurrent sessions trace into N disjoint recorders, merged
/// afterwards via [`Recorder::merge_from`].
pub fn with_recorder<R>(recorder: Arc<Recorder>, f: impl FnOnce() -> R) -> R {
    let _scope = RecorderScope::enter(recorder);
    f()
}

/// RAII form of [`with_recorder`]: entering makes `recorder` this
/// thread's collector, dropping restores whatever was active before
/// (including a shadowed outer scope) — even on unwind.
///
/// This is the re-entry primitive for *interleaved* sessions: a
/// pipelined fleet worker suspends machine A mid-session (say, while
/// its patch delivery is in flight), runs a step of machine B under B's
/// recorder, then re-enters A's recorder for A's next step. Each
/// enter/exit pair brackets exactly one resumed step, so records from
/// concurrent-in-time sessions never mix recorders:
///
/// ```
/// use kshot_telemetry::{Recorder, RecorderScope};
/// let a = Recorder::new();
/// let b = Recorder::new();
/// {
///     let _s = RecorderScope::enter(a.clone());
///     kshot_telemetry::counter("step", 1); // lands in `a`
/// }
/// {
///     let _s = RecorderScope::enter(b.clone());
///     kshot_telemetry::counter("step", 1); // lands in `b`
/// }
/// {
///     let _s = RecorderScope::enter(a.clone()); // re-entry
///     kshot_telemetry::counter("step", 1); // lands in `a` again
/// }
/// assert_eq!(a.metrics_snapshot().counter("step"), 2);
/// assert_eq!(b.metrics_snapshot().counter("step"), 1);
/// ```
///
/// The guard is `!Send`: it manipulates thread-local state and must be
/// dropped on the thread that entered it.
pub struct RecorderScope {
    prev: Option<Arc<Recorder>>,
    /// Pins the guard to the entering thread (thread-local state).
    _not_send: std::marker::PhantomData<*const ()>,
}

impl RecorderScope {
    /// Make `recorder` the active collector for this thread until the
    /// returned guard drops.
    pub fn enter(recorder: Arc<Recorder>) -> RecorderScope {
        let prev = LOCAL_RECORDER.with(|slot| slot.borrow_mut().replace(recorder));
        LOCAL_ENABLED.with(|on| on.set(true));
        RecorderScope {
            prev,
            _not_send: std::marker::PhantomData,
        }
    }
}

impl Drop for RecorderScope {
    fn drop(&mut self) {
        let prev = self.prev.take();
        LOCAL_ENABLED.with(|on| on.set(prev.is_some()));
        LOCAL_RECORDER.with(|slot| *slot.borrow_mut() = prev);
    }
}

/// True when a recorder is installed — a thread-local one via
/// [`with_recorder`], or the process-global one via [`install`].
pub fn is_enabled() -> bool {
    LOCAL_ENABLED.with(|on| on.get()) || ENABLED.load(Ordering::Relaxed)
}

/// The active recorder, if any: the thread-local override when inside
/// [`with_recorder`], else the installed global. Cheap-ish (read lock +
/// Arc clone on the global path); emit paths use it only after the
/// [`is_enabled`] gate passes.
pub fn recorder() -> Option<Arc<Recorder>> {
    if LOCAL_ENABLED.with(|on| on.get()) {
        return LOCAL_RECORDER.with(|slot| slot.borrow().clone());
    }
    if !ENABLED.load(Ordering::Relaxed) {
        return None;
    }
    RECORDER.read().unwrap().clone()
}

/// Open a wall-clock-only span. Inert (allocation-free) when disabled.
pub fn span(name: &'static str) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::disabled();
    }
    match recorder() {
        Some(rec) => SpanGuard::open(rec, name, None),
        None => SpanGuard::disabled(),
    }
}

/// Open a span carrying a simulated-clock start timestamp. Close with
/// [`SpanGuard::end_at`] to record the simulated end as well.
pub fn span_at(name: &'static str, sim_start_ns: u64) -> SpanGuard {
    if !is_enabled() {
        return SpanGuard::disabled();
    }
    match recorder() {
        Some(rec) => SpanGuard::open(rec, name, Some(sim_start_ns)),
        None => SpanGuard::disabled(),
    }
}

/// Emit a field-less instant event.
pub fn event(name: &'static str) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = recorder() {
        span::emit_event(&rec, name, None, Vec::new());
    }
}

/// Emit an instant event stamped with simulated time.
pub fn event_at(name: &'static str, sim_ns: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = recorder() {
        span::emit_event(&rec, name, Some(sim_ns), Vec::new());
    }
}

/// Emit an event with structured fields. The closure builds the field
/// list and runs only when telemetry is enabled, so call sites pay no
/// allocation when disabled:
///
/// ```
/// kshot_telemetry::event_with("introspect.violation", Some(42), |f| {
///     f.push(("kind", "trampoline_reverted".into()));
///     f.push(("site", 0xdead_beefu64.into()));
/// });
/// ```
pub fn event_with<F>(name: &'static str, sim_ns: Option<u64>, build: F)
where
    F: FnOnce(&mut Vec<Field>),
{
    if !is_enabled() {
        return;
    }
    if let Some(rec) = recorder() {
        let mut fields = Vec::new();
        build(&mut fields);
        span::emit_event(&rec, name, sim_ns, fields);
    }
}

/// Add `delta` to a counter on the installed recorder's registry.
pub fn counter(name: &'static str, delta: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = recorder() {
        rec.metrics().counter_add(name, delta);
    }
}

/// Current value of a counter on the installed recorder, or 0 when no
/// recorder is installed (or the counter has never been bumped).
///
/// Convenience for tests and probes asserting on pipeline counters
/// (e.g. `kshot.rollback_skipped`, `smm.recover_unwound_apply`)
/// without threading the `Recorder` handle around.
pub fn counter_value(name: &str) -> u64 {
    match recorder() {
        Some(rec) => rec.metrics_snapshot().counter(name),
        None => 0,
    }
}

/// Set a gauge on the installed recorder's registry.
pub fn gauge(name: &'static str, value: i64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = recorder() {
        rec.metrics().gauge_set(name, value);
    }
}

/// Record one histogram observation (default ns buckets).
pub fn observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = recorder() {
        rec.metrics().observe(name, value);
    }
}

/// Record one observation in a mergeable [`QuantileSketch`] — the
/// aggregation-path alternative to [`observe`] for signals whose fleet
/// percentiles must merge deterministically across workers (e.g. SMM
/// dwell time feeding the live [`HealthMonitor`]).
pub fn sketch_observe(name: &'static str, value: u64) {
    if !is_enabled() {
        return;
    }
    if let Some(rec) = recorder() {
        rec.metrics().sketch_observe(name, value);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The global recorder is process-wide state; tests touching it are
    // serialized through this lock so `cargo test`'s parallel runner
    // cannot interleave install/uninstall.
    static GLOBAL_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    fn with_global<R>(f: impl FnOnce(&Arc<Recorder>) -> R) -> R {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Recorder::with_capacity(4096);
        install(rec.clone());
        let out = f(&rec);
        uninstall();
        out
    }

    #[test]
    fn disabled_paths_are_inert() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!is_enabled());
        let mut s = span("noop");
        assert!(!s.is_recording());
        s.field("k", 1u64);
        drop(s);
        event("noop");
        counter("noop", 1);
        observe("noop", 1);
        assert_eq!(counter_value("noop"), 0);
    }

    #[test]
    fn counter_value_reads_the_installed_registry() {
        with_global(|_| {
            assert_eq!(counter_value("cv.test"), 0);
            counter("cv.test", 3);
            counter("cv.test", 4);
            assert_eq!(counter_value("cv.test"), 7);
        });
    }

    #[test]
    fn span_records_parentage_and_sim_time() {
        with_global(|rec| {
            {
                let outer = span_at("outer", 100);
                {
                    let inner = span_at("inner", 150);
                    inner.end_at(300);
                }
                outer.end_at(400);
            }
            let records = rec.records();
            assert_eq!(records.len(), 2);
            // Inner closes (and records) first.
            let (inner, outer) = match (&records[0], &records[1]) {
                (Record::Span(a), Record::Span(b)) => (a, b),
                other => panic!("unexpected records: {other:?}"),
            };
            assert_eq!(inner.name, "inner");
            assert_eq!(outer.name, "outer");
            assert_eq!(inner.parent, Some(outer.id));
            assert_eq!(outer.parent, None);
            assert_eq!(inner.sim_dur_ns(), Some(150));
            assert_eq!(outer.sim_dur_ns(), Some(300));
        });
    }

    #[test]
    fn events_inherit_current_span_as_parent() {
        with_global(|rec| {
            let s = span("holder");
            let holder_id = s.id().unwrap();
            event_with("marker", Some(7), |f| f.push(("x", 1u64.into())));
            drop(s);
            let records = rec.records();
            match &records[0] {
                Record::Event(e) => {
                    assert_eq!(e.parent, Some(holder_id));
                    assert_eq!(e.sim_ns, Some(7));
                    assert_eq!(e.fields, vec![("x", Value::U64(1))]);
                }
                other => panic!("expected event, got {other:?}"),
            }
        });
    }

    #[test]
    fn metrics_flow_through_global_helpers() {
        with_global(|rec| {
            counter("c", 2);
            counter("c", 1);
            gauge("g", -5);
            observe("h", 1_500);
            let snap = rec.metrics_snapshot();
            assert_eq!(snap.counter("c"), 3);
            assert_eq!(snap.gauge("g"), Some(-5));
            assert_eq!(snap.histogram("h").unwrap().count, 1);
        });
    }

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Recorder::with_capacity(3);
        install(rec.clone());
        for _ in 0..5 {
            event("tick");
        }
        uninstall();
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.dropped(), 2);
    }

    #[test]
    fn with_recorder_shadows_the_global_and_restores_it() {
        with_global(|global| {
            let local = Recorder::with_capacity(64);
            counter("shadow.c", 1); // global
            let out = with_recorder(local.clone(), || {
                counter("shadow.c", 10); // local
                event("shadow.e");
                assert!(is_enabled());
                42
            });
            assert_eq!(out, 42);
            counter("shadow.c", 2); // global again
            assert_eq!(local.metrics_snapshot().counter("shadow.c"), 10);
            assert_eq!(global.metrics_snapshot().counter("shadow.c"), 3);
            assert_eq!(local.len(), 1);
            assert!(global.records().iter().all(|r| r.name() != "shadow.e"));
        });
    }

    #[test]
    fn with_recorder_enables_without_a_global_and_nests() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        assert!(!is_enabled());
        let outer = Recorder::with_capacity(64);
        let inner = Recorder::with_capacity(64);
        with_recorder(outer.clone(), || {
            counter("nest.c", 1);
            with_recorder(inner.clone(), || counter("nest.c", 100));
            counter("nest.c", 2);
        });
        assert!(!is_enabled());
        counter("nest.c", 1000); // dropped: nothing installed
        assert_eq!(outer.metrics_snapshot().counter("nest.c"), 3);
        assert_eq!(inner.metrics_snapshot().counter("nest.c"), 100);
    }

    #[test]
    fn with_recorder_restores_on_unwind() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let rec = Recorder::with_capacity(16);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            with_recorder(rec.clone(), || panic!("boom"))
        }));
        assert!(result.is_err());
        assert!(!is_enabled());
        assert!(recorder().is_none());
    }

    /// The pipelined-fleet pattern: two sessions' steps interleave on
    /// one thread, each step re-entering its own recorder. Records and
    /// metrics must stay disjoint per session, and the thread must end
    /// up clean (no recorder active) once all scopes have dropped.
    #[test]
    fn recorder_scope_reenters_interleaved_sessions() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let a = Recorder::with_capacity(64);
        let b = Recorder::with_capacity(64);
        // step A.1, step B.1, step A.2, step B.2 — as a depth-2
        // scheduler would run them.
        {
            let _s = RecorderScope::enter(a.clone());
            counter("scope.step", 1);
            event("scope.a");
        }
        {
            let _s = RecorderScope::enter(b.clone());
            counter("scope.step", 10);
        }
        {
            let _s = RecorderScope::enter(a.clone());
            counter("scope.step", 2);
        }
        {
            let _s = RecorderScope::enter(b.clone());
            counter("scope.step", 20);
            event("scope.b");
        }
        assert!(!is_enabled());
        assert_eq!(a.metrics_snapshot().counter("scope.step"), 3);
        assert_eq!(b.metrics_snapshot().counter("scope.step"), 30);
        assert!(a.records().iter().all(|r| r.name() != "scope.b"));
        assert!(b.records().iter().all(|r| r.name() != "scope.a"));
    }

    /// Dropping scopes out of LIFO discipline is a bug waiting to
    /// happen in hand-rolled schedulers; the guard restores *its own*
    /// predecessor, so nesting still unwinds correctly when scopes are
    /// dropped in order.
    #[test]
    fn recorder_scope_nests_and_restores_shadowed_outer() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        uninstall();
        let outer = Recorder::with_capacity(16);
        let inner = Recorder::with_capacity(16);
        {
            let _o = RecorderScope::enter(outer.clone());
            counter("scope.nest", 1);
            {
                let _i = RecorderScope::enter(inner.clone());
                counter("scope.nest", 100);
            }
            // Outer scope active again after inner drops.
            counter("scope.nest", 2);
        }
        assert_eq!(outer.metrics_snapshot().counter("scope.nest"), 3);
        assert_eq!(inner.metrics_snapshot().counter("scope.nest"), 100);
        assert!(recorder().is_none());
    }

    #[test]
    fn recorder_merge_folds_records_and_metrics() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let a = Recorder::with_capacity(64);
        let b = Recorder::with_capacity(64);
        with_recorder(a.clone(), || {
            counter("m.c", 1);
            observe("m.h", 10_000);
            event("m.e");
        });
        with_recorder(b.clone(), || {
            counter("m.c", 2);
            observe("m.h", 20_000);
            event("m.e");
            event("m.e2");
        });
        a.merge_from(&b);
        let snap = a.metrics_snapshot();
        assert_eq!(snap.counter("m.c"), 3);
        let h = snap.histogram("m.h").unwrap();
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 30_000);
        assert_eq!(h.min, 10_000);
        assert_eq!(h.max, 20_000);
        assert_eq!(a.len(), 3);
        // `b` untouched.
        assert_eq!(b.len(), 2);
        assert_eq!(b.metrics_snapshot().counter("m.c"), 2);
    }

    /// Regression: merging a shard recorder that had already overflowed
    /// its ring must carry the shard's drop count into the target, or a
    /// fleet merge silently reports zero loss while records are gone.
    #[test]
    fn recorder_merge_accumulates_dropped_counts() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let big = Recorder::with_capacity(64);
        let tiny = Recorder::with_capacity(2);
        with_recorder(tiny.clone(), || {
            for _ in 0..5 {
                event("overflow");
            }
        });
        assert_eq!(tiny.dropped(), 3);
        big.merge_from(&tiny);
        assert_eq!(big.len(), 2);
        assert_eq!(big.dropped(), 3, "shard loss must survive the merge");
        // A second shard's drops accumulate on top.
        let tiny2 = Recorder::with_capacity(2);
        with_recorder(tiny2.clone(), || {
            for _ in 0..4 {
                event("overflow2");
            }
        });
        big.merge_from(&tiny2);
        assert_eq!(big.dropped(), 5);
        // And merging into a near-full target adds its own ring drops on
        // top of the carried ones rather than conflating the two.
        let cramped = Recorder::with_capacity(1);
        cramped.merge_from(&tiny); // 2 records into capacity 1 -> 1 evicted
        assert_eq!(cramped.dropped(), 3 + 1);
    }

    struct CountingSink(std::sync::mpsc::Sender<&'static str>);
    impl Sink for CountingSink {
        fn on_record(&mut self, record: &Record) {
            let _ = self.0.send(record.name());
        }
    }

    #[test]
    fn sinks_see_records_before_eviction() {
        with_global(|rec| {
            let (tx, rx) = std::sync::mpsc::channel();
            rec.add_sink(Box::new(CountingSink(tx)));
            event("a");
            event("b");
            let seen: Vec<_> = rx.try_iter().collect();
            assert_eq!(seen, vec!["a", "b"]);
        });
    }
}
