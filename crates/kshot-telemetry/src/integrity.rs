//! Detached SMM integrity monitor.
//!
//! Replays the `smi.*` flight-record stream (one JSON line per SMI,
//! emitted into the per-worker shards by the fleet) against declarative
//! per-SMI invariants, from *outside* the machine — the monitor trusts
//! only the stream written by the simulated hardware, never the SMM
//! handler itself. This reproduces the detection side of the SMM
//! literature the flight recorder reproduces the observation side of:
//! behaviour monitoring (Chevalier et al.) plus sealed-image
//! measurement (SmmPack).
//!
//! Invariants, each gated on the corresponding [`IntegrityPolicy`]
//! field:
//!
//! 1. **Measurement** — the handler-image measurement taken at SMI
//!    entry equals the sealed/expected hash (install SMIs, which run
//!    before sealing, report 0 and are exempt).
//! 2. **Write-set** — every SMM write range lies inside the union of
//!    allowed extents (SMRAM + kernel text/data + the reserved patch
//!    region); a truncated write-set is itself a violation, since the
//!    dropped ranges cannot be verified.
//! 3. **Journal well-formedness** — ops follow the window grammar
//!    (`Begin` opens, `Commit` closes, entries/segments only inside an
//!    open window, segment indices ascending from 0, total entries
//!    within capacity). A bare `Commit` with no `Begin` is legal: crash
//!    recovery closes a window opened in an earlier, interrupted SMI.
//! 4. **Dwell** — the SMI's dwell stays within the calibrated budget.
//!
//! Every violated invariant produces a specific, golden-tested reason
//! string naming the machine, SMI index and cause. Resident memory is
//! bounded: reasons are capped ([`IntegrityPolicy::max_reasons`]) and
//! per-record state is dropped as soon as the record is checked.

use std::collections::BTreeSet;

use crate::json::Value;

/// Declarative per-SMI invariants the monitor enforces. Checks whose
/// policy field is unset are skipped.
#[derive(Debug, Clone, PartialEq)]
pub struct IntegrityPolicy {
    /// Expected handler-image measurement (FNV-1a). Records reporting
    /// measurement 0 (pre-seal, i.e. the install SMI) are exempt.
    pub expected_measurement: Option<u64>,
    /// Allowed write extents `(base, len)`. Empty disables the check.
    pub allowed_extents: Vec<(u64, u64)>,
    /// Per-SMI dwell ceiling in nanoseconds.
    pub dwell_budget_ns: Option<u64>,
    /// Journal undo-entry capacity per SMI (the SMRAM journal's
    /// `JENTRY_CAP`).
    pub journal_entry_cap: u64,
    /// Reason strings retained across the run (further violations are
    /// still counted, their text dropped) — bounds resident memory.
    pub max_reasons: usize,
}

impl Default for IntegrityPolicy {
    fn default() -> Self {
        Self::new()
    }
}

impl IntegrityPolicy {
    /// A policy with every optional check disabled and default bounds
    /// (256 journal entries, 64 retained reasons).
    pub fn new() -> Self {
        Self {
            expected_measurement: None,
            allowed_extents: Vec::new(),
            dwell_budget_ns: None,
            journal_entry_cap: 256,
            max_reasons: 64,
        }
    }

    /// Pin the expected handler-image measurement.
    pub fn with_expected_measurement(mut self, m: u64) -> Self {
        self.expected_measurement = Some(m);
        self
    }

    /// Allow SMM writes inside `[base, base + len)`.
    pub fn with_allowed_extent(mut self, base: u64, len: u64) -> Self {
        self.allowed_extents.push((base, len));
        self
    }

    /// Set the per-SMI dwell ceiling.
    pub fn with_dwell_budget_ns(mut self, ns: u64) -> Self {
        self.dwell_budget_ns = Some(ns);
        self
    }

    /// Set the journal undo-entry capacity.
    pub fn with_journal_entry_cap(mut self, cap: u64) -> Self {
        self.journal_entry_cap = cap;
        self
    }

    /// Set the retained-reason cap.
    pub fn with_max_reasons(mut self, cap: usize) -> Self {
        self.max_reasons = cap;
        self
    }
}

/// The monitor's verdict on one flight record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum IntegrityVerdict {
    /// Every enabled invariant held.
    Clean,
    /// At least one invariant was violated.
    Violation {
        /// One specific reason per violated invariant.
        reasons: Vec<String>,
    },
}

impl IntegrityVerdict {
    /// Numeric severity: 0 clean, 2 violation (matching
    /// `HealthVerdict::severity`, where 2 halts a rollout wave).
    pub fn severity(&self) -> u8 {
        match self {
            IntegrityVerdict::Clean => 0,
            IntegrityVerdict::Violation { .. } => 2,
        }
    }

    /// Stable lower-case label.
    pub fn label(&self) -> &'static str {
        match self {
            IntegrityVerdict::Clean => "clean",
            IntegrityVerdict::Violation { .. } => "violation",
        }
    }

    /// The reasons, empty when clean.
    pub fn reasons(&self) -> &[String] {
        match self {
            IntegrityVerdict::Clean => &[],
            IntegrityVerdict::Violation { reasons } => reasons,
        }
    }
}

/// One parsed `smi.*` line. All integer fields that may exceed 2^53
/// (the measurement, segment-id hashes) travel as hex strings because
/// the JSON layer parses numbers as `f64`.
struct SmiRecordView {
    machine: u64,
    smi: u64,
    cause: String,
    measurement: u64,
    writes: Vec<(u64, u64)>,
    writes_truncated: u64,
    journal: Vec<String>,
    journal_truncated: u64,
    dwell_ns: u64,
}

fn parse_hex_u64(v: &Value) -> Option<u64> {
    let s = v.as_str()?.strip_prefix("0x")?;
    u64::from_str_radix(s, 16).ok()
}

impl SmiRecordView {
    fn parse(v: &Value) -> Option<Self> {
        let writes = match v.get("writes")? {
            Value::Array(items) => items
                .iter()
                .map(|pair| match pair {
                    Value::Array(bl) if bl.len() == 2 => Some((bl[0].as_u64()?, bl[1].as_u64()?)),
                    _ => None,
                })
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        let journal = match v.get("journal")? {
            Value::Array(items) => items
                .iter()
                .map(|op| op.as_str().map(str::to_owned))
                .collect::<Option<Vec<_>>>()?,
            _ => return None,
        };
        Some(Self {
            machine: v.get("machine")?.as_u64()?,
            smi: v.get("smi")?.as_u64()?,
            cause: v.get("cause")?.as_str()?.to_owned(),
            measurement: v.get("measurement").and_then(parse_hex_u64)?,
            writes,
            writes_truncated: v.get("writes_truncated")?.as_u64()?,
            journal,
            journal_truncated: v.get("journal_truncated")?.as_u64()?,
            dwell_ns: v.get("dwell_ns")?.as_u64()?,
        })
    }
}

/// The detached monitor: feed it every `smi.*` line, read the verdicts
/// and the end-of-run [`IntegrityReport`]. See the module docs for the
/// invariants.
#[derive(Debug, Clone)]
pub struct IntegrityMonitor {
    policy: IntegrityPolicy,
    merged_extents: Vec<(u64, u64)>,
    records_checked: u64,
    violations: u64,
    violating_machines: BTreeSet<u64>,
    reasons: Vec<String>,
    reasons_dropped: u64,
}

impl IntegrityMonitor {
    /// Build a monitor enforcing `policy`.
    pub fn new(policy: IntegrityPolicy) -> Self {
        // Merge the allowed extents once so a coalesced write range
        // spanning two adjacent extents still verifies.
        let mut ext = policy.allowed_extents.clone();
        ext.sort_unstable();
        let mut merged: Vec<(u64, u64)> = Vec::new();
        for (base, len) in ext {
            match merged.last_mut() {
                Some((mb, ml)) if base <= *mb + *ml => {
                    let end = (base + len).max(*mb + *ml);
                    *ml = end - *mb;
                }
                _ => merged.push((base, len)),
            }
        }
        Self {
            policy,
            merged_extents: merged,
            records_checked: 0,
            violations: 0,
            violating_machines: BTreeSet::new(),
            reasons: Vec::new(),
            reasons_dropped: 0,
        }
    }

    /// The enforced policy.
    pub fn policy(&self) -> &IntegrityPolicy {
        &self.policy
    }

    /// Check one parsed `smi.*` line against the policy, recording any
    /// violation into the run totals and returning the verdict.
    pub fn check_value(&mut self, v: &Value) -> IntegrityVerdict {
        self.records_checked += 1;
        let Some(rec) = SmiRecordView::parse(v) else {
            return self.flag(None, vec!["malformed smi flight record".to_string()]);
        };
        let mut reasons = Vec::new();
        let who = format!("machine {} smi {} ({})", rec.machine, rec.smi, rec.cause);
        if let Some(expected) = self.policy.expected_measurement {
            if rec.measurement != 0 && rec.measurement != expected {
                reasons.push(format!(
                    "{who}: handler measurement {:#018x} != sealed {:#018x}",
                    rec.measurement, expected
                ));
            }
        }
        if !self.merged_extents.is_empty() {
            for &(base, len) in &rec.writes {
                let end = base.saturating_add(len);
                let covered = self
                    .merged_extents
                    .iter()
                    .any(|&(eb, el)| base >= eb && end <= eb + el);
                if !covered {
                    reasons.push(format!(
                        "{who}: write [{base:#x}..{end:#x}) outside allowed extents"
                    ));
                }
            }
            if rec.writes_truncated > 0 {
                reasons.push(format!(
                    "{who}: write-set truncated ({} ranges dropped)",
                    rec.writes_truncated
                ));
            }
        }
        self.check_journal(&who, &rec, &mut reasons);
        if let Some(budget) = self.policy.dwell_budget_ns {
            if rec.dwell_ns > budget {
                reasons.push(format!(
                    "{who}: dwell {}ns exceeds integrity budget {budget}ns",
                    rec.dwell_ns
                ));
            }
        }
        if reasons.is_empty() {
            IntegrityVerdict::Clean
        } else {
            self.flag(Some(rec.machine), reasons)
        }
    }

    fn check_journal(&self, who: &str, rec: &SmiRecordView, reasons: &mut Vec<String>) {
        if rec.journal_truncated > 0 {
            reasons.push(format!(
                "{who}: journal op stream truncated ({} ops dropped)",
                rec.journal_truncated
            ));
        }
        let mut open = false;
        let mut next_segment = 0u64;
        let mut entries = 0u64;
        for op in &rec.journal {
            match op.as_str() {
                "B:a" | "B:r" => {
                    if open {
                        reasons.push(format!("{who}: nested journal begin"));
                    }
                    open = true;
                    next_segment = 0;
                }
                "C" => {
                    // A bare commit with no open window is legal:
                    // recovery closes a window opened in an earlier SMI.
                    open = false;
                }
                s if s.starts_with("E:") => {
                    let count: u64 = s[2..].parse().unwrap_or(u64::MAX);
                    if !open {
                        reasons.push(format!("{who}: journal entry outside an open window"));
                    }
                    entries = entries.saturating_add(count);
                }
                s if s.starts_with("S:") => {
                    if !open {
                        reasons.push(format!("{who}: segment marker outside an open window"));
                    }
                    let index = s[2..]
                        .split(':')
                        .next()
                        .and_then(|i| i.parse::<u64>().ok())
                        .unwrap_or(u64::MAX);
                    if index != next_segment {
                        reasons.push(format!("{who}: journal segment markers out of order"));
                    }
                    next_segment = next_segment.saturating_add(1);
                }
                _ => reasons.push(format!("{who}: unrecognized journal op {op:?}")),
            }
        }
        if entries > self.policy.journal_entry_cap {
            reasons.push(format!(
                "{who}: journal entries {entries} exceed capacity {}",
                self.policy.journal_entry_cap
            ));
        }
    }

    fn flag(&mut self, machine: Option<u64>, reasons: Vec<String>) -> IntegrityVerdict {
        self.violations += 1;
        if let Some(m) = machine {
            self.violating_machines.insert(m);
        }
        for r in &reasons {
            if self.reasons.len() < self.policy.max_reasons {
                self.reasons.push(r.clone());
            } else {
                self.reasons_dropped += 1;
            }
        }
        IntegrityVerdict::Violation { reasons }
    }

    /// Records checked so far.
    pub fn records_checked(&self) -> u64 {
        self.records_checked
    }

    /// Records that violated at least one invariant.
    pub fn violations(&self) -> u64 {
        self.violations
    }

    /// True when no record has violated anything.
    pub fn is_clean(&self) -> bool {
        self.violations == 0
    }

    /// Approximate resident memory of the monitor in bytes (the
    /// quantity the clean-run acceptance bound covers): the fixed
    /// struct plus retained reasons and the violating-machine set.
    pub fn resident_bytes(&self) -> u64 {
        let reasons: usize = self.reasons.iter().map(|r| r.len() + 24).sum();
        (std::mem::size_of::<Self>()
            + self.merged_extents.len() * 16
            + self.policy.allowed_extents.len() * 16
            + reasons
            + self.violating_machines.len() * 8) as u64
    }

    /// Snapshot the run totals.
    pub fn report(&self) -> IntegrityReport {
        IntegrityReport {
            records_checked: self.records_checked,
            violations: self.violations,
            violating_machines: self.violating_machines.iter().copied().collect(),
            reasons: self.reasons.clone(),
            reasons_dropped: self.reasons_dropped,
            resident_bytes: self.resident_bytes(),
        }
    }
}

/// End-of-run summary of an [`IntegrityMonitor`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IntegrityReport {
    /// Flight records checked.
    pub records_checked: u64,
    /// Records that violated at least one invariant.
    pub violations: u64,
    /// Machines with at least one violating record, ascending.
    pub violating_machines: Vec<u64>,
    /// Retained reason strings (capped; see `reasons_dropped`).
    pub reasons: Vec<String>,
    /// Reason strings dropped past the cap.
    pub reasons_dropped: u64,
    /// Approximate resident monitor memory in bytes.
    pub resident_bytes: u64,
}

impl IntegrityReport {
    /// Render as a JSON object (stable key order, machine-readable).
    pub fn to_json(&self) -> String {
        let machines: Vec<String> = self.violating_machines.iter().map(u64::to_string).collect();
        let reasons: Vec<String> = self
            .reasons
            .iter()
            .map(|r| crate::record::json_escape(r))
            .collect();
        format!(
            concat!(
                "{{\"records_checked\":{},\"violations\":{},\"clean\":{},",
                "\"violating_machines\":[{}],\"reasons\":[{}],",
                "\"reasons_dropped\":{},\"resident_bytes\":{}}}"
            ),
            self.records_checked,
            self.violations,
            self.violations == 0,
            machines.join(","),
            reasons.join(","),
            self.reasons_dropped,
            self.resident_bytes,
        )
    }

    /// Render a human-readable summary table.
    pub fn render_table(&self) -> String {
        let mut out = String::new();
        out.push_str("SMM integrity monitor\n");
        out.push_str(&format!("  records checked   {}\n", self.records_checked));
        out.push_str(&format!("  violations        {}\n", self.violations));
        out.push_str(&format!(
            "  violating machines {:?}\n",
            self.violating_machines
        ));
        out.push_str(&format!("  resident bytes    {}\n", self.resident_bytes));
        for r in &self.reasons {
            out.push_str(&format!("  ! {r}\n"));
        }
        if self.reasons_dropped > 0 {
            out.push_str(&format!("  … {} reasons dropped\n", self.reasons_dropped));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    fn smi_line(
        machine: u64,
        smi: u64,
        cause: &str,
        measurement: u64,
        writes: &str,
        journal: &str,
        dwell_ns: u64,
    ) -> String {
        format!(
            concat!(
                "{{\"type\":\"smi\",\"v\":1,\"machine\":{},\"smi\":{},",
                "\"cause\":\"{}\",\"measurement\":\"{:#018x}\",\"writes\":[{}],",
                "\"writes_truncated\":0,\"journal\":[{}],\"journal_truncated\":0,",
                "\"dwell_ns\":{},\"exit\":\"ok\"}}"
            ),
            machine, smi, cause, measurement, writes, journal, dwell_ns
        )
    }

    fn check(monitor: &mut IntegrityMonitor, line: &str) -> IntegrityVerdict {
        monitor.check_value(&json::parse(line).unwrap())
    }

    fn policy() -> IntegrityPolicy {
        IntegrityPolicy::new()
            .with_expected_measurement(0xABCD)
            .with_allowed_extent(0x1000, 0x1000)
            .with_allowed_extent(0x2000, 0x1000)
            .with_dwell_budget_ns(100_000)
    }

    #[test]
    fn clean_record_passes_every_invariant() {
        let mut m = IntegrityMonitor::new(policy());
        let line = smi_line(
            3,
            2,
            "patch",
            0xABCD,
            "[4096,16],[8192,8]",
            "\"B:a\",\"S:0:ff\",\"E:5\",\"C\"",
            50_000,
        );
        assert_eq!(check(&mut m, &line), IntegrityVerdict::Clean);
        assert!(m.is_clean());
        assert_eq!(m.records_checked(), 1);
    }

    #[test]
    fn each_attack_yields_its_specific_reason() {
        let mut m = IntegrityMonitor::new(policy());
        // Handler tamper: wrong measurement.
        let v = check(&mut m, &smi_line(1, 2, "patch", 0xBEEF, "", "", 1));
        assert_eq!(
            v.reasons(),
            ["machine 1 smi 2 (patch): handler measurement 0x000000000000beef != sealed 0x000000000000abcd"]
        );
        // Rogue write outside every extent.
        let v = check(&mut m, &smi_line(1, 3, "patch", 0xABCD, "[64,8]", "", 1));
        assert_eq!(
            v.reasons(),
            ["machine 1 smi 3 (patch): write [0x40..0x48) outside allowed extents"]
        );
        // Journal abuse: entries after the commit closed the window.
        let v = check(
            &mut m,
            &smi_line(
                1,
                4,
                "patch",
                0xABCD,
                "",
                "\"B:a\",\"E:2\",\"C\",\"E:9\"",
                1,
            ),
        );
        assert_eq!(
            v.reasons(),
            ["machine 1 smi 4 (patch): journal entry outside an open window"]
        );
        // Dwell exhaustion.
        let v = check(&mut m, &smi_line(1, 5, "patch", 0xABCD, "", "", 250_000));
        assert_eq!(
            v.reasons(),
            ["machine 1 smi 5 (patch): dwell 250000ns exceeds integrity budget 100000ns"]
        );
        assert_eq!(m.violations(), 4);
        assert_eq!(m.report().violating_machines, vec![1]);
    }

    #[test]
    fn install_smi_measurement_zero_is_exempt() {
        let mut m = IntegrityMonitor::new(policy());
        let line = smi_line(0, 1, "install", 0, "[4096,64]", "", 1);
        assert_eq!(check(&mut m, &line), IntegrityVerdict::Clean);
    }

    #[test]
    fn coalesced_range_spanning_adjacent_extents_is_allowed() {
        let mut m = IntegrityMonitor::new(policy());
        // [0x1800, 0x2800) spans both extents, which merge into one.
        let line = smi_line(0, 2, "patch", 0xABCD, "[6144,4096]", "", 1);
        assert_eq!(check(&mut m, &line), IntegrityVerdict::Clean);
    }

    #[test]
    fn journal_grammar_accepts_recovery_and_rejects_malformed_streams() {
        let mut m = IntegrityMonitor::new(policy());
        // Bare commit: recovery closing a window torn in an earlier SMI.
        let v = check(&mut m, &smi_line(0, 3, "recover", 0xABCD, "", "\"C\"", 1));
        assert_eq!(v, IntegrityVerdict::Clean);
        // Open window with no commit: a faulted apply — legal.
        let v = check(
            &mut m,
            &smi_line(0, 4, "patch", 0xABCD, "", "\"B:a\",\"E:3\"", 1),
        );
        assert_eq!(v, IntegrityVerdict::Clean);
        // Nested begin.
        let v = check(
            &mut m,
            &smi_line(0, 5, "patch", 0xABCD, "", "\"B:a\",\"B:r\"", 1),
        );
        assert_eq!(
            v.reasons(),
            ["machine 0 smi 5 (patch): nested journal begin"]
        );
        // Out-of-order segment markers.
        let v = check(
            &mut m,
            &smi_line(0, 6, "patch", 0xABCD, "", "\"B:a\",\"S:1:aa\"", 1),
        );
        assert_eq!(
            v.reasons(),
            ["machine 0 smi 6 (patch): journal segment markers out of order"]
        );
        // Entry-capacity overflow.
        let v = check(
            &mut m,
            &smi_line(0, 7, "patch", 0xABCD, "", "\"B:a\",\"E:300\",\"C\"", 1),
        );
        assert_eq!(
            v.reasons(),
            ["machine 0 smi 7 (patch): journal entries 300 exceed capacity 256"]
        );
    }

    #[test]
    fn malformed_record_is_flagged_not_ignored() {
        let mut m = IntegrityMonitor::new(policy());
        let v = m.check_value(&json::parse("{\"type\":\"smi\",\"v\":1}").unwrap());
        assert_eq!(v.reasons(), ["malformed smi flight record"]);
        assert_eq!(v.severity(), 2);
        assert_eq!(v.label(), "violation");
    }

    #[test]
    fn reason_retention_is_bounded() {
        let mut m = IntegrityMonitor::new(policy().with_max_reasons(2));
        for i in 0..5 {
            check(&mut m, &smi_line(i, 2, "patch", 0xBEEF, "", "", 1));
        }
        let report = m.report();
        assert_eq!(report.violations, 5);
        assert_eq!(report.reasons.len(), 2);
        assert_eq!(report.reasons_dropped, 3);
        let baseline = m.resident_bytes();
        for i in 5..50 {
            check(&mut m, &smi_line(i % 8, 2, "patch", 0xBEEF, "", "", 1));
        }
        // Resident memory does not grow with violation count once the
        // reason cap is hit and the machine set saturates.
        assert!(m.resident_bytes() <= baseline + 8 * 8);
        let json = m.report().to_json();
        assert!(json.contains("\"violations\":50"));
        assert!(json.contains("\"clean\":false"));
        assert!(json.contains("\"resident_bytes\":"));
        let table = m.report().render_table();
        assert!(table.contains("violations        50"));
        assert!(table.contains("reasons dropped"));
    }
}
