//! Exporters: JSON lines, Chrome `trace_event` (Perfetto-loadable), and
//! a plain-text summary table.

use std::collections::BTreeMap;
use std::fmt::Write as _;

use crate::metrics::MetricsSnapshot;
use crate::record::{json_escape, Field, Record};
use crate::SCHEMA_VERSION;

fn fields_json(fields: &[Field]) -> String {
    let mut out = String::from("{");
    for (i, (k, v)) in fields.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let _ = write!(out, "{}:{}", json_escape(k), v.to_json());
    }
    out.push('}');
    out
}

/// Render one record as a single JSON-lines object (no trailing
/// newline). Every line carries the [`SCHEMA_VERSION`] as `"v"` so
/// downstream parsers can detect format drift. This is the unit of the
/// streaming pipeline: [`crate::StreamSink`] writes exactly these lines
/// as records arrive.
pub fn record_json_line(rec: &Record) -> String {
    let mut out = String::new();
    match rec {
        Record::Span(s) => {
            let _ = write!(
                out,
                "{{\"type\":\"span\",\"v\":{SCHEMA_VERSION},\"id\":{},\"parent\":{},\"name\":{},\
                 \"thread\":{},\"wall_start_ns\":{},\"wall_dur_ns\":{}",
                s.id,
                s.parent.map_or("null".to_string(), |p| p.to_string()),
                json_escape(s.name),
                s.thread,
                s.wall_start_ns,
                s.wall_dur_ns,
            );
            if let Some(sim) = s.sim_start_ns {
                let _ = write!(out, ",\"sim_start_ns\":{sim}");
            }
            if let Some(sim) = s.sim_end_ns {
                let _ = write!(out, ",\"sim_end_ns\":{sim}");
            }
            if !s.fields.is_empty() {
                let _ = write!(out, ",\"fields\":{}", fields_json(&s.fields));
            }
            out.push('}');
        }
        Record::Event(e) => {
            let _ = write!(
                out,
                "{{\"type\":\"event\",\"v\":{SCHEMA_VERSION},\"parent\":{},\"name\":{},\
                 \"thread\":{},\"wall_ns\":{}",
                e.parent.map_or("null".to_string(), |p| p.to_string()),
                json_escape(e.name),
                e.thread,
                e.wall_ns,
            );
            if let Some(sim) = e.sim_ns {
                let _ = write!(out, ",\"sim_ns\":{sim}");
            }
            if !e.fields.is_empty() {
                let _ = write!(out, ",\"fields\":{}", fields_json(&e.fields));
            }
            out.push('}');
        }
    }
    out
}

/// Render a metrics snapshot as JSON lines: one `counter`, `gauge`, or
/// `histogram` object per line, each stamped with `"v"`. Counters and
/// histogram lines are *mergeable* across shards (add counters,
/// bucket-merge histograms); gauges are last-writer-wins.
pub fn metrics_json_lines(metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for (name, value) in &metrics.counters {
        let _ = writeln!(
            out,
            "{{\"type\":\"counter\",\"v\":{SCHEMA_VERSION},\"name\":{},\"value\":{}}}",
            json_escape(name),
            value
        );
    }
    for (name, value) in &metrics.gauges {
        let _ = writeln!(
            out,
            "{{\"type\":\"gauge\",\"v\":{SCHEMA_VERSION},\"name\":{},\"value\":{}}}",
            json_escape(name),
            value
        );
    }
    for (name, h) in &metrics.histograms {
        let bounds: Vec<String> = h.bounds.iter().map(|b| b.to_string()).collect();
        let counts: Vec<String> = h.counts.iter().map(|c| c.to_string()).collect();
        let _ = writeln!(
            out,
            "{{\"type\":\"histogram\",\"v\":{SCHEMA_VERSION},\"name\":{},\"count\":{},\
             \"sum\":{},\"min\":{},\"max\":{},\"bounds\":[{}],\"counts\":[{}]}}",
            json_escape(name),
            h.count,
            h.sum,
            h.min,
            h.max,
            bounds.join(","),
            counts.join(","),
        );
    }
    for (name, s) in &metrics.sketches {
        let _ = writeln!(out, "{}", s.to_json_line(name));
    }
    out
}

/// One JSON object per line: spans, events, then counters, gauges, and
/// histograms from the metrics snapshot. Every line is independently
/// parseable, so partial files (e.g. from a truncated run) still load.
pub fn json_lines(records: &[Record], metrics: &MetricsSnapshot) -> String {
    let mut out = String::new();
    for rec in records {
        out.push_str(&record_json_line(rec));
        out.push('\n');
    }
    out.push_str(&metrics_json_lines(metrics));
    out
}

/// Timestamp selection for the Chrome exporter: simulated time when a
/// record carries it, wall time otherwise. Mixed traces are legal but
/// the two clocks share one axis, so instrument consistently.
fn span_ts_dur(s: &crate::record::SpanRecord) -> (u64, u64) {
    match (s.sim_start_ns, s.sim_dur_ns()) {
        (Some(start), Some(dur)) => (start, dur),
        _ => (s.wall_start_ns, s.wall_dur_ns),
    }
}

/// Chrome `trace_event` JSON: an object with a `traceEvents` array of
/// `"X"` (complete) events for spans and `"i"` (instant) events for
/// events. Loadable in Perfetto (ui.perfetto.dev) or `chrome://tracing`.
/// Timestamps are microseconds with nanosecond precision kept in the
/// fractional digits.
pub fn chrome_trace(records: &[Record]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    for rec in records {
        if !first {
            out.push(',');
        }
        first = false;
        match rec {
            Record::Span(s) => {
                let (ts_ns, dur_ns) = span_ts_dur(s);
                let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":\"kshot\",\"ph\":\"X\",\"ts\":{}.{:03},\
                     \"dur\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{\"id\":{}",
                    json_escape(s.name),
                    ts_ns / 1_000,
                    ts_ns % 1_000,
                    dur_ns / 1_000,
                    dur_ns % 1_000,
                    s.thread,
                    s.id,
                );
                if let Some(p) = s.parent {
                    let _ = write!(out, ",\"parent\":{p}");
                }
                for (k, v) in &s.fields {
                    let _ = write!(out, ",{}:{}", json_escape(k), v.to_json());
                }
                out.push_str("}}");
            }
            Record::Event(e) => {
                let ts_ns = e.sim_ns.unwrap_or(e.wall_ns);
                let _ = write!(
                    out,
                    "{{\"name\":{},\"cat\":\"kshot\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{}.{:03},\"pid\":1,\"tid\":{},\"args\":{{",
                    json_escape(e.name),
                    ts_ns / 1_000,
                    ts_ns % 1_000,
                    e.thread,
                );
                for (i, (k, v)) in e.fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    let _ = write!(out, "{}:{}", json_escape(k), v.to_json());
                }
                out.push_str("}}");
            }
        }
    }
    out.push_str("]}");
    out
}

pub(crate) fn fmt_ns(ns: u64) -> String {
    if ns >= 1_000_000_000 {
        format!("{:.2}s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.2}ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.2}us", ns as f64 / 1e3)
    } else {
        format!("{ns}ns")
    }
}

#[derive(Default)]
struct SpanAgg {
    count: u64,
    wall_total: u64,
    wall_max: u64,
    sim_total: u64,
    sim_count: u64,
}

/// Plain-text table: per-span-name aggregates (count, wall mean/max,
/// sim mean where instrumented), then events, counters, gauges, and
/// histogram lines.
pub fn summary(records: &[Record], metrics: &MetricsSnapshot) -> String {
    let mut spans: BTreeMap<&'static str, SpanAgg> = BTreeMap::new();
    let mut events: BTreeMap<&'static str, u64> = BTreeMap::new();
    for rec in records {
        match rec {
            Record::Span(s) => {
                let agg = spans.entry(s.name).or_default();
                agg.count += 1;
                agg.wall_total += s.wall_dur_ns;
                agg.wall_max = agg.wall_max.max(s.wall_dur_ns);
                if let Some(d) = s.sim_dur_ns() {
                    agg.sim_total += d;
                    agg.sim_count += 1;
                }
            }
            Record::Event(e) => *events.entry(e.name).or_default() += 1,
        }
    }

    let mut out = String::new();
    let _ = writeln!(
        out,
        "{:<28} {:>7} {:>12} {:>12} {:>12}",
        "span", "count", "wall mean", "wall max", "sim mean"
    );
    let _ = writeln!(out, "{}", "-".repeat(76));
    for (name, agg) in &spans {
        let wall_mean = agg.wall_total / agg.count;
        let sim_mean = match agg.sim_total.checked_div(agg.sim_count) {
            Some(mean) => fmt_ns(mean),
            None => "-".to_string(),
        };
        let _ = writeln!(
            out,
            "{:<28} {:>7} {:>12} {:>12} {:>12}",
            name,
            agg.count,
            fmt_ns(wall_mean),
            fmt_ns(agg.wall_max),
            sim_mean
        );
    }
    if !events.is_empty() {
        let _ = writeln!(out, "\n{:<28} {:>7}", "event", "count");
        let _ = writeln!(out, "{}", "-".repeat(36));
        for (name, count) in &events {
            let _ = writeln!(out, "{name:<28} {count:>7}");
        }
    }
    if !metrics.counters.is_empty() {
        let _ = writeln!(out, "\n{:<28} {:>12}", "counter", "value");
        let _ = writeln!(out, "{}", "-".repeat(41));
        for (name, value) in &metrics.counters {
            let _ = writeln!(out, "{name:<28} {value:>12}");
        }
    }
    if !metrics.gauges.is_empty() {
        let _ = writeln!(out, "\n{:<28} {:>12}", "gauge", "value");
        let _ = writeln!(out, "{}", "-".repeat(41));
        for (name, value) in &metrics.gauges {
            let _ = writeln!(out, "{name:<28} {value:>12}");
        }
    }
    if !metrics.histograms.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<28} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "histogram", "count", "mean", "p50", "p95", "min", "max"
        );
        let _ = writeln!(out, "{}", "-".repeat(102));
        for (name, h) in &metrics.histograms {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
                name,
                h.count,
                fmt_ns(h.mean()),
                fmt_ns(h.percentile(50)),
                fmt_ns(h.percentile(95)),
                fmt_ns(h.min),
                fmt_ns(h.max)
            );
        }
    }
    if !metrics.sketches.is_empty() {
        let _ = writeln!(
            out,
            "\n{:<28} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
            "sketch", "count", "p50", "p95", "p99", "min", "max"
        );
        let _ = writeln!(out, "{}", "-".repeat(102));
        for (name, s) in &metrics.sketches {
            let _ = writeln!(
                out,
                "{:<28} {:>7} {:>12} {:>12} {:>12} {:>12} {:>12}",
                name,
                s.count(),
                fmt_ns(s.quantile_per_mille(500)),
                fmt_ns(s.quantile_per_mille(950)),
                fmt_ns(s.quantile_per_mille(990)),
                fmt_ns(s.min()),
                fmt_ns(s.max())
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::{EventRecord, SpanRecord, Value};

    fn sample_records() -> Vec<Record> {
        vec![
            Record::Span(SpanRecord {
                id: 1,
                parent: None,
                name: "kshot.live_patch",
                thread: 0,
                wall_start_ns: 500,
                wall_dur_ns: 9_500,
                sim_start_ns: Some(1_000),
                sim_end_ns: Some(51_000),
                fields: vec![("cve", Value::Str("CVE-2017-7184".into()))],
            }),
            Record::Event(EventRecord {
                parent: Some(1),
                name: "smm.trampoline",
                thread: 0,
                wall_ns: 700,
                sim_ns: Some(2_500),
                fields: vec![("addr", Value::U64(0xffff)), ("len", Value::U64(5))],
            }),
        ]
    }

    #[test]
    fn json_lines_roundtrippable_shapes() {
        let out = json_lines(&sample_records(), &MetricsSnapshot::default());
        let lines: Vec<&str> = out.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("{\"type\":\"span\""));
        assert!(lines[0].contains("\"sim_start_ns\":1000"));
        assert!(lines[1].contains("\"name\":\"smm.trampoline\""));
        assert!(lines[1].contains("\"addr\":65535"));
    }

    #[test]
    fn chrome_trace_prefers_sim_time() {
        let out = chrome_trace(&sample_records());
        // 1000ns sim start -> 1.000µs; 50000ns sim duration -> 50.000µs.
        assert!(out.contains("\"ts\":1.000"), "{out}");
        assert!(out.contains("\"dur\":50.000"), "{out}");
        assert!(out.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(out.ends_with("]}"));
    }

    #[test]
    fn summary_lists_each_name_once() {
        let out = summary(&sample_records(), &MetricsSnapshot::default());
        assert_eq!(out.matches("kshot.live_patch").count(), 1);
        assert!(out.contains("smm.trampoline"));
        assert!(out.contains("50.00us"), "{out}");
    }

    fn span_named(name: &'static str) -> Record {
        Record::Span(SpanRecord {
            id: 9,
            parent: None,
            name,
            thread: 0,
            wall_start_ns: 0,
            wall_dur_ns: 1,
            sim_start_ns: None,
            sim_end_ns: None,
            fields: vec![("note", Value::Str("tab\there".into()))],
        })
    }

    #[test]
    fn chrome_trace_escapes_hostile_span_names() {
        // Quotes, backslashes, and raw control characters in names and
        // string fields must come out as valid JSON escapes, never raw.
        let hostile = "bad\"name\\with\nctrl\u{1}";
        let out = chrome_trace(&[span_named(hostile)]);
        assert!(out.contains(r#"bad\"name\\with\nctrl\u0001"#), "{out}");
        assert!(out.contains(r#""note":"tab\there""#), "{out}");
        // No raw control bytes survive into the output.
        assert!(out.chars().all(|c| c >= ' ' || c == '\n'), "{out}");
    }

    #[test]
    fn json_lines_escape_hostile_names_and_stamp_schema_version() {
        let hostile = "a\"b\\c";
        let out = json_lines(&[span_named(hostile)], &MetricsSnapshot::default());
        assert!(out.contains(r#""name":"a\"b\\c""#), "{out}");
        assert!(
            out.contains(&format!("\"v\":{}", crate::SCHEMA_VERSION)),
            "{out}"
        );
    }

    #[test]
    fn sketch_metrics_export_as_schema_stamped_lines() {
        use crate::metrics::MetricsRegistry;
        let reg = MetricsRegistry::new();
        reg.sketch_observe("machine.smm_dwell_ns", 45_000);
        reg.sketch_observe("machine.smm_dwell_ns", 52_000);
        let snap = reg.snapshot();
        let out = metrics_json_lines(&snap);
        let line = out
            .lines()
            .find(|l| l.starts_with("{\"type\":\"sketch\""))
            .expect("sketch line emitted");
        assert!(line.contains("\"name\":\"machine.smm_dwell_ns\""), "{line}");
        assert!(
            line.contains(&format!("\"v\":{}", crate::SCHEMA_VERSION)),
            "{line}"
        );
        assert!(line.contains("\"count\":2"), "{line}");
        // And the summary table renders a sketch section.
        let table = summary(&[], &snap);
        assert!(table.contains("sketch"), "{table}");
        assert!(table.contains("machine.smm_dwell_ns"), "{table}");
    }

    #[test]
    fn summary_percentile_edge_cases() {
        use crate::metrics::MetricsRegistry;
        // Empty histograms cannot exist through the registry (first
        // observation creates them), so empty-percentile behaviour is
        // covered on the snapshot type directly in metrics.rs. Here:
        // single-sample and all-equal histograms through the exporter.
        let reg = MetricsRegistry::new();
        reg.observe("single", 1_500);
        for _ in 0..10 {
            reg.observe("equal", 7_000);
        }
        let snap = reg.snapshot();
        let out = summary(&[], &snap);
        // A single sample is every percentile.
        let single = snap.histogram("single").unwrap();
        assert_eq!(single.percentile(50), 1_500);
        assert_eq!(single.percentile(95), 1_500);
        // All-equal samples collapse to that value at every percentile.
        let equal = snap.histogram("equal").unwrap();
        assert_eq!(equal.percentile(1), 7_000);
        assert_eq!(equal.percentile(50), 7_000);
        assert_eq!(equal.percentile(100), 7_000);
        assert!(out.contains("1.50us"), "{out}");
        assert!(out.contains("7.00us"), "{out}");
    }
}
