//! Span guards and the per-thread parent stack.

use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::record::{EventRecord, Field, Record, SpanRecord, Value};
use crate::recorder::Recorder;

static NEXT_SPAN_ID: AtomicU64 = AtomicU64::new(1);
static NEXT_THREAD_ORDINAL: AtomicU64 = AtomicU64::new(0);

thread_local! {
    /// Stack of open span ids on this thread; the top is the parent for
    /// new spans and events.
    static SPAN_STACK: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// Small stable ordinal for this thread, used instead of the OS tid
    /// so exports are deterministic-ish across runs.
    static THREAD_ORDINAL: u64 = NEXT_THREAD_ORDINAL.fetch_add(1, Ordering::Relaxed);
}

/// The current thread's small ordinal.
pub(crate) fn thread_ordinal() -> u64 {
    THREAD_ORDINAL.with(|t| *t)
}

/// The innermost open span id on this thread, if any.
pub(crate) fn current_parent() -> Option<u64> {
    SPAN_STACK.with(|s| s.borrow().last().copied())
}

/// Emit a point event into `recorder` under the current span.
pub(crate) fn emit_event(
    recorder: &Arc<Recorder>,
    name: &'static str,
    sim_ns: Option<u64>,
    fields: Vec<Field>,
) {
    let rec = EventRecord {
        parent: current_parent(),
        name,
        thread: thread_ordinal(),
        wall_ns: recorder.wall_ns_now(),
        sim_ns,
        fields,
    };
    recorder.append(Record::Event(rec));
}

struct SpanInner {
    recorder: Arc<Recorder>,
    id: u64,
    parent: Option<u64>,
    name: &'static str,
    wall_start: Instant,
    wall_start_ns: u64,
    sim_start_ns: Option<u64>,
    sim_end_ns: Option<u64>,
    fields: Vec<Field>,
}

/// An open span. Dropping it (or calling [`SpanGuard::end_at`]) records
/// the interval. When telemetry is disabled the guard is inert and the
/// entire lifecycle performs no heap allocation.
#[must_use = "a span measures the interval until it is dropped"]
pub struct SpanGuard {
    inner: Option<SpanInner>,
}

impl SpanGuard {
    /// An inert guard — what every instrumentation site gets when no
    /// recorder is installed.
    pub(crate) fn disabled() -> Self {
        SpanGuard { inner: None }
    }

    pub(crate) fn open(
        recorder: Arc<Recorder>,
        name: &'static str,
        sim_start_ns: Option<u64>,
    ) -> Self {
        let id = NEXT_SPAN_ID.fetch_add(1, Ordering::Relaxed);
        let parent = current_parent();
        SPAN_STACK.with(|s| s.borrow_mut().push(id));
        let wall_start_ns = recorder.wall_ns_now();
        SpanGuard {
            inner: Some(SpanInner {
                recorder,
                id,
                parent,
                name,
                wall_start: Instant::now(),
                wall_start_ns,
                sim_start_ns,
                sim_end_ns: None,
                fields: Vec::new(),
            }),
        }
    }

    /// True when this guard will record on close (telemetry enabled at
    /// the time it was opened).
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// This span's id, when recording (for cross-referencing records).
    pub fn id(&self) -> Option<u64> {
        self.inner.as_ref().map(|i| i.id)
    }

    /// Attach a structured field. No-op on an inert guard.
    pub fn field(&mut self, key: &'static str, value: impl Into<Value>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.fields.push((key, value.into()));
        }
    }

    /// Record the simulated-clock end timestamp to be emitted on close.
    pub fn set_sim_end(&mut self, sim_ns: u64) {
        if let Some(inner) = self.inner.as_mut() {
            inner.sim_end_ns = Some(sim_ns);
        }
    }

    /// Close the span with a simulated end timestamp.
    pub fn end_at(mut self, sim_ns: u64) {
        self.set_sim_end(sim_ns);
    }

    /// Close the span now (same as dropping it, but explicit at call
    /// sites where the scope would otherwise be unclear).
    pub fn end(self) {}
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        let Some(inner) = self.inner.take() else {
            return;
        };
        // Pop this span off the thread's stack. Guards are expected to
        // close in LIFO order (they are scope-bound); tolerate misuse by
        // removing the id wherever it sits.
        SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            match stack.last() {
                Some(&top) if top == inner.id => {
                    stack.pop();
                }
                _ => {
                    if let Some(pos) = stack.iter().rposition(|&id| id == inner.id) {
                        stack.remove(pos);
                    }
                }
            }
        });
        let rec = SpanRecord {
            id: inner.id,
            parent: inner.parent,
            name: inner.name,
            thread: thread_ordinal(),
            wall_start_ns: inner.wall_start_ns,
            wall_dur_ns: inner.wall_start.elapsed().as_nanos() as u64,
            sim_start_ns: inner.sim_start_ns,
            sim_end_ns: inner.sim_end_ns,
            fields: inner.fields,
        };
        inner.recorder.append(Record::Span(rec));
    }
}
